//! One builder for both hosts.
//!
//! The paper's Listing-1 flow (`new` → `add_nvme_dev*` → `init_nvme` →
//! `start*`) is order-sensitive, and the AGILE and BaM hosts each used to
//! expose their own near-duplicate copy of it. [`HostBuilder`] replaces both
//! call sequences with a single declarative construction API whose invalid
//! orders are unrepresentable — `build()` runs the flow in the only valid
//! order and returns a started host:
//!
//! ```
//! use bam_baseline::HostBuilder;
//! use agile_core::{AgileConfig, GpuStorageHost};
//! use gpu_sim::GpuConfig;
//!
//! let mut host = HostBuilder::agile(AgileConfig::small_test())
//!     .gpu(GpuConfig::tiny(4))
//!     .devices(2, 1 << 16)  // two SSDs of 2^16 pages
//!     .shards(2)            // lock-partitioned ShardedArray topology
//!     .build();
//! assert_eq!(host.topology().shard_count(), 2);
//! # let _ = &mut host;
//! ```
//!
//! `HostBuilder::bam(config)` builds the synchronous baseline the same way;
//! the result of either constructor implements
//! [`agile_core::host::GpuStorageHost`], so harness code compares the two
//! systems without duplicating setup.

use crate::ctrl::BamConfig;
use crate::host::BamHost;
use agile_control::{ControlPolicy, SloSpec};
use agile_core::config::AgileConfig;
use agile_core::host::{AgileHost, GpuStorageHost};
use agile_core::qos::QosPolicy;
use agile_metrics::{MetricsRegistry, WindowedSampler};
use agile_sim::trace::TraceSink;
use gpu_sim::{EngineSched, GpuConfig};
use nvme_sim::{PageBacking, Placement};
use std::sync::Arc;

/// One device to be created at build time.
struct DeviceSpec {
    pages: u64,
    backing: Option<Arc<dyn PageBacking>>,
}

/// Selects which system a [`HostBuilder`] constructs. Implemented by
/// [`AgileSystem`] and [`BamSystem`]; not meant to be implemented outside
/// this crate.
pub trait HostSystem {
    /// The system's configuration type.
    type Config;
    /// The host type `build()` returns.
    type Host: GpuStorageHost;
}

/// Marker for [`HostBuilder::agile`].
pub struct AgileSystem;
impl HostSystem for AgileSystem {
    type Config = AgileConfig;
    type Host = AgileHost;
}

/// Marker for [`HostBuilder::bam`].
pub struct BamSystem;
impl HostSystem for BamSystem {
    type Config = BamConfig;
    type Host = BamHost;
}

/// Declarative construction of an AGILE or BaM host (see the module docs).
pub struct HostBuilder<S: HostSystem> {
    gpu: GpuConfig,
    config: S::Config,
    devices: Vec<DeviceSpec>,
    shards: usize,
    placement: Placement,
    service_shards: usize,
    engine_sched: EngineSched,
    barrier_spin_limit: Option<u32>,
    sink: Option<Arc<dyn TraceSink>>,
    qos: Option<Arc<dyn QosPolicy>>,
    metrics: Option<Arc<MetricsRegistry>>,
    sampler: Option<Arc<WindowedSampler>>,
    control: Option<ControlPolicy>,
    slos: Vec<SloSpec>,
}

/// Sampler window (cycles) auto-created when [`HostBuilder::control`] is
/// requested without an explicit [`HostBuilder::metrics_sampler`] — matches
/// the replay harness's default metrics window.
const DEFAULT_CONTROL_WINDOW: u64 = 500_000;

impl HostBuilder<AgileSystem> {
    /// Build an AGILE host (background service, asynchronous I/O API).
    pub fn agile(config: AgileConfig) -> Self {
        HostBuilder {
            gpu: GpuConfig::rtx_5000_ada(),
            config,
            devices: Vec::new(),
            shards: 0,
            placement: Placement::default(),
            service_shards: 1,
            engine_sched: EngineSched::default(),
            barrier_spin_limit: None,
            sink: None,
            qos: None,
            metrics: None,
            sampler: None,
            control: None,
            slos: Vec::new(),
        }
    }

    /// Scale the AGILE service out to `shards` shard-affine partitions —
    /// one persistent kernel per partition, each polling the CQs of the
    /// devices its storage shard owns ([`agile_core::service::ServiceSet`]).
    /// The default of 1 is the paper's single service, bit for bit.
    pub fn service_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "the service needs at least one partition");
        self.service_shards = shards;
        self
    }

    /// Select the software cache's replacement policy
    /// ([`agile_core::config::CachePolicyKind`]). The default clock policy is
    /// the paper's, bit-identical to the pre-tenant-threading stack. Pair
    /// [`CachePolicyKind::TenantShare`](agile_core::config::CachePolicyKind::TenantShare)
    /// with [`HostBuilder::cache_shares`] for weighted per-tenant occupancy
    /// bounds. AGILE only — the BaM baseline hard-codes one policy, which is
    /// exactly the flexibility gap the paper calls out.
    pub fn cache_policy(mut self, policy: agile_core::config::CachePolicyKind) -> Self {
        self.config.cache_policy = policy;
        self
    }

    /// Per-tenant cache-occupancy weights, indexed by tenant id, consumed by
    /// the `TenantShare` eviction policy (tenants beyond the slice weigh 1;
    /// empty = equal shares).
    pub fn cache_shares(mut self, shares: Vec<u64>) -> Self {
        self.config.cache_shares = shares;
        self
    }

    /// Auto-size each service partition's warp count from its CQ target
    /// count ([`agile_core::service::auto_service_warps`]) instead of the
    /// fixed `service_warps` geometry.
    pub fn auto_service_warps(mut self) -> Self {
        self.config.auto_service_warps = true;
        self
    }

    /// Split the software cache into `shards` set-range shards
    /// ([`agile_cache::ShardedCache`], clamped to ≥ 1). Structural only at
    /// the default port hold of 0 — any shard count replays bit-identically;
    /// pair with [`HostBuilder::cache_port_hold`] for contention studies.
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.config = self.config.with_cache_shards(shards);
        self
    }

    /// Model cache-port contention: each cached lookup holds its shard's
    /// access port for `cycles` (0, the default, disables the model).
    pub fn cache_port_hold(mut self, cycles: u64) -> Self {
        self.config = self.config.with_cache_port_hold(cycles);
        self
    }
}

impl HostBuilder<BamSystem> {
    /// Build a BaM baseline host (no service, synchronous issue-then-poll).
    pub fn bam(config: BamConfig) -> Self {
        HostBuilder {
            gpu: GpuConfig::rtx_5000_ada(),
            config,
            devices: Vec::new(),
            shards: 0,
            placement: Placement::default(),
            service_shards: 1,
            engine_sched: EngineSched::default(),
            barrier_spin_limit: None,
            sink: None,
            qos: None,
            metrics: None,
            sampler: None,
            control: None,
            slos: Vec::new(),
        }
    }

    /// Split the software cache into `shards` set-range shards
    /// ([`agile_cache::ShardedCache`], clamped to ≥ 1) — same semantics as
    /// the AGILE variant, so shard sweeps compare both systems fairly.
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.config = self.config.with_cache_shards(shards);
        self
    }

    /// Model cache-port contention: each cached lookup holds its shard's
    /// access port for `cycles` (0, the default, disables the model).
    pub fn cache_port_hold(mut self, cycles: u64) -> Self {
        self.config = self.config.with_cache_port_hold(cycles);
        self
    }
}

impl<S: HostSystem> HostBuilder<S> {
    /// Simulated GPU to run on (default: the paper's RTX 5000 Ada).
    pub fn gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = gpu;
        self
    }

    /// Add `count` SSDs of `pages` 4 KiB pages each with default in-memory
    /// backings. May be called repeatedly; devices accumulate.
    pub fn devices(mut self, count: usize, pages: u64) -> Self {
        for _ in 0..count {
            self.devices.push(DeviceSpec {
                pages,
                backing: None,
            });
        }
        self
    }

    /// Add one SSD of `pages` pages with a caller-supplied page backing
    /// (synthetic content, payload-carrying, …).
    pub fn backing(mut self, pages: u64, backing: Arc<dyn PageBacking>) -> Self {
        self.devices.push(DeviceSpec {
            pages,
            backing: Some(backing),
        });
        self
    }

    /// Partition the storage into `shards` lock shards
    /// ([`nvme_sim::ShardedArray`]); without this call the topology is the
    /// single-lock [`nvme_sim::FlatArray`]. `shards(1)` behaves identically
    /// to the flat array but exercises the sharded code path.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "shards(0) is the flat array; pass ≥ 1");
        self.shards = shards;
        self
    }

    /// Select the striping layer's placement seed over
    /// [`nvme_sim::StorageTopology::map_page`]: the default
    /// [`Placement::Interleave`] is the paper's `g % devices` layout
    /// (golden-guarded), [`Placement::Hash`] rotates each page row by a
    /// hash for diagonal data-layout experiments.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Select the engine's scheduling loop: the event-driven ready-queue
    /// (default) or the legacy full scan ([`gpu_sim::EngineSched`]). Both
    /// execute bit-identically; the scan exists for equivalence tests and
    /// wall-time comparisons.
    pub fn engine_sched(mut self, sched: EngineSched) -> Self {
        self.engine_sched = sched;
        self
    }

    /// Run the engine's shard-affine devices on `n` OS threads
    /// ([`EngineSched::ParallelShards`]); `1` selects the sequential
    /// event-driven scheduler. Every thread count produces bit-identical
    /// results — threads only change wall-clock time.
    pub fn engine_threads(self, n: usize) -> Self {
        assert!(n >= 1, "engine_threads requires at least one thread");
        self.engine_sched(if n == 1 {
            EngineSched::EventQueue
        } else {
            EngineSched::ParallelShards(n)
        })
    }

    /// Override the threaded engine's epoch-barrier spin limit (spins per
    /// worker before falling back to `thread::yield_now`; see
    /// [`gpu_sim::Engine::set_barrier_spin_limit`]). Host-CPU trade only —
    /// simulated time is bit-identical at any setting. No effect under a
    /// sequential scheduler.
    pub fn barrier_spin_limit(mut self, limit: u32) -> Self {
        self.barrier_spin_limit = Some(limit);
        self
    }

    /// Install a trace sink across the whole stack before the first kernel
    /// runs, so capture covers every event from time zero.
    pub fn trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Install a QoS policy ([`agile_core::qos::QosPolicy`]) arbitrating
    /// tenant-attributed SQ admission, before the first kernel runs. Without
    /// this call the stack schedules FIFO (pre-QoS behaviour, bit-for-bit).
    pub fn qos(mut self, policy: Arc<dyn QosPolicy>) -> Self {
        self.qos = Some(policy);
        self
    }

    /// Instrument the whole stack with a metrics registry
    /// ([`agile_metrics::MetricsRegistry`]): submit-path and engine counters
    /// plus snapshot-time collectors over the cache, topology, devices and
    /// (on AGILE) service partitions. Without this call every metrics hook
    /// is a no-op and replay output is byte-identical to an uninstrumented
    /// build.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Attach a windowed sampler ([`agile_metrics::WindowedSampler`]) driven
    /// by the simulated clock; pair with [`HostBuilder::metrics`] over the
    /// same registry to get per-window time series out of a run.
    pub fn metrics_sampler(mut self, sampler: Arc<WindowedSampler>) -> Self {
        self.sampler = Some(sampler);
        self
    }

    /// Enable the closed-loop control plane ([`agile_control::Controller`])
    /// under `policy`. Implies metrics: when no registry / sampler was
    /// supplied, a registry and a [`DEFAULT_CONTROL_WINDOW`]-cycle sampler
    /// are created automatically at build time. Pair with
    /// [`HostBuilder::slos`] to enforce per-tenant objectives.
    pub fn control(mut self, policy: ControlPolicy) -> Self {
        self.control = Some(policy);
        self
    }

    /// Declare per-tenant SLOs ([`agile_control::SloSpec`]) for the control
    /// plane's AIMD loop. Only meaningful with [`HostBuilder::control`].
    pub fn slos(mut self, slos: Vec<SloSpec>) -> Self {
        self.slos = slos;
        self
    }

    /// Resolve the metrics registry / sampler pair, auto-creating both when
    /// the control plane was requested without explicit instrumentation.
    fn metrics_parts(
        metrics: Option<Arc<MetricsRegistry>>,
        sampler: Option<Arc<WindowedSampler>>,
        control: bool,
    ) -> (Option<Arc<MetricsRegistry>>, Option<Arc<WindowedSampler>>) {
        if !control {
            return (metrics, sampler);
        }
        let registry = metrics.unwrap_or_default();
        let sampler = sampler
            .unwrap_or_else(|| WindowedSampler::new(Arc::clone(&registry), DEFAULT_CONTROL_WINDOW));
        (Some(registry), Some(sampler))
    }
}

impl HostBuilder<AgileSystem> {
    /// Construct, initialise and start the AGILE host (devices + queues
    /// built, controller created, trace sink installed, service launched).
    pub fn build(self) -> AgileHost {
        assert!(
            !self.devices.is_empty(),
            "HostBuilder needs at least one device — call .devices(n, pages)"
        );
        let mut host = AgileHost::new(self.gpu, self.config);
        for dev in self.devices {
            match dev.backing {
                Some(backing) => host.add_nvme_dev_with_backing(dev.pages, backing),
                None => host.add_nvme_dev(dev.pages),
            };
        }
        if self.shards > 0 {
            host.set_shards(self.shards);
        }
        host.set_placement(self.placement);
        host.set_service_shards(self.service_shards);
        host.set_engine_sched(self.engine_sched);
        if let Some(limit) = self.barrier_spin_limit {
            host.set_barrier_spin_limit(limit);
        }
        host.init_nvme();
        if let Some(sink) = self.sink {
            host.set_trace_sink(sink);
        }
        if let Some(qos) = self.qos {
            host.set_qos_policy(qos);
        }
        let (metrics, sampler) =
            Self::metrics_parts(self.metrics, self.sampler, self.control.is_some());
        if let Some(registry) = metrics {
            host.set_metrics(registry);
        }
        if let Some(sampler) = sampler {
            host.set_metrics_sampler(sampler);
        }
        if let Some(policy) = self.control {
            host.set_control(policy, self.slos);
        }
        host.start_agile();
        host
    }
}

impl HostBuilder<BamSystem> {
    /// Construct, initialise and start the BaM host (devices + queues built,
    /// controller created, trace sink installed, engine ready).
    pub fn build(self) -> BamHost {
        assert!(
            !self.devices.is_empty(),
            "HostBuilder needs at least one device — call .devices(n, pages)"
        );
        let mut host = BamHost::new(self.gpu, self.config);
        for dev in self.devices {
            match dev.backing {
                Some(backing) => host.add_nvme_dev_with_backing(dev.pages, backing),
                None => host.add_nvme_dev(dev.pages),
            };
        }
        if self.shards > 0 {
            host.set_shards(self.shards);
        }
        host.set_placement(self.placement);
        host.set_engine_sched(self.engine_sched);
        if let Some(limit) = self.barrier_spin_limit {
            host.set_barrier_spin_limit(limit);
        }
        host.init_nvme();
        if let Some(sink) = self.sink {
            host.set_trace_sink(sink);
        }
        if let Some(qos) = self.qos {
            host.set_qos_policy(qos);
        }
        let (metrics, sampler) =
            Self::metrics_parts(self.metrics, self.sampler, self.control.is_some());
        if let Some(registry) = metrics {
            host.set_metrics(registry);
        }
        if let Some(sampler) = sampler {
            host.set_metrics_sampler(sampler);
        }
        if let Some(policy) = self.control {
            host.set_control(policy, self.slos);
        }
        host.start();
        host
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agile_sim::trace::{TraceEvent, TraceEventKind};
    use gpu_sim::LaunchConfig;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct SubmitCounter(AtomicU64);
    impl TraceSink for SubmitCounter {
        fn record(&self, ev: TraceEvent) {
            if ev.kind == TraceEventKind::Submit {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    #[test]
    fn builds_a_started_agile_host() {
        let host = HostBuilder::agile(AgileConfig::small_test())
            .gpu(GpuConfig::tiny(2))
            .devices(2, 1 << 14)
            .build();
        assert_eq!(host.ctrl().device_count(), 2);
        assert_eq!(host.topology().shard_count(), 1);
        // start_agile already ran: the engine exists and reports time.
        assert_eq!(host.now().raw(), 0);
    }

    #[test]
    fn builds_a_sharded_bam_host_with_sink() {
        let sink = Arc::new(SubmitCounter::default());
        let mut host = HostBuilder::bam(BamConfig::small_test())
            .gpu(GpuConfig::tiny(2))
            .devices(4, 1 << 12)
            .shards(4)
            .trace_sink(sink.clone() as Arc<_>)
            .build();
        assert_eq!(host.topology().shard_count(), 4);
        let ctrl = host.ctrl();
        let report = host.run_kernel(
            LaunchConfig::new(1, 64).with_registers(56),
            Box::new(crate::kernels::SyncReadComputeKernel::new(
                ctrl, 2, 1_000, 50_000,
            )),
        );
        assert!(!report.deadlocked);
        assert!(sink.0.load(Ordering::Relaxed) > 0, "sink was installed");
    }

    #[test]
    fn mixed_backings_accumulate_in_order() {
        use nvme_sim::{MemBacking, PageToken};
        let custom = Arc::new(MemBacking::new(7));
        custom.write(3, PageToken(0xC0FFEE));
        let host = HostBuilder::agile(AgileConfig::small_test())
            .gpu(GpuConfig::tiny(1))
            .devices(1, 1 << 12)
            .backing(1 << 12, custom)
            .build();
        assert_eq!(host.ctrl().device_count(), 2);
        assert_eq!(host.backing(1).read(3), PageToken(0xC0FFEE));
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn refuses_to_build_without_devices() {
        let _ = HostBuilder::agile(AgileConfig::small_test()).build();
    }

    #[test]
    fn qos_policy_is_installed_on_both_systems() {
        use agile_core::qos::WeightedFair;
        let host = HostBuilder::agile(AgileConfig::small_test())
            .gpu(GpuConfig::tiny(1))
            .devices(1, 1 << 12)
            .qos(Arc::new(WeightedFair::from_weights(&[3, 1])))
            .build();
        assert_eq!(host.ctrl().qos_policy().expect("installed").name(), "wfq");
        let bam = HostBuilder::bam(BamConfig::small_test())
            .gpu(GpuConfig::tiny(1))
            .devices(1, 1 << 12)
            .qos(Arc::new(WeightedFair::new()))
            .build();
        assert_eq!(bam.ctrl().qos_policy().expect("installed").name(), "wfq");
    }
}
