//! The BaM-style synchronous controller.
//!
//! `BamCtrl` exposes the synchronous access model: a warp asks for pages
//! through [`BamCtrl::read_warp_sync`]; misses are turned into NVMe commands
//! on the spot, and the warp must then drive [`BamCtrl::poll_once`] until its
//! data is resident — there is no background service, so user threads both
//! issue and complete every command. The cache and queue structures are the
//! same ones AGILE uses; what differs is who does the completion work and
//! what each call costs (the `bam_*` cost constants model BaM's lock-held
//! critical sections).

use agile_cache::{CacheConfig, CacheLookup, ClockPolicy, ShardedCache};
use agile_core::coalesce::coalesce_warp;
use agile_core::ctrl::CtrlMetrics;
use agile_core::qos::{QosDecision, QosPolicy};
use agile_core::sq_protocol::AgileSq;
use agile_core::transaction::{Barrier, Transaction};
use agile_metrics::MetricsRegistry;
use agile_sim::costs::CostModel;
use agile_sim::trace::{TraceEvent, TraceEventKind, TraceSink};
use agile_sim::Cycles;
use nvme_sim::{DmaHandle, Lba, NvmeCommand, Opcode, PageToken, QueuePair, StorageTopology};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// BaM system configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BamConfig {
    /// I/O queue pairs per SSD.
    pub queue_pairs_per_ssd: usize,
    /// Queue depth.
    pub queue_depth: u32,
    /// Software cache capacity in bytes (clock policy, fixed).
    pub cache_bytes: u64,
    /// Set-range shards of the software cache (≥ 1). Purely structural at
    /// the default `cache_port_hold` of 0 — any shard count replays
    /// bit-identically (same hash over the logical set space).
    pub cache_shards: usize,
    /// Modeled cycles one lookup holds its cache shard's access port
    /// ([`agile_cache::ShardedCache::port_acquire`]); 0 (default) disables
    /// the port model.
    pub cache_port_hold: u64,
    /// Shared cost model.
    pub costs: CostModel,
}

impl BamConfig {
    /// Match the paper's default evaluation setup (128 QPs × 256, 2 GiB cache).
    pub fn paper_default() -> Self {
        BamConfig {
            queue_pairs_per_ssd: 128,
            queue_depth: 256,
            cache_bytes: 2 * agile_sim::units::GIB,
            cache_shards: 1,
            cache_port_hold: 0,
            costs: CostModel::default(),
        }
    }

    /// A small test configuration.
    pub fn small_test() -> Self {
        BamConfig {
            queue_pairs_per_ssd: 4,
            queue_depth: 64,
            cache_bytes: 4 * agile_sim::units::MIB,
            cache_shards: 1,
            cache_port_hold: 0,
            costs: CostModel::default(),
        }
    }

    /// Override queue pair count.
    pub fn with_queue_pairs(mut self, qps: usize) -> Self {
        self.queue_pairs_per_ssd = qps;
        self
    }

    /// Override queue depth.
    pub fn with_queue_depth(mut self, depth: u32) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Override cache capacity.
    pub fn with_cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Split the software cache into `shards` set-range shards (clamped to
    /// ≥ 1).
    pub fn with_cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards.max(1);
        self
    }

    /// Model cache-port contention: each lookup holds its shard's access
    /// port for `cycles` (0 disables the model).
    pub fn with_cache_port_hold(mut self, cycles: u64) -> Self {
        self.cache_port_hold = cycles;
        self
    }
}

/// Counters kept by the BaM controller.
///
/// Note: for cross-layer observability prefer the unified registry
/// (`HostBuilder::metrics` + `agile_metrics::MetricsRegistry::snapshot`),
/// which exports these under `agile_*` names with exporters and windowed
/// series; this struct stays for direct programmatic access.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BamStats {
    /// Synchronous warp reads.
    pub read_calls: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses that issued commands.
    pub cache_misses: u64,
    /// Requests coalesced onto in-flight fills.
    pub cache_coalesced: u64,
    /// CQ polling iterations executed by user threads.
    pub poll_iterations: u64,
    /// Completions processed by user threads.
    pub completions: u64,
    /// Times every targeted SQ was full.
    pub sq_full_retries: u64,
    /// Tenant submissions deferred by the QoS admission gate.
    pub qos_deferrals: u64,
    /// Cycles charged for cache work.
    pub cache_cycles: u64,
    /// Cycles charged for issue + polling work.
    pub io_cycles: u64,
}

#[derive(Default)]
struct StatCells {
    read_calls: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_coalesced: AtomicU64,
    poll_iterations: AtomicU64,
    completions: AtomicU64,
    sq_full_retries: AtomicU64,
    qos_deferrals: AtomicU64,
    cache_cycles: AtomicU64,
    io_cycles: AtomicU64,
}

struct CqCursor {
    window_start: u32,
    phase: bool,
}

/// The synchronous BaM controller.
pub struct BamCtrl {
    cfg: BamConfig,
    cache: ShardedCache,
    /// Per device, per queue pair.
    queues: Vec<Vec<Arc<AgileSq>>>,
    /// The storage topology behind the queues (striping map + modeled array
    /// lock). `None` in bare-queue unit rigs: submissions pay no lock cost.
    topology: Option<Arc<dyn StorageTopology>>,
    cq_cursors: Vec<Vec<Mutex<CqCursor>>>,
    stats: StatCells,
    /// Optional trace recorder (same hook as the AGILE controller, so replay
    /// comparisons capture both systems identically).
    trace: OnceLock<Arc<dyn TraceSink>>,
    /// Optional QoS policy on the tenant-attributed submission path — the
    /// same hook as the AGILE controller, so AGILE-vs-BaM comparisons under a
    /// scheduler stay apples-to-apples. Absent ⇒ FIFO.
    qos: OnceLock<Arc<dyn QosPolicy>>,
    /// Optional submit-path instruments (`agile_submit_*`, shared naming
    /// with the AGILE controller so dashboards compare directly).
    metrics: OnceLock<CtrlMetrics>,
}

impl BamCtrl {
    /// Build the controller over the registered queue pairs with no attached
    /// topology (bare-queue unit rigs). Production construction goes through
    /// [`BamCtrl::with_topology`] (see [`crate::HostBuilder`]).
    pub fn new(cfg: BamConfig, device_queues: Vec<Vec<Arc<QueuePair>>>) -> Self {
        BamCtrl::build(cfg, device_queues, None)
    }

    /// Build a controller whose submissions are charged the topology's array
    /// lock and whose striped page space is resolvable through
    /// [`BamCtrl::resolve_page`].
    pub fn with_topology(
        cfg: BamConfig,
        device_queues: Vec<Vec<Arc<QueuePair>>>,
        topology: Arc<dyn StorageTopology>,
    ) -> Self {
        BamCtrl::build(cfg, device_queues, Some(topology))
    }

    fn build(
        cfg: BamConfig,
        device_queues: Vec<Vec<Arc<QueuePair>>>,
        topology: Option<Arc<dyn StorageTopology>>,
    ) -> Self {
        let cache = ShardedCache::new(
            CacheConfig::with_capacity(cfg.cache_bytes),
            cfg.cache_shards.max(1),
            cfg.cache_port_hold,
            || Box::new(ClockPolicy::new()),
        );
        let queues: Vec<Vec<Arc<AgileSq>>> = device_queues
            .into_iter()
            .map(|qps| {
                qps.into_iter()
                    .map(|qp| Arc::new(AgileSq::new(qp)))
                    .collect()
            })
            .collect();
        let cq_cursors = queues
            .iter()
            .map(|qs| {
                qs.iter()
                    .map(|_| {
                        Mutex::new(CqCursor {
                            window_start: 0,
                            phase: true,
                        })
                    })
                    .collect()
            })
            .collect();
        BamCtrl {
            cfg,
            cache,
            queues,
            topology,
            cq_cursors,
            stats: StatCells::default(),
            trace: OnceLock::new(),
            qos: OnceLock::new(),
            metrics: OnceLock::new(),
        }
    }

    /// Install submit-path instruments bound to `registry`. Returns `false`
    /// if instruments were already installed (the first binding wins).
    /// Mirrors [`agile_core::AgileCtrl::bind_metrics`].
    pub fn bind_metrics(&self, registry: &Arc<MetricsRegistry>) -> bool {
        self.metrics.set(CtrlMetrics::bind(registry)).is_ok()
    }

    /// Install a QoS policy on the tenant-attributed submission path (the
    /// `*_as` entry points), bound to the controller's total SQ-slot
    /// capacity. Returns `false` if one was already installed (the first one
    /// wins). Mirrors [`agile_core::AgileCtrl::set_qos_policy`].
    pub fn set_qos_policy(&self, policy: Arc<dyn QosPolicy>) -> bool {
        let total_slots: u64 = self
            .queues
            .iter()
            .flat_map(|qs| qs.iter())
            .map(|sq| sq.depth() as u64)
            .sum();
        policy.bind(total_slots);
        self.qos.set(policy).is_ok()
    }

    /// The installed QoS policy, if any.
    pub fn qos_policy(&self) -> Option<&Arc<dyn QosPolicy>> {
        self.qos.get()
    }

    /// Install a trace sink on the submit path, the user-thread completion
    /// path, and the software cache. Returns `false` if a sink was already
    /// installed (the first one wins).
    pub fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) -> bool {
        self.cache.set_trace_sink(Arc::clone(&sink));
        self.trace.set(sink).is_ok()
    }

    /// The installed trace sink, if any (shared with the control plane so
    /// its decisions land in the same capture).
    pub fn trace_sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.trace.get()
    }

    /// The configuration.
    pub fn config(&self) -> &BamConfig {
        &self.cfg
    }

    /// The (clock-managed, possibly set-range-sharded) software cache.
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.queues.len()
    }

    /// The attached storage topology, if any.
    pub fn topology(&self) -> Option<&Arc<dyn StorageTopology>> {
        self.topology.as_ref()
    }

    /// Resolve a page of the striped global page space to a concrete
    /// `(device, device-local LBA)` through the topology's striping layer.
    /// Panics when no topology is attached (bare-queue unit rigs).
    pub fn resolve_page(&self, global: u64) -> (u32, Lba) {
        let loc = self
            .topology
            .as_ref()
            .expect("resolve_page requires an attached topology")
            .map_page(global);
        (loc.device, loc.page)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> BamStats {
        let s = &self.stats;
        BamStats {
            read_calls: s.read_calls.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            cache_misses: s.cache_misses.load(Ordering::Relaxed),
            cache_coalesced: s.cache_coalesced.load(Ordering::Relaxed),
            poll_iterations: s.poll_iterations.load(Ordering::Relaxed),
            completions: s.completions.load(Ordering::Relaxed),
            sq_full_retries: s.sq_full_retries.load(Ordering::Relaxed),
            qos_deferrals: s.qos_deferrals.load(Ordering::Relaxed),
            cache_cycles: s.cache_cycles.load(Ordering::Relaxed),
            io_cycles: s.io_cycles.load(Ordering::Relaxed),
        }
    }

    /// The queues of device `dev` (tests, deadlock demo).
    pub fn device_queues(&self, dev: usize) -> &[Arc<AgileSq>] {
        &self.queues[dev]
    }

    /// System-traffic issue path (cache fills and dirty-victim write-backs):
    /// bypasses the QoS gate for the same reason as
    /// [`agile_core::AgileCtrl::issue_to_device`] — deferring a write-back
    /// would force `abort_fill` and drop the dirty snapshot.
    fn issue(
        &self,
        dev: usize,
        warp: u64,
        build: impl Fn(u16) -> NvmeCommand,
        txn: Transaction,
        now: Cycles,
    ) -> (Cycles, bool) {
        self.issue_inner(dev, warp, warp as u32, build, txn, now)
    }

    /// Tenant-attributed issue path, arbitrated by the installed
    /// [`QosPolicy`] (when any). A deferral pays one probe and reports
    /// failure exactly like an SQ-full outcome; an admission that then finds
    /// every SQ full is refunded.
    fn issue_as(
        &self,
        dev: usize,
        warp: u64,
        tenant: u32,
        build: impl Fn(u16) -> NvmeCommand,
        txn: Transaction,
        now: Cycles,
    ) -> (Cycles, bool) {
        if let Some(qos) = self.qos.get() {
            let decision = agile_core::qos::gate_admission(
                qos.as_ref(),
                tenant,
                dev as u32,
                now,
                self.trace.get(),
            );
            if decision == QosDecision::Defer {
                let cost = Cycles(self.cfg.costs.gpu.poll_iteration);
                self.stats.qos_deferrals.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.metrics.get() {
                    m.qos_deferral(tenant);
                }
                self.stats
                    .io_cycles
                    .fetch_add(cost.raw(), Ordering::Relaxed);
                return (cost, false);
            }
            let (cost, ok) = self.issue_inner(dev, warp, tenant, build, txn, now);
            if !ok {
                qos.refund(tenant);
            }
            return (cost, ok);
        }
        self.issue_inner(dev, warp, tenant, build, txn, now)
    }

    fn issue_inner(
        &self,
        dev: usize,
        warp: u64,
        tenant: u32,
        build: impl Fn(u16) -> NvmeCommand,
        txn: Transaction,
        now: Cycles,
    ) -> (Cycles, bool) {
        let api = &self.cfg.costs.api;
        let gpu = &self.cfg.costs.gpu;
        let sqs = &self.queues[dev];
        let n = sqs.len();
        let start = (warp as usize) % n;
        let mut cost = Cycles(api.bam_issue);
        // The array lock guarding SQ-slot allocation + doorbell update (same
        // model as the AGILE controller, so topology comparisons are fair).
        if let Some(topology) = &self.topology {
            cost += topology.lock_acquire(dev, warp, now);
        }
        for attempt in 0..n {
            let sq = &sqs[(start + attempt) % n];
            match sq.try_issue(&build, txn.clone(), now) {
                Some(receipt) => {
                    if receipt.rang_doorbell {
                        cost += Cycles(gpu.doorbell_write);
                    }
                    cost +=
                        Cycles(gpu.poll_iteration) * (receipt.attempts.saturating_sub(1)) as u64;
                    self.stats
                        .io_cycles
                        .fetch_add(cost.raw(), Ordering::Relaxed);
                    if let Some(m) = self.metrics.get() {
                        m.admission();
                    }
                    if let Some(sink) = self.trace.get() {
                        let cmd = build(receipt.cid);
                        let qid = sq.queue_pair().id();
                        sink.record(
                            TraceEvent::new(TraceEventKind::Submit, now.raw())
                                .target(dev as u32, cmd.slba)
                                .queue(qid, receipt.cid)
                                .tenant(tenant)
                                .write(cmd.opcode == Opcode::Write),
                        );
                        if receipt.rang_doorbell {
                            sink.record(
                                TraceEvent::new(TraceEventKind::Doorbell, now.raw())
                                    .target(dev as u32, cmd.slba)
                                    .queue(qid, receipt.cid)
                                    .tenant(tenant),
                            );
                        }
                    }
                    return (cost, true);
                }
                None => cost += Cycles(gpu.poll_iteration),
            }
        }
        self.stats.sq_full_retries.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.sq_full_retry();
        }
        self.stats
            .io_cycles
            .fetch_add(cost.raw(), Ordering::Relaxed);
        (cost, false)
    }

    /// Synchronous warp read: on a full hit returns the tokens; otherwise
    /// issues the missing fills and reports `Pending` — the warp must then
    /// call [`BamCtrl::poll_once`] until the data lands and retry.
    /// Untenanted: cache accounting is skipped and trace events carry the
    /// `NO_TENANT` sentinel (`u32::MAX`); multi-tenant workloads use
    /// [`BamCtrl::read_warp_sync_as`].
    pub fn read_warp_sync(
        &self,
        warp: u64,
        requests: &[(u32, Lba)],
        now: Cycles,
    ) -> (Cycles, Option<Vec<PageToken>>) {
        self.read_warp_sync_as(warp, agile_cache::NO_TENANT, requests, now)
    }

    /// [`BamCtrl::read_warp_sync`] with an explicit tenant identity,
    /// mirroring [`agile_core::AgileCtrl::read_warp_as`]: cache accounting
    /// and line ownership are attributed to `tenant`; fills and dirty-victim
    /// write-backs stay QoS-exempt.
    pub fn read_warp_sync_as(
        &self,
        warp: u64,
        tenant: u32,
        requests: &[(u32, Lba)],
        now: Cycles,
    ) -> (Cycles, Option<Vec<PageToken>>) {
        self.stats.read_calls.fetch_add(1, Ordering::Relaxed);
        self.cache.set_time_hint(now.raw());
        let api = &self.cfg.costs.api;
        let gpu = &self.cfg.costs.gpu;
        let coalesced = coalesce_warp(requests);
        let mut cost = Cycles(gpu.warp_primitive);
        let mut tokens: Vec<Option<PageToken>> = vec![None; coalesced.unique.len()];
        let mut all_ready = true;

        for (uidx, &(dev, lba)) in coalesced.unique.iter().enumerate() {
            // Queueing on the line's cache-shard access port (0 when the
            // port model is off).
            cost += Cycles(self.cache.port_acquire(dev, lba, now.raw()));
            match self.cache.lookup_or_reserve_as(dev, lba, tenant) {
                CacheLookup::Hit { line, token } => {
                    cost += Cycles(api.bam_cache_hit);
                    self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    tokens[uidx] = Some(token);
                    self.cache.unpin(line);
                }
                CacheLookup::Busy { .. } => {
                    cost += Cycles(api.bam_cache_hit);
                    self.stats.cache_coalesced.fetch_add(1, Ordering::Relaxed);
                    all_ready = false;
                }
                CacheLookup::Miss {
                    line,
                    dma,
                    writeback,
                } => {
                    cost += Cycles(api.bam_cache_miss);
                    self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                    all_ready = false;
                    if let Some((wb_dev, wb_lba, wb_token)) = writeback {
                        let snapshot = DmaHandle::with_token(wb_token);
                        let (wb_cost, ok) = self.issue(
                            wb_dev as usize,
                            warp,
                            |cid| NvmeCommand::write(cid, wb_lba, snapshot.clone()),
                            Transaction::WriteBack,
                            now,
                        );
                        cost += wb_cost;
                        if !ok {
                            // The write-back snapshot is the only copy of
                            // the victim's modification: reinstate it.
                            self.cache.reinstate_victim(line, wb_dev, wb_lba, wb_token);
                            continue;
                        }
                    }
                    let (io_cost, ok) = self.issue(
                        dev as usize,
                        warp,
                        |cid| NvmeCommand::read(cid, lba, dma.clone()),
                        Transaction::CacheFill { line },
                        now,
                    );
                    cost += io_cost;
                    if !ok {
                        self.cache.abort_fill(line);
                    }
                }
                CacheLookup::NoLineAvailable => {
                    cost += Cycles(api.bam_cache_miss);
                    all_ready = false;
                }
            }
        }
        self.stats
            .cache_cycles
            .fetch_add(cost.raw(), Ordering::Relaxed);
        if all_ready {
            let per_lane = coalesced
                .lane_to_unique
                .iter()
                .map(|&u| tokens[u].expect("ready"))
                .collect();
            (cost, Some(per_lane))
        } else {
            (cost, None)
        }
    }

    /// One CQ polling pass executed by a *user* thread (there is no service in
    /// BaM). The thread polls the CQ paired with its home SQ and processes any
    /// completions it finds (releasing SQEs, finishing cache fills), then
    /// advances the shared cursor. Returns the cycles spent and the number of
    /// completions processed.
    ///
    /// Completion processing is recorded through the trace sink (when
    /// installed) with timestamp zero: BaM's user threads poll at whatever
    /// simulated time the caller happens to be at, so callers that need
    /// timed completion events should use [`BamCtrl::poll_once_at`].
    pub fn poll_once(&self, warp: u64, dev: usize) -> (Cycles, u32) {
        self.poll_once_at(warp, dev, Cycles(0))
    }

    /// [`BamCtrl::poll_once`] with an explicit sim time for trace records.
    /// Selects the CQ paired with the warp's home SQ (`warp mod queues`).
    pub fn poll_once_at(&self, warp: u64, dev: usize, now: Cycles) -> (Cycles, u32) {
        let qidx = (warp as usize) % self.queues[dev].len();
        self.poll_cq_at(warp, dev, qidx, now)
    }

    /// The shard-affine `(device, queue-pair)` partitioning the AGILE
    /// [`agile_core::service::ServiceSet`] polls, computed with the same
    /// rule ([`agile_core::service::partition_targets`]) over this
    /// controller's topology — so a BaM harness can sweep exactly the CQ
    /// set an AGILE service shard owns and scale-out comparisons stay
    /// apples-to-apples. BaM remains thread-centric: the caller drives
    /// [`BamCtrl::poll_cq_at`] over a partition itself; there is no
    /// background kernel.
    pub fn poll_targets(&self, shards: usize) -> Vec<Vec<(usize, usize)>> {
        let queues_per_device: Vec<usize> = self.queues.iter().map(|qs| qs.len()).collect();
        agile_core::service::partition_targets(self.topology.as_ref(), &queues_per_device, shards)
    }

    /// One CQ polling pass over a *specific* queue pair — the partitioned
    /// counterpart of [`BamCtrl::poll_once_at`], for callers iterating a
    /// [`BamCtrl::poll_targets`] partition. `warp` identifies the polling
    /// thread in trace capture only.
    pub fn poll_cq_at(&self, warp: u64, dev: usize, qidx: usize, now: Cycles) -> (Cycles, u32) {
        let api = &self.cfg.costs.api;
        let sq = &self.queues[dev][qidx];
        let cq = &sq.queue_pair().cq;
        let depth = cq.depth();
        let mut cursor = self.cq_cursors[dev][qidx].lock();
        self.stats.poll_iterations.fetch_add(1, Ordering::Relaxed);
        let mut processed = 0u32;
        // A synchronous thread scans forward from the cursor, consuming every
        // completion that has landed.
        loop {
            let idx = cursor.window_start % depth;
            let Some(cqe) = cq.poll_slot(idx, cursor.phase) else {
                break;
            };
            let txn = sq
                .transactions()
                .take(cqe.cid)
                .expect("completion without transaction");
            sq.release(cqe.cid);
            if let Some(sink) = self.trace.get() {
                sink.record(
                    TraceEvent::new(TraceEventKind::ServiceCompletion, now.raw())
                        .target(dev as u32, 0)
                        .queue(qidx as u16, cqe.cid)
                        .tenant(warp as u32),
                );
            }
            match txn {
                Transaction::CacheFill { line } => {
                    self.cache.complete_fill(line);
                    self.cache.unpin(line);
                }
                Transaction::WriteBack => {}
                Transaction::UserRead { barrier, shared } => {
                    barrier.complete();
                    if let Some(s) = shared {
                        s.mark_ready();
                    }
                }
                Transaction::UserWrite { barrier } => barrier.complete(),
                Transaction::Raw {
                    barrier,
                    qos_tenant,
                    ..
                } => {
                    barrier.complete();
                    // Return the in-flight QoS credit to the scheduler.
                    if let Some(tenant) = qos_tenant {
                        if let Some(qos) = self.qos.get() {
                            qos.on_complete(tenant);
                        }
                    }
                }
            }
            cq.consume(1);
            processed += 1;
            cursor.window_start = (cursor.window_start + 1) % depth;
            if cursor.window_start == 0 {
                cursor.phase = !cursor.phase;
            }
        }
        self.stats
            .completions
            .fetch_add(processed as u64, Ordering::Relaxed);
        let cost = Cycles(api.bam_cq_poll) + Cycles(api.bam_cq_poll) * processed as u64;
        self.stats
            .io_cycles
            .fetch_add(cost.raw(), Ordering::Relaxed);
        (cost, processed)
    }

    /// Store one page through the software cache (write-allocate, marked
    /// dirty; the write-back happens on eviction), mirroring
    /// [`agile_core::AgileCtrl::write_warp`] at BaM's per-call costs.
    /// Returns the cost and whether the store landed (false = retry later).
    /// Untenanted: cache accounting is skipped and trace events carry the
    /// `NO_TENANT` sentinel (`u32::MAX`); multi-tenant workloads use
    /// [`BamCtrl::write_warp_sync_as`].
    pub fn write_warp_sync(
        &self,
        warp: u64,
        dev: u32,
        lba: Lba,
        token: PageToken,
        now: Cycles,
    ) -> (Cycles, bool) {
        self.write_warp_sync_as(warp, agile_cache::NO_TENANT, dev, lba, token, now)
    }

    /// [`BamCtrl::write_warp_sync`] with an explicit tenant identity (cache
    /// accounting and line ownership only).
    pub fn write_warp_sync_as(
        &self,
        warp: u64,
        tenant: u32,
        dev: u32,
        lba: Lba,
        token: PageToken,
        now: Cycles,
    ) -> (Cycles, bool) {
        self.cache.set_time_hint(now.raw());
        let api = &self.cfg.costs.api;
        let port = Cycles(self.cache.port_acquire(dev, lba, now.raw()));
        let (cost, ok) = match self.cache.lookup_or_reserve_as(dev, lba, tenant) {
            CacheLookup::Hit { line, .. } => {
                self.cache.store(line, token);
                self.cache.unpin(line);
                (Cycles(api.bam_cache_hit), true)
            }
            CacheLookup::Miss {
                line, writeback, ..
            } => {
                let mut cost = Cycles(api.bam_cache_miss);
                let mut ok = true;
                // The victim held dirty data: write it back before the line
                // is reused, or the modification is lost.
                if let Some((wb_dev, wb_lba, wb_token)) = writeback {
                    let snapshot = DmaHandle::with_token(wb_token);
                    let (wb_cost, issued) = self.issue(
                        wb_dev as usize,
                        warp,
                        |cid| NvmeCommand::write(cid, wb_lba, snapshot.clone()),
                        Transaction::WriteBack,
                        now,
                    );
                    cost += wb_cost;
                    ok = issued;
                }
                if ok {
                    self.cache.complete_fill(line);
                    self.cache.store(line, token);
                    self.cache.unpin(line);
                } else {
                    // Could not write the victim back: reinstate its dirty
                    // data (the snapshot is the only copy) and let the
                    // caller retry.
                    let (wb_dev, wb_lba, wb_token) =
                        writeback.expect("issue only fails on the write-back path here");
                    self.cache.reinstate_victim(line, wb_dev, wb_lba, wb_token);
                }
                (cost, ok)
            }
            CacheLookup::Busy { .. } | CacheLookup::NoLineAvailable => {
                (Cycles(api.bam_cache_miss), false)
            }
        };
        let cost = cost + port;
        self.stats
            .cache_cycles
            .fetch_add(cost.raw(), Ordering::Relaxed);
        (cost, ok)
    }

    /// Issue a raw (cache-bypassing) read; the caller polls until `barrier`
    /// completes. Used by micro-benchmarks comparing raw sync I/O. The warp's
    /// flat index doubles as the tenant id for QoS arbitration; multi-tenant
    /// workloads use [`BamCtrl::raw_read_as`].
    pub fn raw_read(
        &self,
        warp: u64,
        dev: u32,
        lba: Lba,
        dma: DmaHandle,
        barrier: Barrier,
        now: Cycles,
    ) -> (Cycles, bool) {
        self.raw_read_as(warp, warp as u32, dev, lba, dma, barrier, now)
    }

    /// [`BamCtrl::raw_read`] with an explicit tenant identity, arbitrated by
    /// the installed QoS policy and stamped with `tenant` in trace capture.
    #[allow(clippy::too_many_arguments)]
    pub fn raw_read_as(
        &self,
        warp: u64,
        tenant: u32,
        dev: u32,
        lba: Lba,
        dma: DmaHandle,
        barrier: Barrier,
        now: Cycles,
    ) -> (Cycles, bool) {
        let qos_tenant = self.qos.get().map(|_| tenant);
        self.issue_as(
            dev as usize,
            warp,
            tenant,
            |cid| NvmeCommand::read(cid, lba, dma.clone()),
            Transaction::Raw {
                barrier,
                lba,
                qos_tenant,
            },
            now,
        )
    }

    /// Issue a raw (cache-bypassing) write of `token`; the caller polls until
    /// `barrier` completes. Mirrors [`agile_core::AgileCtrl::raw_write`] so
    /// trace replay drives both systems with the same op stream. The warp's
    /// flat index doubles as the tenant id for QoS arbitration; multi-tenant
    /// workloads use [`BamCtrl::raw_write_as`].
    pub fn raw_write(
        &self,
        warp: u64,
        dev: u32,
        lba: Lba,
        token: PageToken,
        barrier: Barrier,
        now: Cycles,
    ) -> (Cycles, bool) {
        self.raw_write_as(warp, warp as u32, dev, lba, token, barrier, now)
    }

    /// [`BamCtrl::raw_write`] with an explicit tenant identity, arbitrated by
    /// the installed QoS policy and stamped with `tenant` in trace capture.
    #[allow(clippy::too_many_arguments)]
    pub fn raw_write_as(
        &self,
        warp: u64,
        tenant: u32,
        dev: u32,
        lba: Lba,
        token: PageToken,
        barrier: Barrier,
        now: Cycles,
    ) -> (Cycles, bool) {
        let dma = DmaHandle::with_token(token);
        let qos_tenant = self.qos.get().map(|_| tenant);
        self.issue_as(
            dev as usize,
            warp,
            tenant,
            |cid| NvmeCommand::write(cid, lba, dma.clone()),
            Transaction::Raw {
                barrier,
                lba,
                qos_tenant,
            },
            now,
        )
    }
}

impl agile_core::telemetry::CacheStatsProvider for BamCtrl {
    fn cache_stats(&self) -> agile_cache::CacheStats {
        self.cache().stats()
    }
    fn cache_tenant_stats(&self) -> Vec<agile_cache::TenantCacheStats> {
        self.cache().tenant_stats()
    }
    fn cache_shard_stats(&self) -> Vec<agile_cache::CacheStats> {
        self.cache().stats_by_shard()
    }
    fn cache_port_wait_by_shard(&self) -> Vec<u64> {
        self.cache().port_wait_by_shard()
    }
    fn cache_port_acquires_by_shard(&self) -> Vec<u64> {
        self.cache().port_acquires_by_shard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvme_sim::{MemBacking, SsdConfig, SsdDevice};

    fn rig(qps: usize, depth: u32) -> (BamCtrl, SsdDevice) {
        let mut dev = SsdDevice::new(
            SsdConfig::new(0).with_capacity_pages(1 << 20),
            Arc::new(MemBacking::new(0)),
        );
        let queues: Vec<Arc<QueuePair>> = (0..qps)
            .map(|q| {
                let qp = QueuePair::new(q as u16, depth);
                dev.register_queue_pair(Arc::clone(&qp));
                qp
            })
            .collect();
        let ctrl = BamCtrl::new(
            BamConfig::small_test()
                .with_queue_pairs(qps)
                .with_queue_depth(depth),
            vec![queues],
        );
        (ctrl, dev)
    }

    #[test]
    fn sync_read_miss_then_poll_then_hit() {
        let (ctrl, mut dev) = rig(2, 64);
        let reqs = vec![(0u32, 5u64), (0, 6)];
        let (_, ready) = ctrl.read_warp_sync(0, &reqs, Cycles(0));
        assert!(ready.is_none(), "first access must miss");
        // The user thread itself drives the completion path.
        let mut now = Cycles(0);
        let mut done = false;
        for _ in 0..10_000 {
            now += Cycles(2_000);
            dev.advance_to(now);
            let _ = ctrl.poll_once(0, 0);
            let (_, ready) = ctrl.read_warp_sync(0, &reqs, now);
            if let Some(tokens) = ready {
                assert_eq!(tokens.len(), 2);
                assert_eq!(tokens[0], PageToken::pristine(0, 5));
                done = true;
                break;
            }
        }
        assert!(done, "data never arrived");
        let s = ctrl.stats();
        assert_eq!(s.cache_misses, 2);
        assert!(s.poll_iterations > 0);
        assert_eq!(s.completions, 2);
        assert_eq!(ctrl.cache().total_pins(), 0);
    }

    #[test]
    fn bam_costs_exceed_agile_costs_per_call() {
        // The per-call constants that drive Figure 11's API-overhead gap.
        let costs = CostModel::default();
        assert!(costs.api.bam_cache_hit > costs.api.agile_cache_hit);
        assert!(costs.api.bam_issue > costs.api.agile_issue);
    }

    #[test]
    fn poll_once_round_robins_by_warp_index() {
        let (ctrl, _dev) = rig(4, 64);
        // Different warps map to different queue pairs.
        let (c0, _) = ctrl.poll_once(0, 0);
        let (c1, _) = ctrl.poll_once(1, 0);
        assert_eq!(c0, c1, "empty polls cost the same regardless of queue");
        assert_eq!(ctrl.stats().poll_iterations, 2);
    }

    #[test]
    fn raw_read_completes_via_user_polling() {
        let (ctrl, mut dev) = rig(1, 32);
        let barrier = Barrier::new();
        let dma = DmaHandle::new();
        let (_, ok) = ctrl.raw_read(0, 0, 77, dma.clone(), barrier.clone(), Cycles(0));
        assert!(ok);
        let mut now = Cycles(0);
        while !barrier.is_complete() {
            now += Cycles(2_000);
            dev.advance_to(now);
            let _ = ctrl.poll_once(0, 0);
            assert!(now.raw() < 10_000_000, "raw read never completed");
        }
        assert_eq!(dma.load(), PageToken::pristine(0, 77));
    }
}
