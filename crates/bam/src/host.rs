//! Host-side setup for the BaM baseline.
//!
//! Mirrors [`agile_core::host::AgileHost`] minus the AGILE service: BaM has
//! no background kernel, so `start()` only creates the GPU engine and bridges
//! the SSD array into it. Keeping the two hosts shape-compatible lets the
//! benchmark harness swap systems with one line.

use crate::ctrl::{BamConfig, BamCtrl};
use agile_core::host::SsdBridge;
use agile_sim::Cycles;
use gpu_sim::{Engine, ExecutionReport, GpuConfig, KernelFactory, LaunchConfig};
use nvme_sim::{MemBacking, PageBacking, QueuePair, SsdArray, SsdConfig};
use parking_lot::Mutex;
use std::sync::Arc;

/// Host-side owner of the BaM testbed.
pub struct BamHost {
    gpu: GpuConfig,
    config: BamConfig,
    pending_devices: Vec<(SsdConfig, Arc<dyn PageBacking>)>,
    array: Option<Arc<Mutex<SsdArray>>>,
    ctrl: Option<Arc<BamCtrl>>,
    engine: Option<Engine>,
}

impl BamHost {
    /// Create a host for the given GPU and BaM configuration.
    pub fn new(gpu: GpuConfig, config: BamConfig) -> Self {
        BamHost {
            gpu,
            config,
            pending_devices: Vec::new(),
            array: None,
            ctrl: None,
            engine: None,
        }
    }

    /// Register an SSD with a default in-memory backing.
    pub fn add_nvme_dev(&mut self, namespace_pages: u64) -> usize {
        let id = self.pending_devices.len() as u32;
        self.add_nvme_dev_with_backing(namespace_pages, Arc::new(MemBacking::new(id)))
    }

    /// Register an SSD with a caller-supplied backing.
    pub fn add_nvme_dev_with_backing(
        &mut self,
        namespace_pages: u64,
        backing: Arc<dyn PageBacking>,
    ) -> usize {
        assert!(self.array.is_none(), "add devices before init_nvme");
        let id = self.pending_devices.len() as u32;
        let cfg = SsdConfig {
            id,
            costs: self.config.costs.ssd.clone(),
            namespace_pages,
            clock_ghz: self.gpu.clock_ghz,
        };
        self.pending_devices.push((cfg, backing));
        id as usize
    }

    /// Build the SSD array and the BaM controller.
    pub fn init_nvme(&mut self) {
        assert!(!self.pending_devices.is_empty(), "no NVMe devices added");
        let mut array = SsdArray::from_parts(std::mem::take(&mut self.pending_devices));
        let mut per_device_queues: Vec<Vec<Arc<QueuePair>>> = Vec::new();
        for dev in 0..array.len() {
            let mut qps = Vec::new();
            for q in 0..self.config.queue_pairs_per_ssd {
                let qp = QueuePair::new(q as u16, self.config.queue_depth);
                array.device_mut(dev).register_queue_pair(Arc::clone(&qp));
                qps.push(qp);
            }
            per_device_queues.push(qps);
        }
        self.array = Some(Arc::new(Mutex::new(array)));
        self.ctrl = Some(Arc::new(BamCtrl::new(
            self.config.clone(),
            per_device_queues,
        )));
    }

    /// The controller.
    pub fn ctrl(&self) -> Arc<BamCtrl> {
        Arc::clone(self.ctrl.as_ref().expect("init_nvme not called"))
    }

    /// Install one trace sink across the BaM stack (controller submit path,
    /// software cache, every SSD's completion path), mirroring
    /// [`agile_core::host::AgileHost::set_trace_sink`]. Call after
    /// [`BamHost::init_nvme`]; the first sink installed wins.
    pub fn set_trace_sink(&self, sink: Arc<dyn agile_sim::trace::TraceSink>) -> bool {
        let ctrl_fresh = self.ctrl().set_trace_sink(Arc::clone(&sink));
        let dev_fresh = self.ssd_array().lock().set_trace_sink(&sink);
        ctrl_fresh && dev_fresh
    }

    /// The shared SSD array.
    pub fn ssd_array(&self) -> Arc<Mutex<SsdArray>> {
        Arc::clone(self.array.as_ref().expect("init_nvme not called"))
    }

    /// The backing of device `dev` (for dataset setup).
    pub fn backing(&self, dev: usize) -> Arc<dyn PageBacking> {
        Arc::clone(self.ssd_array().lock().device(dev).backing())
    }

    /// Create the GPU engine and attach the SSD bridge (no service to launch).
    pub fn start(&mut self) {
        assert!(self.ctrl.is_some(), "init_nvme must run before start");
        let mut engine = Engine::new(self.gpu.clone());
        engine.add_device(Box::new(SsdBridge::new(self.ssd_array())));
        self.engine = Some(engine);
    }

    /// Launch a user kernel and run to completion.
    pub fn run_kernel(
        &mut self,
        launch: LaunchConfig,
        factory: Box<dyn KernelFactory>,
    ) -> ExecutionReport {
        let engine = self.engine.as_mut().expect("start not called");
        engine.launch(launch, factory);
        engine.run()
    }

    /// Mutable engine access (deadlock-window tuning in tests).
    pub fn engine_mut(&mut self) -> &mut Engine {
        self.engine.as_mut().expect("start not called")
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        self.engine
            .as_ref()
            .map(|e| e.now())
            .unwrap_or(Cycles::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::SyncReadComputeKernel;

    #[test]
    fn bam_host_runs_a_sync_kernel() {
        let mut host = BamHost::new(GpuConfig::tiny(4), BamConfig::small_test());
        host.add_nvme_dev(1 << 16);
        host.init_nvme();
        host.start();
        let ctrl = host.ctrl();
        let report = host.run_kernel(
            LaunchConfig::new(2, 64).with_registers(56),
            Box::new(SyncReadComputeKernel::new(
                Arc::clone(&ctrl),
                3,
                2_000,
                50_000,
            )),
        );
        assert!(!report.deadlocked);
        let s = ctrl.stats();
        assert!(s.read_calls > 0);
        assert!(s.completions > 0, "user threads processed completions");
        assert!(host.ssd_array().lock().total_bytes_read() > 0);
    }
}
