//! Host-side setup for the BaM baseline.
//!
//! Mirrors [`agile_core::host::AgileHost`] minus the AGILE service: BaM has
//! no background kernel, so `start()` only creates the GPU engine and bridges
//! the storage topology into it. Both hosts implement
//! [`agile_core::host::GpuStorageHost`], so the benchmark harness swaps
//! systems by switching which `crate::HostBuilder` constructor it calls.

use crate::ctrl::{BamConfig, BamCtrl};
use agile_control::{ControlBridge, ControlPolicy, Controller, KnobSet, SloSpec, TenantWeights};
use agile_core::control::QosWeights;
use agile_core::host::{DeviceSsdBridge, GpuStorageHost};
use agile_sim::trace::BufferedSink;
use agile_core::qos::QosPolicy;
use agile_core::telemetry::{CacheCollector, MetricsBridge, TopologyCollector};
use agile_metrics::{MetricsRegistry, WindowedSampler};
use agile_sim::trace::TraceSink;
use agile_sim::Cycles;
use gpu_sim::{
    occupancy, Engine, EngineSched, ExecutionReport, GpuConfig, KernelFactory, LaunchConfig,
};
use nvme_sim::{
    FlatArray, MemBacking, PageBacking, Placement, ShardedArray, SsdConfig, StorageTopology,
};
use std::sync::Arc;

/// Host-side owner of the BaM testbed.
pub struct BamHost {
    gpu: GpuConfig,
    config: BamConfig,
    pending_devices: Vec<(SsdConfig, Arc<dyn PageBacking>)>,
    /// 0 = flat (single lock); ≥ 1 = sharded with that many lock shards.
    shards: usize,
    /// Placement seed of the striping layer (interleave by default).
    placement: Placement,
    /// Scheduling loop of the engine (event-driven ready-queue by default).
    engine_sched: EngineSched,
    /// Epoch-barrier spin limit override for threaded schedulers
    /// (`None` = the engine's default).
    barrier_spin_limit: Option<u32>,
    topology: Option<Arc<dyn StorageTopology>>,
    ctrl: Option<Arc<BamCtrl>>,
    engine: Option<Engine>,
    /// Optional metrics registry instrumenting the whole stack.
    metrics: Option<Arc<MetricsRegistry>>,
    /// Optional windowed sampler, bridged into the engine at start.
    sampler: Option<Arc<WindowedSampler>>,
    /// Pending control-plane request, consumed at [`BamHost::start`].
    control: Option<(ControlPolicy, Vec<SloSpec>)>,
    /// The live controller, once started with a control plane.
    controller: Option<Arc<Controller>>,
    /// Per-shard trace buffers, present only when a sink is installed under a
    /// threaded engine; drained as epoch mailboxes at [`BamHost::start`].
    trace_buffers: std::sync::Mutex<Vec<Arc<BufferedSink>>>,
}

impl BamHost {
    /// Create a host for the given GPU and BaM configuration.
    pub fn new(gpu: GpuConfig, config: BamConfig) -> Self {
        BamHost {
            gpu,
            config,
            pending_devices: Vec::new(),
            shards: 0,
            placement: Placement::default(),
            engine_sched: EngineSched::default(),
            barrier_spin_limit: None,
            topology: None,
            ctrl: None,
            engine: None,
            metrics: None,
            sampler: None,
            control: None,
            controller: None,
            trace_buffers: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Whether the configured engine scheduler actually runs worker threads.
    fn threaded_engine(&self) -> bool {
        matches!(self.engine_sched, EngineSched::ParallelShards(n) if n > 1)
    }

    /// Select the engine's scheduling loop (default: the event-driven
    /// ready-queue). Must be called before [`BamHost::start`].
    pub fn set_engine_sched(&mut self, sched: EngineSched) {
        assert!(
            self.engine.is_none(),
            "set_engine_sched must be called before start"
        );
        self.engine_sched = sched;
    }

    /// Override the threaded engine's epoch-barrier spin limit, mirroring
    /// [`agile_core::host::AgileHost::set_barrier_spin_limit`]. Must be
    /// called before [`BamHost::start`].
    pub fn set_barrier_spin_limit(&mut self, limit: u32) {
        assert!(
            self.engine.is_none(),
            "set_barrier_spin_limit must be called before start"
        );
        self.barrier_spin_limit = Some(limit);
    }

    /// Partition the storage into `shards` lock shards (build a
    /// [`ShardedArray`] instead of the default single-lock [`FlatArray`]).
    /// Must be called before [`BamHost::init_nvme`].
    pub fn set_shards(&mut self, shards: usize) {
        assert!(
            self.topology.is_none(),
            "set_shards must be called before init_nvme"
        );
        self.shards = shards;
    }

    /// Select the striping layer's placement seed, mirroring
    /// [`agile_core::host::AgileHost::set_placement`]. Must be called before
    /// [`BamHost::init_nvme`].
    pub fn set_placement(&mut self, placement: Placement) {
        assert!(
            self.topology.is_none(),
            "set_placement must be called before init_nvme"
        );
        self.placement = placement;
    }

    /// Register an SSD with a default in-memory backing.
    pub fn add_nvme_dev(&mut self, namespace_pages: u64) -> usize {
        let id = self.pending_devices.len() as u32;
        self.add_nvme_dev_with_backing(namespace_pages, Arc::new(MemBacking::new(id)))
    }

    /// Register an SSD with a caller-supplied backing.
    pub fn add_nvme_dev_with_backing(
        &mut self,
        namespace_pages: u64,
        backing: Arc<dyn PageBacking>,
    ) -> usize {
        assert!(self.topology.is_none(), "add devices before init_nvme");
        let id = self.pending_devices.len() as u32;
        let cfg = SsdConfig {
            id,
            costs: self.config.costs.ssd.clone(),
            namespace_pages,
            clock_ghz: self.gpu.clock_ghz,
        };
        self.pending_devices.push((cfg, backing));
        id as usize
    }

    /// Build the storage topology and the BaM controller.
    pub fn init_nvme(&mut self) {
        assert!(!self.pending_devices.is_empty(), "no NVMe devices added");
        assert!(self.topology.is_none(), "init_nvme called twice");
        let parts = std::mem::take(&mut self.pending_devices);
        let topology: Arc<dyn StorageTopology> = if self.shards == 0 {
            Arc::new(FlatArray::from_parts(parts).with_placement(self.placement))
        } else {
            Arc::new(ShardedArray::from_parts(parts, self.shards).with_placement(self.placement))
        };
        let per_device_queues =
            topology.register_queues(self.config.queue_pairs_per_ssd, self.config.queue_depth);
        self.ctrl = Some(Arc::new(BamCtrl::with_topology(
            self.config.clone(),
            per_device_queues,
            Arc::clone(&topology),
        )));
        self.topology = Some(topology);
    }

    /// The controller.
    pub fn ctrl(&self) -> Arc<BamCtrl> {
        Arc::clone(self.ctrl.as_ref().expect("init_nvme not called"))
    }

    /// Install one trace sink across the BaM stack (controller submit path,
    /// software cache, every SSD's completion path), mirroring
    /// [`agile_core::host::AgileHost::set_trace_sink`]. Call after
    /// [`BamHost::init_nvme`]; the first sink installed wins.
    pub fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) -> bool {
        let ctrl_fresh = self.ctrl().set_trace_sink(Arc::clone(&sink));
        let dev_fresh = if self.threaded_engine() {
            let topology = self.topology();
            let mut buffers = self.trace_buffers.lock().unwrap();
            let mut all_fresh = true;
            for dev in topology.device_advance_order() {
                let buffered = Arc::new(BufferedSink::new(Arc::clone(&sink)));
                let as_sink: Arc<dyn TraceSink> = Arc::clone(&buffered) as Arc<dyn TraceSink>;
                if topology.set_device_trace_sink(dev, &as_sink) {
                    buffers.push(buffered);
                } else {
                    all_fresh = false;
                }
            }
            all_fresh
        } else {
            self.topology().set_trace_sink(&sink)
        };
        ctrl_fresh && dev_fresh
    }

    /// Install a QoS policy on the controller's tenant-attributed submission
    /// path, mirroring [`agile_core::host::AgileHost::set_qos_policy`]. Call
    /// after [`BamHost::init_nvme`]; the first policy installed wins.
    pub fn set_qos_policy(&self, policy: Arc<dyn QosPolicy>) -> bool {
        self.ctrl().set_qos_policy(policy)
    }

    /// Instrument the stack with `registry`, mirroring
    /// [`agile_core::host::AgileHost::set_metrics`]: the controller's submit
    /// path gains direct counters; cache / topology / device statistics are
    /// exported through snapshot-time collectors. Call after
    /// [`BamHost::init_nvme`] and before [`BamHost::start`].
    pub fn set_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        assert!(
            self.ctrl.is_some(),
            "set_metrics must be called after init_nvme"
        );
        assert!(
            self.engine.is_none(),
            "set_metrics must be called before start"
        );
        let ctrl = self.ctrl();
        ctrl.bind_metrics(&registry);
        registry.register_collector(Box::new(CacheCollector::new(ctrl)));
        registry.register_collector(Box::new(TopologyCollector::new(self.topology())));
        self.metrics = Some(registry);
    }

    /// Attach a windowed sampler, bridged into the engine as a passive
    /// device at [`BamHost::start`]. Call before `start`.
    pub fn set_metrics_sampler(&mut self, sampler: Arc<WindowedSampler>) {
        assert!(
            self.engine.is_none(),
            "set_metrics_sampler must be called before start"
        );
        self.sampler = Some(sampler);
    }

    /// The installed metrics registry, if any.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Request the closed-loop control plane, mirroring
    /// [`agile_core::host::AgileHost::set_control`]. BaM has no prefetch
    /// pipeline, no AGILE service and a fixed clock cache, so only the WFQ
    /// weight knob is wired — the SLO loop runs, the others stay dormant.
    /// Requires a sampler; call after any [`BamHost::set_qos_policy`].
    pub fn set_control(&mut self, policy: ControlPolicy, slos: Vec<SloSpec>) {
        assert!(
            self.engine.is_none(),
            "set_control must be called before start"
        );
        self.control = Some((policy, slos));
    }

    /// The live controller, when the host was started with a control plane.
    pub fn controller(&self) -> Option<&Arc<Controller>> {
        self.controller.as_ref()
    }

    /// The shared storage topology.
    pub fn topology(&self) -> Arc<dyn StorageTopology> {
        Arc::clone(self.topology.as_ref().expect("init_nvme not called"))
    }

    /// The backing of device `dev` (for dataset setup).
    pub fn backing(&self, dev: usize) -> Arc<dyn PageBacking> {
        self.topology().backing(dev)
    }

    /// Create the GPU engine and attach the SSD bridge (no service to launch).
    pub fn start(&mut self) {
        assert!(self.ctrl.is_some(), "init_nvme must run before start");
        let mut engine = Engine::new(self.gpu.clone());
        engine.set_scheduler(self.engine_sched);
        if let Some(limit) = self.barrier_spin_limit {
            engine.set_barrier_spin_limit(limit);
        }
        let topology = self.topology();
        // Device-affine partition grain, mirroring AgileHost::start_agile:
        // one bridge per storage device in shard-major advance order.
        for dev in topology.device_advance_order() {
            engine.add_shard_device(Box::new(DeviceSsdBridge::new(Arc::clone(&topology), dev)));
        }
        {
            let buffers = self.trace_buffers.lock().unwrap();
            assert!(
                !(self.threaded_engine()
                    && self.ctrl().trace_sink().is_some()
                    && buffers.is_empty()),
                "trace sink installed before the ParallelShards scheduler was \
                 selected; call set_engine_sched before set_trace_sink"
            );
            for buffered in buffers.iter() {
                engine.add_mailbox(Arc::clone(buffered) as Arc<dyn gpu_sim::EpochMailbox>);
            }
        }
        if let Some(registry) = &self.metrics {
            engine.set_metrics(gpu_sim::EngineMetrics::bind(registry));
        }
        if let Some(sampler) = &self.sampler {
            engine.add_device(Box::new(MetricsBridge::new(Arc::clone(sampler))));
        }
        if let Some((policy, slos)) = self.control.take() {
            let sampler = self
                .sampler
                .as_ref()
                .expect("set_control requires a windowed sampler (set_metrics_sampler)");
            let ctrl = self.ctrl();
            let knobs = KnobSet {
                wfq: ctrl
                    .qos_policy()
                    .map(|p| QosWeights::new(Arc::clone(p)) as Arc<dyn TenantWeights>),
                ..KnobSet::none()
            };
            let controller = Controller::new(
                policy,
                slos,
                knobs,
                Arc::clone(sampler),
                self.gpu.clock_ghz,
                self.metrics.as_ref(),
            );
            if let Some(sink) = ctrl.trace_sink() {
                controller.set_trace_sink(Arc::clone(sink));
            }
            engine.add_device(Box::new(ControlBridge::new(Arc::clone(&controller))));
            self.controller = Some(controller);
        }
        self.engine = Some(engine);
    }

    /// Launch a user kernel and run to completion.
    pub fn run_kernel(
        &mut self,
        launch: LaunchConfig,
        factory: Box<dyn KernelFactory>,
    ) -> ExecutionReport {
        let engine = self.engine.as_mut().expect("start not called");
        engine.launch(launch, factory);
        engine.run()
    }

    /// Mutable engine access (deadlock-window tuning in tests).
    pub fn engine_mut(&mut self) -> &mut Engine {
        self.engine.as_mut().expect("start not called")
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        self.engine
            .as_ref()
            .map(|e| e.now())
            .unwrap_or(Cycles::ZERO)
    }
}

impl GpuStorageHost for BamHost {
    type Ctrl = BamCtrl;

    fn ctrl(&self) -> Arc<BamCtrl> {
        BamHost::ctrl(self)
    }
    fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) -> bool {
        BamHost::set_trace_sink(self, sink)
    }
    fn set_qos_policy(&self, policy: Arc<dyn QosPolicy>) -> bool {
        BamHost::set_qos_policy(self, policy)
    }
    fn topology(&self) -> Arc<dyn StorageTopology> {
        BamHost::topology(self)
    }
    fn query_occupancy(&self, launch: &LaunchConfig) -> u32 {
        occupancy(&self.gpu, launch)
    }
    fn run_kernel(
        &mut self,
        launch: LaunchConfig,
        factory: Box<dyn KernelFactory>,
    ) -> ExecutionReport {
        BamHost::run_kernel(self, launch, factory)
    }
    fn now(&self) -> Cycles {
        BamHost::now(self)
    }
    fn stop(&mut self) {
        // BaM has no background service to stop.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::SyncReadComputeKernel;

    #[test]
    fn bam_host_runs_a_sync_kernel() {
        let mut host = BamHost::new(GpuConfig::tiny(4), BamConfig::small_test());
        host.add_nvme_dev(1 << 16);
        host.init_nvme();
        host.start();
        let ctrl = host.ctrl();
        let report = host.run_kernel(
            LaunchConfig::new(2, 64).with_registers(56),
            Box::new(SyncReadComputeKernel::new(
                Arc::clone(&ctrl),
                3,
                2_000,
                50_000,
            )),
        );
        assert!(!report.deadlocked);
        let s = ctrl.stats();
        assert!(s.read_calls > 0);
        assert!(s.completions > 0, "user threads processed completions");
        assert!(host.topology().total_bytes_read() > 0);
    }
}
