//! BaM-model kernels: the synchronous access pattern and the naive-async
//! deadlock demonstration.

use crate::ctrl::BamCtrl;
use agile_core::transaction::Barrier;
use agile_sim::Cycles;
use gpu_sim::{KernelFactory, WarpCtx, WarpKernel, WarpStep};
use nvme_sim::{DmaHandle, Lba};
use std::sync::Arc;

/// The canonical synchronous pattern: each warp iterates `iters` times; every
/// iteration it reads its pages through the cache (issuing and then polling
/// until the data arrives — no overlap) and only then computes.
pub struct SyncReadComputeKernel {
    ctrl: Arc<BamCtrl>,
    iters: u32,
    compute_cycles: u64,
    pages_per_dev: u64,
}

impl SyncReadComputeKernel {
    /// `iters` iterations per warp, each computing for `compute_cycles`, over
    /// a working set of `pages_per_dev` pages per device.
    pub fn new(ctrl: Arc<BamCtrl>, iters: u32, compute_cycles: u64, pages_per_dev: u64) -> Self {
        SyncReadComputeKernel {
            ctrl,
            iters,
            compute_cycles,
            pages_per_dev,
        }
    }
}

enum SyncPhase {
    Read,
    Poll,
    Compute,
}

struct SyncWarp {
    ctrl: Arc<BamCtrl>,
    iters: u32,
    compute_cycles: u64,
    pages_per_dev: u64,
    warp_flat: u64,
    iter: u32,
    phase: SyncPhase,
}

impl SyncWarp {
    fn pages(&self, lanes: u32) -> Vec<(u32, Lba)> {
        let ndev = self.ctrl.device_count() as u64;
        (0..lanes as u64)
            .map(|lane| {
                let idx = self.warp_flat * self.iters as u64 * lanes as u64
                    + self.iter as u64 * lanes as u64
                    + lane;
                ((idx % ndev) as u32, (idx / ndev) % self.pages_per_dev)
            })
            .collect()
    }
}

impl WarpKernel for SyncWarp {
    fn step(&mut self, ctx: &WarpCtx) -> WarpStep {
        if self.iter >= self.iters {
            return WarpStep::Done;
        }
        match self.phase {
            SyncPhase::Read => {
                let reqs = self.pages(ctx.lanes);
                let (cost, ready) = self.ctrl.read_warp_sync(self.warp_flat, &reqs, ctx.now);
                if ready.is_some() {
                    self.phase = SyncPhase::Compute;
                } else {
                    self.phase = SyncPhase::Poll;
                }
                WarpStep::Busy(cost)
            }
            SyncPhase::Poll => {
                // Synchronous model: this warp burns issue slots polling the
                // CQs until the data is resident, then re-reads.
                let mut cost = Cycles(0);
                let mut processed = 0;
                for dev in 0..self.ctrl.device_count() {
                    let (c, p) = self.ctrl.poll_once(self.warp_flat, dev);
                    cost += c;
                    processed += p;
                }
                self.phase = SyncPhase::Read;
                if processed > 0 {
                    WarpStep::Busy(cost)
                } else {
                    WarpStep::Stall {
                        retry_after: cost.max(Cycles(1_500)),
                    }
                }
            }
            SyncPhase::Compute => {
                self.iter += 1;
                self.phase = SyncPhase::Read;
                WarpStep::Busy(Cycles(self.compute_cycles))
            }
        }
    }
}

impl KernelFactory for SyncReadComputeKernel {
    fn create_warp(&self, block: u32, warp: u32) -> Box<dyn WarpKernel> {
        Box::new(SyncWarp {
            ctrl: Arc::clone(&self.ctrl),
            iters: self.iters,
            compute_cycles: self.compute_cycles,
            pages_per_dev: self.pages_per_dev.max(1),
            warp_flat: block as u64 * 64 + warp as u64,
            iter: 0,
            phase: SyncPhase::Read,
        })
    }
    fn name(&self) -> &str {
        "bam-sync-read-compute"
    }
}

/// The Figure-1 deadlock: a "naive asynchronous" kernel built on the
/// synchronous protocol. Each warp enqueues `requests_per_warp` commands
/// *before* checking a single completion — and, crucially, nothing else in
/// the system processes completions either. Once the submission queues fill,
/// every warp spins waiting for an SQE that can only be freed by completion
/// processing that never happens; the engine's no-progress detector reports
/// the deadlock. The same workload under AGILE (whose service frees SQEs
/// independently of user threads) runs to completion — see the integration
/// tests.
pub struct NaiveAsyncKernel {
    ctrl: Arc<BamCtrl>,
    requests_per_warp: u32,
    /// When true, warps fall back to polling completions while stuck — which
    /// is exactly the fix BaM's synchronous model applies; the kernel then
    /// completes. Used to show the contrast in tests.
    poll_while_stuck: bool,
}

impl NaiveAsyncKernel {
    /// A deadlocking configuration (no polling while stuck).
    pub fn deadlocking(ctrl: Arc<BamCtrl>, requests_per_warp: u32) -> Self {
        NaiveAsyncKernel {
            ctrl,
            requests_per_warp,
            poll_while_stuck: false,
        }
    }

    /// A safe configuration that polls completions while waiting for SQ space.
    pub fn polling(ctrl: Arc<BamCtrl>, requests_per_warp: u32) -> Self {
        NaiveAsyncKernel {
            ctrl,
            requests_per_warp,
            poll_while_stuck: true,
        }
    }
}

struct NaiveWarp {
    ctrl: Arc<BamCtrl>,
    requests_per_warp: u32,
    poll_while_stuck: bool,
    warp_flat: u64,
    issued: u32,
    barriers: Vec<Barrier>,
}

impl WarpKernel for NaiveWarp {
    fn step(&mut self, ctx: &WarpCtx) -> WarpStep {
        if self.issued < self.requests_per_warp {
            // Phase 1: enqueue everything before looking at any completion.
            let lba = self.warp_flat * self.requests_per_warp as u64 + self.issued as u64;
            let barrier = Barrier::new();
            let (cost, ok) = self.ctrl.raw_read(
                self.warp_flat,
                0,
                lba % 1_000_000,
                DmaHandle::new(),
                barrier.clone(),
                ctx.now,
            );
            if ok {
                self.barriers.push(barrier);
                self.issued += 1;
                return WarpStep::Busy(cost);
            }
            // SQ full. The naive-async kernel just spins for a free SQE …
            if !self.poll_while_stuck {
                return WarpStep::Stall {
                    retry_after: Cycles(2_000),
                };
            }
            // … the corrected kernel processes completions while it waits.
            let (poll_cost, _) = self.ctrl.poll_once(self.warp_flat, 0);
            return WarpStep::Busy(cost + poll_cost);
        }
        // Phase 2: wait for all own requests to complete.
        if self.barriers.iter().all(|b| b.is_complete()) {
            return WarpStep::Done;
        }
        if self.poll_while_stuck {
            let (cost, processed) = self.ctrl.poll_once(self.warp_flat, 0);
            if processed > 0 {
                return WarpStep::Busy(cost);
            }
        }
        WarpStep::Stall {
            retry_after: Cycles(2_000),
        }
    }
}

impl KernelFactory for NaiveAsyncKernel {
    fn create_warp(&self, block: u32, warp: u32) -> Box<dyn WarpKernel> {
        Box::new(NaiveWarp {
            ctrl: Arc::clone(&self.ctrl),
            requests_per_warp: self.requests_per_warp,
            poll_while_stuck: self.poll_while_stuck,
            warp_flat: block as u64 * 64 + warp as u64,
            issued: 0,
            barriers: Vec::new(),
        })
    }
    fn name(&self) -> &str {
        if self.poll_while_stuck {
            "naive-async-polling"
        } else {
            "naive-async-deadlock"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctrl::BamConfig;
    use crate::host::BamHost;
    use gpu_sim::{GpuConfig, LaunchConfig};

    /// Reproduces the §2.3.1 deadlock: tiny SQs, no completion processing
    /// while waiting ⇒ the engine's progress watchdog reports a deadlock.
    #[test]
    fn naive_async_deadlocks_on_full_queues() {
        let mut host = BamHost::new(
            GpuConfig::tiny(2),
            BamConfig::small_test()
                .with_queue_pairs(1)
                .with_queue_depth(32),
        );
        host.add_nvme_dev(1 << 20);
        host.init_nvme();
        host.start();
        host.engine_mut().set_deadlock_window(Cycles(2_000_000));
        let ctrl = host.ctrl();
        // 4 blocks × 2 warps × 64 requests = 512 requests onto one 32-deep SQ.
        let report = host.run_kernel(
            LaunchConfig::new(4, 64).with_registers(40),
            Box::new(NaiveAsyncKernel::deadlocking(ctrl, 64)),
        );
        assert!(
            report.deadlocked,
            "naive async issuing on the synchronous protocol must deadlock"
        );
    }

    /// The same workload with completion polling while stuck finishes.
    #[test]
    fn polling_variant_completes() {
        let mut host = BamHost::new(
            GpuConfig::tiny(2),
            BamConfig::small_test()
                .with_queue_pairs(1)
                .with_queue_depth(32),
        );
        host.add_nvme_dev(1 << 20);
        host.init_nvme();
        host.start();
        let ctrl = host.ctrl();
        let report = host.run_kernel(
            LaunchConfig::new(4, 64).with_registers(40),
            Box::new(NaiveAsyncKernel::polling(Arc::clone(&ctrl), 64)),
        );
        assert!(!report.deadlocked);
        assert_eq!(ctrl.stats().completions, 4 * 2 * 64);
    }
}
