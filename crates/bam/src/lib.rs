//! # bam-baseline — the synchronous GPU-centric baseline (BaM model)
//!
//! The AGILE paper compares against BaM, the first GPU-centric storage system
//! (Qureshi et al., ASPLOS '23): GPU threads issue NVMe commands directly,
//! but **synchronously** — the issuing thread polls the completion queue
//! itself and cannot start computing until its data has arrived; latency is
//! hidden only by warp-level scheduling across many concurrent threads.
//! BaM also hard-codes one software-cache policy (clock) and performs its
//! cache bookkeeping inside per-thread critical sections, which the paper
//! measures as higher cache-API and I/O-API overheads and higher per-thread
//! register pressure.
//!
//! This crate implements that model on the *same* substrates as AGILE (the
//! identical `nvme-sim` devices, the identical `agile-cache` cache structure)
//! so that the comparisons in the benchmark harness isolate exactly the
//! design differences the paper attributes its gains to:
//!
//! * a synchronous issue-then-poll device API ([`ctrl::BamCtrl`]);
//! * per-thread CQ polling (no background service) — polling work and its
//!   register footprint live in the application kernel;
//! * heavier per-call costs (the `bam_*` entries of
//!   [`agile_sim::costs::ApiCosts`]), reflecting lock-held critical sections;
//! * a fixed clock replacement policy.
//!
//! [`kernels::NaiveAsyncKernel`] additionally reproduces the *deadlock* of
//! paper §2.3.1 / Figure 1: threads that try to be asynchronous on top of a
//! synchronous queue protocol — enqueueing several commands before checking
//! any completion — wedge as soon as the submission queues fill, which the
//! GPU engine detects and reports. The integration tests show the identical
//! workload running to completion under AGILE.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod ctrl;
pub mod host;
pub mod kernels;

pub use builder::{AgileSystem, BamSystem, HostBuilder, HostSystem};
pub use ctrl::{BamConfig, BamCtrl, BamStats};
pub use host::BamHost;
pub use kernels::{NaiveAsyncKernel, SyncReadComputeKernel};
