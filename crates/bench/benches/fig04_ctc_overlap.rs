//! Figure 4: speedup of asynchronous over synchronous I/O across
//! computation-to-communication ratios, with the Equation-1 ideal curve.

use agile_bench::{fmt_ratio, print_header, print_row, quick_mode};
use agile_workloads::experiments::fig04::{paper_ctc_points, run_ctc_sweep};

fn main() {
    print_header(
        "Figure 4",
        "Async vs sync speedup across computation-to-communication ratios",
    );
    let (points, requests) = if quick_mode() {
        (vec![0.0, 0.5, 0.9, 1.5], 16)
    } else {
        (paper_ctc_points(), 64)
    };
    let rows = run_ctc_sweep(&points, requests);
    for row in &rows {
        print_row(&[
            ("ctc", format!("{:.2}", row.ctc)),
            ("sync_cycles", row.sync_cycles.to_string()),
            ("async_cycles", row.async_cycles.to_string()),
            ("speedup", fmt_ratio(row.speedup)),
            ("ideal", fmt_ratio(row.ideal)),
        ]);
    }
    let peak = rows.iter().cloned().fold(0.0f64, |m, r| m.max(r.speedup));
    println!(
        "  -> peak measured speedup: {} (paper: up to 1.88x)",
        fmt_ratio(peak)
    );
}
