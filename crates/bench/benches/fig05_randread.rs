//! Figure 5: AGILE 4 KiB random-read bandwidth on 1–3 SSDs.

use agile_bench::{fmt_gbps, print_header, print_row, quick_mode};
use agile_workloads::experiments::fig05_06::{paper_request_counts, run_bandwidth_sweep};
use agile_workloads::randio::IoDirection;

fn main() {
    print_header("Figure 5", "AGILE 4KB random read on multiple SSDs");
    let max = if quick_mode() { 2_048 } else { 32_768 };
    let counts = paper_request_counts(max);
    let rows = run_bandwidth_sweep(IoDirection::Read, &[1, 2, 3], &counts);
    for row in &rows {
        print_row(&[
            ("ssds", row.ssds.to_string()),
            ("requests_per_ssd", row.requests_per_ssd.to_string()),
            ("bandwidth", fmt_gbps(row.gbps)),
        ]);
    }
    for ssds in [1usize, 2, 3] {
        let peak = rows
            .iter()
            .filter(|r| r.ssds == ssds)
            .map(|r| r.gbps)
            .fold(0.0f64, f64::max);
        println!(
            "  -> {ssds} SSD(s) saturate at {} (paper: {:.1} GB/s)",
            fmt_gbps(peak),
            3.7 * ssds as f64
        );
    }
}
