//! Figure 7: DLRM speedup of AGILE (sync and async) over BaM across the three
//! model configurations.

use agile_bench::{fmt_ratio, print_header, print_row, quick_mode};
use agile_workloads::experiments::dlrm_figs::run_fig7_configs;

fn main() {
    print_header(
        "Figure 7",
        "AGILE (sync/async) speedup over BaM on DLRM Config-1/2/3 (batch 2048)",
    );
    let (batch, epochs) = if quick_mode() { (256, 3) } else { (2048, 4) };
    let rows = run_fig7_configs(batch, epochs);
    for row in &rows {
        print_row(&[
            ("config", row.point.clone()),
            ("mode", row.mode.clone()),
            ("cycles", row.elapsed_cycles.to_string()),
            ("speedup_vs_bam", fmt_ratio(row.speedup_vs_bam)),
        ]);
    }
    println!("  (paper: sync 1.30/1.39/1.27x, async 1.48/1.63/1.32x)");
}
