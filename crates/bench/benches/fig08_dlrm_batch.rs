//! Figure 8: DLRM speedup over BaM across batch sizes (Config-1).

use agile_bench::{fmt_ratio, print_header, print_row, quick_mode};
use agile_workloads::experiments::dlrm_figs::run_fig8_batch_sweep;

fn main() {
    print_header(
        "Figure 8",
        "AGILE (sync/async) speedup over BaM across batch sizes (DLRM Config-1)",
    );
    let (batches, epochs): (Vec<u64>, u32) = if quick_mode() {
        (vec![4, 64, 512], 3)
    } else {
        (vec![1, 16, 256, 2048], 4)
    };
    let rows = run_fig8_batch_sweep(&batches, epochs);
    for row in &rows {
        print_row(&[
            ("point", row.point.clone()),
            ("mode", row.mode.clone()),
            ("cycles", row.elapsed_cycles.to_string()),
            ("speedup_vs_bam", fmt_ratio(row.speedup_vs_bam)),
        ]);
    }
    println!("  (paper: async peaks at 1.75x near batch 16; sync stays 1.18-1.30x)");
}
