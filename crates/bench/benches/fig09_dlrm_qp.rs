//! Figure 9: DLRM speedup over BaM across NVMe queue-pair counts
//! (Config-1, queue depth 64).

use agile_bench::{fmt_ratio, print_header, print_row, quick_mode};
use agile_workloads::experiments::dlrm_figs::run_fig9_queue_sweep;

fn main() {
    print_header(
        "Figure 9",
        "AGILE (sync/async) speedup over BaM across I/O queue-pair counts (depth 64)",
    );
    let (qps, batch, epochs): (Vec<usize>, u64, u32) = if quick_mode() {
        (vec![1, 4], 256, 3)
    } else {
        (vec![1, 4, 16], 1024, 4)
    };
    let rows = run_fig9_queue_sweep(&qps, batch, epochs);
    for row in &rows {
        print_row(&[
            ("point", row.point.clone()),
            ("mode", row.mode.clone()),
            ("cycles", row.elapsed_cycles.to_string()),
            ("speedup_vs_bam", fmt_ratio(row.speedup_vs_bam)),
        ]);
    }
    println!("  (paper: async ≈ sync at 1 QP, async pulls ahead as QPs increase)");
}
