//! Figure 10: DLRM speedup over BaM across software-cache sizes (Config-1).

use agile_bench::{fmt_ratio, print_header, print_row, quick_mode};
use agile_workloads::experiments::dlrm_figs::run_fig10_cache_sweep;

fn main() {
    print_header(
        "Figure 10",
        "AGILE (sync/async) speedup over BaM across software cache sizes",
    );
    let (sizes, batch, epochs): (Vec<u64>, u64, u32) = if quick_mode() {
        (vec![32, 128, 512], 128, 3)
    } else {
        (vec![64, 256, 1024, 2048], 512, 4)
    };
    let rows = run_fig10_cache_sweep(&sizes, batch, epochs);
    for row in &rows {
        print_row(&[
            ("point", row.point.clone()),
            ("mode", row.mode.clone()),
            ("cycles", row.elapsed_cycles.to_string()),
            ("speedup_vs_bam", fmt_ratio(row.speedup_vs_bam)),
        ]);
    }
    println!("  (paper: async trails BaM below ~64 MB, overtakes sync beyond it; sync peaks 1.48x at 256 MB)");
}
