//! Figure 11: execution-time breakdown (Kernel / Cache API / I/O API) of BFS
//! and SpMV on Kronecker and uniform graphs, BaM vs AGILE.

use agile_bench::{print_header, print_row, quick_mode};
use agile_workloads::experiments::fig11::{run_graph_breakdown, GraphScale};

fn main() {
    print_header(
        "Figure 11",
        "Execution-time breakdown of BaM and AGILE across graph applications",
    );
    let scale = if quick_mode() {
        GraphScale::quick()
    } else {
        GraphScale::full()
    };
    let rows = run_graph_breakdown(scale);
    for row in &rows {
        let (k, cache, io) = row.normalized();
        print_row(&[
            ("app", row.app.clone()),
            ("graph", row.graph.clone()),
            ("system", row.system.clone()),
            ("kernel", format!("{k:.2}")),
            ("cache_api", format!("{cache:.2}")),
            ("io_api", format!("{io:.2}")),
        ]);
    }
    // Summarise the overhead-reduction factors the paper quotes.
    for app in ["bfs", "spmv"] {
        for graph in ["uniform", "kronecker"] {
            let agile = rows
                .iter()
                .find(|r| r.app == app && r.graph == graph && r.system == "agile");
            let bam = rows
                .iter()
                .find(|r| r.app == app && r.graph == graph && r.system == "bam");
            if let (Some(a), Some(b)) = (agile, bam) {
                let cache_red = b.cache_api_cycles.max(1) as f64 / a.cache_api_cycles.max(1) as f64;
                let io_red = b.io_api_cycles.max(1) as f64 / a.io_api_cycles.max(1) as f64;
                println!(
                    "  -> {app}-{graph}: AGILE reduces cache-API overhead {cache_red:.2}x and I/O overhead {io_red:.2}x"
                );
            }
        }
    }
    println!("  (paper: cache-API reductions 1.93-3.17x, I/O reductions 1.06-2.85x)");
}
