//! Figure 12: per-thread register usage of BaM vs AGILE kernels (modelled).

use agile_bench::{fmt_ratio, print_header, print_row};
use agile_workloads::experiments::fig12::run_register_table;

fn main() {
    print_header(
        "Figure 12",
        "Per-thread register usage, BaM vs AGILE (static footprint model)",
    );
    let (rows, service) = run_register_table();
    for row in &rows {
        print_row(&[
            ("kernel", row.kernel.clone()),
            ("bam", row.bam_registers.to_string()),
            ("agile", row.agile_registers.to_string()),
            ("reduction", fmt_ratio(row.ratio())),
            ("paper_bam", row.paper_bam.to_string()),
            ("paper_agile", row.paper_agile.to_string()),
        ]);
    }
    println!("  AGILE service kernel: {service} registers/thread (paper: 37)");
}
