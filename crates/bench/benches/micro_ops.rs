//! Criterion micro-benchmarks over the library's host-visible hot paths:
//! software-cache lookups, SQE issue (Algorithm 2), warp-level coalescing and
//! Share-Table operations. These complement the figure harnesses: the figures
//! report *simulated* time, while these report the real wall-clock cost of
//! the data structures themselves.

use agile_cache::{CacheConfig, CacheLookup, ClockPolicy, ShareTable, SoftwareCache};
use agile_core::coalesce::coalesce_warp;
use agile_core::sq_protocol::AgileSq;
use agile_core::transaction::Transaction;
use agile_sim::Cycles;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nvme_sim::{DmaHandle, NvmeCommand, PageToken, QueuePair};

fn bench_cache_hit(c: &mut Criterion) {
    let cache = SoftwareCache::new(
        CacheConfig::with_capacity(64 << 20),
        Box::new(ClockPolicy::new()),
    );
    for lba in 0..1024u64 {
        cache.preload(0, lba, PageToken(lba));
    }
    c.bench_function("cache_lookup_hit", |b| {
        let mut lba = 0u64;
        b.iter(|| {
            lba = (lba + 1) % 1024;
            match cache.lookup_or_reserve(0, black_box(lba)) {
                CacheLookup::Hit { line, token } => {
                    cache.unpin(line);
                    black_box(token);
                }
                _ => unreachable!("preloaded"),
            }
        })
    });
}

fn bench_cache_miss_reserve(c: &mut Criterion) {
    c.bench_function("cache_lookup_miss_reserve", |b| {
        let cache = SoftwareCache::new(
            CacheConfig::with_capacity(512 << 20),
            Box::new(ClockPolicy::new()),
        );
        let mut lba = 0u64;
        b.iter(|| {
            lba += 1;
            if let CacheLookup::Miss { line, dma, .. } = cache.lookup_or_reserve(0, black_box(lba))
            {
                dma.store(PageToken(lba));
                cache.complete_fill(line);
                cache.unpin(line);
            }
        })
    });
}

fn bench_sq_issue(c: &mut Criterion) {
    c.bench_function("sq_issue_release", |b| {
        let sq = AgileSq::new(QueuePair::new(0, 4096));
        let mut lba = 0u64;
        b.iter(|| {
            lba += 1;
            let receipt = sq
                .try_issue(
                    |cid| NvmeCommand::read(cid, black_box(lba), DmaHandle::new()),
                    Transaction::WriteBack,
                    Cycles(0),
                )
                .expect("queue never fills: we release immediately");
            // Simulate the device fetch + service completion to recycle the slot.
            let _ = sq.queue_pair().sq.take_slot(receipt.cid as u32);
            let _ = sq.transactions().take(receipt.cid);
            sq.release(receipt.cid);
        })
    });
}

fn bench_warp_coalesce(c: &mut Criterion) {
    let distinct: Vec<(u32, u64)> = (0..32).map(|i| (0, i as u64)).collect();
    let duplicated: Vec<(u32, u64)> = (0..32).map(|i| (0, (i % 4) as u64)).collect();
    c.bench_function("warp_coalesce_distinct", |b| {
        b.iter(|| black_box(coalesce_warp(black_box(&distinct))))
    });
    c.bench_function("warp_coalesce_duplicated", |b| {
        b.iter(|| black_box(coalesce_warp(black_box(&duplicated))))
    });
}

fn bench_share_table(c: &mut Criterion) {
    c.bench_function("share_table_register_release", |b| {
        let st = ShareTable::new();
        let mut lba = 0u64;
        b.iter(|| {
            lba += 1;
            let _ = st.register(0, black_box(lba), DmaHandle::new(), 1).unwrap();
            let _ = st.release(0, lba);
        })
    });
}

criterion_group!(
    micro,
    bench_cache_hit,
    bench_cache_miss_reserve,
    bench_sq_issue,
    bench_warp_coalesce,
    bench_share_table
);
criterion_main!(micro);
