//! Trace replay: latency percentiles (p50/p95/p99) and throughput for
//! synthetic traces through AGILE and the BaM baseline.
//!
//! Three workload shapes (uniform, zipfian hot-set, multi-tenant mix) run on
//! both systems; each row reports the latency distribution a serving stack
//! would see, not just aggregate bandwidth. A second section compares the
//! storage topologies at equal device count — the single-lock `FlatArray`
//! against a `ShardedArray` (4 lock shards) — where the flat array's
//! submission lock caps throughput and sharding restores the scaling.

use agile_bench::{print_header, print_row, quick_mode};
use agile_trace::TraceSpec;
use agile_workloads::experiments::trace_replay::{run_trace_replay, ReplayConfig, ReplaySystem};
use agile_workloads::trace_replay::ReplayPath;

fn main() {
    print_header(
        "Trace replay",
        "latency percentiles + throughput, AGILE vs BaM, raw and cached paths",
    );
    let ops: u64 = if quick_mode() { 2_048 } else { 16_384 };
    let lba_space = 1u64 << 18;
    let seed = 0xA61E;
    let traces = [
        TraceSpec::uniform("uniform", seed, 2, lba_space, ops).generate(),
        TraceSpec::zipfian("zipf-0.99", seed, 2, lba_space, ops, 0.99).generate(),
        TraceSpec::multi_tenant("multi-tenant", seed, 2, lba_space, ops).generate(),
    ];
    for path in [ReplayPath::Raw, ReplayPath::Cached] {
        let cfg = ReplayConfig {
            path,
            ..ReplayConfig::default()
        };
        for trace in &traces {
            for system in [ReplaySystem::Agile, ReplaySystem::Bam] {
                let r = run_trace_replay(trace, system, &cfg);
                print_row(&[
                    ("trace", r.trace_name.clone()),
                    ("path", format!("{path:?}").to_lowercase()),
                    ("system", r.system.to_string()),
                    ("ops", r.ops.to_string()),
                    ("p50_us", format!("{:.2}", r.p50_us)),
                    ("p95_us", format!("{:.2}", r.p95_us)),
                    ("p99_us", format!("{:.2}", r.p99_us)),
                    ("iops", format!("{:.0}", r.iops)),
                    ("gbps", format!("{:.3}", r.gbps)),
                    ("deadlocked", r.deadlocked.to_string()),
                ]);
            }
        }
    }

    print_header(
        "Storage topology",
        "FlatArray (one lock) vs ShardedArray (4 shards) at 8 SSDs, raw replay",
    );
    let devices = 8u32;
    let topo_ops: u64 = if quick_mode() { 4_096 } else { 16_384 };
    let trace = TraceSpec::uniform("topology", seed, devices, 1 << 14, topo_ops).generate();
    for system in [ReplaySystem::Agile, ReplaySystem::Bam] {
        for shards in [0usize, 4] {
            let cfg = ReplayConfig {
                shards,
                ..ReplayConfig::default().striped()
            };
            let r = run_trace_replay(&trace, system, &cfg);
            print_row(&[
                ("system", r.system.to_string()),
                (
                    "topology",
                    if shards == 0 {
                        "flat".to_string()
                    } else {
                        format!("sharded/{shards}")
                    },
                ),
                ("devices", devices.to_string()),
                ("ops", r.ops.to_string()),
                ("p50_us", format!("{:.2}", r.p50_us)),
                ("p99_us", format!("{:.2}", r.p99_us)),
                ("iops", format!("{:.0}", r.iops)),
                ("gbps", format!("{:.3}", r.gbps)),
                ("deadlocked", r.deadlocked.to_string()),
            ]);
        }
    }
}
