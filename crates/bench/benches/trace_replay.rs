//! Trace replay: latency percentiles (p50/p95/p99) and throughput for
//! synthetic traces through AGILE and the BaM baseline.
//!
//! Three workload shapes (uniform, zipfian hot-set, multi-tenant mix) run on
//! both systems; each row reports the latency distribution a serving stack
//! would see, not just aggregate bandwidth. A second section compares the
//! storage topologies at equal device count — the single-lock `FlatArray`
//! against a `ShardedArray` (4 lock shards) — where the flat array's
//! submission lock caps throughput and sharding restores the scaling. A
//! third section evaluates the QoS scheduler on a 9:1 noisy-neighbour mix
//! over saturated SQs: the victim tenant's p99 must improve under
//! `WeightedFair` without collapsing aggregate IOPS. A fourth section scales
//! the AGILE *service* out: aggregate IOPS vs `service_shards` × storage
//! shards at 8 SSDs, on a CQ-wide rig where the single service's visit
//! period is the slot-recycle ceiling. A fifth section scales the software
//! *cache* out: aggregate IOPS vs `cache_shards` at 32–64 SSDs with the
//! access-port contention model on, where the flat cache's single port
//! serializes every cached lookup. The final section compares the two
//! engine schedulers on the same large replay: bit-identical simulated
//! results, with the ready-queue cutting wall time and rounds.

use agile_bench::{print_header, print_row, quick_mode};
use agile_trace::TraceSpec;
use agile_workloads::experiments::trace_replay::{
    run_trace_replay, QosSpec, ReplayConfig, ReplayReport, ReplaySystem,
};
use agile_workloads::trace_replay::ReplayPath;
use gpu_sim::EngineSched;

/// Machine-readable bench results, opted into with `--json <path>`
/// (`cargo bench --bench trace_replay -- --json BENCH_trace_replay.json`):
/// one row per replay run — section, label, IOPS and host wall time — so the
/// perf trajectory is diffable across commits instead of living only in
/// bench stdout. JSON is built by hand to keep the bench dependency-free.
#[derive(Default)]
struct JsonRows {
    rows: Vec<(String, String, f64, f64)>,
}

impl JsonRows {
    fn push(&mut self, section: &str, label: String, iops: f64, wall_ms: f64) {
        self.rows.push((section.to_string(), label, iops, wall_ms));
    }

    fn write(&self, path: &str) {
        let mut out = String::from("{\n  \"bench\": \"trace_replay\",\n  \"rows\": [\n");
        for (i, (section, label, iops, wall_ms)) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"section\": {}, \"label\": {}, \"iops\": {:.1}, \"wall_ms\": {:.3}}}{}\n",
                json_str(section),
                json_str(label),
                iops,
                wall_ms,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("failed to write {path}: {e}");
        } else {
            println!("\nwrote {} rows to {path}", self.rows.len());
        }
    }
}

/// Minimal JSON string escape (labels are ASCII identifiers in practice).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `--json <path>` from the bench arguments (after the `--` separator when
/// invoked through cargo).
fn json_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Run one replay and measure its host wall time.
fn timed_run(
    trace: &agile_trace::Trace,
    system: ReplaySystem,
    cfg: &ReplayConfig,
) -> (ReplayReport, f64) {
    let t0 = std::time::Instant::now();
    let r = run_trace_replay(trace, system, cfg);
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let mut json = JsonRows::default();
    print_header(
        "Trace replay",
        "latency percentiles + throughput, AGILE vs BaM, raw and cached paths",
    );
    let ops: u64 = if quick_mode() { 2_048 } else { 16_384 };
    let lba_space = 1u64 << 18;
    let seed = 0xA61E;
    let traces = [
        TraceSpec::uniform("uniform", seed, 2, lba_space, ops).generate(),
        TraceSpec::zipfian("zipf-0.99", seed, 2, lba_space, ops, 0.99).generate(),
        TraceSpec::multi_tenant("multi-tenant", seed, 2, lba_space, ops).generate(),
    ];
    for path in [ReplayPath::Raw, ReplayPath::Cached] {
        let cfg = ReplayConfig {
            path,
            ..ReplayConfig::default()
        };
        for trace in &traces {
            for system in [ReplaySystem::Agile, ReplaySystem::Bam] {
                let (r, wall_ms) = timed_run(trace, system, &cfg);
                json.push(
                    "replay",
                    format!("{}/{:?}/{}", r.trace_name, path, r.system).to_lowercase(),
                    r.iops,
                    wall_ms,
                );
                print_row(&[
                    ("trace", r.trace_name.clone()),
                    ("path", format!("{path:?}").to_lowercase()),
                    ("system", r.system.to_string()),
                    ("ops", r.ops.to_string()),
                    ("p50_us", format!("{:.2}", r.p50_us)),
                    ("p95_us", format!("{:.2}", r.p95_us)),
                    ("p99_us", format!("{:.2}", r.p99_us)),
                    ("iops", format!("{:.0}", r.iops)),
                    ("gbps", format!("{:.3}", r.gbps)),
                    ("deadlocked", r.deadlocked.to_string()),
                ]);
            }
        }
    }

    print_header(
        "Storage topology",
        "FlatArray (one lock) vs ShardedArray (4 shards) at 8 SSDs, raw replay",
    );
    let devices = 8u32;
    let topo_ops: u64 = if quick_mode() { 4_096 } else { 16_384 };
    let trace = TraceSpec::uniform("topology", seed, devices, 1 << 14, topo_ops).generate();
    for system in [ReplaySystem::Agile, ReplaySystem::Bam] {
        for shards in [0usize, 4] {
            let cfg = ReplayConfig {
                shards,
                ..ReplayConfig::default().striped()
            };
            let (r, wall_ms) = timed_run(&trace, system, &cfg);
            let topo = if shards == 0 {
                "flat".to_string()
            } else {
                format!("sharded/{shards}")
            };
            json.push(
                "topology",
                format!("{}/{topo}", r.system).to_lowercase(),
                r.iops,
                wall_ms,
            );
            print_row(&[
                ("system", r.system.to_string()),
                ("topology", topo),
                ("devices", devices.to_string()),
                ("ops", r.ops.to_string()),
                ("p50_us", format!("{:.2}", r.p50_us)),
                ("p99_us", format!("{:.2}", r.p99_us)),
                ("iops", format!("{:.0}", r.iops)),
                ("gbps", format!("{:.3}", r.gbps)),
                ("deadlocked", r.deadlocked.to_string()),
            ]);
        }
    }

    print_header(
        "QoS scheduling",
        "9:1 noisy-neighbour mix, 2 tenants, saturated SQs — FIFO vs weighted fair queueing",
    );
    let qos_ops: u64 = if quick_mode() { 4_096 } else { 16_384 };
    let trace = TraceSpec::noisy_neighbor("noisy-neighbor", seed, 2, 1 << 12, qos_ops).generate();
    // Few queue resources + demand-proportional tenant warps ⇒ the noisy
    // tenant keeps every SQ saturated and the victim's tail shows it.
    let contended = ReplayConfig {
        total_warps: 32,
        window: 32,
        queue_pairs: 2,
        queue_depth: 32,
        ..ReplayConfig::quick()
    }
    .tenant_partitioned();
    for system in [ReplaySystem::Agile, ReplaySystem::Bam] {
        for qos in [QosSpec::Fifo, QosSpec::WeightedFair(vec![1, 1])] {
            let cfg = ReplayConfig {
                qos: qos.clone(),
                ..contended.clone()
            };
            let (r, wall_ms) = timed_run(&trace, system, &cfg);
            json.push(
                "qos",
                format!("{}/{}", r.system, r.qos).to_lowercase(),
                r.iops,
                wall_ms,
            );
            let victim = &r.tenants[1];
            let noisy = &r.tenants[0];
            print_row(&[
                ("system", r.system.to_string()),
                ("qos", r.qos.to_string()),
                ("ops", r.ops.to_string()),
                ("noisy_p99_us", format!("{:.2}", noisy.p99_us)),
                ("victim_p50_us", format!("{:.2}", victim.p50_us)),
                ("victim_p99_us", format!("{:.2}", victim.p99_us)),
                ("iops", format!("{:.0}", r.iops)),
                ("deadlocked", r.deadlocked.to_string()),
            ]);
        }
    }

    print_header(
        "Cached-path noisy neighbour",
        "uniform flood vs Zipf hot-set reader through the HBM cache — \
         clock vs TenantShare eviction (AGILE; BaM hard-codes clock)",
    );
    let cn_ops: u64 = if quick_mode() { 6_144 } else { 16_384 };
    let trace =
        TraceSpec::cached_noisy_neighbor("cached-noisy", seed, 1, 1 << 13, cn_ops).generate();
    let cached_contended = ReplayConfig {
        queue_pairs: 8,
        queue_depth: 128,
        ..ReplayConfig::quick()
    }
    .cached()
    .tenant_partitioned();
    for policy in ["clock", "tenant-share"] {
        let cfg = if policy == "clock" {
            cached_contended.clone()
        } else {
            cached_contended.clone().tenant_share(vec![1, 1])
        };
        let (r, wall_ms) = timed_run(&trace, ReplaySystem::Agile, &cfg);
        json.push("cached-noisy", policy.to_string(), r.iops, wall_ms);
        let victim_cache = r.tenant_cache.iter().find(|t| t.tenant == 1);
        let victim = &r.tenants[1];
        print_row(&[
            ("system", r.system.to_string()),
            ("policy", policy.to_string()),
            ("ops", r.ops.to_string()),
            (
                "victim_hit_rate",
                victim_cache.map_or("-".into(), |t| format!("{:.3}", t.hit_rate())),
            ),
            (
                "victim_occ",
                victim_cache.map_or("-".into(), |t| t.occupancy.to_string()),
            ),
            (
                "victim_evictions",
                victim_cache.map_or("-".into(), |t| t.evictions.to_string()),
            ),
            ("victim_p50_us", format!("{:.2}", victim.p50_us)),
            ("victim_p99_us", format!("{:.2}", victim.p99_us)),
            ("iops", format!("{:.0}", r.iops)),
            ("deadlocked", r.deadlocked.to_string()),
        ]);
    }

    print_header(
        "Prefetch depth × eviction policy",
        "cached replay: AGILE batch-ahead depth {0,1,2,4} under clock and \
         TenantShare vs the demand-fill BaM baseline — the AGILE-vs-BaM \
         cached-replay gap is this pipeline-depth/cache-pressure trade",
    );
    for depth in [0u32, 1, 2, 4] {
        for policy in ["clock", "tenant-share"] {
            let mut cfg = cached_contended.clone().with_prefetch_depth(depth);
            if policy == "tenant-share" {
                cfg = cfg.tenant_share(vec![1, 1]);
            }
            let (r, wall_ms) = timed_run(&trace, ReplaySystem::Agile, &cfg);
            json.push(
                "prefetch",
                format!("depth{depth}/{policy}"),
                r.iops,
                wall_ms,
            );
            print_row(&[
                ("system", r.system.to_string()),
                ("depth", depth.to_string()),
                ("policy", policy.to_string()),
                ("ops", r.ops.to_string()),
                ("p50_us", format!("{:.2}", r.p50_us)),
                ("p99_us", format!("{:.2}", r.p99_us)),
                ("iops", format!("{:.0}", r.iops)),
                ("deadlocked", r.deadlocked.to_string()),
            ]);
        }
    }
    // The synchronous baseline: no prefetch by construction, clock fixed.
    let (bam, bam_wall_ms) = timed_run(&trace, ReplaySystem::Bam, &cached_contended);
    json.push("prefetch", "bam".to_string(), bam.iops, bam_wall_ms);
    print_row(&[
        ("system", bam.system.to_string()),
        ("depth", "-".to_string()),
        ("policy", "clock".to_string()),
        ("ops", bam.ops.to_string()),
        ("p50_us", format!("{:.2}", bam.p50_us)),
        ("p99_us", format!("{:.2}", bam.p99_us)),
        ("iops", format!("{:.0}", bam.iops)),
        ("deadlocked", bam.deadlocked.to_string()),
    ]);

    print_header(
        "Service scale-out",
        "AGILE aggregate IOPS vs service_shards × storage shards at 8 SSDs \
         (32 QPs/SSD: the single service's CQ visit period gates slot recycling)",
    );
    let svc_ops: u64 = if quick_mode() { 8_192 } else { 16_384 };
    let trace = TraceSpec::uniform("svc-scale", seed, 8, 1 << 14, svc_ops).generate();
    for storage_shards in [1usize, 4] {
        for service_shards in [1usize, 2, 4] {
            let cfg = ReplayConfig {
                total_warps: 32,
                window: 8,
                queue_pairs: 32,
                queue_depth: 32,
                ..ReplayConfig::default()
            }
            .sharded(storage_shards)
            .service_sharded(service_shards);
            let (r, wall_ms) = timed_run(&trace, ReplaySystem::Agile, &cfg);
            json.push(
                "service-scale",
                format!("storage{storage_shards}/service{service_shards}"),
                r.iops,
                wall_ms,
            );
            let svc_completions: Vec<String> = r
                .service_stats
                .iter()
                .map(|s| s.completions.to_string())
                .collect();
            print_row(&[
                ("storage_shards", storage_shards.to_string()),
                ("service_shards", service_shards.to_string()),
                ("ops", r.ops.to_string()),
                ("p50_us", format!("{:.2}", r.p50_us)),
                ("p99_us", format!("{:.2}", r.p99_us)),
                ("iops", format!("{:.0}", r.iops)),
                ("svc_completions", svc_completions.join("/")),
                ("deadlocked", r.deadlocked.to_string()),
            ]);
        }
    }

    print_header(
        "Cache-shard scale-out",
        "AGILE cached-path aggregate IOPS vs cache_shards at 32-64 SSDs with \
         the access-port model on (600-cycle hold: one shard = one serialized \
         port, the ceiling set-range sharding removes)",
    );
    let cache_ops: u64 = if quick_mode() { 8_192 } else { 16_384 };
    let cache_devices: &[u32] = if quick_mode() { &[32] } else { &[32, 64] };
    for &devices in cache_devices {
        let trace = TraceSpec::uniform("cache-scale", seed, devices, 1 << 14, cache_ops).generate();
        for cache_shards in [1usize, 2, 4, 8] {
            let cfg = ReplayConfig {
                total_warps: 32,
                window: 8,
                queue_pairs: 4,
                queue_depth: 32,
                ..ReplayConfig::quick()
            }
            .cached()
            .sharded(4)
            .with_cache_shards(cache_shards)
            .with_cache_port_hold(600);
            let (r, wall_ms) = timed_run(&trace, ReplaySystem::Agile, &cfg);
            json.push(
                "cache-scale",
                format!("devices{devices}/shards{cache_shards}"),
                r.iops,
                wall_ms,
            );
            print_row(&[
                ("devices", devices.to_string()),
                ("cache_shards", cache_shards.to_string()),
                ("ops", r.ops.to_string()),
                ("p50_us", format!("{:.2}", r.p50_us)),
                ("p99_us", format!("{:.2}", r.p99_us)),
                ("iops", format!("{:.0}", r.iops)),
                ("port_wait_cycles", r.cache_port_wait_cycles.to_string()),
                ("deadlocked", r.deadlocked.to_string()),
            ]);
        }
    }

    print_header(
        "Engine scheduler",
        "ready-queue vs full-scan on the same large replay: identical simulated \
         results, wall time and rounds are the delta",
    );
    let eng_ops: u64 = if quick_mode() { 16_384 } else { 65_536 };
    let trace = TraceSpec::multi_tenant("engine-sched", seed, 4, 1 << 16, eng_ops).generate();
    // A *large* replay: 1024 resident warps is what the full scan pays for
    // on every round, while the ready-queue only touches the warps that are
    // due. The per-warp window stays small so most warps sit stalled on
    // in-flight I/O at any instant.
    let base = ReplayConfig {
        total_warps: 1024,
        window: 8,
        ..ReplayConfig::default()
    };
    // AGILE only: the synchronous BaM warps busy-poll every 500 cycles, so
    // nearly every warp is due on every round and a scheduler comparison
    // mostly re-measures the polling model (it shows a similar cut, at ~30×
    // the bench wall time).
    let mut wall_ms = [0.0f64; 2];
    for (i, sched) in [EngineSched::EventQueue, EngineSched::FullScan]
        .into_iter()
        .enumerate()
    {
        let cfg = base.clone().with_engine_sched(sched);
        let (r, ms) = timed_run(&trace, ReplaySystem::Agile, &cfg);
        wall_ms[i] = ms;
        json.push(
            "engine-sched",
            format!("{sched:?}").to_lowercase(),
            r.iops,
            ms,
        );
        print_row(&[
            ("system", r.system.to_string()),
            ("sched", format!("{sched:?}").to_lowercase()),
            ("ops", r.ops.to_string()),
            ("iops", format!("{:.0}", r.iops)),
            ("rounds", r.engine_rounds.to_string()),
            ("wall_ms", format!("{:.0}", wall_ms[i])),
            ("deadlocked", r.deadlocked.to_string()),
        ]);
    }
    print_row(&[(
        "ready_queue_speedup",
        format!("{:.1}x", wall_ms[1] / wall_ms[0]),
    )]);

    print_header(
        "Engine threads",
        "the same replay on 1/2/4 OS threads (ParallelShards) at 4 and 1 lock \
         shards: bit-identical simulated results, wall time is the delta",
    );
    // Workers are device-affine and the epoch plans due warps in SM-affine
    // partitions, so both the multi-shard fleet and the single-shard
    // configuration (all its devices on one lock) have parallel work.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for shards in [4usize, 1] {
        let threaded_base = ReplayConfig {
            total_warps: 1024,
            window: 8,
            ..ReplayConfig::default()
        }
        .sharded(shards);
        let mut seq_ms = 0.0f64;
        for threads in [1usize, 2, 4] {
            if threads > cores {
                // Oversubscribed workers degrade the spin barrier to
                // yield-loops and measure the OS scheduler, not the engine.
                print_row(&[
                    ("shards", shards.to_string()),
                    ("threads", threads.to_string()),
                    ("skipped", format!("only {cores} usable core(s)")),
                ]);
                continue;
            }
            let cfg = threaded_base.clone().with_engine_threads(threads);
            let (r, ms) = timed_run(&trace, ReplaySystem::Agile, &cfg);
            if threads == 1 {
                seq_ms = ms;
            }
            json.push(
                "engine-threads",
                format!("shards{shards}/threads{threads}"),
                r.iops,
                ms,
            );
            print_row(&[
                ("system", r.system.to_string()),
                ("shards", shards.to_string()),
                ("threads", threads.to_string()),
                ("ops", r.ops.to_string()),
                ("iops", format!("{:.0}", r.iops)),
                ("rounds", r.engine_rounds.to_string()),
                ("wall_ms", format!("{:.0}", ms)),
                ("speedup", format!("{:.2}x", seq_ms / ms)),
                ("deadlocked", r.deadlocked.to_string()),
            ]);
        }
    }

    if let Some(path) = json_path() {
        json.write(&path);
    }
}
