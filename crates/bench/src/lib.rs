//! # agile-bench — benchmark harnesses for every figure of the paper
//!
//! The `benches/` directory of this crate contains one `cargo bench` target
//! per table/figure of the AGILE paper (`fig04_ctc_overlap` …
//! `fig12_registers`), each of which re-runs the corresponding experiment
//! from [`agile_workloads::experiments`] and prints the same rows/series the
//! paper reports, plus a Criterion micro-benchmark suite (`micro_ops`) over
//! the library's host-visible hot paths (cache lookups, SQ issue, warp
//! coalescing, Share-Table operations).
//!
//! This library crate only provides small table-formatting helpers shared by
//! the harness binaries; all experiment logic lives in `agile-workloads` so
//! that the integration tests can run scaled-down versions of the same code.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;

/// Scale selector for the figure harnesses: set `AGILE_BENCH_QUICK=1` to run
/// the scaled-down (CI-friendly) versions of every figure.
pub fn quick_mode() -> bool {
    std::env::var("AGILE_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Print a figure header.
pub fn print_header(figure: &str, caption: &str) {
    println!();
    println!("================================================================");
    println!("{figure}: {caption}");
    println!("================================================================");
}

/// Print one row of `(label, value)` pairs as an aligned table row.
pub fn print_row<L: Display, V: Display>(cells: &[(L, V)]) {
    let rendered: Vec<String> = cells.iter().map(|(l, v)| format!("{l}={v}")).collect();
    println!("  {}", rendered.join("  "));
}

/// Render a ratio as a fixed-precision string.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// Render gigabytes per second.
pub fn fmt_gbps(v: f64) -> String {
    format!("{v:.2} GB/s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ratio(1.875), "1.88x");
        assert_eq!(fmt_gbps(3.699), "3.70 GB/s");
    }

    #[test]
    fn quick_mode_reads_env() {
        // Not set in the test environment unless the caller exported it.
        let _ = quick_mode();
    }
}
