//! The set-associative software cache.
//!
//! The cache maps `(device, LBA)` pairs to 4 KiB lines in GPU HBM. All SSD
//! data accesses in AGILE are routed through it "to ensure coherency and to
//! coalesce the redundant SSD requests" (§3.4). Its lookup is **non-blocking**
//! and mirrors the four cases the paper enumerates:
//!
//! | paper case | [`CacheLookup`] variant |
//! |---|---|
//! | (a) hit, data valid (`READY`/`MODIFIED`) | [`CacheLookup::Hit`] |
//! | (b) miss, no eviction required (`INVALID` way available) | [`CacheLookup::Miss`] |
//! | (c) hit, data not ready (`BUSY` — someone else is fetching) | [`CacheLookup::Busy`] |
//! | (d) miss, eviction required | [`CacheLookup::Miss`] with `writeback` set, or [`CacheLookup::NoLineAvailable`] when every way is pinned/busy |
//!
//! The caller never blocks inside the cache: on `Busy`/`NoLineAvailable` the
//! warp state machine retries later, which is what eliminates the
//! cache-eviction deadlock of §2.3.2. A successful `Hit`/`Miss` pins the line
//! for the caller; the caller unpins when it has consumed the data.

use crate::line::{LineState, Way};
use crate::policy::CachePolicy;
use crate::tenant::{TenantCacheStats, TenantTable, NO_TENANT};
use agile_sim::trace::{TraceEvent, TraceEventKind, TraceSink};
use agile_sim::units::SSD_PAGE_SIZE;
use nvme_sim::{DmaHandle, Lba, PageToken};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Identifies one cache line (global way index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LineId(pub u32);

/// Cache geometry and sizing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes (rounded down to whole lines).
    pub capacity_bytes: u64,
    /// Line size in bytes; must equal the SSD page size.
    pub line_size: u64,
    /// Ways per set.
    pub associativity: u32,
}

impl CacheConfig {
    /// A cache of `capacity_bytes` with the default 4 KiB lines and 8-way
    /// associativity.
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        CacheConfig {
            capacity_bytes,
            line_size: SSD_PAGE_SIZE,
            associativity: 8,
        }
    }

    /// Number of lines, in whole-set units: `capacity_bytes / line_size`
    /// rounded **down** to a multiple of the associativity, with a one-set
    /// floor — exactly what [`SoftwareCache::new`] allocates. (A capacity of
    /// 12 lines at 8-way is one set of 8 ways, not 12.)
    pub fn num_lines(&self) -> usize {
        self.num_sets() * self.associativity as usize
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        ((self.capacity_bytes / self.line_size) as usize / self.associativity as usize).max(1)
    }
}

/// Counters the cache maintains (all monotone, readable at any time).
///
/// Note: for cross-layer observability prefer the unified registry, which
/// exports these as `agile_cache_*` (snapshot-time collector, exporters,
/// windowed series); this struct stays for direct programmatic access.
#[derive(Debug, Default, Serialize, Deserialize, Clone)]
pub struct CacheStats {
    /// Hits on valid data.
    pub hits: u64,
    /// Lookups that found the line BUSY (request coalesced onto an in-flight
    /// fill — the second-level coalescing of §3.3.2).
    pub busy_hits: u64,
    /// Misses where a line was reserved.
    pub misses: u64,
    /// Misses that also required evicting valid data.
    pub evictions: u64,
    /// Evictions of MODIFIED lines that required a write-back.
    pub writebacks: u64,
    /// Lookups that could not reserve any line (all ways pinned/busy).
    pub no_line: u64,
}

#[derive(Default)]
struct StatsCells {
    hits: AtomicU64,
    busy_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
    no_line: AtomicU64,
}

/// Result of a non-blocking cache lookup.
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// The data is resident and valid. The line has been pinned for the
    /// caller, which must call [`SoftwareCache::unpin`] when done.
    Hit {
        /// The line holding the data.
        line: LineId,
        /// The page token currently stored in the line.
        token: PageToken,
    },
    /// Another thread already reserved the line and its fill is in flight;
    /// retry later (or chain onto the fill).
    Busy {
        /// The line being filled.
        line: LineId,
    },
    /// The caller now owns a BUSY, pinned line and must issue the NVMe read
    /// that fills it (then call [`SoftwareCache::complete_fill`]).
    Miss {
        /// The reserved line.
        line: LineId,
        /// DMA slot to hand to the NVMe read command.
        dma: DmaHandle,
        /// If the victim held dirty data, the caller must also write this
        /// `(device, lba, token)` back to the SSD.
        writeback: Option<(u32, Lba, PageToken)>,
    },
    /// Every way of the target set is pinned or busy; retry later.
    NoLineAvailable,
}

struct SetMeta {
    /// Tag per way: `(device, lba)`; `None` when the way holds nothing.
    tags: Vec<Option<(u32, Lba)>>,
    /// Owner tenant per way ([`NO_TENANT`] when unowned): the tenant whose
    /// lookup most recently filled the way. Accounting only — ownership
    /// never gates a fill or a write-back.
    owners: Vec<u32>,
    /// Owner displaced by the in-flight reservation of each way, so
    /// [`SoftwareCache::reinstate_victim`] can return the line (and its
    /// occupancy accounting) to the evicted tenant when the victim's
    /// write-back could not issue.
    displaced: Vec<u32>,
}

/// Global set index of `(dev, lba)` in a cache of `total_sets` sets — the
/// one address hash [`SoftwareCache`] and the sharded router agree on. Mixes
/// device and LBA so multi-SSD striping spreads across sets.
pub(crate) fn global_set_of(dev: u32, lba: Lba, total_sets: usize) -> usize {
    let mut z = (dev as u64) << 56 ^ lba ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as usize % total_sets
}

/// The software cache.
pub struct SoftwareCache {
    cfg: CacheConfig,
    sets: Vec<Mutex<SetMeta>>,
    ways: Vec<Way>,
    assoc: usize,
    /// Set count of the logical cache this instance belongs to. Equals
    /// `sets.len()` for a standalone cache; larger when this instance is one
    /// shard of a [`crate::ShardedCache`], whose router assigns it global
    /// sets `[set_base, set_base + sets.len())`.
    global_sets: usize,
    /// First global set owned by this instance (0 when standalone).
    set_base: usize,
    policy: Box<dyn CachePolicy>,
    stats: StatsCells,
    /// Per-tenant accounting (hits/misses/fills/evictions + live occupancy),
    /// shared with tenant-aware policies via `CachePolicy::bind_tenants`.
    tenants: Arc<TenantTable>,
    /// Optional trace recorder; one atomic load when disabled.
    trace: OnceLock<Arc<dyn TraceSink>>,
    /// Latest sim time reported by a caller (the cache's lookup API carries
    /// no clock, so controllers publish it before lookups — see
    /// [`SoftwareCache::set_time_hint`]).
    trace_now: AtomicU64,
}

impl SoftwareCache {
    /// Build a cache with the given geometry and replacement policy.
    pub fn new(cfg: CacheConfig, policy: Box<dyn CachePolicy>) -> Self {
        let num_sets = cfg.num_sets();
        Self::for_shard(
            cfg,
            policy,
            Arc::new(TenantTable::new()),
            num_sets,
            0,
            num_sets,
        )
    }

    /// Build one shard of a larger logical cache: this instance owns global
    /// sets `[set_base, set_base + local_sets)` of a cache with
    /// `global_sets` sets, shares the per-tenant accounting `tenants` table
    /// with its sibling shards, and its policy sizes global quotas over the
    /// whole logical line count ([`CachePolicy::bind_global_lines`]). With
    /// `global_sets == local_sets` and `set_base == 0` this is exactly
    /// [`SoftwareCache::new`].
    pub(crate) fn for_shard(
        cfg: CacheConfig,
        mut policy: Box<dyn CachePolicy>,
        tenants: Arc<TenantTable>,
        global_sets: usize,
        set_base: usize,
        local_sets: usize,
    ) -> Self {
        assert_eq!(
            cfg.line_size, SSD_PAGE_SIZE,
            "cache lines must match the SSD page size (§2.3.3)"
        );
        assert!(cfg.associativity > 0, "associativity must be positive");
        let assoc = cfg.associativity as usize;
        policy.configure(local_sets, assoc);
        if global_sets != local_sets {
            policy.bind_global_lines((global_sets * assoc) as u64);
        }
        policy.bind_tenants(Arc::clone(&tenants));
        SoftwareCache {
            sets: (0..local_sets)
                .map(|_| {
                    Mutex::new(SetMeta {
                        tags: vec![None; assoc],
                        owners: vec![NO_TENANT; assoc],
                        displaced: vec![NO_TENANT; assoc],
                    })
                })
                .collect(),
            ways: (0..local_sets * assoc).map(|_| Way::new()).collect(),
            assoc,
            global_sets,
            set_base,
            policy,
            stats: StatsCells::default(),
            tenants,
            cfg,
            trace: OnceLock::new(),
            trace_now: AtomicU64::new(0),
        }
    }

    /// Install a trace sink recording every lookup outcome. Returns `false`
    /// if a sink was already installed (the first one wins). Recording is
    /// effectively free when no sink is installed.
    pub fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) -> bool {
        self.trace.set(sink).is_ok()
    }

    /// Publish the current sim time for trace timestamps. Controllers call
    /// this at API entry so cache events carry meaningful clocks; the store
    /// is relaxed and costs one instruction.
    #[inline]
    pub fn set_time_hint(&self, now: u64) {
        self.trace_now.store(now, Ordering::Relaxed);
    }

    #[inline]
    fn trace_lookup(&self, kind: TraceEventKind, dev: u32, lba: Lba, tenant: u32) {
        if let Some(sink) = self.trace.get() {
            let at = self.trace_now.load(Ordering::Relaxed);
            // Untenanted lookups carry [`NO_TENANT`] (`u32::MAX`) on the wire
            // (format v5) so they can never be conflated with the real tenant
            // 0; older logs that recorded 0 still parse.
            sink.record(TraceEvent::new(kind, at).target(dev, lba).tenant(tenant));
        }
    }

    /// Cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Replacement policy name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Online share-weight update for `tenant`, forwarded to the replacement
    /// policy (the control plane's cache actuator). Tenant-oblivious
    /// policies return [`crate::policy::ShareError::Unsupported`].
    pub fn set_tenant_share(
        &self,
        tenant: u32,
        weight: u64,
    ) -> Result<u64, crate::policy::ShareError> {
        self.policy.set_share(tenant, weight)
    }

    /// Current share weight of `tenant`, where the policy keeps one.
    pub fn tenant_share(&self, tenant: u32) -> Option<u64> {
        self.policy.share(tenant)
    }

    /// Number of lines.
    pub fn num_lines(&self) -> usize {
        self.ways.len()
    }

    /// Per-tenant counter snapshot, ordered by tenant id (empty until a
    /// tenant-attributed lookup arrives).
    pub fn tenant_stats(&self) -> Vec<TenantCacheStats> {
        self.tenants.snapshot()
    }

    /// The shared per-tenant accounting table (live occupancy gauges).
    pub fn tenant_table(&self) -> &Arc<TenantTable> {
        &self.tenants
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            busy_hits: self.stats.busy_hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            writebacks: self.stats.writebacks.load(Ordering::Relaxed),
            no_line: self.stats.no_line.load(Ordering::Relaxed),
        }
    }

    fn set_of(&self, dev: u32, lba: Lba) -> usize {
        // Hash into the *logical* set space, then rebase into this
        // instance's range — standalone caches have `set_base == 0` and
        // `global_sets == sets.len()`, so this is the plain hash.
        global_set_of(dev, lba, self.global_sets) - self.set_base
    }

    fn line_id(&self, set: usize, way: usize) -> LineId {
        LineId((set * self.assoc + way) as u32)
    }

    /// The way behind a line id.
    pub fn way(&self, line: LineId) -> &Way {
        &self.ways[line.0 as usize]
    }

    /// Non-blocking lookup without tenant attribution (the pre-threading
    /// entry point, kept for preloads and bare rigs); see the module docs
    /// for the case mapping.
    pub fn lookup_or_reserve(&self, dev: u32, lba: Lba) -> CacheLookup {
        self.lookup_or_reserve_as(dev, lba, NO_TENANT)
    }

    /// [`SoftwareCache::lookup_or_reserve`] with an explicit requesting
    /// tenant. Attribution is **accounting only**: hits/misses are counted
    /// against `tenant`, a reserved line becomes owned by `tenant` (fills
    /// are attributed to the requester), and an evicted line's previous
    /// owner is charged the eviction — but the lookup outcome, the victim
    /// choice under a tenant-oblivious policy, and the fill/write-back I/O
    /// are bit-identical to the untenanted path.
    pub fn lookup_or_reserve_as(&self, dev: u32, lba: Lba, tenant: u32) -> CacheLookup {
        let set_idx = self.set_of(dev, lba);
        let mut meta = self.sets[set_idx].lock();

        // 1. Tag scan.
        for way_idx in 0..self.assoc {
            if meta.tags[way_idx] == Some((dev, lba)) {
                let way = &self.ways[set_idx * self.assoc + way_idx];
                return match way.state() {
                    LineState::Ready | LineState::Modified => {
                        way.pin();
                        self.policy.on_access(set_idx, way_idx);
                        self.stats.hits.fetch_add(1, Ordering::Relaxed);
                        self.tenants.record_hit(tenant);
                        self.trace_lookup(TraceEventKind::CacheHit, dev, lba, tenant);
                        CacheLookup::Hit {
                            line: self.line_id(set_idx, way_idx),
                            token: way.data.load(),
                        }
                    }
                    LineState::Busy => {
                        self.stats.busy_hits.fetch_add(1, Ordering::Relaxed);
                        self.trace_lookup(TraceEventKind::CacheBusy, dev, lba, tenant);
                        CacheLookup::Busy {
                            line: self.line_id(set_idx, way_idx),
                        }
                    }
                    LineState::Invalid => {
                        // Tag present but invalid (fill failed): re-reserve
                        // it, transferring ownership to the new requester.
                        way.set_state(LineState::Busy);
                        way.pin();
                        self.transfer_owner(&mut meta, way_idx, tenant);
                        self.policy.on_fill(set_idx, way_idx);
                        self.stats.misses.fetch_add(1, Ordering::Relaxed);
                        self.tenants.record_miss_fill(tenant);
                        self.trace_lookup(TraceEventKind::CacheMiss, dev, lba, tenant);
                        CacheLookup::Miss {
                            line: self.line_id(set_idx, way_idx),
                            dma: way.data.clone(),
                            writeback: None,
                        }
                    }
                };
            }
        }

        // 2. Miss: prefer an empty (tag-less) way.
        if let Some(way_idx) = (0..self.assoc).find(|&w| meta.tags[w].is_none()) {
            let way = &self.ways[set_idx * self.assoc + way_idx];
            meta.tags[way_idx] = Some((dev, lba));
            meta.owners[way_idx] = tenant;
            way.set_state(LineState::Busy);
            way.pin();
            self.policy.on_fill(set_idx, way_idx);
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            self.tenants.record_miss_fill_occupy(tenant);
            self.trace_lookup(TraceEventKind::CacheMiss, dev, lba, tenant);
            return CacheLookup::Miss {
                line: self.line_id(set_idx, way_idx),
                dma: way.data.clone(),
                writeback: None,
            };
        }

        // 3. Miss with eviction: ask the policy for a victim among evictable
        //    ways, handing it the per-way owner view (tenant-aware policies
        //    use it to bound each tenant's occupancy to its share).
        let evictable: Vec<bool> = (0..self.assoc)
            .map(|w| self.ways[set_idx * self.assoc + w].evictable())
            .collect();
        let Some(victim) = self.policy.choose_victim(set_idx, &evictable, &meta.owners) else {
            // A transient resource stall (every way pinned/busy), not a data
            // miss: the caller retries and the retry is what gets counted.
            // Charging it per tenant would let retry churn drown the
            // hit-rate signal the per-tenant stats exist for; the aggregate
            // `no_line` counter still records every occurrence.
            self.stats.no_line.fetch_add(1, Ordering::Relaxed);
            self.trace_lookup(TraceEventKind::CacheNoLine, dev, lba, tenant);
            return CacheLookup::NoLineAvailable;
        };
        debug_assert!(evictable[victim], "policy chose a non-evictable way");
        let way = &self.ways[set_idx * self.assoc + victim];
        let old_tag = meta.tags[victim];
        let writeback = match way.state() {
            LineState::Modified => {
                self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
                if let Some((d, l)) = old_tag {
                    self.trace_lookup(TraceEventKind::Writeback, d, l, meta.owners[victim]);
                }
                old_tag.map(|(d, l)| (d, l, way.data.load()))
            }
            _ => None,
        };
        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        self.tenants.record_miss_fill_occupy(tenant);
        self.tenants.record_eviction(meta.owners[victim]);
        meta.displaced[victim] = meta.owners[victim];
        meta.owners[victim] = tenant;
        self.trace_lookup(TraceEventKind::CacheMiss, dev, lba, tenant);
        meta.tags[victim] = Some((dev, lba));
        way.set_state(LineState::Busy);
        way.pin();
        self.policy.on_fill(set_idx, victim);
        CacheLookup::Miss {
            line: self.line_id(set_idx, victim),
            dma: way.data.clone(),
            writeback,
        }
    }

    /// Move ownership of `way_idx` (whose set lock the caller holds via
    /// `meta`) to `tenant`, keeping the occupancy gauges balanced.
    fn transfer_owner(&self, meta: &mut SetMeta, way_idx: usize, tenant: u32) {
        let old = meta.owners[way_idx];
        if old != tenant {
            self.tenants.vacate(old);
            self.tenants.occupy(tenant);
            meta.owners[way_idx] = tenant;
        }
    }

    /// Probe without reserving: returns the token if the line is resident and
    /// valid. Does not pin, does not update policy metadata.
    pub fn peek(&self, dev: u32, lba: Lba) -> Option<PageToken> {
        let set_idx = self.set_of(dev, lba);
        let meta = self.sets[set_idx].lock();
        for way_idx in 0..self.assoc {
            if meta.tags[way_idx] == Some((dev, lba)) {
                let way = &self.ways[set_idx * self.assoc + way_idx];
                if way.state().is_valid_data() {
                    return Some(way.data.load());
                }
                return None;
            }
        }
        None
    }

    /// Mark a reserved (BUSY) line as filled: the NVMe read completed and the
    /// DMA slot now holds the page token. `BUSY → READY`.
    pub fn complete_fill(&self, line: LineId) {
        let way = self.way(line);
        let ok = way.transition(LineState::Busy, LineState::Ready);
        debug_assert!(ok, "complete_fill on a line that was not BUSY");
    }

    /// Abandon a reservation made by [`SoftwareCache::lookup_or_reserve`]
    /// when the NVMe command could not be issued (every SQ full): the line
    /// returns to `INVALID` and the reservation pin is dropped, so other
    /// threads are not blocked behind a fill that will never happen.
    ///
    /// When the reservation evicted a **dirty** victim whose write-back then
    /// failed to issue, use [`SoftwareCache::reinstate_victim`] instead —
    /// plain `abort_fill` would drop the only copy of the victim's modified
    /// data.
    pub fn abort_fill(&self, line: LineId) {
        let way = self.way(line);
        let ok = way.transition(LineState::Busy, LineState::Invalid);
        debug_assert!(ok, "abort_fill on a line that was not BUSY");
        way.unpin();
    }

    /// Abandon a reservation whose dirty victim's write-back could not be
    /// issued (every SQ full), re-installing the victim's tag and token in
    /// the line instead of dropping them.
    ///
    /// `lookup_or_reserve` reclaims a dirty way by handing the caller a
    /// `(device, lba, token)` write-back snapshot and re-tagging the line for
    /// the new request; until the write-back is issued, that snapshot is the
    /// **only** copy of the modification. If the issue fails, the snapshot
    /// must go back into the cache — otherwise a later read of the victim
    /// page refills stale data from the backing (the ROADMAP's dirty-victim
    /// lost-update). The line returns to `MODIFIED` under the victim's tag,
    /// the reservation pin is dropped, and the caller's own request simply
    /// misses again on its retry.
    pub fn reinstate_victim(&self, line: LineId, dev: u32, lba: Lba, token: PageToken) {
        let set_idx = line.0 as usize / self.assoc;
        let way_idx = line.0 as usize % self.assoc;
        let mut meta = self.sets[set_idx].lock();
        let way = &self.ways[line.0 as usize];
        debug_assert_eq!(
            way.state(),
            LineState::Busy,
            "reinstate_victim on a line that was not reserved"
        );
        meta.tags[way_idx] = Some((dev, lba));
        // Ownership (and its occupancy accounting) returns to the displaced
        // tenant; the requester's fill never happened. The victim's eviction
        // counter stays advanced — the displacement was real, it just could
        // not complete.
        let displaced = meta.displaced[way_idx];
        let requester = meta.owners[way_idx];
        if displaced != requester {
            self.tenants.vacate(requester);
            self.tenants.occupy(displaced);
            meta.owners[way_idx] = displaced;
        }
        way.data.store(token);
        way.set_state(LineState::Modified);
        way.unpin();
    }

    /// Store `token` into the line and mark it dirty (`MODIFIED`).
    pub fn store(&self, line: LineId, token: PageToken) {
        let way = self.way(line);
        way.data.store(token);
        way.set_state(LineState::Modified);
    }

    /// Read the token currently held by a line.
    pub fn read(&self, line: LineId) -> PageToken {
        self.way(line).data.load()
    }

    /// Current state of a line.
    pub fn state(&self, line: LineId) -> LineState {
        self.way(line).state()
    }

    /// Pin a line (additional reader).
    pub fn pin(&self, line: LineId) {
        self.way(line).pin();
    }

    /// Release a pin taken by [`SoftwareCache::lookup_or_reserve`] /
    /// [`SoftwareCache::pin`].
    pub fn unpin(&self, line: LineId) {
        self.way(line).unpin();
    }

    /// Preload `(dev, lba) → token` as clean data, bypassing the NVMe path.
    /// Used by tests and by the graph experiments' "Cache API time" step,
    /// which measures cache overhead with all data preloaded (§4.5 step 3).
    /// Returns false when no line could be reserved.
    pub fn preload(&self, dev: u32, lba: Lba, token: PageToken) -> bool {
        match self.lookup_or_reserve(dev, lba) {
            CacheLookup::Hit { line, .. } => {
                self.way(line).data.store(token);
                self.unpin(line);
                true
            }
            CacheLookup::Miss { line, dma, .. } => {
                dma.store(token);
                self.complete_fill(line);
                self.unpin(line);
                true
            }
            CacheLookup::Busy { .. } | CacheLookup::NoLineAvailable => false,
        }
    }

    /// Total pinned lines (diagnostic; should return to zero after a kernel).
    pub fn total_pins(&self) -> u64 {
        self.ways.iter().map(|w| w.pins() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ClockPolicy, LruPolicy};

    fn small_cache() -> SoftwareCache {
        // 16 lines, 4-way ⇒ 4 sets.
        SoftwareCache::new(
            CacheConfig {
                capacity_bytes: 16 * SSD_PAGE_SIZE,
                line_size: SSD_PAGE_SIZE,
                associativity: 4,
            },
            Box::new(ClockPolicy::new()),
        )
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let c = small_cache();
        let CacheLookup::Miss {
            line,
            dma,
            writeback,
        } = c.lookup_or_reserve(0, 42)
        else {
            panic!("expected miss");
        };
        assert!(writeback.is_none());
        assert_eq!(c.state(line), LineState::Busy);
        // Second requester while the fill is in flight coalesces.
        assert!(matches!(
            c.lookup_or_reserve(0, 42),
            CacheLookup::Busy { .. }
        ));
        // SSD DMA lands, fill completes.
        dma.store(PageToken(777));
        c.complete_fill(line);
        c.unpin(line);
        let CacheLookup::Hit {
            line: hit_line,
            token,
        } = c.lookup_or_reserve(0, 42)
        else {
            panic!("expected hit");
        };
        assert_eq!(hit_line, line);
        assert_eq!(token, PageToken(777));
        c.unpin(hit_line);
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.busy_hits, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(c.total_pins(), 0);
    }

    #[test]
    fn eviction_of_modified_line_requests_writeback() {
        // Direct-mapped-like behaviour: 4 sets × 4 ways = 16 lines; fill one
        // set completely with dirty lines, then force an eviction.
        let c = SoftwareCache::new(
            CacheConfig {
                capacity_bytes: 4 * SSD_PAGE_SIZE,
                line_size: SSD_PAGE_SIZE,
                associativity: 4,
            },
            Box::new(LruPolicy::new()),
        );
        assert_eq!(c.num_lines(), 4);
        // All LBAs map to the single set.
        let mut filled = Vec::new();
        for lba in 0..4u64 {
            let CacheLookup::Miss { line, dma, .. } = c.lookup_or_reserve(0, lba) else {
                panic!("expected miss for {lba}");
            };
            dma.store(PageToken(lba));
            c.complete_fill(line);
            c.store(line, PageToken(1000 + lba)); // dirty it
            c.unpin(line);
            filled.push(line);
        }
        // Fifth distinct LBA forces an eviction of a MODIFIED line.
        let CacheLookup::Miss { writeback, .. } = c.lookup_or_reserve(0, 100) else {
            panic!("expected miss with eviction");
        };
        let (dev, lba, token) = writeback.expect("dirty victim must be written back");
        assert_eq!(dev, 0);
        assert!(lba < 4);
        assert_eq!(token, PageToken(1000 + lba));
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.writebacks, 1);
    }

    #[test]
    fn pinned_lines_are_never_evicted() {
        let c = SoftwareCache::new(
            CacheConfig {
                capacity_bytes: 2 * SSD_PAGE_SIZE,
                line_size: SSD_PAGE_SIZE,
                associativity: 2,
            },
            Box::new(ClockPolicy::new()),
        );
        // Fill both ways and keep them pinned.
        for lba in 0..2u64 {
            let CacheLookup::Miss { line, dma, .. } = c.lookup_or_reserve(0, lba) else {
                panic!();
            };
            dma.store(PageToken(lba));
            c.complete_fill(line);
            // intentionally not unpinned
            let _ = line;
        }
        // No way is evictable ⇒ NoLineAvailable, and the caller would retry.
        assert!(matches!(
            c.lookup_or_reserve(0, 50),
            CacheLookup::NoLineAvailable
        ));
        assert_eq!(c.stats().no_line, 1);
    }

    #[test]
    fn preload_and_peek() {
        let c = small_cache();
        assert!(c.peek(0, 9).is_none());
        assert!(c.preload(0, 9, PageToken(555)));
        assert_eq!(c.peek(0, 9), Some(PageToken(555)));
        // Preload is idempotent-ish: second preload overwrites via the hit path.
        assert!(c.preload(0, 9, PageToken(556)));
        assert_eq!(c.peek(0, 9), Some(PageToken(556)));
        assert_eq!(c.total_pins(), 0);
    }

    #[test]
    fn distinct_devices_do_not_collide() {
        let c = small_cache();
        assert!(c.preload(0, 7, PageToken(1)));
        assert!(c.preload(1, 7, PageToken(2)));
        assert_eq!(c.peek(0, 7), Some(PageToken(1)));
        assert_eq!(c.peek(1, 7), Some(PageToken(2)));
    }

    #[test]
    fn concurrent_lookups_single_fill_owner() {
        use std::sync::Arc;
        use std::thread;
        let c = Arc::new(small_cache());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || match c.lookup_or_reserve(0, 123) {
                CacheLookup::Miss { .. } => 1u32,
                _ => 0u32,
            }));
        }
        let owners: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(owners, 1, "exactly one thread owns the fill");
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.busy_hits, 7);
    }

    #[test]
    fn tenant_attribution_tracks_ownership_and_eviction() {
        // One set of 4 ways: tenant 0 fills 3 lines, tenant 1 fills 1, then
        // tenant 1's fourth fill evicts one of tenant 0's lines.
        let c = SoftwareCache::new(
            CacheConfig {
                capacity_bytes: 4 * SSD_PAGE_SIZE,
                line_size: SSD_PAGE_SIZE,
                associativity: 4,
            },
            Box::new(LruPolicy::new()),
        );
        for lba in 0..3u64 {
            let CacheLookup::Miss { line, dma, .. } = c.lookup_or_reserve_as(0, lba, 0) else {
                panic!("expected miss");
            };
            dma.store(PageToken(lba));
            c.complete_fill(line);
            c.unpin(line);
        }
        let CacheLookup::Miss { line, dma, .. } = c.lookup_or_reserve_as(0, 3, 1) else {
            panic!("expected miss");
        };
        dma.store(PageToken(3));
        c.complete_fill(line);
        c.unpin(line);
        // A hit is attributed to the requesting tenant, not the owner.
        let CacheLookup::Hit { line, .. } = c.lookup_or_reserve_as(0, 0, 1) else {
            panic!("expected hit");
        };
        c.unpin(line);
        let stats = c.tenant_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!((stats[0].fills, stats[0].occupancy), (3, 3));
        assert_eq!(
            (stats[1].fills, stats[1].hits, stats[1].occupancy),
            (1, 1, 1)
        );
        // Fifth distinct LBA from tenant 1 evicts one of tenant 0's lines
        // (LRU: lba 1 is the least recently used).
        let CacheLookup::Miss { line, .. } = c.lookup_or_reserve_as(0, 100, 1) else {
            panic!("expected eviction miss");
        };
        c.complete_fill(line);
        c.unpin(line);
        let stats = c.tenant_stats();
        assert_eq!(stats[0].evictions, 1, "tenant 0 lost a line");
        assert_eq!(stats[0].occupancy, 2);
        assert_eq!(stats[1].occupancy, 2, "tenant 1 gained the way");
        assert_eq!(c.tenant_table().total_occupancy(), 4);
    }

    #[test]
    fn untenanted_lookups_keep_the_table_empty() {
        let c = small_cache();
        assert!(c.preload(0, 1, PageToken(9)));
        let CacheLookup::Hit { line, .. } = c.lookup_or_reserve(0, 1) else {
            panic!("expected hit");
        };
        c.unpin(line);
        assert!(c.tenant_stats().is_empty());
    }

    #[test]
    fn tenant_share_protects_the_victim_hot_set_end_to_end() {
        use crate::policy::TenantShare;
        // 16 lines, 4-way. Tenant 0 floods with always-new addresses while
        // tenant 1 re-reads a 4-page hot set. Under the clock policy the
        // flood keeps evicting the hot set; under TenantShare the flood's
        // over-quota lines are evicted in preference, so the hot set
        // survives and the victim's hit count jumps.
        let run = |policy: Box<dyn CachePolicy>| -> Vec<CacheStats> {
            let c = SoftwareCache::new(
                CacheConfig {
                    capacity_bytes: 16 * SSD_PAGE_SIZE,
                    line_size: SSD_PAGE_SIZE,
                    associativity: 4,
                },
                policy,
            );
            let fill =
                |dev: u32, lba: u64, tenant: u32| match c.lookup_or_reserve_as(dev, lba, tenant) {
                    CacheLookup::Hit { line, .. } => c.unpin(line),
                    CacheLookup::Miss { line, dma, .. } => {
                        dma.store(PageToken(lba));
                        c.complete_fill(line);
                        c.unpin(line);
                    }
                    CacheLookup::Busy { .. } | CacheLookup::NoLineAvailable => {}
                };
            for round in 0..200u64 {
                fill(0, 1_000 + round, 0);
                fill(0, round % 4, 1);
            }
            c.tenant_stats()
                .into_iter()
                .map(|t| CacheStats {
                    hits: t.hits,
                    misses: t.misses,
                    ..CacheStats::default()
                })
                .collect()
        };
        let clock = run(Box::<ClockPolicy>::default());
        let shared = run(Box::<TenantShare>::default());
        assert!(
            shared[1].hits > clock[1].hits,
            "TenantShare must lift the victim's hits over clock ({} vs {})",
            shared[1].hits,
            clock[1].hits
        );
        assert!(
            shared[1].hits > 150,
            "the 4-page hot set must be near-always resident under \
             TenantShare (hits={})",
            shared[1].hits
        );
    }

    #[test]
    fn config_geometry_matches_allocation_for_non_aligned_capacities() {
        // E.g. 12 lines at 8-way is one whole set of 8 ways: the config must
        // report the allocated whole-set geometry, not the raw division.
        for (lines, assoc) in [
            (12u64, 8u32),
            (7, 8),
            (9, 4),
            (17, 8),
            (3, 4),
            (8, 8),
            (65, 8),
        ] {
            let cfg = CacheConfig {
                capacity_bytes: lines * SSD_PAGE_SIZE,
                line_size: SSD_PAGE_SIZE,
                associativity: assoc,
            };
            let c = SoftwareCache::new(cfg.clone(), Box::new(ClockPolicy::new()));
            assert_eq!(
                cfg.num_lines(),
                c.num_lines(),
                "configured and allocated line counts must agree \
                 ({lines} lines, {assoc}-way)"
            );
            assert_eq!(cfg.num_lines(), cfg.num_sets() * assoc as usize);
            assert!(cfg.num_sets() >= 1, "one-set floor");
        }
    }

    #[test]
    #[should_panic(expected = "SSD page size")]
    fn rejects_mismatched_line_size() {
        let _ = SoftwareCache::new(
            CacheConfig {
                capacity_bytes: 1 << 20,
                line_size: 512,
                associativity: 4,
            },
            Box::new(ClockPolicy::new()),
        );
    }
}
