//! # agile-cache — the HBM-resident software cache and Share Table
//!
//! AGILE routes every SSD access through a software-managed cache in GPU HBM
//! (paper §3.4): cache lines are 4 KiB (one flash page), each line carries a
//! four-state word (`INVALID`, `BUSY`, `READY`, `MODIFIED`), and the
//! replacement policy is pluggable — the paper ships a clock policy and lets
//! users supply their own. A second structure, the Share Table (§3.4.1),
//! extends coherency to user-registered buffers with a MOESI-inspired
//! protocol so `async_issue(src, dst)` into private buffers cannot introduce
//! RAW/WAR/WAW hazards against the cache.
//!
//! This crate implements both structures with the same concurrency discipline
//! a device-side implementation would use: per-line atomic state words and
//! reference counts, short per-set critical sections for tag manipulation,
//! and non-blocking lookups that report `Busy`/`NoLineAvailable` instead of
//! waiting — the caller (a warp state machine) decides whether to retry,
//! which is exactly what makes the asynchronous model deadlock-free.
//!
//! Modules:
//!
//! * [`line`] — line state words, pinning, and the per-line DMA slot;
//! * [`policy`] — the [`policy::CachePolicy`] trait plus Clock / LRU / FIFO /
//!   Random implementations and the tenant-aware [`policy::TenantShare`];
//! * [`tenant`] — per-tenant accounting (hits/misses/fills/evictions and
//!   live occupancy) shared between the cache and tenant-aware policies;
//! * [`cache`] — the set-associative [`cache::SoftwareCache`];
//! * [`sharded`] — the set-range [`sharded::ShardedCache`] that splits the
//!   logical set space across N independent caches while presenting one
//!   logical cache to tenants and the control plane;
//! * [`share_table`] — the MOESI-inspired [`share_table::ShareTable`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod line;
pub mod policy;
pub mod sharded;
pub mod share_table;
pub mod tenant;

pub use cache::{CacheConfig, CacheLookup, CacheStats, LineId, SoftwareCache};
pub use line::LineState;
pub use policy::{
    CachePolicy, ClockPolicy, FifoPolicy, LruPolicy, RandomPolicy, ShareError, TenantShare,
    MAX_ONLINE_SHARE,
};
pub use sharded::ShardedCache;
pub use share_table::{BufState, ShareTable, ShareTableStats, SharedBuf};
pub use tenant::{TenantCacheStats, TenantTable, NO_TENANT};
