//! Cache line state.
//!
//! Each software-cache line mirrors the paper's four states (§3.4):
//!
//! * `INVALID` — the line holds no data;
//! * `BUSY` — an NVMe read (fill) or write-back for the line is in flight;
//! * `READY` — the line holds clean data;
//! * `MODIFIED` — the line holds dirty data that must be written back on
//!   eviction.
//!
//! On top of the state word every line carries a pin (reference) count —
//! a line with pinned readers cannot be evicted, which is how AGILE keeps
//! cache-hit accesses atomic with respect to eviction (§2.3.2) — and the
//! per-line DMA slot the SSD writes the page token into.

use nvme_sim::DmaHandle;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU32, Ordering};

/// The four line states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u32)]
pub enum LineState {
    /// No valid data.
    Invalid = 0,
    /// A fill or write-back is in flight.
    Busy = 1,
    /// Clean, valid data.
    Ready = 2,
    /// Dirty data; must be written back before reuse.
    Modified = 3,
}

impl LineState {
    fn from_u32(v: u32) -> LineState {
        match v {
            0 => LineState::Invalid,
            1 => LineState::Busy,
            2 => LineState::Ready,
            3 => LineState::Modified,
            _ => unreachable!("invalid line state encoding {v}"),
        }
    }

    /// True when the line holds data that can be served to readers.
    pub fn is_valid_data(self) -> bool {
        matches!(self, LineState::Ready | LineState::Modified)
    }
}

/// One cache way (line): state word, pin count and DMA slot.
#[derive(Debug)]
pub struct Way {
    state: AtomicU32,
    pins: AtomicU32,
    /// The 64-bit page-token slot NVMe reads DMA into (and writes DMA out of).
    pub data: DmaHandle,
}

impl Default for Way {
    fn default() -> Self {
        Self::new()
    }
}

impl Way {
    /// A fresh, invalid, unpinned line.
    pub fn new() -> Self {
        Way {
            state: AtomicU32::new(LineState::Invalid as u32),
            pins: AtomicU32::new(0),
            data: DmaHandle::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> LineState {
        LineState::from_u32(self.state.load(Ordering::Acquire))
    }

    /// Unconditionally set the state (caller must hold the set lock or be the
    /// unique owner of the in-flight transition).
    pub fn set_state(&self, s: LineState) {
        self.state.store(s as u32, Ordering::Release);
    }

    /// Atomically transition `from → to`. Returns false if the current state
    /// was not `from`.
    pub fn transition(&self, from: LineState, to: LineState) -> bool {
        self.state
            .compare_exchange(from as u32, to as u32, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Current pin count.
    pub fn pins(&self) -> u32 {
        self.pins.load(Ordering::Acquire)
    }

    /// Pin the line (prevents eviction).
    pub fn pin(&self) {
        self.pins.fetch_add(1, Ordering::AcqRel);
    }

    /// Unpin the line. Panics in debug builds on underflow.
    pub fn unpin(&self) {
        let prev = self.pins.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "unpin on a line with zero pins");
    }

    /// A line is evictable when it is not pinned and no fill is in flight.
    pub fn evictable(&self) -> bool {
        self.pins() == 0 && self.state() != LineState::Busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_roundtrip() {
        for s in [
            LineState::Invalid,
            LineState::Busy,
            LineState::Ready,
            LineState::Modified,
        ] {
            assert_eq!(LineState::from_u32(s as u32), s);
        }
        assert!(LineState::Ready.is_valid_data());
        assert!(LineState::Modified.is_valid_data());
        assert!(!LineState::Busy.is_valid_data());
        assert!(!LineState::Invalid.is_valid_data());
    }

    #[test]
    fn transitions_are_atomic_and_checked() {
        let w = Way::new();
        assert_eq!(w.state(), LineState::Invalid);
        assert!(w.transition(LineState::Invalid, LineState::Busy));
        assert!(!w.transition(LineState::Invalid, LineState::Busy));
        assert!(w.transition(LineState::Busy, LineState::Ready));
        w.set_state(LineState::Modified);
        assert_eq!(w.state(), LineState::Modified);
    }

    #[test]
    fn pinning_controls_evictability() {
        let w = Way::new();
        w.set_state(LineState::Ready);
        assert!(w.evictable());
        w.pin();
        assert!(!w.evictable());
        assert_eq!(w.pins(), 1);
        w.unpin();
        assert!(w.evictable());
        w.set_state(LineState::Busy);
        assert!(!w.evictable());
    }

    #[test]
    fn concurrent_transitions_one_winner() {
        use std::sync::Arc;
        use std::thread;
        let w = Arc::new(Way::new());
        let winners: u32 = (0..8)
            .map(|_| {
                let w = Arc::clone(&w);
                thread::spawn(move || w.transition(LineState::Invalid, LineState::Busy) as u32)
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum();
        assert_eq!(winners, 1, "exactly one thread may claim the fill");
        assert_eq!(w.state(), LineState::Busy);
    }
}
