//! Replacement policies.
//!
//! The paper makes cache-policy flexibility a headline feature: BaM hard-codes
//! one policy, AGILE lets applications plug in their own (§3.4, §3.5 use the
//! clock policy for the DLRM evaluation). The [`CachePolicy`] trait is the
//! Rust analogue of the paper's CRTP-based `GPUCacheBase<Impl>` hook: the
//! cache calls the policy on every access/fill and asks it to pick a victim
//! among the evictable ways of a set.
//!
//! Five built-in policies are provided: [`ClockPolicy`] (the paper's default,
//! second-chance), [`LruPolicy`], [`FifoPolicy`], [`RandomPolicy`], and the
//! tenant-aware [`TenantShare`]. The tenant-oblivious four are lock-free:
//! metadata is kept in per-way atomics — and they ignore the per-way owner
//! view entirely, so their victim choices are bit-identical to the
//! pre-tenant-threading stack (asserted by the golden-trace suite).

use crate::tenant::{TenantTable, NO_TENANT};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Largest share weight an online update may install — the same bound the
/// QoS layer's online weights use, keeping the `lines × weight` product
/// (computed in u128 on the victim path) far from overflow.
pub const MAX_ONLINE_SHARE: u64 = 1 << 32;

/// Why an online share-weight update was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShareError {
    /// A zero weight was requested. Constructors clamp zero to 1, but an
    /// *online* update to zero is a controller bug — it could zero the
    /// active-weight denominator — so the update path refuses it.
    Zero,
    /// The policy keeps no per-tenant shares (clock/LRU/FIFO/random).
    Unsupported,
}

impl std::fmt::Display for ShareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShareError::Zero => write!(f, "zero share weight rejected"),
            ShareError::Unsupported => write!(f, "policy does not support online shares"),
        }
    }
}

impl std::error::Error for ShareError {}

/// A pluggable replacement policy.
///
/// `set` and `way` identify the slot: the cache guarantees `way <
/// associativity` and `set < num_sets` (both fixed at construction through
/// [`CachePolicy::configure`]).
pub trait CachePolicy: Send + Sync {
    /// Name used in reports.
    fn name(&self) -> &str;

    /// Called once by the cache with its geometry before use.
    fn configure(&mut self, num_sets: usize, associativity: usize);

    /// Called once by the cache after [`CachePolicy::configure`] with the
    /// shared per-tenant accounting table. Tenant-aware policies keep the
    /// `Arc` and read live occupancies from it; the default implementation
    /// drops it (tenant-oblivious policies need no view).
    fn bind_tenants(&mut self, tenants: Arc<TenantTable>) {
        let _ = tenants;
    }

    /// Called by a cache that is one shard of a larger logical cache, after
    /// [`CachePolicy::configure`], with the **logical** total line count.
    /// Quota-keeping policies size per-tenant shares over this count instead
    /// of the shard-local one `configure` saw: every shard then enforces the
    /// same global quota against the (shared) global occupancy gauges, so
    /// per-shard rounding cannot strand lines. Tenant-oblivious policies
    /// ignore it (the default).
    fn bind_global_lines(&mut self, total_lines: u64) {
        let _ = total_lines;
    }

    /// A hit on `(set, way)` was served.
    fn on_access(&self, set: usize, way: usize);

    /// `(set, way)` was (re)filled with new contents.
    fn on_fill(&self, set: usize, way: usize);

    /// Choose a victim among the ways of `set` for which `evictable[way]` is
    /// true. `owners[way]` is the tenant currently owning the way's line
    /// ([`NO_TENANT`] for unowned ways); tenant-oblivious policies ignore it.
    /// Returns `None` when no way is evictable (all pinned or busy); the
    /// cache then reports `NoLineAvailable` and the caller retries, which is
    /// AGILE's answer to the eviction-deadlock scenario of §2.3.2.
    fn choose_victim(&self, set: usize, evictable: &[bool], owners: &[u32]) -> Option<usize>;

    /// Online share-weight update for `tenant` (the control plane's
    /// actuator). Returns the weight actually installed — values above
    /// [`MAX_ONLINE_SHARE`] are clamped to it — or [`ShareError::Zero`] for
    /// zero weights and [`ShareError::Unsupported`] (the default) for
    /// tenant-oblivious policies.
    fn set_share(&self, _tenant: u32, _weight: u64) -> Result<u64, ShareError> {
        Err(ShareError::Unsupported)
    }

    /// Current share weight of `tenant`; `None` when the policy keeps no
    /// shares or uses its default weight for the tenant.
    fn share(&self, _tenant: u32) -> Option<u64> {
        None
    }
}

/// The clock (second-chance) policy used by the paper's DLRM evaluation.
pub struct ClockPolicy {
    assoc: usize,
    /// One reference bit per way.
    ref_bits: Vec<AtomicU32>,
    /// Clock hand per set.
    hands: Vec<AtomicU32>,
}

impl ClockPolicy {
    /// An unconfigured clock policy (the cache will call `configure`).
    pub fn new() -> Self {
        ClockPolicy {
            assoc: 0,
            ref_bits: Vec::new(),
            hands: Vec::new(),
        }
    }
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.assoc + way
    }
}

impl Default for ClockPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CachePolicy for ClockPolicy {
    fn name(&self) -> &str {
        "clock"
    }
    fn configure(&mut self, num_sets: usize, associativity: usize) {
        self.assoc = associativity;
        self.ref_bits = (0..num_sets * associativity)
            .map(|_| AtomicU32::new(0))
            .collect();
        self.hands = (0..num_sets).map(|_| AtomicU32::new(0)).collect();
    }
    fn on_access(&self, set: usize, way: usize) {
        self.ref_bits[self.idx(set, way)].store(1, Ordering::Relaxed);
    }
    fn on_fill(&self, set: usize, way: usize) {
        self.ref_bits[self.idx(set, way)].store(1, Ordering::Relaxed);
    }
    fn choose_victim(&self, set: usize, evictable: &[bool], _owners: &[u32]) -> Option<usize> {
        if !evictable.iter().any(|&e| e) {
            return None;
        }
        let hand = &self.hands[set];
        // Two sweeps: the first clears reference bits, the second is
        // guaranteed to find an evictable way with a cleared bit.
        for _ in 0..(2 * self.assoc) {
            let pos = (hand.fetch_add(1, Ordering::Relaxed) as usize) % self.assoc;
            if !evictable[pos] {
                continue;
            }
            let bit = &self.ref_bits[self.idx(set, pos)];
            if bit.swap(0, Ordering::Relaxed) == 0 {
                return Some(pos);
            }
        }
        // Fall back to the first evictable way (all bits were set repeatedly
        // by concurrent hits).
        evictable.iter().position(|&e| e)
    }
}

/// Least-recently-used, tracked with a global logical timestamp per way.
pub struct LruPolicy {
    assoc: usize,
    stamps: Vec<AtomicU64>,
    tick: AtomicU64,
}

impl LruPolicy {
    /// An unconfigured LRU policy.
    pub fn new() -> Self {
        LruPolicy {
            assoc: 0,
            stamps: Vec::new(),
            tick: AtomicU64::new(1),
        }
    }
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.assoc + way
    }
    fn touch(&self, set: usize, way: usize) {
        let t = self.tick.fetch_add(1, Ordering::Relaxed);
        self.stamps[self.idx(set, way)].store(t, Ordering::Relaxed);
    }
}

impl Default for LruPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CachePolicy for LruPolicy {
    fn name(&self) -> &str {
        "lru"
    }
    fn configure(&mut self, num_sets: usize, associativity: usize) {
        self.assoc = associativity;
        self.stamps = (0..num_sets * associativity)
            .map(|_| AtomicU64::new(0))
            .collect();
    }
    fn on_access(&self, set: usize, way: usize) {
        self.touch(set, way);
    }
    fn on_fill(&self, set: usize, way: usize) {
        self.touch(set, way);
    }
    fn choose_victim(&self, set: usize, evictable: &[bool], _owners: &[u32]) -> Option<usize> {
        evictable
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .min_by_key(|(way, _)| self.stamps[self.idx(set, *way)].load(Ordering::Relaxed))
            .map(|(way, _)| way)
    }
}

/// First-in-first-out: evicts the oldest fill regardless of hits.
pub struct FifoPolicy {
    assoc: usize,
    filled_at: Vec<AtomicU64>,
    tick: AtomicU64,
}

impl FifoPolicy {
    /// An unconfigured FIFO policy.
    pub fn new() -> Self {
        FifoPolicy {
            assoc: 0,
            filled_at: Vec::new(),
            tick: AtomicU64::new(1),
        }
    }
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.assoc + way
    }
}

impl Default for FifoPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CachePolicy for FifoPolicy {
    fn name(&self) -> &str {
        "fifo"
    }
    fn configure(&mut self, num_sets: usize, associativity: usize) {
        self.assoc = associativity;
        self.filled_at = (0..num_sets * associativity)
            .map(|_| AtomicU64::new(0))
            .collect();
    }
    fn on_access(&self, _set: usize, _way: usize) {}
    fn on_fill(&self, set: usize, way: usize) {
        let t = self.tick.fetch_add(1, Ordering::Relaxed);
        self.filled_at[self.idx(set, way)].store(t, Ordering::Relaxed);
    }
    fn choose_victim(&self, set: usize, evictable: &[bool], _owners: &[u32]) -> Option<usize> {
        evictable
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .min_by_key(|(way, _)| self.filled_at[self.idx(set, *way)].load(Ordering::Relaxed))
            .map(|(way, _)| way)
    }
}

/// Uniform-random victim selection (xorshift over an atomic seed).
pub struct RandomPolicy {
    seed: AtomicU64,
}

impl RandomPolicy {
    /// A random policy with a fixed seed (deterministic runs).
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            seed: AtomicU64::new(seed | 1),
        }
    }
    fn next(&self) -> u64 {
        let mut x = self.seed.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.seed.store(x, Ordering::Relaxed);
        x
    }
}

impl CachePolicy for RandomPolicy {
    fn name(&self) -> &str {
        "random"
    }
    fn configure(&mut self, _num_sets: usize, _associativity: usize) {}
    fn on_access(&self, _set: usize, _way: usize) {}
    fn on_fill(&self, _set: usize, _way: usize) {}
    fn choose_victim(&self, _set: usize, evictable: &[bool], _owners: &[u32]) -> Option<usize> {
        let candidates: Vec<usize> = evictable
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[(self.next() % candidates.len() as u64) as usize])
        }
    }
}

/// Tenant-aware eviction: bound each tenant's occupancy to a weighted share
/// of the cache, preferring to evict lines of tenants that are **over**
/// their quota.
///
/// A tenant's quota is its weighted fraction of the total line count,
/// computed over the tenants *currently holding lines*:
/// `share(t) = lines × weight(t) / Σ active weights` (at least one line).
/// On eviction the policy first restricts the candidate ways to those owned
/// by over-quota tenants and picks among them with an interior clock
/// (second-chance) order; when no over-quota line is evictable it falls back
/// to the plain clock choice over every evictable way — so a tenant alone in
/// the cache (or sharing it with idle tenants) still uses the whole
/// capacity: the policy is **work-conserving**, exactly like the raw-path
/// `WeightedFair` SQ scheduler it mirrors.
///
/// The live occupancy gauge comes from the cache's [`TenantTable`], bound at
/// construction through [`CachePolicy::bind_tenants`]. Quota enforcement is
/// eviction-side only: fills are never blocked (a fill is system traffic —
/// deferring it would violate the QoS-exemption invariant), so a burst can
/// transiently exceed its share and is then preferentially reclaimed.
pub struct TenantShare {
    /// Interior recency order (second-chance) shared by the filtered and the
    /// fallback victim choice.
    inner: ClockPolicy,
    /// Explicit per-tenant weights; tenants not listed get `default_weight`.
    /// Behind a lock so the control plane can retune shares online
    /// ([`CachePolicy::set_share`]) while warps evict concurrently; the
    /// victim path takes it shared once per choice.
    weights: RwLock<BTreeMap<u32, u64>>,
    default_weight: u64,
    /// Total lines quotas are computed over: sets × associativity from
    /// `configure`, overridden with the logical line count by
    /// [`CachePolicy::bind_global_lines`] when this policy serves one shard
    /// of a sharded cache (occupancy gauges are global there too, so quota
    /// and gauge stay in the same unit).
    total_lines: u64,
    /// Live per-tenant occupancy view, bound by the owning cache.
    tenants: Option<Arc<TenantTable>>,
}

impl TenantShare {
    /// Equal-weight shares.
    pub fn new() -> Self {
        TenantShare {
            inner: ClockPolicy::new(),
            weights: RwLock::new(BTreeMap::new()),
            default_weight: 1,
            total_lines: 0,
            tenants: None,
        }
    }

    /// Shares from explicit weights indexed by tenant id (tenants beyond the
    /// slice fall back to weight 1; zero weights are clamped to 1).
    pub fn from_weights(weights: &[u64]) -> Self {
        let policy = TenantShare::new();
        {
            let mut map = policy.weights.write();
            for (tenant, &w) in weights.iter().enumerate() {
                map.insert(tenant as u32, w.max(1));
            }
        }
        policy
    }

    /// Override one tenant's weight (builder-style).
    pub fn with_weight(self, tenant: u32, weight: u64) -> Self {
        self.weights.write().insert(tenant, weight.max(1));
        self
    }

    fn weight_of(weights: &BTreeMap<u32, u64>, default_weight: u64, tenant: u32) -> u64 {
        *weights.get(&tenant).unwrap_or(&default_weight)
    }
}

impl Default for TenantShare {
    fn default() -> Self {
        TenantShare::new()
    }
}

impl CachePolicy for TenantShare {
    fn name(&self) -> &str {
        "tenant-share"
    }
    fn configure(&mut self, num_sets: usize, associativity: usize) {
        self.inner.configure(num_sets, associativity);
        self.total_lines = (num_sets * associativity) as u64;
    }
    fn bind_tenants(&mut self, tenants: Arc<TenantTable>) {
        self.tenants = Some(tenants);
    }
    fn bind_global_lines(&mut self, total_lines: u64) {
        self.total_lines = total_lines;
    }
    fn on_access(&self, set: usize, way: usize) {
        self.inner.on_access(set, way);
    }
    fn on_fill(&self, set: usize, way: usize) {
        self.inner.on_fill(set, way);
    }
    fn choose_victim(&self, set: usize, evictable: &[bool], owners: &[u32]) -> Option<usize> {
        let Some(table) = &self.tenants else {
            // No occupancy view bound (bare policy rigs): plain clock.
            return self.inner.choose_victim(set, evictable, owners);
        };
        let active = table.active_occupancies();
        // One shared acquisition per victim choice: the weights are read into
        // the closure below under a consistent snapshot, so a concurrent
        // online retune flips the quota view atomically between choices.
        let weights = self.weights.read();
        let active_weight: u64 = active
            .iter()
            .map(|&(t, _)| Self::weight_of(&weights, self.default_weight, t))
            .sum();
        if active_weight > 0 {
            // Candidate ways owned by a tenant over its weighted share.
            let over_quota = |tenant: u32| -> bool {
                if tenant == NO_TENANT {
                    return false;
                }
                let Some(&(_, occ)) = active.iter().find(|&&(t, _)| t == tenant) else {
                    return false;
                };
                let weight = Self::weight_of(&weights, self.default_weight, tenant);
                let share = ((self.total_lines as u128 * weight as u128) / active_weight as u128)
                    .max(1) as u64;
                occ > share
            };
            let filtered: Vec<bool> = evictable
                .iter()
                .zip(owners)
                .map(|(&e, &o)| e && over_quota(o))
                .collect();
            if filtered.iter().any(|&b| b) {
                if let Some(victim) = self.inner.choose_victim(set, &filtered, owners) {
                    return Some(victim);
                }
            }
        }
        // Work-conserving fallback: nobody (evictable) is over quota.
        self.inner.choose_victim(set, evictable, owners)
    }

    /// Rebind `tenant`'s occupancy share online: one write-lock store the
    /// next victim choice observes (evictions are never blocked mid-choice —
    /// the victim path holds the lock shared for the whole choice).
    fn set_share(&self, tenant: u32, weight: u64) -> Result<u64, ShareError> {
        if weight == 0 {
            return Err(ShareError::Zero);
        }
        let applied = weight.min(MAX_ONLINE_SHARE);
        self.weights.write().insert(tenant, applied);
        Ok(applied)
    }

    fn share(&self, tenant: u32) -> Option<u64> {
        self.weights.read().get(&tenant).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configured<P: CachePolicy>(mut p: P) -> P {
        p.configure(4, 4);
        p
    }

    /// Owner view of an all-unowned set.
    fn unowned(n: usize) -> Vec<u32> {
        vec![NO_TENANT; n]
    }

    #[test]
    fn clock_gives_second_chances() {
        let p = configured(ClockPolicy::new());
        for w in 0..4 {
            p.on_fill(0, w);
        }
        // Way 1 is hot (recently accessed every time); others decay.
        p.on_access(0, 1);
        let evictable = vec![true; 4];
        let v1 = p.choose_victim(0, &evictable, &unowned(4)).unwrap();
        assert_ne!(v1, 1, "hot way should survive the first sweep");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let p = configured(LruPolicy::new());
        for w in 0..4 {
            p.on_fill(0, w);
        }
        p.on_access(0, 0);
        p.on_access(0, 2);
        p.on_access(0, 3);
        // Way 1 is now the least recently used.
        assert_eq!(p.choose_victim(0, [true; 4].as_ref(), &unowned(4)), Some(1));
    }

    #[test]
    fn fifo_ignores_hits() {
        let p = configured(FifoPolicy::new());
        for w in 0..4 {
            p.on_fill(0, w);
        }
        // Hits on way 0 must not save it: it was filled first.
        p.on_access(0, 0);
        p.on_access(0, 0);
        assert_eq!(p.choose_victim(0, [true; 4].as_ref(), &unowned(4)), Some(0));
    }

    #[test]
    fn random_only_picks_evictable() {
        let p = RandomPolicy::new(42);
        let evictable = vec![false, true, false, true];
        for _ in 0..100 {
            let v = p.choose_victim(0, &evictable, &unowned(4)).unwrap();
            assert!(v == 1 || v == 3);
        }
    }

    #[test]
    fn all_policies_return_none_when_nothing_evictable() {
        let none = vec![false; 4];
        let owners = unowned(4);
        assert_eq!(
            configured(ClockPolicy::new()).choose_victim(0, &none, &owners),
            None
        );
        assert_eq!(
            configured(LruPolicy::new()).choose_victim(0, &none, &owners),
            None
        );
        assert_eq!(
            configured(FifoPolicy::new()).choose_victim(0, &none, &owners),
            None
        );
        assert_eq!(RandomPolicy::new(1).choose_victim(0, &none, &owners), None);
        assert_eq!(
            configured(TenantShare::new()).choose_victim(0, &none, &owners),
            None
        );
    }

    #[test]
    fn policies_respect_partial_evictability() {
        let p = configured(LruPolicy::new());
        for w in 0..4 {
            p.on_fill(1, w);
        }
        // Oldest way (0) is not evictable ⇒ next oldest (1) chosen.
        let evictable = vec![false, true, true, true];
        assert_eq!(p.choose_victim(1, &evictable, &unowned(4)), Some(1));
    }

    /// A TenantShare over 16 lines with a bound occupancy table.
    fn tenant_share_with(table: &Arc<TenantTable>, weights: &[u64]) -> TenantShare {
        let mut p = TenantShare::from_weights(weights);
        p.configure(4, 4);
        p.bind_tenants(Arc::clone(table));
        p
    }

    #[test]
    fn tenant_share_prefers_over_quota_owners() {
        let table = Arc::new(TenantTable::new());
        // Tenant 0 hogs 12 of 16 lines; tenant 1 holds 4. Equal weights ⇒
        // shares of 8 each: tenant 0 is over quota, tenant 1 is not.
        for _ in 0..12 {
            table.occupy(0);
        }
        for _ in 0..4 {
            table.occupy(1);
        }
        let p = tenant_share_with(&table, &[1, 1]);
        let evictable = vec![true; 4];
        // Ways 0/2 owned by the hog, 1 by the victim, 3 unowned.
        let owners = vec![0, 1, 0, NO_TENANT];
        for _ in 0..20 {
            let v = p.choose_victim(0, &evictable, &owners).unwrap();
            assert!(
                v == 0 || v == 2,
                "victim must be one of the over-quota tenant's ways, got {v}"
            );
        }
    }

    #[test]
    fn tenant_share_is_work_conserving_when_nobody_is_over_quota() {
        let table = Arc::new(TenantTable::new());
        // A lone tenant filling the whole cache is never over its share
        // (share = all 16 lines), so eviction falls back to plain clock.
        for _ in 0..16 {
            table.occupy(7);
        }
        let p = tenant_share_with(&table, &[]);
        let evictable = vec![true; 4];
        let owners = vec![7; 4];
        assert!(p.choose_victim(0, &evictable, &owners).is_some());
    }

    #[test]
    fn tenant_share_weights_skew_the_quota() {
        let table = Arc::new(TenantTable::new());
        // 3:1 weights over 16 lines ⇒ shares 12 and 4. Tenant 1 holding 6
        // is over quota even though tenant 0 holds more lines (10 < 12).
        for _ in 0..10 {
            table.occupy(0);
        }
        for _ in 0..6 {
            table.occupy(1);
        }
        let p = tenant_share_with(&table, &[3, 1]);
        let evictable = vec![true; 4];
        let owners = vec![0, 1, 0, 1];
        for _ in 0..20 {
            let v = p.choose_victim(0, &evictable, &owners).unwrap();
            assert!(v == 1 || v == 3, "only tenant 1 is over its share, got {v}");
        }
    }

    #[test]
    fn tenant_share_online_share_update_flips_the_quota() {
        let table = Arc::new(TenantTable::new());
        // 10 vs 6 lines under equal weights (shares 8/8): tenant 0 over.
        for _ in 0..10 {
            table.occupy(0);
        }
        for _ in 0..6 {
            table.occupy(1);
        }
        let p = tenant_share_with(&table, &[1, 1]);
        let evictable = vec![true; 4];
        let owners = vec![0, 1, 0, 1];
        let v = p.choose_victim(0, &evictable, &owners).unwrap();
        assert!(v == 0 || v == 2, "tenant 0 starts over quota");
        // Retune online to 3:1 (shares 12/4): now tenant 1 is the one over.
        assert_eq!(p.set_share(0, 3), Ok(3));
        assert_eq!(p.share(0), Some(3));
        for _ in 0..20 {
            let v = p.choose_victim(0, &evictable, &owners).unwrap();
            assert!(v == 1 || v == 3, "after the retune only tenant 1 is over");
        }
    }

    #[test]
    fn share_updates_reject_zero_and_clamp_overflow() {
        let p = TenantShare::from_weights(&[2]);
        assert_eq!(p.set_share(0, 0), Err(ShareError::Zero));
        assert_eq!(p.share(0), Some(2), "rejected update must not apply");
        assert_eq!(p.set_share(0, u64::MAX), Ok(MAX_ONLINE_SHARE));
        assert_eq!(p.share(0), Some(MAX_ONLINE_SHARE));
        // Tenant-oblivious policies refuse online shares.
        assert_eq!(
            configured(ClockPolicy::new()).set_share(0, 2),
            Err(ShareError::Unsupported)
        );
        assert_eq!(configured(LruPolicy::new()).share(0), None);
    }

    #[test]
    fn bind_global_lines_overrides_the_local_quota_base() {
        let table = Arc::new(TenantTable::new());
        let mut p = TenantShare::from_weights(&[1, 1]);
        // One shard of a 4-shard cache: 4 local sets of a 16-set logical
        // cache, 4-way. Quotas must be computed over the 64 logical lines.
        p.configure(4, 4);
        p.bind_global_lines(64);
        p.bind_tenants(Arc::clone(&table));
        // Tenant 0 holds 20 of 64 lines (global gauge) — under its 32-line
        // global share, so nothing is over quota and eviction falls back to
        // plain clock. With a shard-local base (16 lines ⇒ share 8) it would
        // wrongly be over.
        for _ in 0..20 {
            table.occupy(0);
        }
        for _ in 0..4 {
            table.occupy(1);
        }
        let evictable = vec![true; 4];
        let owners = vec![0, 1, 0, 1];
        let mut saw_tenant1_victim = false;
        for _ in 0..20 {
            let v = p.choose_victim(0, &evictable, &owners).unwrap();
            saw_tenant1_victim |= v == 1 || v == 3;
        }
        assert!(
            saw_tenant1_victim,
            "with global quotas nobody is over share, so plain clock must \
             also rotate through tenant 1's ways"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Sharding must not strand quota lines: splitting a cache of `lines`
        /// lines into `shards` set-range shards and computing each shard's
        /// quota locally (`⌊local × w / W⌋`, one-line floor) loses at most
        /// one line of quota per shard to rounding — Σ per-shard quotas ≥
        /// global quota − shards. The implemented design does strictly
        /// better: [`CachePolicy::bind_global_lines`] makes every shard
        /// enforce the *global* quota against the shared occupancy gauges,
        /// so no quota is lost at all.
        #[test]
        fn per_shard_quota_rounding_strands_at_most_one_line_per_shard(
            sets in 1usize..512,
            assoc in 1usize..16,
            shards in 1usize..16,
            weight in 1u64..64,
            active_weight_extra in 0u64..64,
        ) {
            let active_weight = weight + active_weight_extra;
            let lines = (sets * assoc) as u64;
            let global_quota =
                ((lines as u128 * weight as u128) / active_weight as u128).max(1) as u64;
            let sets_per_shard = sets.div_ceil(shards);
            let mut covered = 0usize;
            let mut local_quota_sum = 0u64;
            let mut shard_count = 0u64;
            while covered < sets {
                let local_sets = sets_per_shard.min(sets - covered);
                let local_lines = (local_sets * assoc) as u64;
                local_quota_sum += ((local_lines as u128 * weight as u128)
                    / active_weight as u128)
                    .max(1) as u64;
                covered += local_sets;
                shard_count += 1;
            }
            proptest::prop_assert!(
                local_quota_sum >= global_quota.saturating_sub(shard_count),
                "local quotas {} vs global {} over {} shards",
                local_quota_sum, global_quota, shard_count
            );

            // The shipped design: every shard binds the global line count, so
            // each enforces exactly the global quota — zero stranding.
            let mut p = TenantShare::new();
            p.configure(sets_per_shard.min(sets), assoc);
            p.bind_global_lines(lines);
            proptest::prop_assert_eq!(p.total_lines, lines);
        }
    }

    #[test]
    fn tenant_share_respects_evictability_within_the_preference() {
        let table = Arc::new(TenantTable::new());
        for _ in 0..16 {
            table.occupy(0);
        }
        table.occupy(1);
        let p = tenant_share_with(&table, &[1, 1]);
        // The over-quota tenant's only way is pinned: fall back to the
        // evictable rest instead of returning None.
        let evictable = vec![false, true, true, true];
        let owners = vec![0, 1, 1, NO_TENANT];
        let v = p.choose_victim(0, &evictable, &owners).unwrap();
        assert_ne!(v, 0, "pinned way must never be chosen");
    }
}
