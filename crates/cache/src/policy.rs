//! Replacement policies.
//!
//! The paper makes cache-policy flexibility a headline feature: BaM hard-codes
//! one policy, AGILE lets applications plug in their own (§3.4, §3.5 use the
//! clock policy for the DLRM evaluation). The [`CachePolicy`] trait is the
//! Rust analogue of the paper's CRTP-based `GPUCacheBase<Impl>` hook: the
//! cache calls the policy on every access/fill and asks it to pick a victim
//! among the evictable ways of a set.
//!
//! Four built-in policies are provided: [`ClockPolicy`] (the paper's default,
//! second-chance), [`LruPolicy`], [`FifoPolicy`] and [`RandomPolicy`].
//! All of them are lock-free: metadata is kept in per-way atomics.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// A pluggable replacement policy.
///
/// `set` and `way` identify the slot: the cache guarantees `way <
/// associativity` and `set < num_sets` (both fixed at construction through
/// [`CachePolicy::configure`]).
pub trait CachePolicy: Send + Sync {
    /// Name used in reports.
    fn name(&self) -> &str;

    /// Called once by the cache with its geometry before use.
    fn configure(&mut self, num_sets: usize, associativity: usize);

    /// A hit on `(set, way)` was served.
    fn on_access(&self, set: usize, way: usize);

    /// `(set, way)` was (re)filled with new contents.
    fn on_fill(&self, set: usize, way: usize);

    /// Choose a victim among the ways of `set` for which `evictable[way]` is
    /// true. Returns `None` when no way is evictable (all pinned or busy);
    /// the cache then reports `NoLineAvailable` and the caller retries, which
    /// is AGILE's answer to the eviction-deadlock scenario of §2.3.2.
    fn choose_victim(&self, set: usize, evictable: &[bool]) -> Option<usize>;
}

/// The clock (second-chance) policy used by the paper's DLRM evaluation.
pub struct ClockPolicy {
    assoc: usize,
    /// One reference bit per way.
    ref_bits: Vec<AtomicU32>,
    /// Clock hand per set.
    hands: Vec<AtomicU32>,
}

impl ClockPolicy {
    /// An unconfigured clock policy (the cache will call `configure`).
    pub fn new() -> Self {
        ClockPolicy {
            assoc: 0,
            ref_bits: Vec::new(),
            hands: Vec::new(),
        }
    }
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.assoc + way
    }
}

impl Default for ClockPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CachePolicy for ClockPolicy {
    fn name(&self) -> &str {
        "clock"
    }
    fn configure(&mut self, num_sets: usize, associativity: usize) {
        self.assoc = associativity;
        self.ref_bits = (0..num_sets * associativity)
            .map(|_| AtomicU32::new(0))
            .collect();
        self.hands = (0..num_sets).map(|_| AtomicU32::new(0)).collect();
    }
    fn on_access(&self, set: usize, way: usize) {
        self.ref_bits[self.idx(set, way)].store(1, Ordering::Relaxed);
    }
    fn on_fill(&self, set: usize, way: usize) {
        self.ref_bits[self.idx(set, way)].store(1, Ordering::Relaxed);
    }
    fn choose_victim(&self, set: usize, evictable: &[bool]) -> Option<usize> {
        if !evictable.iter().any(|&e| e) {
            return None;
        }
        let hand = &self.hands[set];
        // Two sweeps: the first clears reference bits, the second is
        // guaranteed to find an evictable way with a cleared bit.
        for _ in 0..(2 * self.assoc) {
            let pos = (hand.fetch_add(1, Ordering::Relaxed) as usize) % self.assoc;
            if !evictable[pos] {
                continue;
            }
            let bit = &self.ref_bits[self.idx(set, pos)];
            if bit.swap(0, Ordering::Relaxed) == 0 {
                return Some(pos);
            }
        }
        // Fall back to the first evictable way (all bits were set repeatedly
        // by concurrent hits).
        evictable.iter().position(|&e| e)
    }
}

/// Least-recently-used, tracked with a global logical timestamp per way.
pub struct LruPolicy {
    assoc: usize,
    stamps: Vec<AtomicU64>,
    tick: AtomicU64,
}

impl LruPolicy {
    /// An unconfigured LRU policy.
    pub fn new() -> Self {
        LruPolicy {
            assoc: 0,
            stamps: Vec::new(),
            tick: AtomicU64::new(1),
        }
    }
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.assoc + way
    }
    fn touch(&self, set: usize, way: usize) {
        let t = self.tick.fetch_add(1, Ordering::Relaxed);
        self.stamps[self.idx(set, way)].store(t, Ordering::Relaxed);
    }
}

impl Default for LruPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CachePolicy for LruPolicy {
    fn name(&self) -> &str {
        "lru"
    }
    fn configure(&mut self, num_sets: usize, associativity: usize) {
        self.assoc = associativity;
        self.stamps = (0..num_sets * associativity)
            .map(|_| AtomicU64::new(0))
            .collect();
    }
    fn on_access(&self, set: usize, way: usize) {
        self.touch(set, way);
    }
    fn on_fill(&self, set: usize, way: usize) {
        self.touch(set, way);
    }
    fn choose_victim(&self, set: usize, evictable: &[bool]) -> Option<usize> {
        evictable
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .min_by_key(|(way, _)| self.stamps[self.idx(set, *way)].load(Ordering::Relaxed))
            .map(|(way, _)| way)
    }
}

/// First-in-first-out: evicts the oldest fill regardless of hits.
pub struct FifoPolicy {
    assoc: usize,
    filled_at: Vec<AtomicU64>,
    tick: AtomicU64,
}

impl FifoPolicy {
    /// An unconfigured FIFO policy.
    pub fn new() -> Self {
        FifoPolicy {
            assoc: 0,
            filled_at: Vec::new(),
            tick: AtomicU64::new(1),
        }
    }
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.assoc + way
    }
}

impl Default for FifoPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CachePolicy for FifoPolicy {
    fn name(&self) -> &str {
        "fifo"
    }
    fn configure(&mut self, num_sets: usize, associativity: usize) {
        self.assoc = associativity;
        self.filled_at = (0..num_sets * associativity)
            .map(|_| AtomicU64::new(0))
            .collect();
    }
    fn on_access(&self, _set: usize, _way: usize) {}
    fn on_fill(&self, set: usize, way: usize) {
        let t = self.tick.fetch_add(1, Ordering::Relaxed);
        self.filled_at[self.idx(set, way)].store(t, Ordering::Relaxed);
    }
    fn choose_victim(&self, set: usize, evictable: &[bool]) -> Option<usize> {
        evictable
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .min_by_key(|(way, _)| self.filled_at[self.idx(set, *way)].load(Ordering::Relaxed))
            .map(|(way, _)| way)
    }
}

/// Uniform-random victim selection (xorshift over an atomic seed).
pub struct RandomPolicy {
    seed: AtomicU64,
}

impl RandomPolicy {
    /// A random policy with a fixed seed (deterministic runs).
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            seed: AtomicU64::new(seed | 1),
        }
    }
    fn next(&self) -> u64 {
        let mut x = self.seed.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.seed.store(x, Ordering::Relaxed);
        x
    }
}

impl CachePolicy for RandomPolicy {
    fn name(&self) -> &str {
        "random"
    }
    fn configure(&mut self, _num_sets: usize, _associativity: usize) {}
    fn on_access(&self, _set: usize, _way: usize) {}
    fn on_fill(&self, _set: usize, _way: usize) {}
    fn choose_victim(&self, _set: usize, evictable: &[bool]) -> Option<usize> {
        let candidates: Vec<usize> = evictable
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[(self.next() % candidates.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configured<P: CachePolicy>(mut p: P) -> P {
        p.configure(4, 4);
        p
    }

    #[test]
    fn clock_gives_second_chances() {
        let p = configured(ClockPolicy::new());
        for w in 0..4 {
            p.on_fill(0, w);
        }
        // Way 1 is hot (recently accessed every time); others decay.
        p.on_access(0, 1);
        let evictable = vec![true; 4];
        let v1 = p.choose_victim(0, &evictable).unwrap();
        assert_ne!(v1, 1, "hot way should survive the first sweep");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let p = configured(LruPolicy::new());
        for w in 0..4 {
            p.on_fill(0, w);
        }
        p.on_access(0, 0);
        p.on_access(0, 2);
        p.on_access(0, 3);
        // Way 1 is now the least recently used.
        assert_eq!(p.choose_victim(0, [true; 4].as_ref()), Some(1));
    }

    #[test]
    fn fifo_ignores_hits() {
        let p = configured(FifoPolicy::new());
        for w in 0..4 {
            p.on_fill(0, w);
        }
        // Hits on way 0 must not save it: it was filled first.
        p.on_access(0, 0);
        p.on_access(0, 0);
        assert_eq!(p.choose_victim(0, [true; 4].as_ref()), Some(0));
    }

    #[test]
    fn random_only_picks_evictable() {
        let p = RandomPolicy::new(42);
        let evictable = vec![false, true, false, true];
        for _ in 0..100 {
            let v = p.choose_victim(0, &evictable).unwrap();
            assert!(v == 1 || v == 3);
        }
    }

    #[test]
    fn all_policies_return_none_when_nothing_evictable() {
        let none = vec![false; 4];
        assert_eq!(configured(ClockPolicy::new()).choose_victim(0, &none), None);
        assert_eq!(configured(LruPolicy::new()).choose_victim(0, &none), None);
        assert_eq!(configured(FifoPolicy::new()).choose_victim(0, &none), None);
        assert_eq!(RandomPolicy::new(1).choose_victim(0, &none), None);
    }

    #[test]
    fn policies_respect_partial_evictability() {
        let p = configured(LruPolicy::new());
        for w in 0..4 {
            p.on_fill(1, w);
        }
        // Oldest way (0) is not evictable ⇒ next oldest (1) chosen.
        let evictable = vec![false, true, true, true];
        assert_eq!(p.choose_victim(1, &evictable), Some(1));
    }
}
