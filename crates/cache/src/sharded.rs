//! Set-range sharding of the software cache.
//!
//! After lock sharding (nvme-sim's `ShardedArray`) and service scale-out,
//! the software cache is the last global serial structure on the hot path:
//! every warp on every service partition funnels through one
//! [`SoftwareCache`]. [`ShardedCache`] applies the same playbook to it: the
//! logical set space is split into N contiguous ranges (set index → shard by
//! high bits), each owned by an independent `SoftwareCache`, so lookups to
//! different ranges touch disjoint tag locks and disjoint policy state.
//!
//! Two properties make the split safe:
//!
//! * **Structural transparency.** The address hash is computed over the
//!   *logical* set count and only then rebased into a shard, so the
//!   `(dev, lba) → set → way` mapping — and with it every hit/miss/victim
//!   decision of a deterministic policy — is bit-identical at any shard
//!   count. `cache_shards=1` is the exact pre-sharding cache and stays
//!   golden-gated.
//! * **One logical cache for tenants.** All shards share a single
//!   [`TenantTable`], and quota policies are rebased onto the logical line
//!   count ([`crate::CachePolicy::bind_global_lines`]), so `TenantShare`
//!   occupancy bounds and the control plane's `set_share` actuator (which
//!   fans out to every shard) see one cache, not N small ones — per-shard
//!   quota rounding cannot strand lines.
//!
//! Contention is modeled the same way as the NVMe doorbell path: each shard
//! has an **access port** that serializes lookups at a configurable hold
//! cost ([`ShardedCache::port_acquire`]). The default hold is 0 — sharding
//! is then purely structural and free — and cost-model studies (the
//! cache-shard scaling gate, the bench sweep) opt into a nonzero hold to
//! measure how splitting the port queue scales aggregate throughput.

use crate::cache::{global_set_of, CacheConfig, CacheLookup, CacheStats, LineId, SoftwareCache};
use crate::line::{LineState, Way};
use crate::policy::{CachePolicy, ShareError};
use crate::tenant::{TenantCacheStats, TenantTable};
use agile_sim::trace::TraceSink;
use nvme_sim::{Lba, PageToken};
use parking_lot::Mutex;
use std::sync::Arc;

/// FIFO occupancy of one shard's access port (see
/// [`ShardedCache::port_acquire`]).
#[derive(Default)]
struct PortState {
    /// Sim time at which the port frees up.
    busy_until: u64,
    /// Total cycles spent queued behind earlier acquires.
    wait_cycles: u64,
    /// Total acquisitions.
    acquires: u64,
}

/// N independent [`SoftwareCache`] shards presenting one logical cache.
///
/// The public surface mirrors `SoftwareCache` method-for-method; line ids
/// are globalized (`shard × lines_per_shard + local`) so callers hold opaque
/// handles that survive routing. See the module docs for the invariants.
pub struct ShardedCache {
    shards: Vec<SoftwareCache>,
    /// Logical geometry (the whole cache, not one shard).
    cfg: CacheConfig,
    /// Logical set count (`cfg.num_sets()`).
    total_sets: usize,
    /// Sets per shard (every shard but possibly the last).
    sets_per_shard: usize,
    /// Lines per shard slot in the global line-id space.
    lines_per_shard: usize,
    /// Per-tenant accounting shared by every shard.
    tenants: Arc<TenantTable>,
    /// One access port per shard; only charged when `port_hold > 0`.
    ports: Vec<Mutex<PortState>>,
    port_hold: u64,
}

impl ShardedCache {
    /// Build a logical cache of `cfg` split into (at most) `shards` set
    /// ranges, each with its own policy instance from `policy_factory`.
    /// `shards` is clamped so every shard owns at least one set.
    ///
    /// `port_hold` is the modeled cycles one lookup holds its shard's access
    /// port ([`ShardedCache::port_acquire`]); 0 (the default everywhere but
    /// contention studies) disables the port model entirely.
    pub fn new(
        cfg: CacheConfig,
        shards: usize,
        port_hold: u64,
        mut policy_factory: impl FnMut() -> Box<dyn CachePolicy>,
    ) -> Self {
        assert!(shards > 0, "at least one cache shard");
        let total_sets = cfg.num_sets();
        let assoc = cfg.associativity as usize;
        let sets_per_shard = total_sets.div_ceil(shards.min(total_sets));
        // The number of non-empty ranges (the last range may be short).
        let n = total_sets.div_ceil(sets_per_shard);
        let tenants = Arc::new(TenantTable::new());
        let shards: Vec<SoftwareCache> = (0..n)
            .map(|i| {
                let base = i * sets_per_shard;
                let local_sets = sets_per_shard.min(total_sets - base);
                SoftwareCache::for_shard(
                    cfg.clone(),
                    policy_factory(),
                    Arc::clone(&tenants),
                    total_sets,
                    base,
                    local_sets,
                )
            })
            .collect();
        ShardedCache {
            ports: (0..n).map(|_| Mutex::new(PortState::default())).collect(),
            shards,
            cfg,
            total_sets,
            sets_per_shard,
            lines_per_shard: sets_per_shard * assoc,
            tenants,
            port_hold,
        }
    }

    /// Number of shards actually built (≤ the requested count).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The modeled per-lookup port hold in cycles (0 = port model off).
    pub fn port_hold(&self) -> u64 {
        self.port_hold
    }

    /// Shard owning `(dev, lba)` — the high bits of the logical set index.
    fn shard_of(&self, dev: u32, lba: Lba) -> usize {
        global_set_of(dev, lba, self.total_sets) / self.sets_per_shard
    }

    /// Shard and shard-local line behind a global line id.
    fn locate(&self, line: LineId) -> (usize, LineId) {
        let shard = line.0 as usize / self.lines_per_shard;
        (shard, LineId(line.0 % self.lines_per_shard as u32))
    }

    /// Globalize a shard-local line id.
    fn globalize(&self, shard: usize, line: LineId) -> LineId {
        LineId((shard * self.lines_per_shard) as u32 + line.0)
    }

    fn map_lookup(&self, shard: usize, lookup: CacheLookup) -> CacheLookup {
        match lookup {
            CacheLookup::Hit { line, token } => CacheLookup::Hit {
                line: self.globalize(shard, line),
                token,
            },
            CacheLookup::Busy { line } => CacheLookup::Busy {
                line: self.globalize(shard, line),
            },
            CacheLookup::Miss {
                line,
                dma,
                writeback,
            } => CacheLookup::Miss {
                line: self.globalize(shard, line),
                dma,
                writeback,
            },
            CacheLookup::NoLineAvailable => CacheLookup::NoLineAvailable,
        }
    }

    /// Charge one lookup's occupancy of its shard's access port and return
    /// the modeled cycles (queue wait + hold). The port is a FIFO server:
    /// an acquire at `now` waits until the port frees, then holds it for
    /// `port_hold` cycles — the cache-side analogue of the NVMe topology
    /// lock's doorbell serialization. Free (returns 0, takes no lock) when
    /// the hold is 0, so the default stack pays nothing.
    pub fn port_acquire(&self, dev: u32, lba: Lba, now: u64) -> u64 {
        if self.port_hold == 0 {
            return 0;
        }
        let mut port = self.ports[self.shard_of(dev, lba)].lock();
        port.acquires += 1;
        let wait = port.busy_until.saturating_sub(now);
        port.busy_until = port.busy_until.max(now) + self.port_hold;
        port.wait_cycles += wait;
        wait + self.port_hold
    }

    /// Cycles spent queued on each shard's access port.
    pub fn port_wait_by_shard(&self) -> Vec<u64> {
        self.ports.iter().map(|p| p.lock().wait_cycles).collect()
    }

    /// Acquisitions of each shard's access port.
    pub fn port_acquires_by_shard(&self) -> Vec<u64> {
        self.ports.iter().map(|p| p.lock().acquires).collect()
    }

    /// Install a trace sink on every shard (the first sink wins, as on
    /// [`SoftwareCache::set_trace_sink`]). Returns `false` if any shard
    /// already had one.
    pub fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) -> bool {
        let mut all = true;
        for shard in &self.shards {
            all &= shard.set_trace_sink(Arc::clone(&sink));
        }
        all
    }

    /// Publish the current sim time to every shard for trace timestamps.
    #[inline]
    pub fn set_time_hint(&self, now: u64) {
        for shard in &self.shards {
            shard.set_time_hint(now);
        }
    }

    /// Logical cache geometry (the whole cache, not one shard).
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Replacement policy name (every shard runs the same policy).
    pub fn policy_name(&self) -> &str {
        self.shards[0].policy_name()
    }

    /// Online share-weight update for `tenant`, fanned out to **every**
    /// shard's policy so the control plane's single actuation keeps all
    /// quota views coherent. Returns the installed weight (identical across
    /// shards) or the first error.
    pub fn set_tenant_share(&self, tenant: u32, weight: u64) -> Result<u64, ShareError> {
        let mut installed = Err(ShareError::Unsupported);
        for shard in &self.shards {
            installed = Ok(shard.set_tenant_share(tenant, weight)?);
        }
        installed
    }

    /// Current share weight of `tenant` (shards agree; shard 0 is asked).
    pub fn tenant_share(&self, tenant: u32) -> Option<u64> {
        self.shards[0].tenant_share(tenant)
    }

    /// Total lines across all shards (equals `config().num_lines()`).
    pub fn num_lines(&self) -> usize {
        self.shards.iter().map(|s| s.num_lines()).sum()
    }

    /// Per-tenant counter snapshot over the whole logical cache (the table
    /// is shared by every shard).
    pub fn tenant_stats(&self) -> Vec<TenantCacheStats> {
        self.tenants.snapshot()
    }

    /// The shared per-tenant accounting table (live occupancy gauges).
    pub fn tenant_table(&self) -> &Arc<TenantTable> {
        &self.tenants
    }

    /// Aggregate counters over all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in self.shards.iter().map(|s| s.stats()) {
            total.hits += s.hits;
            total.busy_hits += s.busy_hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.writebacks += s.writebacks;
            total.no_line += s.no_line;
        }
        total
    }

    /// Per-shard counter snapshots, indexed by shard.
    pub fn stats_by_shard(&self) -> Vec<CacheStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// The way behind a (global) line id.
    pub fn way(&self, line: LineId) -> &Way {
        let (shard, local) = self.locate(line);
        self.shards[shard].way(local)
    }

    /// Non-blocking lookup without tenant attribution; see
    /// [`SoftwareCache::lookup_or_reserve`].
    pub fn lookup_or_reserve(&self, dev: u32, lba: Lba) -> CacheLookup {
        let shard = self.shard_of(dev, lba);
        let lookup = self.shards[shard].lookup_or_reserve(dev, lba);
        self.map_lookup(shard, lookup)
    }

    /// Non-blocking lookup attributed to `tenant`; see
    /// [`SoftwareCache::lookup_or_reserve_as`].
    pub fn lookup_or_reserve_as(&self, dev: u32, lba: Lba, tenant: u32) -> CacheLookup {
        let shard = self.shard_of(dev, lba);
        let lookup = self.shards[shard].lookup_or_reserve_as(dev, lba, tenant);
        self.map_lookup(shard, lookup)
    }

    /// Probe without reserving; see [`SoftwareCache::peek`].
    pub fn peek(&self, dev: u32, lba: Lba) -> Option<PageToken> {
        self.shards[self.shard_of(dev, lba)].peek(dev, lba)
    }

    /// Mark a reserved line filled; see [`SoftwareCache::complete_fill`].
    pub fn complete_fill(&self, line: LineId) {
        let (shard, local) = self.locate(line);
        self.shards[shard].complete_fill(local);
    }

    /// Abandon a reservation; see [`SoftwareCache::abort_fill`].
    pub fn abort_fill(&self, line: LineId) {
        let (shard, local) = self.locate(line);
        self.shards[shard].abort_fill(local);
    }

    /// Re-install a dirty victim whose write-back could not issue; see
    /// [`SoftwareCache::reinstate_victim`].
    pub fn reinstate_victim(&self, line: LineId, dev: u32, lba: Lba, token: PageToken) {
        let (shard, local) = self.locate(line);
        self.shards[shard].reinstate_victim(local, dev, lba, token);
    }

    /// Store `token` into the line and mark it dirty.
    pub fn store(&self, line: LineId, token: PageToken) {
        let (shard, local) = self.locate(line);
        self.shards[shard].store(local, token);
    }

    /// Read the token currently held by a line.
    pub fn read(&self, line: LineId) -> PageToken {
        let (shard, local) = self.locate(line);
        self.shards[shard].read(local)
    }

    /// Current state of a line.
    pub fn state(&self, line: LineId) -> LineState {
        let (shard, local) = self.locate(line);
        self.shards[shard].state(local)
    }

    /// Pin a line (additional reader).
    pub fn pin(&self, line: LineId) {
        let (shard, local) = self.locate(line);
        self.shards[shard].pin(local);
    }

    /// Release a pin.
    pub fn unpin(&self, line: LineId) {
        let (shard, local) = self.locate(line);
        self.shards[shard].unpin(local);
    }

    /// Preload `(dev, lba) → token` as clean data; see
    /// [`SoftwareCache::preload`].
    pub fn preload(&self, dev: u32, lba: Lba, token: PageToken) -> bool {
        self.shards[self.shard_of(dev, lba)].preload(dev, lba, token)
    }

    /// Total pinned lines across all shards.
    pub fn total_pins(&self) -> u64 {
        self.shards.iter().map(|s| s.total_pins()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ClockPolicy, TenantShare};
    use agile_sim::units::SSD_PAGE_SIZE;

    fn cfg(lines: u64, assoc: u32) -> CacheConfig {
        CacheConfig {
            capacity_bytes: lines * SSD_PAGE_SIZE,
            line_size: SSD_PAGE_SIZE,
            associativity: assoc,
        }
    }

    fn sharded(lines: u64, assoc: u32, shards: usize) -> ShardedCache {
        ShardedCache::new(
            cfg(lines, assoc),
            shards,
            0,
            || Box::new(ClockPolicy::new()),
        )
    }

    /// Drive the same access sequence against a flat cache and against N
    /// shards; with the deterministic clock policy the two must agree on
    /// every outcome kind and on the aggregate counters.
    #[test]
    fn structural_sharding_is_outcome_identical_to_flat() {
        for shards in [2usize, 4, 8] {
            let flat = SoftwareCache::new(cfg(64, 4), Box::new(ClockPolicy::new()));
            let split = sharded(64, 4, shards);
            assert_eq!(split.num_shards(), shards);
            assert_eq!(split.num_lines(), flat.num_lines());
            for round in 0..400u64 {
                // A mix of reuse and fresh addresses across two devices.
                let dev = (round % 2) as u32;
                let lba = if round % 3 == 0 {
                    round % 7
                } else {
                    1_000 + round
                };
                let a = flat.lookup_or_reserve(dev, lba);
                let b = split.lookup_or_reserve(dev, lba);
                let kind = |l: &CacheLookup| match l {
                    CacheLookup::Hit { .. } => 0,
                    CacheLookup::Busy { .. } => 1,
                    CacheLookup::Miss { .. } => 2,
                    CacheLookup::NoLineAvailable => 3,
                };
                assert_eq!(kind(&a), kind(&b), "round {round} diverged");
                for (c, l) in [(&flat as &dyn Fill, &a), (&split as &dyn Fill, &b)] {
                    c.finish(l);
                }
            }
            let (f, s) = (flat.stats(), split.stats());
            assert_eq!(f.hits, s.hits);
            assert_eq!(f.misses, s.misses);
            assert_eq!(f.evictions, s.evictions);
            assert_eq!(flat.total_pins(), 0);
            assert_eq!(split.total_pins(), 0);
        }
    }

    /// Minimal fill-completion shim so the flat and sharded caches can be
    /// driven identically in tests.
    trait Fill {
        fn finish(&self, lookup: &CacheLookup);
    }
    impl Fill for SoftwareCache {
        fn finish(&self, lookup: &CacheLookup) {
            match lookup {
                CacheLookup::Hit { line, .. } => self.unpin(*line),
                CacheLookup::Miss { line, dma, .. } => {
                    dma.store(PageToken(line.0 as u64));
                    self.complete_fill(*line);
                    self.unpin(*line);
                }
                _ => {}
            }
        }
    }
    impl Fill for ShardedCache {
        fn finish(&self, lookup: &CacheLookup) {
            match lookup {
                CacheLookup::Hit { line, .. } => self.unpin(*line),
                CacheLookup::Miss { line, dma, .. } => {
                    dma.store(PageToken(line.0 as u64));
                    self.complete_fill(*line);
                    self.unpin(*line);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn line_ids_round_trip_through_the_global_space() {
        let c = sharded(64, 4, 4);
        assert!(c.preload(0, 42, PageToken(7)));
        let CacheLookup::Hit { line, token } = c.lookup_or_reserve(0, 42) else {
            panic!("expected hit");
        };
        assert_eq!(token, PageToken(7));
        assert_eq!(c.read(line), PageToken(7));
        assert_eq!(c.state(line), LineState::Ready);
        c.store(line, PageToken(8));
        assert_eq!(c.state(line), LineState::Modified);
        c.unpin(line);
        assert_eq!(c.total_pins(), 0);
        assert_eq!(c.peek(0, 42), Some(PageToken(8)));
    }

    #[test]
    fn tenant_accounting_is_global_across_shards() {
        let c = ShardedCache::new(cfg(64, 4), 4, 0, || Box::new(TenantShare::new()));
        // Fill lines from many addresses (landing on different shards) as
        // two tenants; the shared table must aggregate across shards.
        for lba in 0..24u64 {
            let tenant = (lba % 2) as u32;
            match c.lookup_or_reserve_as(0, lba, tenant) {
                CacheLookup::Miss { line, dma, .. } => {
                    dma.store(PageToken(lba));
                    c.complete_fill(line);
                    c.unpin(line);
                }
                CacheLookup::Hit { line, .. } => c.unpin(line),
                _ => {}
            }
        }
        let stats = c.tenant_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(
            stats.iter().map(|t| t.occupancy).sum::<u64>(),
            c.tenant_table().total_occupancy()
        );
        assert_eq!(stats[0].fills + stats[1].fills, 24);
        // Share updates fan out: both the queryable weight and every shard's
        // policy observe the new value.
        assert_eq!(c.set_tenant_share(0, 3), Ok(3));
        assert_eq!(c.tenant_share(0), Some(3));
    }

    #[test]
    fn share_updates_on_oblivious_policies_are_unsupported() {
        let c = sharded(64, 4, 2);
        assert_eq!(c.set_tenant_share(0, 2), Err(ShareError::Unsupported));
    }

    #[test]
    fn port_model_charges_queue_wait_only_when_enabled() {
        let free = sharded(64, 4, 2);
        assert_eq!(free.port_acquire(0, 1, 0), 0, "hold 0 ⇒ no cost");
        assert_eq!(free.port_wait_by_shard(), vec![0, 0]);

        let held = ShardedCache::new(cfg(64, 4), 1, 100, || Box::new(ClockPolicy::new()));
        // Three back-to-back acquires at the same instant: FIFO queueing.
        assert_eq!(held.port_acquire(0, 1, 0), 100);
        assert_eq!(held.port_acquire(0, 2, 0), 200);
        assert_eq!(held.port_acquire(0, 3, 0), 300);
        assert_eq!(held.port_wait_by_shard(), vec![300]);
        assert_eq!(held.port_acquires_by_shard(), vec![3]);
        // After the queue drains, an acquire pays only the hold.
        assert_eq!(held.port_acquire(0, 4, 1_000), 100);
    }

    #[test]
    fn shard_count_is_clamped_to_whole_sets() {
        // 4 sets cannot support 16 shards: clamp to one set per shard.
        let c = sharded(16, 4, 16);
        assert_eq!(c.num_shards(), 4);
        assert_eq!(c.num_lines(), 16);
    }
}
