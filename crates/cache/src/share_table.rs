//! The Share Table: MOESI-inspired coherency for user-specified buffers.
//!
//! `async_issue(src, dst)` lets a thread pull SSD data straight into a buffer
//! it owns, bypassing the software cache. That flexibility can create
//! read-after-write / write-after-read / write-after-write hazards when other
//! threads access the same SSD page through the cache (paper §3.4.1). AGILE's
//! answer is a hash-table keyed by the data's source `(device, LBA)` that
//! records which user buffer currently holds that page and in what state,
//! with the states reinterpreted from MOESI:
//!
//! * `Exclusive` — one thread owns the only copy, clean;
//! * `Shared` — several threads hold references to the *same* buffer (AGILE
//!   shares the pointer instead of duplicating data);
//! * `Modified` — the owner has written the buffer; it must propagate the
//!   update to the L2 tier (the software cache / SSD) once the other
//!   references drain;
//! * `Owned` — modified *and* shared: dirty data visible to several readers,
//!   with exactly one responsible owner.
//!
//! When the Share Table is enabled it is consulted *before* the software
//! cache (it "has the highest priority in the AGILE software cache
//! hierarchy").

use nvme_sim::{DmaHandle, Lba, PageToken};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Coherency state of a registered buffer (MOESI minus Invalid — invalid
/// entries are simply removed from the table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BufState {
    /// Single clean owner.
    Exclusive,
    /// Multiple readers of one clean buffer.
    Shared,
    /// Single dirty owner.
    Modified,
    /// Dirty buffer with multiple readers; the owner must write back.
    Owned,
}

/// A user buffer registered with the Share Table.
#[derive(Debug)]
pub struct SharedBuf {
    /// The source of the data held by the buffer.
    pub dev: u32,
    /// The source LBA of the data held by the buffer.
    pub lba: Lba,
    /// The buffer's storage slot (shared with the NVMe DMA path).
    pub dma: DmaHandle,
    state: AtomicU32,
    refs: AtomicU32,
    /// Set once the data transfer into the buffer has completed.
    ready: AtomicU32,
    /// Owning thread (flat warp/thread id) — the thread responsible for
    /// write-back when the buffer is Modified/Owned.
    owner: AtomicU64,
}

impl SharedBuf {
    fn encode(s: BufState) -> u32 {
        match s {
            BufState::Exclusive => 0,
            BufState::Shared => 1,
            BufState::Modified => 2,
            BufState::Owned => 3,
        }
    }
    fn decode(v: u32) -> BufState {
        match v {
            0 => BufState::Exclusive,
            1 => BufState::Shared,
            2 => BufState::Modified,
            3 => BufState::Owned,
            _ => unreachable!("invalid BufState encoding {v}"),
        }
    }

    /// Current coherency state.
    pub fn state(&self) -> BufState {
        Self::decode(self.state.load(Ordering::Acquire))
    }

    /// Number of threads currently referencing this buffer.
    pub fn refs(&self) -> u32 {
        self.refs.load(Ordering::Acquire)
    }

    /// The thread responsible for the buffer.
    pub fn owner(&self) -> u64 {
        self.owner.load(Ordering::Acquire)
    }

    /// True once the data transfer into the buffer completed.
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire) == 1
    }

    /// Mark the data transfer complete (called when the read completion is
    /// processed).
    pub fn mark_ready(&self) {
        self.ready.store(1, Ordering::Release);
    }

    /// Current token held by the buffer.
    pub fn token(&self) -> PageToken {
        self.dma.load()
    }
}

/// Counters maintained by the Share Table.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct ShareTableStats {
    /// Buffers registered (distinct sources claimed).
    pub registrations: u64,
    /// Lookups that found an existing buffer and shared its pointer.
    pub shared_hits: u64,
    /// Lookups that found nothing (fall back to the software cache).
    pub misses: u64,
    /// Buffers upgraded to Modified/Owned.
    pub modifications: u64,
    /// Write-backs signalled to owners on release.
    pub writebacks: u64,
    /// Entries removed.
    pub unregistrations: u64,
}

#[derive(Default)]
struct StatCells {
    registrations: AtomicU64,
    shared_hits: AtomicU64,
    misses: AtomicU64,
    modifications: AtomicU64,
    writebacks: AtomicU64,
    unregistrations: AtomicU64,
}

/// Result of releasing a reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReleaseOutcome {
    /// References remain; nothing to do.
    StillShared,
    /// Last reference dropped on a clean buffer; entry removed.
    Dropped,
    /// Last reference dropped on a dirty buffer: the caller (the owner) must
    /// propagate `token` back to the software cache / SSD for `(dev, lba)`.
    WritebackRequired {
        /// Device holding the page.
        dev: u32,
        /// Page address.
        lba: Lba,
        /// The dirty data to propagate.
        token: PageToken,
    },
}

/// The Share Table.
pub struct ShareTable {
    map: Mutex<HashMap<(u32, Lba), Arc<SharedBuf>>>,
    stats: StatCells,
    /// Maximum number of tracked buffers (0 = unbounded).
    capacity: usize,
}

impl ShareTable {
    /// An unbounded Share Table.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// A Share Table that refuses registrations beyond `capacity` entries
    /// (0 = unbounded). Registration failures fall back to the software cache.
    pub fn with_capacity(capacity: usize) -> Self {
        ShareTable {
            map: Mutex::new(HashMap::new()),
            stats: StatCells::default(),
            capacity,
        }
    }

    /// Number of tracked buffers.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// True when no buffers are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ShareTableStats {
        ShareTableStats {
            registrations: self.stats.registrations.load(Ordering::Relaxed),
            shared_hits: self.stats.shared_hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            modifications: self.stats.modifications.load(Ordering::Relaxed),
            writebacks: self.stats.writebacks.load(Ordering::Relaxed),
            unregistrations: self.stats.unregistrations.load(Ordering::Relaxed),
        }
    }

    /// Register `owner`'s buffer (`dma`) as holding the data of `(dev, lba)`.
    ///
    /// Returns the tracked entry (state `Exclusive`, one reference). If the
    /// source is already tracked, the existing buffer is returned instead —
    /// the caller should use that pointer rather than its own copy (pointer
    /// sharing instead of duplication). Returns `None` when the table is at
    /// capacity and the source is untracked.
    pub fn register(
        &self,
        dev: u32,
        lba: Lba,
        dma: DmaHandle,
        owner: u64,
    ) -> Option<Arc<SharedBuf>> {
        let mut map = self.map.lock();
        if let Some(existing) = map.get(&(dev, lba)) {
            existing.refs.fetch_add(1, Ordering::AcqRel);
            let _ = existing.state.compare_exchange(
                SharedBuf::encode(BufState::Exclusive),
                SharedBuf::encode(BufState::Shared),
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
            let _ = existing.state.compare_exchange(
                SharedBuf::encode(BufState::Modified),
                SharedBuf::encode(BufState::Owned),
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
            self.stats.shared_hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(existing));
        }
        if self.capacity != 0 && map.len() >= self.capacity {
            return None;
        }
        let buf = Arc::new(SharedBuf {
            dev,
            lba,
            dma,
            state: AtomicU32::new(SharedBuf::encode(BufState::Exclusive)),
            refs: AtomicU32::new(1),
            ready: AtomicU32::new(0),
            owner: AtomicU64::new(owner),
        });
        map.insert((dev, lba), Arc::clone(&buf));
        self.stats.registrations.fetch_add(1, Ordering::Relaxed);
        Some(buf)
    }

    /// Look up the buffer holding `(dev, lba)`, taking a reference if found.
    /// Misses fall back to the software cache (and are counted).
    pub fn acquire(&self, dev: u32, lba: Lba) -> Option<Arc<SharedBuf>> {
        let map = self.map.lock();
        match map.get(&(dev, lba)) {
            Some(buf) => {
                buf.refs.fetch_add(1, Ordering::AcqRel);
                let _ = buf.state.compare_exchange(
                    SharedBuf::encode(BufState::Exclusive),
                    SharedBuf::encode(BufState::Shared),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
                let _ = buf.state.compare_exchange(
                    SharedBuf::encode(BufState::Modified),
                    SharedBuf::encode(BufState::Owned),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
                self.stats.shared_hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(buf))
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record that `writer` modified the buffer holding `(dev, lba)` with
    /// `token`. The writer becomes the responsible owner and the state moves
    /// to `Modified` (sole reference) or `Owned` (shared).
    pub fn mark_modified(&self, dev: u32, lba: Lba, token: PageToken, writer: u64) -> bool {
        let map = self.map.lock();
        let Some(buf) = map.get(&(dev, lba)) else {
            return false;
        };
        buf.dma.store(token);
        buf.owner.store(writer, Ordering::Release);
        let new = if buf.refs() > 1 {
            BufState::Owned
        } else {
            BufState::Modified
        };
        buf.state.store(SharedBuf::encode(new), Ordering::Release);
        self.stats.modifications.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Drop one reference to `(dev, lba)`. When the last reference goes away
    /// the entry is removed; dirty buffers report the write-back obligation
    /// to the caller.
    pub fn release(&self, dev: u32, lba: Lba) -> ReleaseOutcome {
        let mut map = self.map.lock();
        let Some(buf) = map.get(&(dev, lba)) else {
            return ReleaseOutcome::Dropped;
        };
        let prev = buf.refs.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "release without a matching acquire/register");
        if prev > 1 {
            // Downgrade Shared→Exclusive / Owned→Modified when one ref remains.
            if prev == 2 {
                let _ = buf.state.compare_exchange(
                    SharedBuf::encode(BufState::Shared),
                    SharedBuf::encode(BufState::Exclusive),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
                let _ = buf.state.compare_exchange(
                    SharedBuf::encode(BufState::Owned),
                    SharedBuf::encode(BufState::Modified),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
            }
            return ReleaseOutcome::StillShared;
        }
        let dirty = matches!(buf.state(), BufState::Modified | BufState::Owned);
        let token = buf.dma.load();
        map.remove(&(dev, lba));
        self.stats.unregistrations.fetch_add(1, Ordering::Relaxed);
        if dirty {
            self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
            ReleaseOutcome::WritebackRequired { dev, lba, token }
        } else {
            ReleaseOutcome::Dropped
        }
    }
}

impl Default for ShareTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_then_share_then_release() {
        let st = ShareTable::new();
        let dma = DmaHandle::with_token(PageToken(1));
        let a = st.register(0, 10, dma, 100).unwrap();
        assert_eq!(a.state(), BufState::Exclusive);
        assert_eq!(a.refs(), 1);
        assert_eq!(a.owner(), 100);

        // A second thread asks for the same source: it gets the SAME buffer.
        let b = st.acquire(0, 10).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.state(), BufState::Shared);
        assert_eq!(a.refs(), 2);

        assert_eq!(st.release(0, 10), ReleaseOutcome::StillShared);
        assert_eq!(
            a.state(),
            BufState::Exclusive,
            "downgrades when one ref remains"
        );
        assert_eq!(st.release(0, 10), ReleaseOutcome::Dropped);
        assert!(st.is_empty());
        let s = st.stats();
        assert_eq!(s.registrations, 1);
        assert_eq!(s.shared_hits, 1);
        assert_eq!(s.unregistrations, 1);
        assert_eq!(s.writebacks, 0);
    }

    #[test]
    fn modification_requires_writeback_on_last_release() {
        let st = ShareTable::new();
        st.register(0, 5, DmaHandle::new(), 7).unwrap();
        assert!(st.mark_modified(0, 5, PageToken(0xAB), 7));
        let entry = st.acquire(0, 5).unwrap();
        assert_eq!(entry.state(), BufState::Owned, "dirty + shared = Owned");
        assert_eq!(st.release(0, 5), ReleaseOutcome::StillShared);
        match st.release(0, 5) {
            ReleaseOutcome::WritebackRequired { dev, lba, token } => {
                assert_eq!((dev, lba, token), (0, 5, PageToken(0xAB)));
            }
            other => panic!("expected writeback, got {other:?}"),
        }
        assert_eq!(st.stats().writebacks, 1);
    }

    #[test]
    fn duplicate_registration_shares_the_pointer() {
        let st = ShareTable::new();
        let a = st
            .register(1, 3, DmaHandle::with_token(PageToken(9)), 1)
            .unwrap();
        let b = st
            .register(1, 3, DmaHandle::with_token(PageToken(10)), 2)
            .unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "second registration must not duplicate data"
        );
        // The original buffer's data wins; the second thread's private copy is unused.
        assert_eq!(a.token(), PageToken(9));
        assert_eq!(a.refs(), 2);
    }

    #[test]
    fn capacity_limit_rejects_new_sources() {
        let st = ShareTable::with_capacity(1);
        assert!(st.register(0, 1, DmaHandle::new(), 0).is_some());
        assert!(st.register(0, 2, DmaHandle::new(), 0).is_none());
        // Existing source still shareable.
        assert!(st.register(0, 1, DmaHandle::new(), 0).is_some());
    }

    #[test]
    fn acquire_miss_counts() {
        let st = ShareTable::new();
        assert!(st.acquire(0, 99).is_none());
        assert_eq!(st.stats().misses, 1);
    }

    #[test]
    fn ready_flag_tracks_transfer_completion() {
        let st = ShareTable::new();
        let buf = st.register(0, 8, DmaHandle::new(), 3).unwrap();
        assert!(!buf.is_ready());
        buf.mark_ready();
        assert!(buf.is_ready());
    }

    #[test]
    fn concurrent_register_same_source_single_entry() {
        use std::thread;
        let st = Arc::new(ShareTable::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let st = Arc::clone(&st);
                thread::spawn(move || st.register(0, 77, DmaHandle::new(), t).is_some())
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap());
        }
        assert_eq!(st.len(), 1);
        let buf = st.acquire(0, 77).unwrap();
        assert_eq!(buf.refs(), 9, "8 registrations + this acquire");
        assert_eq!(st.stats().registrations, 1);
        assert_eq!(st.stats().shared_hits, 8);
    }
}
