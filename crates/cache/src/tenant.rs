//! Per-tenant cache accounting: the [`TenantTable`].
//!
//! PR 3/4 made the *raw* path tenant-aware (QoS-gated SQ admission); the HBM
//! software cache remained a free-for-all — one tenant could monopolise the
//! lines exactly the way it used to monopolise SQ slots. The first step to
//! fixing that is attribution: every line carries an owner tenant, and the
//! cache maintains per-tenant hit/miss/fill/eviction counters plus a **live
//! occupancy** gauge (lines currently owned) updated at fill and eviction
//! time. Tenant-aware eviction policies
//! ([`crate::policy::TenantShare`]) read the occupancy gauge through
//! [`CachePolicy::bind_tenants`](crate::policy::CachePolicy::bind_tenants)
//! to bound each tenant's footprint to a weighted share.
//!
//! Attribution is **accounting only**: fills and dirty-victim write-backs
//! keep bypassing the QoS admission gate (deferring a write-back would force
//! `abort_fill` and drop the only copy of the dirty data), so system traffic
//! never waits behind tenant arbitration — the invariant the raw-path QoS
//! work established.
//!
//! The table mirrors the interior-sharding discipline of
//! `agile_core::qos::WeightedFair`: per-tenant all-atomic cells behind an
//! append-only `RwLock` registry, so hot-path updates from many warps (and
//! N service partitions) never serialize on one lock.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel for "no owning tenant": unowned ways, and lookups arriving
/// through the untenanted legacy entry points (`preload`, bare-queue rigs).
/// The table never creates a cell for it.
pub const NO_TENANT: u32 = u32::MAX;

/// Snapshot of one tenant's cache accounting.
///
/// Note: the unified registry exports these as `agile_cache_tenant_*`
/// labelled by tenant; this struct stays for direct programmatic access.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantCacheStats {
    /// Tenant id.
    pub tenant: u32,
    /// Lookups served from a valid resident line.
    pub hits: u64,
    /// Lookups that had to reserve (or failed to reserve) a line.
    pub misses: u64,
    /// Lines reserved for a fill on this tenant's behalf.
    pub fills: u64,
    /// This tenant's lines evicted to make room for someone's fill.
    pub evictions: u64,
    /// Lines currently owned (live gauge, not monotone).
    pub occupancy: u64,
}

impl TenantCacheStats {
    /// Hit fraction over this tenant's lookups (0 when it made none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct TenantCells {
    hits: AtomicU64,
    misses: AtomicU64,
    fills: AtomicU64,
    evictions: AtomicU64,
    occupancy: AtomicU64,
}

/// Per-tenant cache counters, keyed by tenant id. Owned by the
/// [`crate::cache::SoftwareCache`] and shared (as an `Arc`) with any
/// tenant-aware replacement policy bound to it.
#[derive(Debug, Default)]
pub struct TenantTable {
    tenants: RwLock<BTreeMap<u32, Arc<TenantCells>>>,
}

impl TenantTable {
    /// An empty table.
    pub fn new() -> Self {
        TenantTable::default()
    }

    /// The cell of `tenant`, inserting it on first sight (the only
    /// write-lock acquisition on the hot paths). Callers must filter
    /// [`NO_TENANT`] before calling.
    fn cell(&self, tenant: u32) -> Arc<TenantCells> {
        debug_assert_ne!(tenant, NO_TENANT);
        if let Some(cell) = self.tenants.read().get(&tenant) {
            return Arc::clone(cell);
        }
        let mut tenants = self.tenants.write();
        Arc::clone(tenants.entry(tenant).or_default())
    }

    /// A lookup by `tenant` hit valid data.
    pub fn record_hit(&self, tenant: u32) {
        if tenant != NO_TENANT {
            self.cell(tenant).hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A lookup by `tenant` missed.
    pub fn record_miss(&self, tenant: u32) {
        if tenant != NO_TENANT {
            self.cell(tenant).misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A lookup by `tenant` missed and reserved a line for a fill
    /// (miss + fill in one cell resolution — the set mutex is held across
    /// this call, so every map search saved matters).
    pub fn record_miss_fill(&self, tenant: u32) {
        if tenant != NO_TENANT {
            let cell = self.cell(tenant);
            cell.misses.fetch_add(1, Ordering::Relaxed);
            cell.fills.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A lookup by `tenant` missed, reserved a line, and acquired ownership
    /// of a previously-unowned way (miss + fill + occupancy in one cell
    /// resolution).
    pub fn record_miss_fill_occupy(&self, tenant: u32) {
        if tenant != NO_TENANT {
            let cell = self.cell(tenant);
            cell.misses.fetch_add(1, Ordering::Relaxed);
            cell.fills.fetch_add(1, Ordering::Relaxed);
            cell.occupancy.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `tenant` acquired ownership of one line.
    pub fn occupy(&self, tenant: u32) {
        if tenant != NO_TENANT {
            self.cell(tenant).occupancy.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `tenant` released ownership of one line (ownership transfer or
    /// reinstatement; saturating, so racy release orders cannot wrap).
    pub fn vacate(&self, tenant: u32) {
        if tenant != NO_TENANT {
            let _ = self.cell(tenant).occupancy.fetch_update(
                Ordering::AcqRel,
                Ordering::Acquire,
                |v| Some(v.saturating_sub(1)),
            );
        }
    }

    /// One of `tenant`'s lines was evicted: occupancy drops and the
    /// (monotone) eviction counter advances (one cell resolution).
    pub fn record_eviction(&self, tenant: u32) {
        if tenant != NO_TENANT {
            let cell = self.cell(tenant);
            cell.evictions.fetch_add(1, Ordering::Relaxed);
            let _ = cell
                .occupancy
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                    Some(v.saturating_sub(1))
                });
        }
    }

    /// Current occupancy of `tenant` (0 when never seen).
    pub fn occupancy(&self, tenant: u32) -> u64 {
        if tenant == NO_TENANT {
            return 0;
        }
        self.tenants
            .read()
            .get(&tenant)
            .map(|c| c.occupancy.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// `(tenant, occupancy)` of every tenant currently holding lines,
    /// ordered by tenant id — the view a share-bounding policy sizes its
    /// quotas over (tenants with nothing resident are not "active" and do
    /// not shrink anyone's share).
    pub fn active_occupancies(&self) -> Vec<(u32, u64)> {
        self.tenants
            .read()
            .iter()
            .filter_map(|(&t, c)| {
                let occ = c.occupancy.load(Ordering::Relaxed);
                (occ > 0).then_some((t, occ))
            })
            .collect()
    }

    /// Snapshot of every tenant's counters, ordered by tenant id.
    pub fn snapshot(&self) -> Vec<TenantCacheStats> {
        self.tenants
            .read()
            .iter()
            .map(|(&tenant, c)| TenantCacheStats {
                tenant,
                hits: c.hits.load(Ordering::Relaxed),
                misses: c.misses.load(Ordering::Relaxed),
                fills: c.fills.load(Ordering::Relaxed),
                evictions: c.evictions.load(Ordering::Relaxed),
                occupancy: c.occupancy.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Sum of all tenants' occupancies (owned lines; unowned lines are not
    /// counted anywhere).
    pub fn total_occupancy(&self) -> u64 {
        self.tenants
            .read()
            .values()
            .map(|c| c.occupancy.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_tenant() {
        let t = TenantTable::new();
        t.record_hit(0);
        t.record_miss_fill_occupy(0);
        t.record_miss_fill_occupy(3);
        t.record_eviction(3);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(
            snap[0],
            TenantCacheStats {
                tenant: 0,
                hits: 1,
                misses: 1,
                fills: 1,
                evictions: 0,
                occupancy: 1,
            }
        );
        assert_eq!(snap[1].tenant, 3);
        assert_eq!(snap[1].evictions, 1);
        assert_eq!(snap[1].occupancy, 0, "eviction returns the line");
        assert_eq!(t.total_occupancy(), 1);
        assert!((snap[0].hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn miss_fill_skips_occupancy_for_ownership_transfers() {
        // The re-reserve path accounts occupancy through transfer_owner;
        // record_miss_fill must leave the gauge alone.
        let t = TenantTable::new();
        t.record_miss_fill(2);
        let snap = t.snapshot();
        assert_eq!(
            (snap[0].misses, snap[0].fills, snap[0].occupancy),
            (1, 1, 0)
        );
    }

    #[test]
    fn no_tenant_sentinel_is_never_tracked() {
        let t = TenantTable::new();
        t.record_hit(NO_TENANT);
        t.record_miss(NO_TENANT);
        t.record_miss_fill(NO_TENANT);
        t.record_miss_fill_occupy(NO_TENANT);
        t.occupy(NO_TENANT);
        t.vacate(NO_TENANT);
        t.record_eviction(NO_TENANT);
        assert!(t.snapshot().is_empty());
        assert_eq!(t.occupancy(NO_TENANT), 0);
    }

    #[test]
    fn active_occupancies_skip_empty_tenants() {
        let t = TenantTable::new();
        t.occupy(1);
        t.occupy(1);
        t.occupy(2);
        t.vacate(2);
        assert_eq!(t.active_occupancies(), vec![(1, 2)]);
    }

    #[test]
    fn vacate_saturates_at_zero() {
        let t = TenantTable::new();
        t.vacate(5);
        t.vacate(5);
        assert_eq!(t.occupancy(5), 0);
    }
}
