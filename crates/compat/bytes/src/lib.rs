//! Minimal `bytes::Bytes` shim: an immutable, cheaply clonable byte buffer
//! backed by `Arc<[u8]>`. Only the slice the workspace uses is implemented.

#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes(Arc::from(s))
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
