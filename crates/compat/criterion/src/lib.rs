//! Minimal `criterion`-compatible benchmark harness.
//!
//! Implements exactly the API slice the workspace's micro-benchmarks use —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! calibrate-then-measure wall-clock loop instead of criterion's statistics
//! engine. Honors `AGILE_BENCH_QUICK=1` by shrinking the measurement window.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark work.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Per-benchmark measurement driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    /// Measured mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    /// Total iterations executed in the measurement phase.
    iters: u64,
    target: Duration,
}

impl Bencher {
    /// Run `f` repeatedly: a short calibration phase sizes the batch, then a
    /// timed phase measures the mean cost per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in ~1/10th of the target window?
        let calib_window = self.target / 10;
        let start = Instant::now();
        let mut calib_iters = 0u64;
        while start.elapsed() < calib_window {
            black_box(f());
            calib_iters += 1;
        }
        let batch = calib_iters.max(1);

        // Measure whole batches until the target window elapses.
        let mut total_iters = 0u64;
        let measure_start = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(f());
            }
            total_iters += batch;
            if measure_start.elapsed() >= self.target {
                break;
            }
        }
        let elapsed = measure_start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / total_iters as f64;
        self.iters = total_iters;
    }
}

/// Benchmark registry/driver with the `criterion::Criterion` API.
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("AGILE_BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        Criterion {
            target: if quick {
                Duration::from_millis(50)
            } else {
                Duration::from_millis(400)
            },
        }
    }
}

impl Criterion {
    /// Run one named benchmark and print its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
            target: self.target,
        };
        f(&mut b);
        println!(
            "bench {name:<32} {:>12.1} ns/iter  ({} iters)",
            b.mean_ns, b.iters
        );
        self
    }
}

/// Collect benchmark functions into a named group runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit a `main` that runs the listed groups (used with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
