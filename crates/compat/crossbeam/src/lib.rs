//! Minimal `crossbeam` shim: only `queue::SegQueue`, backed by a mutexed
//! `VecDeque`. The simulator's doorbell rings are low-rate, so the lock is
//! never contended enough to matter.

#![warn(missing_docs)]

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC FIFO queue with the `crossbeam` API.
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Create an empty queue.
        pub const fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Push an element to the back.
        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        /// Pop the front element, if any.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// True when the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }
    }
}
