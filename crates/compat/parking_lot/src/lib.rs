//! Minimal `parking_lot`-compatible shim backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny API slice it actually uses: [`Mutex`] / [`RwLock`] whose guards are
//! returned directly (no `Result`), exactly like the real `parking_lot`.
//! Poisoning is ignored — a panic while holding a lock simply hands the next
//! locker the current value, which matches `parking_lot` semantics.

#![warn(missing_docs)]

use std::fmt;
use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with the `parking_lot::Mutex` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
