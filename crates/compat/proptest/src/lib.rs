//! Deterministic mini property-testing harness with a `proptest`-compatible
//! API surface.
//!
//! The build environment cannot fetch the real `proptest`, so this shim
//! implements the slice the workspace's tests use: the [`proptest!`] macro,
//! [`any`], integer-range and tuple strategies, [`collection::vec`], and the
//! `prop_assert*` macros. Cases are generated from a fixed-seed splitmix64
//! stream, so every run explores the identical inputs (no shrinking — a
//! failing case prints its case index, which reproduces it exactly).

#![warn(missing_docs)]

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic splitmix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator; the harness derives one per case index.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Unbiased uniform value in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift with rejection.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generate one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-range strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Full-range strategy for `T` (`any::<u8>()`, `any::<u64>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(element, min..max)`: vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run one property: generate `cases` inputs and invoke `body` on each.
/// Panics (with the case index) on the first failing case.
pub fn run_property<S: Strategy>(
    config: &ProptestConfig,
    strategy: &S,
    mut body: impl FnMut(S::Value),
) {
    for case in 0..config.cases {
        // Derive a distinct, deterministic stream per case.
        let mut rng =
            TestRng::new(0xA61E_5EED_0000_0000 ^ (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
        let value = strategy.generate(&mut rng);
        body(value);
    }
}

/// Property-test assertion; identical to `assert!` in this shim.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion; identical to `assert_eq!` in this shim.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion; identical to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declare property tests, mirroring `proptest::proptest!`.
///
/// Supports the subset: an optional leading
/// `#![proptest_config(<expr>)]`, then `#[test] fn name(arg in strategy) { … }`
/// items (multiple arguments become a tuple strategy).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let strategy = ($($strategy,)+);
                $crate::run_property(&config, &strategy, |($($arg,)+)| $body);
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..16, y in 3u8..9) {
            prop_assert!(x < 16);
            prop_assert!((3..9).contains(&y));
        }

        #[test]
        fn vectors_respect_length(v in collection::vec((any::<u8>(), any::<u64>()), 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
