//! Minimal `rand` shim: the [`RngCore`] trait the workspace's deterministic
//! generator implements so it stays composable with ecosystem code.

#![warn(missing_docs)]

use std::fmt;

/// Error type for fallible byte-filling (never produced by this workspace).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator interface, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}
