//! Minimal `serde` facade for the offline build.
//!
//! The workspace annotates many plain-data structs with
//! `#[derive(Serialize, Deserialize)]` so they stay ecosystem-ready, but no
//! code path performs serde serialization (the trace subsystem ships explicit
//! codecs instead). This shim provides the two marker traits and re-exports
//! the no-op derives, which is all the annotations need to compile.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
