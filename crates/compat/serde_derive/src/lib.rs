//! No-op stand-ins for `serde_derive`'s `Serialize` / `Deserialize` derives.
//!
//! The workspace only uses the derives as forward-compatible annotations —
//! nothing actually serializes through serde (the trace subsystem has its own
//! explicit binary/JSON codecs) — so the derives expand to nothing.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]` and expand to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]` and expand to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
