//! Engine attachment: the controller as a passive external device.

use crate::controller::Controller;
use agile_sim::Cycles;
use gpu_sim::ExternalDevice;
use std::sync::Arc;

/// Bridges a [`Controller`] into the engine's scheduling loop, exactly like
/// the metrics `MetricsBridge`: it never requests a wakeup and is always
/// quiescent, so installing it cannot perturb event timing by itself — any
/// behaviour change comes from the knobs the controller turns, which is the
/// point. Polling every few rounds keeps the per-round cost to a counter
/// increment while window boundaries are still picked up promptly.
pub struct ControlBridge {
    controller: Arc<Controller>,
    rounds: u32,
}

impl ControlBridge {
    /// Scheduling rounds between controller polls (matches the metrics
    /// bridge's cadence so the two observe the same boundaries).
    const POLL_EVERY: u32 = 32;

    /// A bridge driving `controller`.
    pub fn new(controller: Arc<Controller>) -> Self {
        ControlBridge {
            controller,
            rounds: 0,
        }
    }
}

impl ExternalDevice for ControlBridge {
    fn advance_to(&mut self, now: Cycles) {
        self.rounds += 1;
        if self.rounds.is_multiple_of(Self::POLL_EVERY) {
            self.controller.poll(now.raw());
        }
    }
    fn next_event_time(&mut self) -> Option<Cycles> {
        None
    }
    fn quiescent(&self) -> bool {
        true
    }
}
