//! The feedback controller: deterministic window-driven loops over the
//! knob set.

use crate::knobs::{Knob, KnobSet};
use crate::policy::{ControlPolicy, SloSpec};
use crate::report::{ControlReport, CtrlDecision, KnobValues};
use agile_metrics::{
    Counter, CounterFamily, Gauge, GaugeFamily, LabelDim, Labels, MetricsRegistry, WindowSample,
    WindowedSampler,
};
use agile_sim::{TraceEvent, TraceEventKind, TraceSink};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};

/// `agile_ctrl_*` instruments, present when a registry was supplied.
struct Instruments {
    decisions: Counter,
    prefetch_depth: Gauge,
    idle_backoff: Gauge,
    wfq_weight: GaugeFamily,
    cache_share: GaugeFamily,
    slo_violations: CounterFamily,
}

impl Instruments {
    fn bind(registry: &Arc<MetricsRegistry>) -> Self {
        Instruments {
            decisions: registry.counter("agile_ctrl_decisions_total", Labels::NONE),
            prefetch_depth: registry.gauge("agile_ctrl_prefetch_depth", Labels::NONE),
            idle_backoff: registry.gauge("agile_ctrl_idle_backoff_cycles", Labels::NONE),
            wfq_weight: registry.gauge_family("agile_ctrl_wfq_weight", LabelDim::Tenant),
            cache_share: registry.gauge_family("agile_ctrl_cache_share", LabelDim::Tenant),
            slo_violations: registry
                .counter_family("agile_ctrl_slo_violations_total", LabelDim::Tenant),
        }
    }
}

/// Per-SLO-tenant loop state.
struct TenantCtl {
    spec: SloSpec,
    /// The WFQ weight installed before the controller ever touched this
    /// tenant — the floor multiplicative decay returns to.
    base_weight: Option<u64>,
    base_share: Option<u64>,
    violate_votes: u32,
    ok_windows: u32,
    cooldown: u32,
}

struct CtrlState {
    /// Sampler windows consumed so far (incremental cursor).
    consumed: usize,
    /// Prefetch-loop hysteresis.
    up_votes: u32,
    down_votes: u32,
    prefetch_cooldown: u32,
    /// Idle-backoff loop.
    backoff_base: u64,
    idle_streak: u32,
    tenants: BTreeMap<u32, TenantCtl>,
    decisions: Vec<CtrlDecision>,
    windows_seen: u64,
}

/// The deterministic feedback controller. Construct with
/// [`Controller::new`], bridge into the engine with
/// [`crate::ControlBridge`], read the outcome with [`Controller::report`].
///
/// All state lives behind one mutex taken only when the bridge polls (every
/// few engine rounds) — the hot paths never see the controller; they read
/// the atomic knob cells it writes.
pub struct Controller {
    policy: ControlPolicy,
    knobs: KnobSet,
    sampler: Arc<WindowedSampler>,
    clock_ghz: f64,
    trace: OnceLock<Arc<dyn TraceSink>>,
    instruments: Option<Instruments>,
    state: Mutex<CtrlState>,
}

impl Controller {
    /// A controller over `sampler`'s window stream, actuating `knobs` under
    /// `policy` for the declared `slos`. `clock_ghz` converts cycle windows
    /// to wall-clock rates (must match the replay's reporting clock).
    /// Passing the metrics registry exports `agile_ctrl_*` instruments;
    /// without one the controller still runs, just unobserved.
    pub fn new(
        policy: ControlPolicy,
        slos: Vec<SloSpec>,
        knobs: KnobSet,
        sampler: Arc<WindowedSampler>,
        clock_ghz: f64,
        registry: Option<&Arc<MetricsRegistry>>,
    ) -> Arc<Self> {
        let instruments = registry.map(Instruments::bind);
        let backoff_base = knobs
            .idle_backoff
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed).max(1))
            .unwrap_or(1);
        if let Some(i) = &instruments {
            if let Some(cell) = &knobs.prefetch_depth {
                i.prefetch_depth.set(cell.load(Ordering::Relaxed) as u64);
            }
            if knobs.idle_backoff.is_some() {
                i.idle_backoff.set(backoff_base);
            }
        }
        let tenants = slos
            .into_iter()
            .map(|spec| {
                (
                    spec.tenant,
                    TenantCtl {
                        spec,
                        base_weight: None,
                        base_share: None,
                        violate_votes: 0,
                        ok_windows: 0,
                        cooldown: 0,
                    },
                )
            })
            .collect();
        Arc::new(Controller {
            policy,
            knobs,
            sampler,
            clock_ghz,
            trace: OnceLock::new(),
            instruments,
            state: Mutex::new(CtrlState {
                consumed: 0,
                up_votes: 0,
                down_votes: 0,
                prefetch_cooldown: 0,
                backoff_base,
                idle_streak: 0,
                tenants,
                decisions: Vec::new(),
                windows_seen: 0,
            }),
        })
    }

    /// Install a trace sink so every decision is recorded as a
    /// `CtrlDecision` event. First installation wins.
    pub fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) -> bool {
        self.trace.set(sink).is_ok()
    }

    /// Observe the simulated clock and run the loops over any metric
    /// windows that closed since the last poll. Called by the bridge;
    /// deterministic given a deterministic window stream.
    pub fn poll(&self, now: u64) {
        self.sampler.observe(now);
        self.drain();
    }

    /// Consume windows already emitted by the sampler without advancing it
    /// (e.g. the trailing partial window flushed by `WindowedSampler::finish`).
    pub fn drain(&self) {
        let mut state = self.state.lock();
        let fresh = self.sampler.windows_from(state.consumed);
        state.consumed += fresh.len();
        for w in &fresh {
            state.windows_seen += 1;
            self.step_window(&mut state, w);
        }
    }

    /// The decision log and final knob values so far.
    pub fn report(&self) -> ControlReport {
        self.drain();
        let state = self.state.lock();
        let mut final_knobs = KnobValues {
            prefetch_depth: self
                .knobs
                .prefetch_depth
                .as_ref()
                .map(|c| c.load(Ordering::Relaxed)),
            idle_backoff: self
                .knobs
                .idle_backoff
                .as_ref()
                .map(|c| c.load(Ordering::Relaxed)),
            ..KnobValues::default()
        };
        for (&t, _) in state.tenants.iter() {
            if let Some(wfq) = &self.knobs.wfq {
                if let Some(w) = wfq.weight(t) {
                    final_knobs.wfq_weights.push((t, w));
                }
            }
            if let Some(shares) = &self.knobs.cache_shares {
                if let Some(s) = shares.weight(t) {
                    final_knobs.cache_shares.push((t, s));
                }
            }
        }
        ControlReport {
            decisions: state.decisions.clone(),
            windows_seen: state.windows_seen,
            final_knobs,
        }
    }

    fn step_window(&self, state: &mut CtrlState, w: &WindowSample) {
        if self.policy.prefetch && self.knobs.prefetch_depth.is_some() {
            self.prefetch_loop(state, w);
        }
        if self.policy.slo && (self.knobs.wfq.is_some() || self.knobs.cache_shares.is_some()) {
            self.slo_loop(state, w);
        }
        if self.policy.backoff && self.knobs.idle_backoff.is_some() {
            self.backoff_loop(state, w);
        }
    }

    // ---- loop 1: adaptive prefetch ------------------------------------

    fn prefetch_loop(&self, state: &mut CtrlState, w: &WindowSample) {
        if state.prefetch_cooldown > 0 {
            state.prefetch_cooldown -= 1;
            return;
        }
        let hits = w.deltas.counter("agile_cache_hits_total", Labels::NONE);
        let misses = w.deltas.counter("agile_cache_misses_total", Labels::NONE);
        let no_line = w.deltas.counter("agile_cache_no_line_total", Labels::NONE);
        let lookups = hits + misses;
        if lookups < self.policy.min_lookups {
            return; // no signal this window; hold votes
        }
        // Demand coverage, not raw lookup ratio: a missed access still ends
        // in a hit once its fill lands (the consuming re-read), so raw
        // hits/(hits+misses) is inflated toward 0.5 by every miss and deep
        // prefetch inflates it further. `misses` counts exactly one fill
        // reservation per fetched page, so hits − misses is the number of
        // accesses served without any fetch — the residency signal a
        // prefetcher cannot game.
        let hit_rate = hits.saturating_sub(misses) as f64 / hits.max(1) as f64;
        let pressure = no_line as f64 / lookups as f64;
        if hit_rate < self.policy.hit_rate_low || pressure > self.policy.pressure_high {
            state.down_votes += 1;
            state.up_votes = 0;
        } else if hit_rate > self.policy.hit_rate_high && pressure < self.policy.pressure_low {
            state.up_votes += 1;
            state.down_votes = 0;
        } else {
            state.up_votes = 0;
            state.down_votes = 0;
        }
        let cell = self.knobs.prefetch_depth.as_ref().unwrap();
        let depth = cell.load(Ordering::Relaxed);
        let (new, reason) = if state.down_votes >= self.policy.vote_windows {
            (
                depth / 2,
                format!("hit_rate {hit_rate:.3}, no_line pressure {pressure:.3}"),
            )
        } else if state.up_votes >= self.policy.vote_windows {
            (
                (depth + 1).min(self.policy.max_prefetch_depth),
                format!("hit_rate {hit_rate:.3}, no_line pressure {pressure:.3}"),
            )
        } else {
            return;
        };
        state.up_votes = 0;
        state.down_votes = 0;
        if new == depth {
            return; // already at the clamp
        }
        cell.store(new, Ordering::Relaxed);
        state.prefetch_cooldown = self.policy.cooldown_windows;
        if let Some(i) = &self.instruments {
            i.prefetch_depth.set(new as u64);
        }
        self.decide(
            state,
            w,
            Knob::PrefetchDepth,
            None,
            depth as u64,
            new as u64,
            reason,
        );
    }

    // ---- loop 2: SLO enforcement (AIMD on weights) ---------------------

    fn slo_loop(&self, state: &mut CtrlState, w: &WindowSample) {
        // Split borrow: move the tenant map out so `decide` can borrow state.
        let mut tenants = std::mem::take(&mut state.tenants);
        for (&t, tc) in tenants.iter_mut() {
            if tc.cooldown > 0 {
                tc.cooldown -= 1;
                continue;
            }
            let labels = Labels::tenant(t);
            let ops = w.deltas.counter("agile_replay_ops_total", labels);
            if ops < self.policy.min_ops_per_window {
                continue; // no signal this window; hold votes
            }
            let p99_us = w
                .deltas
                .histo("agile_replay_latency_cycles", labels)
                .and_then(|h| h.p99())
                .map(|cycles| cycles as f64 / (self.clock_ghz * 1000.0));
            let iops = w.rate("agile_replay_ops_total", labels, self.clock_ghz);
            let mut violated = false;
            let mut reason = String::new();
            if tc.spec.p99_target_us > 0.0 {
                if let Some(p99) = p99_us {
                    if p99 > tc.spec.p99_target_us {
                        violated = true;
                        reason = format!("p99 {p99:.1}us > target {:.1}us", tc.spec.p99_target_us);
                    }
                }
            }
            if !violated && tc.spec.min_iops > 0.0 && iops < tc.spec.min_iops {
                violated = true;
                reason = format!("iops {iops:.0} < floor {:.0}", tc.spec.min_iops);
            }
            if violated {
                tc.ok_windows = 0;
                tc.violate_votes += 1;
                if let Some(i) = &self.instruments {
                    i.slo_violations.inc(t);
                }
                if tc.violate_votes >= self.policy.vote_windows {
                    tc.violate_votes = 0;
                    tc.cooldown = self.policy.cooldown_windows;
                    self.boost_tenant(state, w, t, tc, &reason);
                }
            } else {
                tc.violate_votes = 0;
                tc.ok_windows += 1;
                if tc.ok_windows >= self.policy.settle_windows {
                    tc.ok_windows = 0;
                    self.decay_tenant(state, w, t, tc);
                }
            }
        }
        state.tenants = tenants;
    }

    /// Additive increase: one `weight_step` on the tenant's WFQ weight,
    /// mirrored onto its cache share.
    fn boost_tenant(
        &self,
        state: &mut CtrlState,
        w: &WindowSample,
        t: u32,
        tc: &mut TenantCtl,
        reason: &str,
    ) {
        if let Some(wfq) = &self.knobs.wfq {
            let old = wfq.weight(t).unwrap_or(1);
            tc.base_weight.get_or_insert(old);
            let wanted = old.saturating_add(self.policy.weight_step.max(1));
            if let Ok(new) = wfq.set_weight(t, wanted) {
                if new != old {
                    if let Some(i) = &self.instruments {
                        i.wfq_weight.with(t).set(new);
                    }
                    self.decide(state, w, Knob::WfqWeight, Some(t), old, new, reason.into());
                }
            }
        }
        if let Some(shares) = &self.knobs.cache_shares {
            let old = shares.weight(t).unwrap_or(1);
            tc.base_share.get_or_insert(old);
            let wanted = old.saturating_add(self.policy.weight_step.max(1));
            if let Ok(new) = shares.set_weight(t, wanted) {
                if new != old {
                    if let Some(i) = &self.instruments {
                        i.cache_share.with(t).set(new);
                    }
                    self.decide(state, w, Knob::CacheShare, Some(t), old, new, reason.into());
                }
            }
        }
    }

    /// Multiplicative decrease: decay a boosted weight by 3/4, never below
    /// the base captured before the first boost.
    fn decay_tenant(&self, state: &mut CtrlState, w: &WindowSample, t: u32, tc: &TenantCtl) {
        if let (Some(wfq), Some(base)) = (&self.knobs.wfq, tc.base_weight) {
            if let Some(old) = wfq.weight(t) {
                let new = (old * 3 / 4).max(base);
                if new != old && wfq.set_weight(t, new).is_ok() {
                    if let Some(i) = &self.instruments {
                        i.wfq_weight.with(t).set(new);
                    }
                    self.decide(
                        state,
                        w,
                        Knob::WfqWeight,
                        Some(t),
                        old,
                        new,
                        "slo held; decaying toward base".into(),
                    );
                }
            }
        }
        if let (Some(shares), Some(base)) = (&self.knobs.cache_shares, tc.base_share) {
            if let Some(old) = shares.weight(t) {
                let new = (old * 3 / 4).max(base);
                if new != old && shares.set_weight(t, new).is_ok() {
                    if let Some(i) = &self.instruments {
                        i.cache_share.with(t).set(new);
                    }
                    self.decide(
                        state,
                        w,
                        Knob::CacheShare,
                        Some(t),
                        old,
                        new,
                        "slo held; decaying toward base".into(),
                    );
                }
            }
        }
    }

    // ---- loop 3: idle backoff ------------------------------------------

    fn backoff_loop(&self, state: &mut CtrlState, w: &WindowSample) {
        let completions: u64 = w
            .deltas
            .family("agile_service_completions_total")
            .map(|s| s.value.as_u64())
            .sum();
        let cell = self.knobs.idle_backoff.as_ref().unwrap();
        let current = cell.load(Ordering::Relaxed);
        let (new, reason) = if completions == 0 {
            if state.idle_streak < self.policy.max_backoff_doublings {
                state.idle_streak += 1;
            }
            let scaled = state.backoff_base.saturating_shl(state.idle_streak);
            (scaled, format!("idle for {} windows", state.idle_streak))
        } else {
            state.idle_streak = 0;
            (
                state.backoff_base,
                format!("{completions} completions; snap to base"),
            )
        };
        if new == current {
            return;
        }
        cell.store(new, Ordering::Relaxed);
        if let Some(i) = &self.instruments {
            i.idle_backoff.set(new);
        }
        self.decide(state, w, Knob::IdleBackoff, None, current, new, reason);
    }

    // ---- shared ---------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn decide(
        &self,
        state: &mut CtrlState,
        w: &WindowSample,
        knob: Knob,
        tenant: Option<u32>,
        old: u64,
        new: u64,
        reason: String,
    ) {
        if let Some(i) = &self.instruments {
            i.decisions.inc();
        }
        if let Some(sink) = self.trace.get() {
            sink.record(
                TraceEvent::new(TraceEventKind::CtrlDecision, w.end)
                    .target(knob.code(), new)
                    .tenant(tenant.unwrap_or(u32::MAX)),
            );
        }
        state.decisions.push(CtrlDecision {
            window: w.index,
            at: w.end,
            knob,
            tenant,
            old,
            new,
            reason,
        });
    }
}

/// `u64::checked_shl` that saturates instead of wrapping (backoff growth).
trait SaturatingShl {
    fn saturating_shl(self, n: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, n: u32) -> u64 {
        self.checked_shl(n).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::{KnobError, TenantWeights};
    use std::sync::atomic::{AtomicU32, AtomicU64};

    struct TestWeights(Mutex<BTreeMap<u32, u64>>);

    impl TestWeights {
        fn new(pairs: &[(u32, u64)]) -> Arc<Self> {
            Arc::new(TestWeights(Mutex::new(pairs.iter().copied().collect())))
        }
    }

    impl TenantWeights for TestWeights {
        fn set_weight(&self, tenant: u32, weight: u64) -> Result<u64, KnobError> {
            if weight == 0 {
                return Err(KnobError::Zero);
            }
            self.0.lock().insert(tenant, weight);
            Ok(weight)
        }
        fn weight(&self, tenant: u32) -> Option<u64> {
            self.0.lock().get(&tenant).copied()
        }
    }

    fn registry_with_cache_counters(hits: u64, misses: u64, no_line: u64) -> Arc<MetricsRegistry> {
        let reg = MetricsRegistry::new();
        reg.counter("agile_cache_hits_total", Labels::NONE)
            .add(hits);
        reg.counter("agile_cache_misses_total", Labels::NONE)
            .add(misses);
        reg.counter("agile_cache_no_line_total", Labels::NONE)
            .add(no_line);
        reg
    }

    #[test]
    fn prefetch_loop_votes_down_under_thrash_with_hysteresis() {
        let reg = registry_with_cache_counters(0, 0, 0);
        let sampler = WindowedSampler::new(Arc::clone(&reg), 1000);
        let depth = Arc::new(AtomicU32::new(4));
        let knobs = KnobSet {
            prefetch_depth: Some(Arc::clone(&depth)),
            ..KnobSet::none()
        };
        let ctrl = Controller::new(
            ControlPolicy::prefetch_only(),
            Vec::new(),
            knobs,
            Arc::clone(&sampler),
            1.0,
            None,
        );
        let hits = reg.counter("agile_cache_hits_total", Labels::NONE);
        let misses = reg.counter("agile_cache_misses_total", Labels::NONE);
        // Window 1: 10% hit rate — one down vote, no action yet (hysteresis).
        hits.add(10);
        misses.add(90);
        ctrl.poll(1_000);
        assert_eq!(depth.load(Ordering::Relaxed), 4);
        // Window 2: still thrashing — second vote halves the depth.
        hits.add(10);
        misses.add(90);
        ctrl.poll(2_000);
        assert_eq!(depth.load(Ordering::Relaxed), 2);
        let report = ctrl.report();
        assert_eq!(report.decisions.len(), 1);
        assert_eq!(report.decisions[0].knob, Knob::PrefetchDepth);
        assert_eq!((report.decisions[0].old, report.decisions[0].new), (4, 2));
    }

    #[test]
    fn prefetch_loop_raises_depth_on_healthy_windows_and_clamps() {
        let reg = registry_with_cache_counters(0, 0, 0);
        let sampler = WindowedSampler::new(Arc::clone(&reg), 1000);
        let depth = Arc::new(AtomicU32::new(7));
        let mut policy = ControlPolicy::prefetch_only();
        policy.cooldown_windows = 0;
        policy.max_prefetch_depth = 8;
        let ctrl = Controller::new(
            policy,
            Vec::new(),
            KnobSet {
                prefetch_depth: Some(Arc::clone(&depth)),
                ..KnobSet::none()
            },
            Arc::clone(&sampler),
            1.0,
            None,
        );
        let hits = reg.counter("agile_cache_hits_total", Labels::NONE);
        let misses = reg.counter("agile_cache_misses_total", Labels::NONE);
        for i in 1..=8u64 {
            hits.add(95);
            misses.add(5);
            ctrl.poll(i * 1_000);
        }
        // 8 healthy windows = 4 up-decisions, but the clamp stops at 8.
        assert_eq!(depth.load(Ordering::Relaxed), 8);
        let ups = ctrl.report().decisions_for(Knob::PrefetchDepth).len();
        assert_eq!(ups, 1, "only the 7->8 move fits under the clamp");
    }

    #[test]
    fn quiet_windows_hold_votes_instead_of_acting() {
        let reg = registry_with_cache_counters(0, 0, 0);
        let sampler = WindowedSampler::new(Arc::clone(&reg), 1000);
        let depth = Arc::new(AtomicU32::new(4));
        let ctrl = Controller::new(
            ControlPolicy::prefetch_only(),
            Vec::new(),
            KnobSet {
                prefetch_depth: Some(Arc::clone(&depth)),
                ..KnobSet::none()
            },
            Arc::clone(&sampler),
            1.0,
            None,
        );
        // Below min_lookups: windows close but carry no signal.
        for i in 1..=4u64 {
            reg.counter("agile_cache_misses_total", Labels::NONE).add(8);
            ctrl.poll(i * 1_000);
        }
        assert_eq!(depth.load(Ordering::Relaxed), 4);
        assert!(ctrl.report().decisions.is_empty());
    }

    #[test]
    fn slo_loop_boosts_on_violation_and_decays_after_settle() {
        let reg = MetricsRegistry::new();
        let ops = reg.counter("agile_replay_ops_total", Labels::tenant(1));
        let lat = reg.histo("agile_replay_latency_cycles", Labels::tenant(1));
        let sampler = WindowedSampler::new(Arc::clone(&reg), 1000);
        let wfq = TestWeights::new(&[(1, 4)]);
        let shares = TestWeights::new(&[(1, 4)]);
        let mut policy = ControlPolicy::slo_only();
        policy.vote_windows = 1;
        policy.cooldown_windows = 0;
        policy.settle_windows = 2;
        policy.min_ops_per_window = 1;
        policy.weight_step = 4;
        let ctrl = Controller::new(
            policy,
            vec![SloSpec::p99(1, 10.0)], // 10us at 1 GHz = 10_000 cycles
            KnobSet {
                wfq: Some(wfq.clone() as Arc<dyn TenantWeights>),
                cache_shares: Some(shares.clone() as Arc<dyn TenantWeights>),
                ..KnobSet::none()
            },
            Arc::clone(&sampler),
            1.0,
            None,
        );
        // Two violating windows: p99 = 50_000 cycles = 50us > 10us target.
        for i in 1..=2u64 {
            for _ in 0..32 {
                ops.inc();
                lat.record(50_000);
            }
            ctrl.poll(i * 1_000);
        }
        assert!(wfq.weight(1).unwrap() > 4, "weight boosted under violation");
        assert_eq!(wfq.weight(1), shares.weight(1), "share mirrors WFQ");
        let boosted = wfq.weight(1).unwrap();
        // Four healthy windows: two settle periods of multiplicative decay.
        for i in 3..=6u64 {
            for _ in 0..32 {
                ops.inc();
                lat.record(1_000); // 1us, well inside target
            }
            ctrl.poll(i * 1_000);
        }
        let decayed = wfq.weight(1).unwrap();
        assert!(decayed < boosted, "weight decays once the SLO holds");
        assert!(decayed >= 4, "never below the base weight");
    }

    #[test]
    fn backoff_loop_grows_exponentially_and_snaps_back() {
        let reg = MetricsRegistry::new();
        let comp = reg.counter("agile_service_completions_total", Labels::partition(0));
        let sampler = WindowedSampler::new(Arc::clone(&reg), 1000);
        let backoff = Arc::new(AtomicU64::new(500));
        let ctrl = Controller::new(
            ControlPolicy::backoff_only(),
            Vec::new(),
            KnobSet {
                idle_backoff: Some(Arc::clone(&backoff)),
                ..KnobSet::none()
            },
            Arc::clone(&sampler),
            1.0,
            None,
        );
        // Three idle windows: 500 -> 1000 -> 2000 -> 4000.
        for i in 1..=3u64 {
            ctrl.poll(i * 1_000);
        }
        assert_eq!(backoff.load(Ordering::Relaxed), 4_000);
        // A completion burst snaps straight back to base.
        comp.add(10);
        ctrl.poll(4_000);
        assert_eq!(backoff.load(Ordering::Relaxed), 500);
        let decisions = ctrl.report();
        let moves: Vec<(u64, u64)> = decisions
            .decisions_for(Knob::IdleBackoff)
            .iter()
            .map(|d| (d.old, d.new))
            .collect();
        assert_eq!(
            moves,
            vec![(500, 1_000), (1_000, 2_000), (2_000, 4_000), (4_000, 500)]
        );
    }

    #[test]
    fn report_captures_final_knob_values() {
        let reg = MetricsRegistry::new();
        let sampler = WindowedSampler::new(Arc::clone(&reg), 1000);
        let depth = Arc::new(AtomicU32::new(3));
        let backoff = Arc::new(AtomicU64::new(750));
        let wfq = TestWeights::new(&[(2, 9)]);
        let ctrl = Controller::new(
            ControlPolicy::all(),
            vec![SloSpec::min_iops(2, 100.0)],
            KnobSet {
                prefetch_depth: Some(depth),
                idle_backoff: Some(backoff),
                wfq: Some(wfq as Arc<dyn TenantWeights>),
                cache_shares: None,
            },
            sampler,
            1.0,
            None,
        );
        let report = ctrl.report();
        assert_eq!(report.final_knobs.prefetch_depth, Some(3));
        assert_eq!(report.final_knobs.idle_backoff, Some(750));
        assert_eq!(report.final_knobs.wfq_weights, vec![(2, 9)]);
        assert!(report.final_knobs.cache_shares.is_empty());
    }
}
