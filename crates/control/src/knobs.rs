//! The actuation surface: what the controller can turn, expressed without
//! depending on the layers that own the knobs.

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64};
use std::sync::Arc;

/// Why an online knob update was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobError {
    /// A zero weight/share was requested (would starve or divide by zero).
    Zero,
    /// The installed policy does not support online updates.
    Unsupported,
}

impl fmt::Display for KnobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnobError::Zero => write!(f, "zero weight rejected"),
            KnobError::Unsupported => write!(f, "online weight updates unsupported"),
        }
    }
}

impl std::error::Error for KnobError {}

/// An online-mutable per-tenant weight table — the controller-facing shape
/// of both `WeightedFair::set_weight` and `TenantShare::set_share`.
/// Implementations clamp overflowing weights to their documented range and
/// refuse zero with [`KnobError::Zero`].
pub trait TenantWeights: Send + Sync {
    /// Set tenant `tenant`'s weight, returning the value actually applied
    /// (after clamping).
    fn set_weight(&self, tenant: u32, weight: u64) -> Result<u64, KnobError>;
    /// Tenant `tenant`'s current weight, if it is known to the table.
    fn weight(&self, tenant: u32) -> Option<u64>;
}

/// Which knob a control decision turned — the stable, wire-encodable
/// identity used in decision logs and `CtrlDecision` trace events (the
/// event's `dev` field carries [`Knob::code`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Knob {
    /// Cached-path prefetch depth (batches of lookahead per warp batch).
    PrefetchDepth,
    /// Service-sweep idle backoff in cycles.
    IdleBackoff,
    /// A tenant's WFQ submission weight.
    WfqWeight,
    /// A tenant's cache-share weight.
    CacheShare,
}

impl Knob {
    /// Wire code carried in the `dev` field of `CtrlDecision` trace events.
    pub fn code(self) -> u32 {
        match self {
            Knob::PrefetchDepth => 0,
            Knob::IdleBackoff => 1,
            Knob::WfqWeight => 2,
            Knob::CacheShare => 3,
        }
    }

    /// Short lowercase label used in decision logs.
    pub fn label(self) -> &'static str {
        match self {
            Knob::PrefetchDepth => "prefetch_depth",
            Knob::IdleBackoff => "idle_backoff",
            Knob::WfqWeight => "wfq_weight",
            Knob::CacheShare => "cache_share",
        }
    }
}

impl fmt::Display for Knob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The set of live knobs a [`crate::Controller`] may actuate. Every field is
/// optional: loops whose knob is absent simply stay dormant, so the same
/// controller wires into the full AGILE stack (all four) and the BaM
/// baseline (WFQ only).
#[derive(Clone, Default)]
pub struct KnobSet {
    /// The cached-path prefetch-depth cell warps read at each batch boundary.
    pub prefetch_depth: Option<Arc<AtomicU32>>,
    /// The idle-backoff cell service partitions read at each idle round.
    pub idle_backoff: Option<Arc<AtomicU64>>,
    /// The WFQ policy's online weight table.
    pub wfq: Option<Arc<dyn TenantWeights>>,
    /// The cache's tenant-share table (mirrors WFQ adjustments so a boosted
    /// tenant gains HBM lines along with SQ slots).
    pub cache_shares: Option<Arc<dyn TenantWeights>>,
}

impl KnobSet {
    /// A knob set with nothing wired (all loops dormant).
    pub fn none() -> Self {
        KnobSet::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_codes_are_stable() {
        assert_eq!(Knob::PrefetchDepth.code(), 0);
        assert_eq!(Knob::IdleBackoff.code(), 1);
        assert_eq!(Knob::WfqWeight.code(), 2);
        assert_eq!(Knob::CacheShare.code(), 3);
        assert_eq!(Knob::WfqWeight.label(), "wfq_weight");
    }
}
