//! # agile-control — the closed-loop SLO control plane
//!
//! AGILE's knobs — cached-path prefetch depth, WFQ tenant weights, cache
//! shares, the service kernels' idle backoff — are all set once at install
//! time, which means every deployment has to be hand-tuned per workload mix
//! (the PR-5 sweep showed prefetch depth 0 winning thrash-heavy mixes while
//! depth 1+ wins with cache headroom: no single static setting is right).
//! This crate closes the loop: a deterministic feedback [`Controller`] runs
//! on the *simulated* clock, consumes the per-window metric deltas the
//! [`agile_metrics::WindowedSampler`] already produces, and actuates the
//! knobs online through lock-free cells and online-mutable policy surfaces.
//!
//! Three loops, each independently enableable via [`ControlPolicy`]:
//!
//! 1. **Adaptive prefetch** — votes the cached-path prefetch depth down when
//!    the windowed *demand* hit-rate (`(hits − misses) / hits`, the fraction
//!    of accesses served without triggering any fetch — a signal prefetching
//!    cannot inflate) collapses or `no_line` pressure spikes (the cache is
//!    thrashing: speculation evicts useful lines), and back up when demand
//!    hits dominate and lines are plentiful. Hysteresis (consecutive
//!    agreeing windows) plus a cooldown keep it from flapping.
//! 2. **SLO enforcement** — per declared [`SloSpec`], AIMD on the tenant's
//!    WFQ weight (mirrored to its cache share): additive increase while the
//!    tenant misses its p99 / min-IOPS target, multiplicative decay back
//!    toward the installed base weight once the SLO has held for a settle
//!    window.
//! 3. **Idle backoff** — exponential growth of the service sweeps' idle
//!    backoff while completion traffic is zero, snapping back to base on the
//!    first completion burst.
//!
//! The controller is bridged into the engine exactly like the metrics
//! sampler: [`ControlBridge`] is a **passive** external device (no wakeups,
//! always quiescent), so a run with the control plane *disabled* is
//! byte-identical to one without the crate present, and a run with it
//! *enabled* is deterministic — same seed, same decision log.
//!
//! Dependency shape: this crate knows only `agile-sim` (trace events),
//! `gpu-sim` (the engine's `ExternalDevice`) and `agile-metrics`. The
//! actuation targets live in higher layers and reach the controller through
//! the [`TenantWeights`] trait and raw atomic cells in a [`KnobSet`] —
//! `agile-core` supplies the adapters.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bridge;
pub mod controller;
pub mod knobs;
pub mod policy;
pub mod report;

pub use bridge::ControlBridge;
pub use controller::Controller;
pub use knobs::{Knob, KnobError, KnobSet, TenantWeights};
pub use policy::{ControlPolicy, SloSpec};
pub use report::{ControlReport, CtrlDecision, KnobValues};
