//! Declarative inputs to the control plane: which loops run, their
//! thresholds, and the per-tenant service-level objectives.

/// A declared per-tenant service-level objective. Targets set to zero are
/// "don't care" — a spec may constrain latency, throughput, or both.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// The tenant the objective applies to.
    pub tenant: u32,
    /// Tail-latency target: windowed p99 of `agile_replay_latency_cycles`
    /// must stay at or below this many microseconds (0 = unconstrained).
    pub p99_target_us: f64,
    /// Throughput floor: windowed rate of `agile_replay_ops_total` must stay
    /// at or above this many ops per second (0 = unconstrained).
    pub min_iops: f64,
}

impl SloSpec {
    /// An objective constraining both tail latency and throughput.
    pub fn new(tenant: u32, p99_target_us: f64, min_iops: f64) -> Self {
        SloSpec {
            tenant,
            p99_target_us,
            min_iops,
        }
    }

    /// A latency-only objective.
    pub fn p99(tenant: u32, target_us: f64) -> Self {
        SloSpec::new(tenant, target_us, 0.0)
    }

    /// A throughput-only objective.
    pub fn min_iops(tenant: u32, iops: f64) -> Self {
        SloSpec::new(tenant, 0.0, iops)
    }
}

/// Which loops the controller runs and the thresholds they act on. The
/// defaults are the tuned values the convergence gate runs with; every field
/// is public so experiments can deviate.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlPolicy {
    /// Run the adaptive-prefetch loop (needs the prefetch-depth knob).
    pub prefetch: bool,
    /// Run the SLO/AIMD loop (needs declared SLOs and a weight table).
    pub slo: bool,
    /// Run the idle-backoff loop (needs the idle-backoff knob).
    pub backoff: bool,

    /// Windows with fewer cache lookups than this carry no prefetch signal
    /// and neither vote nor reset votes.
    pub min_lookups: u64,
    /// Demand hit-rate (`(hits − misses) / hits`: the fraction of accesses
    /// served without triggering any fetch — raw `hits / (hits + misses)`
    /// would be inflated by the consuming re-read that every fill produces
    /// on the cached path) below this votes the prefetch depth *down*
    /// (thrash).
    pub hit_rate_low: f64,
    /// Demand hit-rate above this (with low pressure) votes the depth *up*.
    pub hit_rate_high: f64,
    /// `no_line`-per-lookup above this votes the depth *down* regardless of
    /// hit rate (speculation is starving demand fills of lines).
    pub pressure_high: f64,
    /// `no_line`-per-lookup must be below this for an *up* vote.
    pub pressure_low: f64,
    /// Consecutive agreeing windows required before a knob moves
    /// (hysteresis).
    pub vote_windows: u32,
    /// Windows to hold a knob still after moving it (cooldown).
    pub cooldown_windows: u32,
    /// Upper clamp on the adaptive prefetch depth.
    pub max_prefetch_depth: u32,

    /// Windows with fewer completed tenant ops than this carry no SLO
    /// signal for that tenant.
    pub min_ops_per_window: u64,
    /// Additive weight increase applied per AIMD step while a tenant misses
    /// its SLO.
    pub weight_step: u64,
    /// Consecutive in-SLO windows before a boosted weight decays
    /// (multiplicatively, by 3/4) back toward its base.
    pub settle_windows: u32,

    /// Maximum number of idle-backoff doublings over the installed base.
    pub max_backoff_doublings: u32,
}

impl Default for ControlPolicy {
    fn default() -> Self {
        ControlPolicy {
            prefetch: true,
            slo: true,
            backoff: true,
            min_lookups: 64,
            hit_rate_low: 0.35,
            hit_rate_high: 0.55,
            pressure_high: 0.10,
            pressure_low: 0.02,
            vote_windows: 2,
            cooldown_windows: 2,
            max_prefetch_depth: 8,
            min_ops_per_window: 16,
            weight_step: 1,
            settle_windows: 4,
            max_backoff_doublings: 4,
        }
    }
}

impl ControlPolicy {
    /// All three loops with default thresholds.
    pub fn all() -> Self {
        ControlPolicy::default()
    }

    /// Only the adaptive-prefetch loop.
    pub fn prefetch_only() -> Self {
        ControlPolicy {
            slo: false,
            backoff: false,
            ..ControlPolicy::default()
        }
    }

    /// Only the SLO/AIMD loop.
    pub fn slo_only() -> Self {
        ControlPolicy {
            prefetch: false,
            backoff: false,
            ..ControlPolicy::default()
        }
    }

    /// Only the idle-backoff loop.
    pub fn backoff_only() -> Self {
        ControlPolicy {
            prefetch: false,
            slo: false,
            ..ControlPolicy::default()
        }
    }
}
