//! What the control plane did: the decision log and the final knob values,
//! surfaced through replay reports.

use crate::knobs::Knob;
use std::fmt;

/// One control decision: a knob moved from `old` to `new` at simulated time
/// `at`, driven by window `window`'s metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct CtrlDecision {
    /// Index of the metrics window whose deltas triggered the decision.
    pub window: u64,
    /// Simulated time (cycles) the decision took effect — the window's end.
    pub at: u64,
    /// Which knob moved.
    pub knob: Knob,
    /// The affected tenant for per-tenant knobs, `None` for global ones.
    pub tenant: Option<u32>,
    /// Knob value before the decision.
    pub old: u64,
    /// Knob value after the decision.
    pub new: u64,
    /// Human-readable cause, stable for a given metric history (the
    /// same-seed determinism property is asserted over these lines).
    pub reason: String,
}

impl fmt::Display for CtrlDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.tenant {
            Some(t) => write!(
                f,
                "w{} @{}: {}[tenant={}] {} -> {} ({})",
                self.window, self.at, self.knob, t, self.old, self.new, self.reason
            ),
            None => write!(
                f,
                "w{} @{}: {} {} -> {} ({})",
                self.window, self.at, self.knob, self.old, self.new, self.reason
            ),
        }
    }
}

/// Final knob values at the end of a controlled run — `None`/empty where the
/// knob was not wired.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KnobValues {
    /// Final cached-path prefetch depth.
    pub prefetch_depth: Option<u32>,
    /// Final service idle backoff (cycles).
    pub idle_backoff: Option<u64>,
    /// Final WFQ weight per SLO tenant, ordered by tenant id.
    pub wfq_weights: Vec<(u32, u64)>,
    /// Final cache share per SLO tenant, ordered by tenant id.
    pub cache_shares: Vec<(u32, u64)>,
}

/// Everything a controlled run reports: the full decision log, how many
/// windows drove it, and where the knobs ended up.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ControlReport {
    /// Every knob move, in simulated-time order.
    pub decisions: Vec<CtrlDecision>,
    /// Metric windows the controller consumed.
    pub windows_seen: u64,
    /// Knob values at the end of the run.
    pub final_knobs: KnobValues,
}

impl ControlReport {
    /// The decision log as formatted lines (the determinism property is
    /// asserted over exactly these strings).
    pub fn decision_log(&self) -> Vec<String> {
        self.decisions.iter().map(|d| d.to_string()).collect()
    }

    /// Decisions that moved `knob`.
    pub fn decisions_for(&self, knob: Knob) -> Vec<&CtrlDecision> {
        self.decisions.iter().filter(|d| d.knob == knob).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_lines_include_tenant_only_when_present() {
        let global = CtrlDecision {
            window: 3,
            at: 2000,
            knob: Knob::PrefetchDepth,
            tenant: None,
            old: 1,
            new: 2,
            reason: "hit rate 0.80".into(),
        };
        assert_eq!(
            global.to_string(),
            "w3 @2000: prefetch_depth 1 -> 2 (hit rate 0.80)"
        );
        let scoped = CtrlDecision {
            tenant: Some(7),
            knob: Knob::WfqWeight,
            ..global
        };
        assert!(scoped.to_string().contains("wfq_weight[tenant=7]"));
    }
}
