//! Warp-level request coalescing (§3.3.2).
//!
//! Threads in a warp frequently request the same SSD page (adjacent embedding
//! rows, neighbouring CSR segments, …). AGILE removes these duplicates
//! *before* touching the shared software cache, because cache lookups need
//! atomics and create critical sections — deduplicating first keeps the warp
//! convergent and cheap. The real implementation uses CUDA warp-level
//! primitives (`__match_any_sync`-style ballots); here the same semantics are
//! computed over the warp's lane request vector.
//!
//! The second coalescing level (the software cache's BUSY state) is
//! implemented in `agile-cache`; this module only handles the intra-warp
//! stage and reports how many redundant requests it removed.

use nvme_sim::Lba;

/// Result of coalescing one warp's worth of requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalescedRequests {
    /// The unique `(device, LBA)` pairs, in first-appearance order.
    pub unique: Vec<(u32, Lba)>,
    /// For each input lane, the index into `unique` it maps to.
    pub lane_to_unique: Vec<usize>,
    /// Number of redundant requests eliminated (`lanes - unique.len()`).
    pub eliminated: usize,
}

/// Coalesce the per-lane requests of one warp.
///
/// Order is preserved (first occurrence wins), matching the "select one
/// thread to forward the request" behaviour of the paper. The warp size is
/// small (32), so a linear scan beats hashing.
pub fn coalesce_warp(requests: &[(u32, Lba)]) -> CoalescedRequests {
    let mut unique: Vec<(u32, Lba)> = Vec::with_capacity(requests.len());
    let mut lane_to_unique = Vec::with_capacity(requests.len());
    for &req in requests {
        match unique.iter().position(|&u| u == req) {
            Some(idx) => lane_to_unique.push(idx),
            None => {
                unique.push(req);
                lane_to_unique.push(unique.len() - 1);
            }
        }
    }
    let eliminated = requests.len() - unique.len();
    CoalescedRequests {
        unique,
        lane_to_unique,
        eliminated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_distinct_requests_pass_through() {
        let reqs: Vec<(u32, Lba)> = (0..32).map(|i| (0, i as u64)).collect();
        let c = coalesce_warp(&reqs);
        assert_eq!(c.unique.len(), 32);
        assert_eq!(c.eliminated, 0);
        assert_eq!(c.lane_to_unique, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn identical_requests_collapse_to_one() {
        let reqs = vec![(0, 7u64); 32];
        let c = coalesce_warp(&reqs);
        assert_eq!(c.unique, vec![(0, 7)]);
        assert_eq!(c.eliminated, 31);
        assert!(c.lane_to_unique.iter().all(|&i| i == 0));
    }

    #[test]
    fn mixed_duplicates_preserve_first_appearance_order() {
        let reqs = vec![(0, 5), (1, 5), (0, 5), (0, 9), (1, 5), (2, 1)];
        let c = coalesce_warp(&reqs);
        assert_eq!(c.unique, vec![(0, 5), (1, 5), (0, 9), (2, 1)]);
        assert_eq!(c.eliminated, 2);
        assert_eq!(c.lane_to_unique, vec![0, 1, 0, 2, 1, 3]);
    }

    #[test]
    fn devices_distinguish_identical_lbas() {
        let reqs = vec![(0, 3), (1, 3), (2, 3)];
        let c = coalesce_warp(&reqs);
        assert_eq!(c.unique.len(), 3);
        assert_eq!(c.eliminated, 0);
    }

    #[test]
    fn empty_warp_is_fine() {
        let c = coalesce_warp(&[]);
        assert!(c.unique.is_empty());
        assert!(c.lane_to_unique.is_empty());
        assert_eq!(c.eliminated, 0);
    }

    #[test]
    fn lane_mapping_reconstructs_original() {
        let reqs = vec![(0, 1), (0, 2), (0, 1), (0, 3), (0, 2)];
        let c = coalesce_warp(&reqs);
        let reconstructed: Vec<(u32, Lba)> =
            c.lane_to_unique.iter().map(|&i| c.unique[i]).collect();
        assert_eq!(reconstructed, reqs);
    }
}
