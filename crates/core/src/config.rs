//! AGILE system configuration.
//!
//! Collects everything the host-side code of Listing 1 configures before
//! starting the service: NVMe queue topology, software-cache geometry and
//! policy, Share Table, the number of service warps, and the cost model used
//! by the simulation substrate.

use agile_cache::CacheConfig;
use agile_sim::costs::CostModel;
use agile_sim::units::{GIB, MIB};
use serde::{Deserialize, Serialize};

/// Which built-in replacement policy the software cache uses.
///
/// The paper keeps the clock policy for its evaluation but makes the policy
/// pluggable; custom policies can be supplied directly to
/// [`crate::host::AgileHost::set_gpu_cache_policy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CachePolicyKind {
    /// Clock / second-chance (the paper's default).
    Clock,
    /// Least recently used.
    Lru,
    /// First in, first out.
    Fifo,
    /// Uniform random.
    Random,
    /// Tenant-aware weighted occupancy shares over an interior clock order
    /// ([`agile_cache::TenantShare`]); per-tenant weights come from
    /// [`AgileConfig::cache_shares`] (empty = equal shares).
    TenantShare,
}

/// Complete AGILE configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgileConfig {
    /// I/O queue pairs created per SSD.
    pub queue_pairs_per_ssd: usize,
    /// Depth (entries) of each SQ/CQ.
    pub queue_depth: u32,
    /// Software-cache geometry.
    pub cache: CacheConfig,
    /// Replacement policy.
    pub cache_policy: CachePolicyKind,
    /// Per-tenant cache-occupancy weights, indexed by tenant id, consumed by
    /// [`CachePolicyKind::TenantShare`] (tenants beyond the slice weigh 1;
    /// empty = equal shares). Ignored by the tenant-oblivious policies.
    pub cache_shares: Vec<u64>,
    /// Set-range shards of the software cache (≥ 1). Sharding is purely
    /// structural — the `(dev, lba) → set` hash spans the logical cache, so
    /// any shard count replays bit-identically — unless `cache_port_hold`
    /// models port contention.
    pub cache_shards: usize,
    /// Modeled cycles one lookup holds its cache shard's access port
    /// ([`agile_cache::ShardedCache::port_acquire`]); 0 (default) disables
    /// the port model. Contention studies set this to measure how splitting
    /// the port across shards scales aggregate throughput.
    pub cache_port_hold: u64,
    /// Enable the Share Table (coherent user buffers, §3.4.1).
    pub share_table_enabled: bool,
    /// Maximum entries the Share Table tracks (0 = unbounded).
    pub share_table_capacity: usize,
    /// Warps dedicated to the AGILE service kernel.
    pub service_warps: u32,
    /// Derive each service partition's warp count from its CQ target count
    /// ([`crate::service::auto_service_warps`]) instead of the fixed
    /// `service_warps` geometry. Off by default (the paper's fixed geometry,
    /// bit-identical).
    pub auto_service_warps: bool,
    /// Thread blocks used by the service kernel (warps are split across them).
    pub service_blocks: u32,
    /// Enable the lock-chain deadlock-debug option (§3.5).
    pub debug_lock_chain: bool,
    /// The cost model shared by all simulators.
    pub costs: CostModel,
}

impl AgileConfig {
    /// The paper's default evaluation configuration: 128 queue pairs of depth
    /// 256 per SSD and a 2 GiB clock-managed software cache (§4.4).
    pub fn paper_default() -> Self {
        AgileConfig {
            queue_pairs_per_ssd: 128,
            queue_depth: 256,
            cache: CacheConfig::with_capacity(2 * GIB),
            cache_policy: CachePolicyKind::Clock,
            cache_shares: Vec::new(),
            cache_shards: 1,
            cache_port_hold: 0,
            share_table_enabled: true,
            share_table_capacity: 0,
            service_warps: 8,
            auto_service_warps: false,
            service_blocks: 2,
            debug_lock_chain: false,
            costs: CostModel::default(),
        }
    }

    /// A small configuration for unit tests: 4 queue pairs of depth 64 per
    /// SSD and a 4 MiB cache.
    pub fn small_test() -> Self {
        AgileConfig {
            queue_pairs_per_ssd: 4,
            queue_depth: 64,
            cache: CacheConfig::with_capacity(4 * MIB),
            cache_policy: CachePolicyKind::Clock,
            cache_shares: Vec::new(),
            cache_shards: 1,
            cache_port_hold: 0,
            share_table_enabled: true,
            share_table_capacity: 0,
            service_warps: 2,
            auto_service_warps: false,
            service_blocks: 1,
            debug_lock_chain: false,
            costs: CostModel::default(),
        }
    }

    /// Override the number of queue pairs per SSD.
    pub fn with_queue_pairs(mut self, qps: usize) -> Self {
        self.queue_pairs_per_ssd = qps;
        self
    }

    /// Override the queue depth.
    pub fn with_queue_depth(mut self, depth: u32) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Override the software cache capacity in bytes.
    pub fn with_cache_bytes(mut self, bytes: u64) -> Self {
        self.cache = CacheConfig::with_capacity(bytes);
        self
    }

    /// Select a built-in cache policy.
    pub fn with_cache_policy(mut self, policy: CachePolicyKind) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Set the per-tenant cache-occupancy weights for
    /// [`CachePolicyKind::TenantShare`] (indexed by tenant id).
    pub fn with_cache_shares(mut self, shares: Vec<u64>) -> Self {
        self.cache_shares = shares;
        self
    }

    /// Split the software cache into `shards` set-range shards (clamped to
    /// ≥ 1).
    pub fn with_cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards.max(1);
        self
    }

    /// Model cache-port contention: each lookup holds its shard's access
    /// port for `cycles` (0 disables the model).
    pub fn with_cache_port_hold(mut self, cycles: u64) -> Self {
        self.cache_port_hold = cycles;
        self
    }

    /// Enable or disable the Share Table.
    pub fn with_share_table(mut self, enabled: bool) -> Self {
        self.share_table_enabled = enabled;
        self
    }

    /// Enable the lock-chain deadlock detector.
    pub fn with_lock_chain_debug(mut self, enabled: bool) -> Self {
        self.debug_lock_chain = enabled;
        self
    }

    /// Override the number of service warps.
    pub fn with_service_warps(mut self, warps: u32) -> Self {
        self.service_warps = warps.max(1);
        self
    }

    /// Auto-size each service partition's warps from its CQ target count
    /// (see [`crate::service::auto_service_warps`]).
    pub fn with_auto_service_warps(mut self) -> Self {
        self.auto_service_warps = true;
        self
    }

    /// Override the cost model.
    pub fn with_costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }
}

impl Default for AgileConfig {
    fn default() -> Self {
        AgileConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_4_4() {
        let c = AgileConfig::paper_default();
        assert_eq!(c.queue_pairs_per_ssd, 128);
        assert_eq!(c.queue_depth, 256);
        assert_eq!(c.cache.capacity_bytes, 2 * GIB);
        assert_eq!(c.cache_policy, CachePolicyKind::Clock);
    }

    #[test]
    fn builders_compose() {
        let c = AgileConfig::small_test()
            .with_queue_pairs(2)
            .with_queue_depth(32)
            .with_cache_bytes(MIB)
            .with_cache_policy(CachePolicyKind::Lru)
            .with_share_table(false)
            .with_lock_chain_debug(true)
            .with_service_warps(0)
            .with_cache_shards(0)
            .with_cache_port_hold(600);
        assert_eq!(c.queue_pairs_per_ssd, 2);
        assert_eq!(c.cache_shards, 1, "cache shards are clamped to ≥ 1");
        assert_eq!(c.cache_port_hold, 600);
        assert_eq!(c.queue_depth, 32);
        assert_eq!(c.cache.capacity_bytes, MIB);
        assert_eq!(c.cache_policy, CachePolicyKind::Lru);
        assert!(!c.share_table_enabled);
        assert!(c.debug_lock_chain);
        assert_eq!(c.service_warps, 1, "service warps are clamped to ≥ 1");
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(
            AgileConfig::default().queue_pairs_per_ssd,
            AgileConfig::paper_default().queue_pairs_per_ssd
        );
    }
}
