//! Adapters wiring the [`agile_control`] control plane onto this crate's
//! knobs.
//!
//! `agile-control` deliberately knows nothing about QoS policies or the
//! software cache: its controller actuates through the [`TenantWeights`]
//! trait and raw atomic cells. This module supplies the concrete adapters —
//! [`QosWeights`] over [`QosPolicy::set_weight`] and [`CacheShares`] over
//! the cache's tenant-share table — plus [`knob_set`], which assembles the
//! full AGILE [`KnobSet`] (prefetch depth, idle backoff, WFQ weights, cache
//! shares) from a controller.

use crate::ctrl::AgileCtrl;
use crate::qos::{QosPolicy, WeightError};
use agile_cache::ShareError;
use agile_control::{KnobError, KnobSet, TenantWeights};
use std::sync::Arc;

/// A [`QosPolicy`]'s online weight surface as [`TenantWeights`].
pub struct QosWeights {
    policy: Arc<dyn QosPolicy>,
}

impl QosWeights {
    /// Adapt `policy` (typically the installed `WeightedFair`).
    pub fn new(policy: Arc<dyn QosPolicy>) -> Arc<Self> {
        Arc::new(QosWeights { policy })
    }
}

impl TenantWeights for QosWeights {
    fn set_weight(&self, tenant: u32, weight: u64) -> Result<u64, KnobError> {
        self.policy.set_weight(tenant, weight).map_err(|e| match e {
            WeightError::Zero => KnobError::Zero,
            WeightError::Unsupported => KnobError::Unsupported,
        })
    }
    fn weight(&self, tenant: u32) -> Option<u64> {
        self.policy.weight(tenant)
    }
}

/// A controller's software-cache tenant shares as [`TenantWeights`].
pub struct CacheShares {
    ctrl: Arc<AgileCtrl>,
}

impl CacheShares {
    /// Adapt `ctrl`'s cache (online-mutable only under `TenantShare`).
    pub fn new(ctrl: Arc<AgileCtrl>) -> Arc<Self> {
        Arc::new(CacheShares { ctrl })
    }
}

impl TenantWeights for CacheShares {
    fn set_weight(&self, tenant: u32, weight: u64) -> Result<u64, KnobError> {
        self.ctrl
            .cache()
            .set_tenant_share(tenant, weight)
            .map_err(|e| match e {
                ShareError::Zero => KnobError::Zero,
                ShareError::Unsupported => KnobError::Unsupported,
            })
    }
    fn weight(&self, tenant: u32) -> Option<u64> {
        self.ctrl.cache().tenant_share(tenant)
    }
}

/// The full AGILE knob set for `ctrl`: the prefetch-depth and idle-backoff
/// cells always, the WFQ weight table when a QoS policy is installed, and
/// the cache-share table always (updates simply return `Unsupported` under
/// non-share policies, which the controller treats as a dormant knob).
pub fn knob_set(ctrl: &Arc<AgileCtrl>) -> KnobSet {
    KnobSet {
        prefetch_depth: Some(ctrl.prefetch_depth_cell()),
        idle_backoff: Some(ctrl.idle_backoff_cell()),
        wfq: ctrl
            .qos_policy()
            .map(|p| QosWeights::new(Arc::clone(p)) as Arc<dyn TenantWeights>),
        cache_shares: Some(CacheShares::new(Arc::clone(ctrl)) as Arc<dyn TenantWeights>),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AgileConfig;
    use crate::qos::WeightedFair;
    use nvme_sim::QueuePair;

    fn test_ctrl() -> Arc<AgileCtrl> {
        let cfg = AgileConfig::small_test();
        let qps = cfg.queue_pairs_per_ssd;
        let depth = cfg.queue_depth;
        let queues = vec![(0..qps)
            .map(|q| QueuePair::new(q as u16, depth))
            .collect::<Vec<_>>()];
        Arc::new(AgileCtrl::new(cfg, queues))
    }

    #[test]
    fn qos_weights_adapter_maps_errors() {
        let wfq: Arc<dyn QosPolicy> = Arc::new(WeightedFair::new().with_weight(1, 2));
        wfq.bind(64);
        let adapter = QosWeights::new(Arc::clone(&wfq));
        assert_eq!(adapter.set_weight(1, 0), Err(KnobError::Zero));
        assert_eq!(adapter.set_weight(1, 5), Ok(5));
        assert_eq!(adapter.weight(1), Some(5));
    }

    #[test]
    fn cache_shares_adapter_reports_unsupported_under_clock() {
        let ctrl = test_ctrl();
        let adapter = CacheShares::new(Arc::clone(&ctrl));
        // The default cache policy is plain clock: no tenant shares.
        assert_eq!(adapter.set_weight(1, 2), Err(KnobError::Unsupported));
        assert_eq!(adapter.weight(1), None);
    }

    #[test]
    fn knob_set_exposes_the_cells_and_omits_wfq_without_qos() {
        let ctrl = test_ctrl();
        let knobs = knob_set(&ctrl);
        assert!(knobs.prefetch_depth.is_some());
        assert!(knobs.idle_backoff.is_some());
        assert!(knobs.wfq.is_none());
        assert!(knobs.cache_shares.is_some());
    }
}
