//! The AGILE controller: the device-side API surface (§3.5).
//!
//! `AgileCtrl` is what warp kernels hold an `Arc` to — the analogue of the
//! `AGILE_CTRL *ctrl` pointer in Listing 1. It provides the paper's three
//! access methods:
//!
//! 1. **`prefetch`** ([`AgileCtrl::prefetch_warp`]) — asynchronously pull SSD
//!    pages into the software cache; the caller continues immediately and
//!    later reads the data through the cache.
//! 2. **`async_issue`** ([`AgileCtrl::async_read`] / [`AgileCtrl::async_write`])
//!    — asynchronous transfers between SSDs and user-registered buffers
//!    ([`crate::transaction::AgileBuf`]), returning a barrier the caller polls.
//! 3. **Array-like synchronous access** ([`AgileCtrl::read_warp`]) — the
//!    `ctrl->getArrayWrap<T>()[dev][idx]` view: a blocking-by-retry read that
//!    transparently checks the cache and issues fills on misses.
//!
//! Every method is **non-blocking**: it returns a cycle cost (charged to the
//! calling warp as busy time) plus an outcome that may ask the caller to
//! retry later. No method ever holds a lock across a wait, which is the heart
//! of the paper's deadlock-freedom argument.
//!
//! All NVMe I/O — fills, write-backs, user reads/writes and the raw-bandwidth
//! path — funnels through [`AgileCtrl::issue_to_device`], which implements the
//! "pick an SQ by thread index, move to the next SQ when full" placement of
//! §3.3.1 on top of [`crate::sq_protocol::AgileSq`].

use crate::coalesce::coalesce_warp;
use crate::config::{AgileConfig, CachePolicyKind};
use crate::lockchain::LockRegistry;
use crate::qos::{QosDecision, QosPolicy};
use crate::sq_protocol::AgileSq;
use crate::transaction::{AgileBuf, Barrier, Transaction};
use agile_cache::{
    CacheLookup, CachePolicy, ClockPolicy, FifoPolicy, LruPolicy, RandomPolicy, ShardedCache,
    ShareTable, TenantShare,
};
use agile_metrics::{Counter, CounterFamily, LabelDim, Labels, MetricsRegistry};
use agile_sim::trace::{TraceEvent, TraceEventKind, TraceSink};
use agile_sim::Cycles;
use nvme_sim::{DmaHandle, Lba, NvmeCommand, Opcode, PageToken, QueuePair, StorageTopology};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Outcome of an asynchronous issue (`asyncRead` / `asyncWrite` / raw I/O).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueOutcome {
    /// The command was handed to an SQ; completion will be signalled through
    /// the associated barrier.
    Issued,
    /// The data was already available (cache or Share Table); the barrier has
    /// already been completed and no NVMe command was needed.
    AlreadyAvailable,
    /// No SQ entry (or no shareable resource) was available; retry later.
    Retry,
}

/// Outcome of an array-like synchronous warp read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Every lane's datum was resident: per-lane tokens, in request order.
    Ready(Vec<PageToken>),
    /// At least one lane missed; fills were issued where possible. Retry the
    /// same call later (hits become cheap, the misses will have landed).
    Pending,
}

/// Per-category API statistics (used by tests and the Figure 11 breakdown).
///
/// Note: for cross-layer observability prefer the unified registry
/// (`agile_submit_*` and friends via `HostBuilder::metrics`); this struct
/// stays for direct programmatic access.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ApiStats {
    /// prefetch_warp invocations.
    pub prefetch_calls: u64,
    /// read_warp invocations.
    pub read_calls: u64,
    /// asyncRead/asyncWrite invocations.
    pub async_calls: u64,
    /// Raw (cache-bypassing) reads/writes issued.
    pub raw_calls: u64,
    /// Cache hits observed by API calls.
    pub cache_hits: u64,
    /// Cache misses that issued a fill.
    pub cache_misses: u64,
    /// Requests eliminated by warp-level coalescing.
    pub warp_coalesced: u64,
    /// Requests coalesced onto an in-flight fill (BUSY hit).
    pub cache_coalesced: u64,
    /// Times every targeted SQ was full and the caller had to retry.
    pub sq_full_retries: u64,
    /// Tenant submissions deferred by the QoS admission gate.
    pub qos_deferrals: u64,
    /// Write-backs of dirty evicted lines.
    pub writebacks: u64,
    /// Cycles charged for cache-management work.
    pub cache_cycles: u64,
    /// Cycles charged for NVMe issue / barrier work.
    pub io_cycles: u64,
}

#[derive(Default)]
struct ApiStatCells {
    prefetch_calls: AtomicU64,
    read_calls: AtomicU64,
    async_calls: AtomicU64,
    raw_calls: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    warp_coalesced: AtomicU64,
    cache_coalesced: AtomicU64,
    sq_full_retries: AtomicU64,
    qos_deferrals: AtomicU64,
    writebacks: AtomicU64,
    cache_cycles: AtomicU64,
    io_cycles: AtomicU64,
}

/// Submit-path instruments (the `agile_submit_*` metric family), installed
/// once via [`AgileCtrl::bind_metrics`]. When absent every hook costs one
/// atomic load (the `OnceLock` probe), preserving the uninstrumented path.
pub struct CtrlMetrics {
    admissions: Counter,
    sq_full_retries: Counter,
    qos_deferrals: CounterFamily,
}

impl CtrlMetrics {
    /// Register (or reuse) the submit-path instruments in `registry`.
    pub fn bind(registry: &Arc<MetricsRegistry>) -> Self {
        CtrlMetrics {
            admissions: registry.counter("agile_submit_admissions_total", Labels::NONE),
            sq_full_retries: registry.counter("agile_submit_sq_full_retries_total", Labels::NONE),
            qos_deferrals: registry
                .counter_family("agile_submit_qos_deferrals_total", LabelDim::Tenant),
        }
    }

    /// Count one successful SQ admission.
    #[inline]
    pub fn admission(&self) {
        self.admissions.inc();
    }

    /// Count one every-SQ-full retry.
    #[inline]
    pub fn sq_full_retry(&self) {
        self.sq_full_retries.inc();
    }

    /// Count one QoS deferral charged to `tenant`.
    #[inline]
    pub fn qos_deferral(&self, tenant: u32) {
        self.qos_deferrals.inc(tenant);
    }
}

/// The queues of one SSD.
pub struct DeviceQueues {
    /// AGILE-managed submission queues (one per I/O queue pair).
    pub sqs: Vec<Arc<AgileSq>>,
}

/// The AGILE controller shared by user kernels and the service kernel.
pub struct AgileCtrl {
    cfg: AgileConfig,
    cache: ShardedCache,
    share_table: Option<ShareTable>,
    devices: Vec<DeviceQueues>,
    /// The storage topology behind the queues: striping map plus the modeled
    /// array lock charged on every submission. `None` in bare-queue unit
    /// rigs, in which case submissions pay no lock cost.
    topology: Option<Arc<dyn StorageTopology>>,
    lock_registry: Option<LockRegistry>,
    stop_service: AtomicBool,
    stats: ApiStatCells,
    /// Optional trace recorder for the submit/doorbell/completion paths.
    trace: OnceLock<Arc<dyn TraceSink>>,
    /// Optional QoS policy arbitrating tenant-attributed SQ admission.
    /// Absent ⇒ FIFO (pre-QoS behaviour, bit-for-bit).
    qos: OnceLock<Arc<dyn QosPolicy>>,
    /// Optional submit-path instruments (`agile_submit_*`).
    metrics: OnceLock<CtrlMetrics>,
    /// Live cached-path prefetch depth in batches of lookahead (1 = the
    /// historical one-batch pipeline). Warps read it per batch, the control
    /// plane retunes it online; one relaxed load on the consumer side.
    prefetch_depth: Arc<AtomicU32>,
    /// Live idle backoff of the AGILE service sweeps in cycles. Partitions
    /// clone the `Arc` at construction and read it per idle round, so an
    /// online exponential-backoff controller reaches every partition.
    idle_backoff: Arc<AtomicU64>,
}

fn build_policy(cfg: &AgileConfig) -> Box<dyn CachePolicy> {
    match cfg.cache_policy {
        CachePolicyKind::Clock => Box::new(ClockPolicy::new()),
        CachePolicyKind::Lru => Box::new(LruPolicy::new()),
        CachePolicyKind::Fifo => Box::new(FifoPolicy::new()),
        CachePolicyKind::Random => Box::new(RandomPolicy::new(0x5EED)),
        CachePolicyKind::TenantShare => Box::new(TenantShare::from_weights(&cfg.cache_shares)),
    }
}

impl AgileCtrl {
    /// Build a controller over the queue pairs of each device (outer index =
    /// device id, inner = queue pair) with no attached topology — bare-queue
    /// unit rigs. Production construction goes through
    /// [`AgileCtrl::with_topology`] (see `bam_baseline::HostBuilder`).
    pub fn new(cfg: AgileConfig, device_queues: Vec<Vec<Arc<QueuePair>>>) -> Self {
        AgileCtrl::build(cfg, device_queues, None)
    }

    /// Build a controller whose submissions are charged the topology's array
    /// lock and whose striped page space is resolvable through
    /// [`AgileCtrl::resolve_page`]. Normally constructed by
    /// [`crate::host::AgileHost::init_nvme`].
    pub fn with_topology(
        cfg: AgileConfig,
        device_queues: Vec<Vec<Arc<QueuePair>>>,
        topology: Arc<dyn StorageTopology>,
    ) -> Self {
        AgileCtrl::build(cfg, device_queues, Some(topology))
    }

    fn build(
        cfg: AgileConfig,
        device_queues: Vec<Vec<Arc<QueuePair>>>,
        topology: Option<Arc<dyn StorageTopology>>,
    ) -> Self {
        let cache = ShardedCache::new(
            cfg.cache.clone(),
            cfg.cache_shards.max(1),
            cfg.cache_port_hold,
            || build_policy(&cfg),
        );
        let share_table = cfg
            .share_table_enabled
            .then(|| ShareTable::with_capacity(cfg.share_table_capacity));
        let lock_registry = cfg.debug_lock_chain.then(LockRegistry::new);
        let devices = device_queues
            .into_iter()
            .map(|qps| DeviceQueues {
                sqs: qps
                    .into_iter()
                    .map(|qp| Arc::new(AgileSq::new(qp)))
                    .collect(),
            })
            .collect();
        let idle_backoff = cfg.costs.api.agile_service_idle_backoff.max(1);
        AgileCtrl {
            cfg,
            cache,
            share_table,
            devices,
            topology,
            lock_registry,
            stop_service: AtomicBool::new(false),
            stats: ApiStatCells::default(),
            trace: OnceLock::new(),
            qos: OnceLock::new(),
            metrics: OnceLock::new(),
            prefetch_depth: Arc::new(AtomicU32::new(1)),
            idle_backoff: Arc::new(AtomicU64::new(idle_backoff)),
        }
    }

    /// Install submit-path instruments bound to `registry`. Returns `false`
    /// if instruments were already installed (the first binding wins).
    pub fn bind_metrics(&self, registry: &Arc<MetricsRegistry>) -> bool {
        self.metrics.set(CtrlMetrics::bind(registry)).is_ok()
    }

    /// Install a QoS policy on the tenant-attributed submission path (the
    /// `*_as` entry points). The policy is bound to the controller's total
    /// SQ-slot capacity so occupancy-tracking schedulers can size their
    /// shares. Returns `false` if one was already installed (the first one
    /// wins). Without a policy — or with [`crate::qos::Fifo`] — admission
    /// behaves exactly as before this subsystem existed.
    pub fn set_qos_policy(&self, policy: Arc<dyn QosPolicy>) -> bool {
        let total_slots: u64 = self
            .devices
            .iter()
            .flat_map(|d| d.sqs.iter())
            .map(|sq| sq.depth() as u64)
            .sum();
        policy.bind(total_slots);
        self.qos.set(policy).is_ok()
    }

    /// The installed QoS policy, if any.
    pub fn qos_policy(&self) -> Option<&Arc<dyn QosPolicy>> {
        self.qos.get()
    }

    /// Install a trace sink on the controller's submit/doorbell path and the
    /// software cache's lookup path. Returns `false` if a sink was already
    /// installed (the first one wins). When no sink is installed the hooks
    /// cost a single atomic load.
    pub fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) -> bool {
        self.cache.set_trace_sink(Arc::clone(&sink));
        self.trace.set(sink).is_ok()
    }

    /// The installed trace sink, if any (used by the AGILE service to record
    /// the completions it processes).
    pub fn trace_sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.trace.get()
    }

    /// The configuration this controller was built with.
    pub fn config(&self) -> &AgileConfig {
        &self.cfg
    }

    /// The software cache (exposed for preloading and statistics). One
    /// logical cache split across `cache_shards` set ranges; `cache_shards=1`
    /// is the historical single cache, bit-for-bit.
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// Current cached-path prefetch depth in batches of lookahead. Warps
    /// load this at every batch boundary, so online updates take effect on
    /// the very next batch a warp issues.
    pub fn prefetch_depth(&self) -> u32 {
        self.prefetch_depth.load(Ordering::Relaxed)
    }

    /// Set the cached-path prefetch depth (0 disables prefetching).
    pub fn set_prefetch_depth(&self, depth: u32) {
        self.prefetch_depth.store(depth, Ordering::Relaxed);
    }

    /// The shared prefetch-depth cell, for the control plane to actuate
    /// without holding a controller reference.
    pub fn prefetch_depth_cell(&self) -> Arc<AtomicU32> {
        Arc::clone(&self.prefetch_depth)
    }

    /// The shared idle-backoff cell read by every service partition at each
    /// idle round. Seeded from `agile_service_idle_backoff`; the control
    /// plane may scale it online (exponential backoff under idleness).
    pub fn idle_backoff_cell(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.idle_backoff)
    }

    /// The Share Table, when enabled.
    pub fn share_table(&self) -> Option<&ShareTable> {
        self.share_table.as_ref()
    }

    /// The lock registry of the deadlock-debug option, when enabled.
    pub fn lock_registry(&self) -> Option<&LockRegistry> {
        self.lock_registry.as_ref()
    }

    /// Number of SSDs.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The attached storage topology, if any.
    pub fn topology(&self) -> Option<&Arc<dyn StorageTopology>> {
        self.topology.as_ref()
    }

    /// Resolve a page of the striped global page space to a concrete
    /// `(device, device-local LBA)` through the topology's striping layer.
    /// Panics when no topology is attached (bare-queue unit rigs).
    pub fn resolve_page(&self, global: u64) -> (u32, Lba) {
        let loc = self
            .topology
            .as_ref()
            .expect("resolve_page requires an attached topology")
            .map_page(global);
        (loc.device, loc.page)
    }

    /// The AGILE-managed SQs of device `dev`.
    pub fn device_queues(&self, dev: usize) -> &[Arc<AgileSq>] {
        &self.devices[dev].sqs
    }

    /// Snapshot of the API statistics.
    pub fn stats(&self) -> ApiStats {
        let s = &self.stats;
        ApiStats {
            prefetch_calls: s.prefetch_calls.load(Ordering::Relaxed),
            read_calls: s.read_calls.load(Ordering::Relaxed),
            async_calls: s.async_calls.load(Ordering::Relaxed),
            raw_calls: s.raw_calls.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            cache_misses: s.cache_misses.load(Ordering::Relaxed),
            warp_coalesced: s.warp_coalesced.load(Ordering::Relaxed),
            cache_coalesced: s.cache_coalesced.load(Ordering::Relaxed),
            sq_full_retries: s.sq_full_retries.load(Ordering::Relaxed),
            qos_deferrals: s.qos_deferrals.load(Ordering::Relaxed),
            writebacks: s.writebacks.load(Ordering::Relaxed),
            cache_cycles: s.cache_cycles.load(Ordering::Relaxed),
            io_cycles: s.io_cycles.load(Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------------
    // NVMe issue plumbing
    // ------------------------------------------------------------------

    /// Issue `cmd` to device `dev`, starting from the SQ selected by the
    /// calling thread's index and falling over to the next SQ when one is
    /// full (§3.3.1). Returns the extra cycles spent and whether it succeeded.
    ///
    /// This entry point **bypasses the QoS admission gate**: it carries no
    /// tenant identity and is what the cache-internal paths (fills,
    /// dirty-victim write-backs) use — deferring a write-back would force
    /// `abort_fill` and drop the dirty snapshot, so system traffic must never
    /// wait behind tenant arbitration. Tenant-attributed submissions go
    /// through [`AgileCtrl::issue_to_device_as`].
    pub fn issue_to_device(
        &self,
        dev: usize,
        warp: u64,
        build: impl Fn(u16) -> NvmeCommand,
        txn: Transaction,
        now: Cycles,
    ) -> (Cycles, bool) {
        self.issue_inner(dev, warp, warp as u32, build, txn, now)
    }

    /// [`AgileCtrl::issue_to_device`] with an explicit tenant identity,
    /// arbitrated by the installed [`QosPolicy`] (when any): the policy is
    /// consulted **before** the SQ-slot claim; a deferred submission pays one
    /// probe and reports failure exactly like an SQ-full outcome, so callers
    /// retry through their existing back-off paths. An admission that then
    /// finds every SQ full is refunded to the policy.
    pub fn issue_to_device_as(
        &self,
        dev: usize,
        warp: u64,
        tenant: u32,
        build: impl Fn(u16) -> NvmeCommand,
        txn: Transaction,
        now: Cycles,
    ) -> (Cycles, bool) {
        if let Some(qos) = self.qos.get() {
            let decision =
                crate::qos::gate_admission(qos.as_ref(), tenant, dev as u32, now, self.trace.get());
            if decision == QosDecision::Defer {
                let cost = Cycles(self.cfg.costs.gpu.poll_iteration);
                self.stats.qos_deferrals.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.metrics.get() {
                    m.qos_deferrals.inc(tenant);
                }
                self.stats
                    .io_cycles
                    .fetch_add(cost.raw(), Ordering::Relaxed);
                return (cost, false);
            }
            let (cost, ok) = self.issue_inner(dev, warp, tenant, build, txn, now);
            if !ok {
                qos.refund(tenant);
            }
            return (cost, ok);
        }
        self.issue_inner(dev, warp, tenant, build, txn, now)
    }

    fn issue_inner(
        &self,
        dev: usize,
        warp: u64,
        tenant: u32,
        build: impl Fn(u16) -> NvmeCommand,
        txn: Transaction,
        now: Cycles,
    ) -> (Cycles, bool) {
        let api = &self.cfg.costs.api;
        let gpu = &self.cfg.costs.gpu;
        let sqs = &self.devices[dev].sqs;
        let n = sqs.len();
        let start = (warp as usize) % n;
        let mut cost = Cycles(api.agile_issue);
        // The array lock guarding SQ-slot allocation + doorbell update: FIFO
        // wait behind earlier holders on this device's shard, then the hold.
        if let Some(topology) = &self.topology {
            cost += topology.lock_acquire(dev, warp, now);
        }
        for attempt in 0..n {
            let sq = &sqs[(start + attempt) % n];
            // `Transaction` is cheap to clone (an Arc flag and small ids);
            // the clone handed to a full queue is simply dropped.
            match sq.try_issue(&build, txn.clone(), now) {
                Some(receipt) => {
                    if receipt.rang_doorbell {
                        cost += Cycles(gpu.doorbell_write);
                    }
                    // Extra serialization attempts burn polling cycles.
                    cost +=
                        Cycles(gpu.poll_iteration) * (receipt.attempts.saturating_sub(1)) as u64;
                    self.stats
                        .io_cycles
                        .fetch_add(cost.raw(), Ordering::Relaxed);
                    if let Some(m) = self.metrics.get() {
                        m.admissions.inc();
                    }
                    if let Some(sink) = self.trace.get() {
                        // Rebuild the command for its lba/opcode; `build` is a
                        // cheap constructor and this path only runs when
                        // tracing is enabled.
                        let cmd = build(receipt.cid);
                        let qid = sq.queue_pair().id();
                        sink.record(
                            TraceEvent::new(TraceEventKind::Submit, now.raw())
                                .target(dev as u32, cmd.slba)
                                .queue(qid, receipt.cid)
                                .tenant(tenant)
                                .write(cmd.opcode == Opcode::Write),
                        );
                        if receipt.rang_doorbell {
                            sink.record(
                                TraceEvent::new(TraceEventKind::Doorbell, now.raw())
                                    .target(dev as u32, cmd.slba)
                                    .queue(qid, receipt.cid)
                                    .tenant(tenant),
                            );
                        }
                    }
                    return (cost, true);
                }
                None => {
                    // This SQ is full: pay a probe and move to the next one
                    // ("simply increasing the index of the target SQ").
                    cost += Cycles(gpu.poll_iteration);
                }
            }
        }
        self.stats.sq_full_retries.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.sq_full_retries.inc();
        }
        self.stats
            .io_cycles
            .fetch_add(cost.raw(), Ordering::Relaxed);
        (cost, false)
    }

    // ------------------------------------------------------------------
    // Method 1: prefetch
    // ------------------------------------------------------------------

    /// Asynchronously prefetch the given `(device, LBA)` pages into the
    /// software cache on behalf of one warp.
    ///
    /// Returns the cycle cost of the call and the subset of requests that
    /// could not even be *started* (no cache line available or every SQ
    /// full); the caller retries those later. Requests that hit, are already
    /// in flight, or were issued successfully need no further action — the
    /// data will be readable through [`AgileCtrl::read_warp`] once the AGILE
    /// service processes the completions.
    ///
    /// Untenanted: cache accounting is skipped and trace events carry the
    /// `NO_TENANT` sentinel (`u32::MAX`); multi-tenant workloads use
    /// [`AgileCtrl::prefetch_warp_as`].
    pub fn prefetch_warp(
        &self,
        warp: u64,
        requests: &[(u32, Lba)],
        now: Cycles,
    ) -> (Cycles, Vec<(u32, Lba)>) {
        self.prefetch_warp_as(warp, agile_cache::NO_TENANT, requests, now)
    }

    /// [`AgileCtrl::prefetch_warp`] with an explicit tenant identity: cache
    /// hits/misses are attributed to `tenant`, filled lines become owned by
    /// it (the per-way view a tenant-aware eviction policy bounds), and
    /// cache trace events carry it. **Accounting only** — the fills and any
    /// dirty-victim write-backs still issue through the QoS-exempt
    /// [`AgileCtrl::issue_to_device`] path: system ops never wait behind
    /// tenant arbitration.
    pub fn prefetch_warp_as(
        &self,
        warp: u64,
        tenant: u32,
        requests: &[(u32, Lba)],
        now: Cycles,
    ) -> (Cycles, Vec<(u32, Lba)>) {
        self.stats.prefetch_calls.fetch_add(1, Ordering::Relaxed);
        self.cache.set_time_hint(now.raw());
        let api = &self.cfg.costs.api;
        let gpu = &self.cfg.costs.gpu;
        let coalesced = coalesce_warp(requests);
        self.stats
            .warp_coalesced
            .fetch_add(coalesced.eliminated as u64, Ordering::Relaxed);
        let mut cost = Cycles(gpu.warp_primitive);
        let mut retry = Vec::new();

        for &(dev, lba) in &coalesced.unique {
            // The shard's access port: FIFO queue wait + hold, exactly like
            // the submit path's array lock. Free when unmodeled (hold 0).
            cost += Cycles(self.cache.port_acquire(dev, lba, now.raw()));
            match self.cache.lookup_or_reserve_as(dev, lba, tenant) {
                CacheLookup::Hit { line, .. } => {
                    cost += Cycles(api.agile_cache_hit);
                    self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    self.cache.unpin(line);
                }
                CacheLookup::Busy { .. } => {
                    cost += Cycles(api.agile_cache_hit);
                    self.stats.cache_coalesced.fetch_add(1, Ordering::Relaxed);
                }
                CacheLookup::Miss {
                    line,
                    dma,
                    writeback,
                } => {
                    cost += Cycles(api.agile_cache_miss);
                    self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                    // Dirty victim: write it back first (from a snapshot, so
                    // there is no hazard against the incoming fill).
                    if let Some((wb_dev, wb_lba, wb_token)) = writeback {
                        self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
                        let snapshot = DmaHandle::with_token(wb_token);
                        let (wb_cost, ok) = self.issue_to_device(
                            wb_dev as usize,
                            warp,
                            |cid| NvmeCommand::write(cid, wb_lba, snapshot.clone()),
                            Transaction::WriteBack,
                            now,
                        );
                        cost += wb_cost;
                        if !ok {
                            // Could not even write back: put the victim's
                            // dirty data back in the line (the snapshot is
                            // its only copy) and retry the prefetch later.
                            self.cache.reinstate_victim(line, wb_dev, wb_lba, wb_token);
                            retry.push((dev, lba));
                            continue;
                        }
                    }
                    let (io_cost, ok) = self.issue_to_device(
                        dev as usize,
                        warp,
                        |cid| NvmeCommand::read(cid, lba, dma.clone()),
                        Transaction::CacheFill { line },
                        now,
                    );
                    cost += io_cost;
                    if !ok {
                        self.cache.abort_fill(line);
                        retry.push((dev, lba));
                    }
                }
                CacheLookup::NoLineAvailable => {
                    cost += Cycles(api.agile_cache_miss);
                    retry.push((dev, lba));
                }
            }
        }
        self.stats
            .cache_cycles
            .fetch_add(cost.raw(), Ordering::Relaxed);
        (cost, retry)
    }

    // ------------------------------------------------------------------
    // Method 3: array-like synchronous access
    // ------------------------------------------------------------------

    /// Array-like synchronous read for one warp: returns the tokens for all
    /// lanes if everything is resident, otherwise issues the missing fills
    /// and asks the caller to retry. Untenanted: cache accounting is
    /// skipped and trace events carry the `NO_TENANT` sentinel (`u32::MAX`);
    /// multi-tenant workloads use [`AgileCtrl::read_warp_as`].
    pub fn read_warp(
        &self,
        warp: u64,
        requests: &[(u32, Lba)],
        now: Cycles,
    ) -> (Cycles, ReadOutcome) {
        self.read_warp_as(warp, agile_cache::NO_TENANT, requests, now)
    }

    /// [`AgileCtrl::read_warp`] with an explicit tenant identity, mirroring
    /// [`AgileCtrl::raw_read_as`]: cache accounting and line ownership are
    /// attributed to `tenant`; the fill/write-back I/O stays QoS-exempt.
    pub fn read_warp_as(
        &self,
        warp: u64,
        tenant: u32,
        requests: &[(u32, Lba)],
        now: Cycles,
    ) -> (Cycles, ReadOutcome) {
        self.stats.read_calls.fetch_add(1, Ordering::Relaxed);
        self.cache.set_time_hint(now.raw());
        let api = &self.cfg.costs.api;
        let gpu = &self.cfg.costs.gpu;
        let coalesced = coalesce_warp(requests);
        self.stats
            .warp_coalesced
            .fetch_add(coalesced.eliminated as u64, Ordering::Relaxed);
        let mut cost = Cycles(gpu.warp_primitive);
        let mut tokens: Vec<Option<PageToken>> = vec![None; coalesced.unique.len()];
        let mut all_ready = true;

        for (uidx, &(dev, lba)) in coalesced.unique.iter().enumerate() {
            cost += Cycles(self.cache.port_acquire(dev, lba, now.raw()));
            match self.cache.lookup_or_reserve_as(dev, lba, tenant) {
                CacheLookup::Hit { line, token } => {
                    cost += Cycles(api.agile_cache_hit);
                    self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    tokens[uidx] = Some(token);
                    self.cache.unpin(line);
                }
                CacheLookup::Busy { .. } => {
                    cost += Cycles(api.agile_cache_hit);
                    self.stats.cache_coalesced.fetch_add(1, Ordering::Relaxed);
                    all_ready = false;
                }
                CacheLookup::Miss {
                    line,
                    dma,
                    writeback,
                } => {
                    cost += Cycles(api.agile_cache_miss);
                    self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                    all_ready = false;
                    if let Some((wb_dev, wb_lba, wb_token)) = writeback {
                        self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
                        let snapshot = DmaHandle::with_token(wb_token);
                        let (wb_cost, ok) = self.issue_to_device(
                            wb_dev as usize,
                            warp,
                            |cid| NvmeCommand::write(cid, wb_lba, snapshot.clone()),
                            Transaction::WriteBack,
                            now,
                        );
                        cost += wb_cost;
                        if !ok {
                            // The write-back snapshot is the only copy of
                            // the victim's modification: reinstate it.
                            self.cache.reinstate_victim(line, wb_dev, wb_lba, wb_token);
                            continue;
                        }
                    }
                    let (io_cost, ok) = self.issue_to_device(
                        dev as usize,
                        warp,
                        |cid| NvmeCommand::read(cid, lba, dma.clone()),
                        Transaction::CacheFill { line },
                        now,
                    );
                    cost += io_cost;
                    if !ok {
                        self.cache.abort_fill(line);
                    }
                }
                CacheLookup::NoLineAvailable => {
                    cost += Cycles(api.agile_cache_miss);
                    all_ready = false;
                }
            }
        }
        self.stats
            .cache_cycles
            .fetch_add(cost.raw(), Ordering::Relaxed);
        if all_ready {
            let per_lane = coalesced
                .lane_to_unique
                .iter()
                .map(|&u| tokens[u].expect("ready token"))
                .collect();
            (cost, ReadOutcome::Ready(per_lane))
        } else {
            (cost, ReadOutcome::Pending)
        }
    }

    /// Store one page through the software cache (array-like write): the
    /// line is updated (write-allocate) and marked dirty; the write-back to
    /// flash happens on eviction. Evicting a dirty victim issues its
    /// write-back NVMe command first, exactly like the read path. Returns
    /// the cost and whether the store landed (false = retry later).
    /// Untenanted: cache accounting is skipped and trace events carry the
    /// `NO_TENANT` sentinel (`u32::MAX`); multi-tenant workloads use
    /// [`AgileCtrl::write_warp_as`].
    pub fn write_warp(
        &self,
        warp: u64,
        dev: u32,
        lba: Lba,
        token: PageToken,
        now: Cycles,
    ) -> (Cycles, bool) {
        self.write_warp_as(warp, agile_cache::NO_TENANT, dev, lba, token, now)
    }

    /// [`AgileCtrl::write_warp`] with an explicit tenant identity (cache
    /// accounting and line ownership only; the eviction write-back stays
    /// QoS-exempt).
    pub fn write_warp_as(
        &self,
        warp: u64,
        tenant: u32,
        dev: u32,
        lba: Lba,
        token: PageToken,
        now: Cycles,
    ) -> (Cycles, bool) {
        self.cache.set_time_hint(now.raw());
        let api = &self.cfg.costs.api;
        let port = Cycles(self.cache.port_acquire(dev, lba, now.raw()));
        match self.cache.lookup_or_reserve_as(dev, lba, tenant) {
            CacheLookup::Hit { line, .. } => {
                self.cache.store(line, token);
                self.cache.unpin(line);
                self.bump_cache(port.raw() + api.agile_cache_hit);
                (port + Cycles(api.agile_cache_hit), true)
            }
            CacheLookup::Miss {
                line, writeback, ..
            } => {
                let mut cost = port + Cycles(api.agile_cache_miss);
                // The victim held dirty data: write it back (from a
                // snapshot) before the line is reused, or the modification
                // is lost.
                if let Some((wb_dev, wb_lba, wb_token)) = writeback {
                    self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
                    let snapshot = DmaHandle::with_token(wb_token);
                    let (wb_cost, ok) = self.issue_to_device(
                        wb_dev as usize,
                        warp,
                        |cid| NvmeCommand::write(cid, wb_lba, snapshot.clone()),
                        Transaction::WriteBack,
                        now,
                    );
                    cost += wb_cost;
                    if !ok {
                        // The snapshot is the only copy of the victim's
                        // modification: reinstate it and ask for a retry.
                        self.cache.reinstate_victim(line, wb_dev, wb_lba, wb_token);
                        self.bump_cache(cost.raw());
                        return (cost, false);
                    }
                }
                // Write-allocate without fetching the old contents.
                self.cache.complete_fill(line);
                self.cache.store(line, token);
                self.cache.unpin(line);
                self.bump_cache(cost.raw());
                (cost, true)
            }
            CacheLookup::Busy { .. } | CacheLookup::NoLineAvailable => {
                self.bump_cache(port.raw() + api.agile_cache_miss);
                (port + Cycles(api.agile_cache_miss), false)
            }
        }
    }

    fn bump_cache(&self, c: u64) {
        self.stats.cache_cycles.fetch_add(c, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Method 2: async_issue(src, dst)
    // ------------------------------------------------------------------

    /// Asynchronously read `(dev, lba)` into the user buffer `buf`
    /// (`ctrl->asyncRead` in Listing 1). The buffer's barrier is re-armed and
    /// completed when the data is in place.
    pub fn async_read(
        &self,
        warp: u64,
        dev: u32,
        lba: Lba,
        buf: &AgileBuf,
        now: Cycles,
    ) -> (Cycles, IssueOutcome) {
        self.stats.async_calls.fetch_add(1, Ordering::Relaxed);
        self.cache.set_time_hint(now.raw());
        let api = &self.cfg.costs.api;
        buf.barrier.reset();
        let mut cost = Cycles(api.agile_barrier_probe);

        // 1. Share Table has the highest priority in the hierarchy (§3.4.1).
        if let Some(st) = &self.share_table {
            if let Some(shared) = st.acquire(dev, lba) {
                cost += Cycles(api.agile_cache_hit);
                if shared.is_ready() {
                    buf.store(shared.token());
                    buf.barrier.complete();
                    // We only needed a copy of the data; drop our reference.
                    let _ = st.release(dev, lba);
                    self.bump_cache(cost.raw());
                    return (cost, IssueOutcome::AlreadyAvailable);
                }
                // The owner's transfer is still in flight; retry later.
                let _ = st.release(dev, lba);
                self.bump_cache(cost.raw());
                return (cost, IssueOutcome::Retry);
            }
        }

        // 2. Software cache (pay the shard's access port when modeled).
        cost += Cycles(self.cache.port_acquire(dev, lba, now.raw()));
        if let Some(token) = self.cache.peek(dev, lba) {
            cost += Cycles(api.agile_cache_hit);
            self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            buf.store(token);
            buf.barrier.complete();
            self.bump_cache(cost.raw());
            return (cost, IssueOutcome::AlreadyAvailable);
        }

        // 3. Issue the NVMe read straight into the user buffer and register
        //    it with the Share Table so other threads can reuse it.
        let shared = self
            .share_table
            .as_ref()
            .and_then(|st| st.register(dev, lba, buf.dma.clone(), warp));
        let txn = Transaction::UserRead {
            barrier: buf.barrier.clone(),
            shared: shared.clone(),
        };
        let (io_cost, ok) = self.issue_to_device(
            dev as usize,
            warp,
            |cid| NvmeCommand::read(cid, lba, buf.dma.clone()),
            txn,
            now,
        );
        cost += io_cost;
        if ok {
            (cost, IssueOutcome::Issued)
        } else {
            if let Some(st) = &self.share_table {
                if shared.is_some() {
                    let _ = st.release(dev, lba);
                }
            }
            (cost, IssueOutcome::Retry)
        }
    }

    /// Asynchronously write the contents of `buf` to `(dev, lba)`
    /// (`ctrl->asyncWrite`). The data is snapshotted at issue time, so the
    /// buffer may be reused immediately; the software cache is updated so
    /// subsequent readers see the new data; the barrier completes when the
    /// SSD acknowledges the write.
    pub fn async_write(
        &self,
        warp: u64,
        dev: u32,
        lba: Lba,
        buf: &AgileBuf,
        now: Cycles,
    ) -> (Cycles, IssueOutcome) {
        self.stats.async_calls.fetch_add(1, Ordering::Relaxed);
        let api = &self.cfg.costs.api;
        let token = buf.token();
        buf.barrier.reset();
        let snapshot = DmaHandle::with_token(token);
        let mut cost = Cycles(api.agile_barrier_probe);

        let (io_cost, ok) = self.issue_to_device(
            dev as usize,
            warp,
            |cid| NvmeCommand::write(cid, lba, snapshot.clone()),
            Transaction::UserWrite {
                barrier: buf.barrier.clone(),
            },
            now,
        );
        cost += io_cost;
        if !ok {
            return (cost, IssueOutcome::Retry);
        }

        // Keep the cache coherent with the new data (write-allocate update).
        let (c_cost, _stored) = self.write_warp(warp, dev, lba, token, now);
        cost += c_cost;

        // If the Share Table tracks this source, record the modification so
        // the owner propagates it when the sharing drains.
        if let Some(st) = &self.share_table {
            let _ = st.mark_modified(dev, lba, token, warp);
        }
        (cost, IssueOutcome::Issued)
    }

    // ------------------------------------------------------------------
    // Raw path (bandwidth experiments) and barrier polling
    // ------------------------------------------------------------------

    /// Issue a raw 4 KiB read that bypasses the software cache (used by the
    /// Figure 5 scaling experiment). Completion is signalled via `barrier`.
    /// The issuing warp's flat index doubles as the tenant id for QoS
    /// arbitration; multi-tenant workloads use [`AgileCtrl::raw_read_as`].
    pub fn raw_read(
        &self,
        warp: u64,
        dev: u32,
        lba: Lba,
        dma: DmaHandle,
        barrier: Barrier,
        now: Cycles,
    ) -> (Cycles, IssueOutcome) {
        self.raw_read_as(warp, warp as u32, dev, lba, dma, barrier, now)
    }

    /// [`AgileCtrl::raw_read`] with an explicit tenant identity: the
    /// submission is arbitrated by the installed [`QosPolicy`] and stamped
    /// with `tenant` in trace capture.
    #[allow(clippy::too_many_arguments)]
    pub fn raw_read_as(
        &self,
        warp: u64,
        tenant: u32,
        dev: u32,
        lba: Lba,
        dma: DmaHandle,
        barrier: Barrier,
        now: Cycles,
    ) -> (Cycles, IssueOutcome) {
        self.stats.raw_calls.fetch_add(1, Ordering::Relaxed);
        let qos_tenant = self.qos.get().map(|_| tenant);
        let (cost, ok) = self.issue_to_device_as(
            dev as usize,
            warp,
            tenant,
            |cid| NvmeCommand::read(cid, lba, dma.clone()),
            Transaction::Raw {
                barrier,
                lba,
                qos_tenant,
            },
            now,
        );
        (
            cost,
            if ok {
                IssueOutcome::Issued
            } else {
                IssueOutcome::Retry
            },
        )
    }

    /// Issue a raw 4 KiB write that bypasses the software cache (Figure 6).
    /// The issuing warp's flat index doubles as the tenant id for QoS
    /// arbitration; multi-tenant workloads use [`AgileCtrl::raw_write_as`].
    pub fn raw_write(
        &self,
        warp: u64,
        dev: u32,
        lba: Lba,
        token: PageToken,
        barrier: Barrier,
        now: Cycles,
    ) -> (Cycles, IssueOutcome) {
        self.raw_write_as(warp, warp as u32, dev, lba, token, barrier, now)
    }

    /// [`AgileCtrl::raw_write`] with an explicit tenant identity: the
    /// submission is arbitrated by the installed [`QosPolicy`] and stamped
    /// with `tenant` in trace capture.
    #[allow(clippy::too_many_arguments)]
    pub fn raw_write_as(
        &self,
        warp: u64,
        tenant: u32,
        dev: u32,
        lba: Lba,
        token: PageToken,
        barrier: Barrier,
        now: Cycles,
    ) -> (Cycles, IssueOutcome) {
        self.stats.raw_calls.fetch_add(1, Ordering::Relaxed);
        let dma = DmaHandle::with_token(token);
        let qos_tenant = self.qos.get().map(|_| tenant);
        let (cost, ok) = self.issue_to_device_as(
            dev as usize,
            warp,
            tenant,
            |cid| NvmeCommand::write(cid, lba, dma.clone()),
            Transaction::Raw {
                barrier,
                lba,
                qos_tenant,
            },
            now,
        );
        (
            cost,
            if ok {
                IssueOutcome::Issued
            } else {
                IssueOutcome::Retry
            },
        )
    }

    /// Poll a transaction barrier (`buf.wait()` single probe). Returns the
    /// probe cost and whether the transaction has completed.
    pub fn poll_barrier(&self, barrier: &Barrier) -> (Cycles, bool) {
        let api = &self.cfg.costs.api;
        self.stats
            .io_cycles
            .fetch_add(api.agile_barrier_probe, Ordering::Relaxed);
        (Cycles(api.agile_barrier_probe), barrier.is_complete())
    }

    // ------------------------------------------------------------------
    // Service control
    // ------------------------------------------------------------------

    /// Ask the service kernel to stop (host-side `stopAgile()`).
    pub fn request_service_stop(&self) {
        self.stop_service.store(true, Ordering::Release);
    }

    /// Re-arm the service (between host-side runs).
    pub fn reset_service_stop(&self) {
        self.stop_service.store(false, Ordering::Release);
    }

    /// True once the host asked the service to stop.
    pub fn service_stop_requested(&self) -> bool {
        self.stop_service.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl_with_queues(devs: usize, qps: usize, depth: u32) -> AgileCtrl {
        let cfg = AgileConfig::small_test()
            .with_queue_pairs(qps)
            .with_queue_depth(depth);
        let queues: Vec<Vec<Arc<QueuePair>>> = (0..devs)
            .map(|_| (0..qps).map(|q| QueuePair::new(q as u16, depth)).collect())
            .collect();
        AgileCtrl::new(cfg, queues)
    }

    #[test]
    fn prefetch_issues_fills_for_misses_and_coalesces() {
        let ctrl = ctrl_with_queues(1, 2, 64);
        // 32 lanes all asking for the same page → one unique request.
        let reqs = vec![(0u32, 7u64); 32];
        let (cost, retry) = ctrl.prefetch_warp(0, &reqs, Cycles(0));
        assert!(retry.is_empty());
        assert!(cost.raw() > 0);
        let s = ctrl.stats();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.warp_coalesced, 31);
        // The command reached an SQ ring.
        let total_inflight: usize = ctrl
            .device_queues(0)
            .iter()
            .map(|q| q.transactions().in_flight())
            .sum();
        assert_eq!(total_inflight, 1);
    }

    #[test]
    fn second_prefetch_of_same_page_is_coalesced_at_cache_level() {
        let ctrl = ctrl_with_queues(1, 2, 64);
        ctrl.prefetch_warp(0, &[(0, 9)], Cycles(0));
        ctrl.prefetch_warp(1, &[(0, 9)], Cycles(0));
        let s = ctrl.stats();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_coalesced, 1);
    }

    #[test]
    fn read_warp_becomes_ready_after_manual_fill() {
        let ctrl = ctrl_with_queues(1, 1, 64);
        let reqs = vec![(0u32, 3u64), (0, 4)];
        let (_, outcome) = ctrl.read_warp(0, &reqs, Cycles(0));
        assert_eq!(outcome, ReadOutcome::Pending);
        // Simulate the service completing the fills: find the reserved lines
        // via the transaction table and complete them.
        for sq in ctrl.device_queues(0) {
            for cid in 0..sq.depth() as u16 {
                if let Some(Transaction::CacheFill { line }) = sq.transactions().take(cid) {
                    ctrl.cache()
                        .way(line)
                        .data
                        .store(PageToken(100 + cid as u64));
                    ctrl.cache().complete_fill(line);
                    ctrl.cache().unpin(line);
                    sq.release(cid);
                }
            }
        }
        let (_, outcome) = ctrl.read_warp(0, &reqs, Cycles(0));
        match outcome {
            ReadOutcome::Ready(tokens) => assert_eq!(tokens.len(), 2),
            ReadOutcome::Pending => panic!("expected ready after fills completed"),
        }
    }

    #[test]
    fn async_read_hits_share_table_on_second_request() {
        let ctrl = ctrl_with_queues(1, 1, 64);
        let a = AgileBuf::new();
        let (_, o) = ctrl.async_read(1, 0, 42, &a, Cycles(0));
        assert_eq!(o, IssueOutcome::Issued);
        // Manually play the service: complete the user-read transaction.
        let sq = &ctrl.device_queues(0)[0];
        let txn = sq.transactions().take(0).expect("in flight");
        if let Transaction::UserRead { barrier, shared } = txn {
            a.dma.store(PageToken(0xAA));
            barrier.complete();
            if let Some(s) = shared {
                s.mark_ready();
            }
            sq.release(0);
        } else {
            panic!("expected a UserRead transaction");
        }
        assert!(a.is_ready());
        // A second thread asking for the same page gets it from the Share
        // Table without any NVMe traffic.
        let b = AgileBuf::new();
        let (_, o) = ctrl.async_read(2, 0, 42, &b, Cycles(0));
        assert_eq!(o, IssueOutcome::AlreadyAvailable);
        assert_eq!(b.token(), PageToken(0xAA));
        assert_eq!(ctrl.stats().raw_calls, 0);
    }

    #[test]
    fn async_write_updates_cache_and_issues() {
        let ctrl = ctrl_with_queues(1, 1, 64);
        let buf = AgileBuf::with_token(PageToken(0xBEEF));
        let (_, o) = ctrl.async_write(0, 0, 5, &buf, Cycles(0));
        assert_eq!(o, IssueOutcome::Issued);
        // Cache now serves the new data.
        assert_eq!(ctrl.cache().peek(0, 5), Some(PageToken(0xBEEF)));
        // Buffer is reusable immediately even though the barrier is pending.
        assert!(!buf.is_ready());
        buf.store(PageToken(1));
        // The in-flight command carries the snapshot, not the new value.
        let sq = &ctrl.device_queues(0)[0];
        assert_eq!(sq.transactions().in_flight(), 1);
    }

    #[test]
    fn issue_retries_and_reports_when_all_sqs_full() {
        let ctrl = ctrl_with_queues(1, 1, 2);
        // Fill both SQ slots with raw reads.
        for i in 0..2u64 {
            let (_, o) = ctrl.raw_read(0, 0, i, DmaHandle::new(), Barrier::new(), Cycles(0));
            assert_eq!(o, IssueOutcome::Issued);
        }
        let (_, o) = ctrl.raw_read(0, 0, 99, DmaHandle::new(), Barrier::new(), Cycles(0));
        assert_eq!(o, IssueOutcome::Retry);
        assert_eq!(ctrl.stats().sq_full_retries, 1);
        // Prefetch misses that cannot issue must not wedge the cache line.
        let (_, retry) = ctrl.prefetch_warp(0, &[(0, 123)], Cycles(0));
        assert_eq!(retry, vec![(0, 123)]);
        assert_eq!(ctrl.cache().total_pins(), 0, "aborted fill must unpin");
    }

    #[test]
    fn service_stop_flag_roundtrip() {
        let ctrl = ctrl_with_queues(1, 1, 4);
        assert!(!ctrl.service_stop_requested());
        ctrl.request_service_stop();
        assert!(ctrl.service_stop_requested());
        ctrl.reset_service_stop();
        assert!(!ctrl.service_stop_requested());
    }

    #[test]
    fn qos_gate_defers_a_tenant_at_its_slot_share() {
        use crate::qos::WeightedFair;
        let ctrl = ctrl_with_queues(1, 2, 32); // 64 slots total
        let policy = Arc::new(WeightedFair::new());
        assert!(ctrl.set_qos_policy(policy.clone()));
        assert!(ctrl.qos_policy().is_some());
        // Tenant 9 becomes active: equal weights split the 64 slots 32/32.
        let (_, o) = ctrl.raw_read_as(0, 9, 0, 1, DmaHandle::new(), Barrier::new(), Cycles(0));
        assert_eq!(o, IssueOutcome::Issued);
        let mut admitted = 0;
        let mut deferred = false;
        for i in 0..40u64 {
            let (_, o) = ctrl.raw_read_as(
                0,
                0,
                0,
                100 + i,
                DmaHandle::new(),
                Barrier::new(),
                Cycles(i),
            );
            match o {
                IssueOutcome::Issued => admitted += 1,
                _ => {
                    deferred = true;
                    break;
                }
            }
        }
        assert!(deferred, "tenant 0 must defer at its share");
        assert_eq!(admitted, 32, "equal weights ⇒ half the 64 slots");
        assert_eq!(ctrl.stats().qos_deferrals, 1);
        // A completion frees a credit and the tenant is admitted again.
        policy.on_complete(0);
        let (_, o) = ctrl.raw_read_as(0, 0, 0, 999, DmaHandle::new(), Barrier::new(), Cycles(50));
        assert_eq!(o, IssueOutcome::Issued);
    }

    #[test]
    fn qos_admission_is_refunded_when_every_sq_is_full() {
        use crate::qos::WeightedFair;
        let ctrl = ctrl_with_queues(1, 1, 2); // 2 slots total
        let policy = Arc::new(WeightedFair::new());
        assert!(ctrl.set_qos_policy(policy.clone()));
        // Fill both slots with untenanted system traffic (gate-exempt).
        for i in 0..2u64 {
            let (_, ok) = ctrl.issue_to_device(
                0,
                0,
                |cid| NvmeCommand::read(cid, i, DmaHandle::new()),
                Transaction::WriteBack,
                Cycles(0),
            );
            assert!(ok);
        }
        // The tenant is admitted by the policy but finds every SQ full: the
        // failed attempt must not count against its share.
        let (_, o) = ctrl.raw_read_as(0, 0, 0, 7, DmaHandle::new(), Barrier::new(), Cycles(1));
        assert_eq!(o, IssueOutcome::Retry);
        assert_eq!(ctrl.stats().sq_full_retries, 1);
        let stats = policy.tenant_stats();
        assert_eq!(stats[0].in_flight, 0, "refunded");
        assert_eq!(stats[0].admitted, 0, "refunded");
        assert_eq!(stats[0].deferred, 0, "an SQ-full failure is not a deferral");
    }

    #[test]
    fn second_qos_policy_is_rejected() {
        use crate::qos::{Fifo, WeightedFair};
        let ctrl = ctrl_with_queues(1, 1, 8);
        assert!(ctrl.set_qos_policy(Arc::new(Fifo)));
        assert!(!ctrl.set_qos_policy(Arc::new(WeightedFair::new())));
        assert_eq!(ctrl.qos_policy().unwrap().name(), "fifo");
    }

    #[test]
    fn write_warp_allocates_and_marks_dirty() {
        let ctrl = ctrl_with_queues(1, 1, 16);
        let (_, ok) = ctrl.write_warp(0, 0, 77, PageToken(55), Cycles(0));
        assert!(ok);
        assert_eq!(ctrl.cache().peek(0, 77), Some(PageToken(55)));
        let (_, outcome) = ctrl.read_warp(0, &[(0, 77)], Cycles(0));
        assert!(matches!(outcome, ReadOutcome::Ready(t) if t[0] == PageToken(55)));
    }
}
