//! Host-side setup, execution and teardown — the Listing 1 flow.
//!
//! [`AgileHost`] mirrors the paper's host API:
//!
//! | Listing 1 call | `AgileHost` method |
//! |---|---|
//! | `AGILE_HOST host(...)` | [`AgileHost::new`] |
//! | `host.setGPUCache(...)` / `setShareTable(...)` | fields of [`crate::config::AgileConfig`] |
//! | `host.addNvmeDev(...)` | [`AgileHost::add_nvme_dev`] / [`AgileHost::add_nvme_dev_with_backing`] |
//! | `host.initNvme()` | [`AgileHost::init_nvme`] |
//! | `host.initializeAgile(...)` | part of [`AgileHost::init_nvme`] (controller construction) |
//! | `host.configKernelParallelism(...)` / `queryOccupancy(...)` | [`AgileHost::query_occupancy`] |
//! | `host.startAgile()` | [`AgileHost::start_agile`] |
//! | `host.runKernel(kernel, args...)` | [`AgileHost::run_kernel`] |
//! | `host.stopAgile()` | [`AgileHost::stop_agile`] |
//! | `host.closeNvme()` | [`AgileHost::close_nvme`] |
//!
//! New code should not drive this order-sensitive sequence by hand: build
//! hosts through `bam_baseline::HostBuilder`, which runs the flow in the
//! only valid order and returns a started host. The common surface both the
//! AGILE host and the BaM baseline host expose afterwards is the
//! [`GpuStorageHost`] trait, so AGILE-vs-BaM harness code is written once.
//!
//! The host also owns the co-simulation plumbing: it builds a
//! [`StorageTopology`] (a single-lock [`nvme_sim::FlatArray`], or a
//! [`nvme_sim::ShardedArray`] when [`AgileHost::set_shards`] was called),
//! bridges it into the GPU engine as an [`gpu_sim::ExternalDevice`], and
//! launches the persistent AGILE service kernel before user kernels run.

use crate::config::AgileConfig;
use crate::control::knob_set;
use crate::ctrl::AgileCtrl;
use crate::qos::QosPolicy;
use crate::service::{auto_service_warps, AgileServiceKernel, ServicePartition, ServiceSet};
use crate::telemetry::{CacheCollector, MetricsBridge, ServiceCollector, TopologyCollector};
use agile_control::{ControlBridge, ControlPolicy, Controller, SloSpec};
use agile_metrics::{MetricsRegistry, WindowedSampler};
use agile_sim::trace::{BufferedSink, TraceSink};
use agile_sim::Cycles;
use gpu_sim::registers::agile_footprints;
use gpu_sim::{
    occupancy, Engine, EngineSched, ExecutionReport, ExternalDevice, GpuConfig, KernelFactory,
    LaunchConfig,
};
use nvme_sim::{
    FlatArray, MemBacking, PageBacking, Placement, ShardedArray, SsdConfig, StorageTopology,
};
use std::sync::Arc;

/// The common host surface shared by the AGILE host and the BaM baseline
/// host: controller access, trace capture, kernel execution and storage
/// introspection. Harness code (benchmarks, experiments, replay) written
/// against this trait runs unchanged on either system.
pub trait GpuStorageHost {
    /// The system's controller type (`AgileCtrl` / `BamCtrl`).
    type Ctrl;

    /// The controller warp kernels hold an `Arc` to.
    fn ctrl(&self) -> Arc<Self::Ctrl>;

    /// Install one trace sink across the whole stack (controller submit
    /// path, software cache, every SSD's completion path). The first sink
    /// installed wins; returns `false` if one was already present.
    fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) -> bool;

    /// Install a QoS policy arbitrating tenant-attributed SQ admission on the
    /// controller. The first policy installed wins; returns `false` if one
    /// was already present. Without a policy the stack behaves as FIFO.
    fn set_qos_policy(&self, policy: Arc<dyn QosPolicy>) -> bool;

    /// The storage topology (striping map, device statistics, lock model).
    fn topology(&self) -> Arc<dyn StorageTopology>;

    /// The page backing of device `dev` (for pre-populating datasets).
    fn backing(&self, dev: usize) -> Arc<dyn PageBacking> {
        self.topology().backing(dev)
    }

    /// Maximum resident blocks per SM for a launch (`queryOccupancy`).
    fn query_occupancy(&self, launch: &LaunchConfig) -> u32;

    /// Launch a user kernel and run the co-simulation until it completes.
    fn run_kernel(
        &mut self,
        launch: LaunchConfig,
        factory: Box<dyn KernelFactory>,
    ) -> ExecutionReport;

    /// Current simulated time.
    fn now(&self) -> Cycles;

    /// Stop any background service the system runs (no-op for BaM).
    fn stop(&mut self);
}

/// Bridges a storage topology into the GPU engine's device list.
pub struct SsdBridge {
    topology: Arc<dyn StorageTopology>,
}

impl SsdBridge {
    /// Wrap a shared topology.
    pub fn new(topology: Arc<dyn StorageTopology>) -> Self {
        SsdBridge { topology }
    }
}

impl ExternalDevice for SsdBridge {
    fn advance_to(&mut self, now: Cycles) {
        self.topology.advance_to(now);
    }
    fn next_event_time(&mut self) -> Option<Cycles> {
        self.topology.next_event_time()
    }
    fn quiescent(&self) -> bool {
        self.topology.quiescent()
    }
}

/// Bridges a single lock shard of a storage topology into the engine as a
/// shard-affine device: one `ShardSsdBridge` per topology shard, registered
/// in shard order so sequential schedulers advance shards exactly as the
/// whole-topology [`SsdBridge`] did, and [`EngineSched::ParallelShards`] can
/// partition them across worker threads.
pub struct ShardSsdBridge {
    topology: Arc<dyn StorageTopology>,
    shard: usize,
}

impl ShardSsdBridge {
    /// Wrap one shard of a shared topology.
    pub fn new(topology: Arc<dyn StorageTopology>, shard: usize) -> Self {
        ShardSsdBridge { topology, shard }
    }
}

impl ExternalDevice for ShardSsdBridge {
    fn advance_to(&mut self, now: Cycles) {
        self.topology.advance_shard_to(self.shard, now);
    }
    fn next_event_time(&mut self) -> Option<Cycles> {
        self.topology.shard_next_event_time(self.shard)
    }
    fn quiescent(&self) -> bool {
        self.topology.shard_quiescent(self.shard)
    }
}

/// Bridges a single *storage device* of a topology into the engine — the
/// device-affine partition grain. One `DeviceSsdBridge` per device,
/// registered in [`StorageTopology::device_advance_order`] (shard-major)
/// order so sequential schedulers advance devices exactly as the shard
/// bridges did, while [`EngineSched::ParallelShards`] partitions work at
/// device rather than lock-shard granularity — a `shards = 1` fleet no
/// longer collapses onto one worker. Lock-shard state is only ever touched
/// from the coordinator's submit path, so it stays single-writer.
pub struct DeviceSsdBridge {
    topology: Arc<dyn StorageTopology>,
    dev: usize,
}

impl DeviceSsdBridge {
    /// Wrap one device of a shared topology.
    pub fn new(topology: Arc<dyn StorageTopology>, dev: usize) -> Self {
        DeviceSsdBridge { topology, dev }
    }
}

impl ExternalDevice for DeviceSsdBridge {
    fn advance_to(&mut self, now: Cycles) {
        self.topology.advance_device_to(self.dev, now);
    }
    fn next_event_time(&mut self) -> Option<Cycles> {
        self.topology.device_next_event_time(self.dev)
    }
    fn quiescent(&self) -> bool {
        self.topology.device_quiescent(self.dev)
    }
}

/// The AGILE host: owns the GPU engine, the storage topology and the
/// controller.
pub struct AgileHost {
    gpu: GpuConfig,
    config: AgileConfig,
    pending_devices: Vec<(SsdConfig, Arc<dyn PageBacking>)>,
    /// 0 = flat (single lock); ≥ 1 = sharded with that many lock shards.
    shards: usize,
    /// Placement seed of the striping layer (interleave by default).
    placement: Placement,
    /// Shard-affine service partitions (one persistent kernel each);
    /// 1 = the paper's single service, bit-identical.
    service_shards: usize,
    /// Scheduling loop of the engine (event-driven ready-queue by default).
    engine_sched: EngineSched,
    /// Epoch-barrier spin limit override for threaded schedulers
    /// (`None` = the engine's default).
    barrier_spin_limit: Option<u32>,
    topology: Option<Arc<dyn StorageTopology>>,
    ctrl: Option<Arc<AgileCtrl>>,
    service: Option<ServiceSet>,
    engine: Option<Engine>,
    service_started: bool,
    /// Optional metrics registry instrumenting the whole stack.
    metrics: Option<Arc<MetricsRegistry>>,
    /// Optional windowed sampler, bridged into the engine at start.
    sampler: Option<Arc<WindowedSampler>>,
    /// Pending control-plane request, consumed at [`AgileHost::start_agile`].
    control: Option<(ControlPolicy, Vec<SloSpec>)>,
    /// The live controller, once started with a control plane.
    controller: Option<Arc<Controller>>,
    /// Per-shard trace buffers, present only when a sink is installed under a
    /// threaded engine; drained as epoch mailboxes at [`AgileHost::start_agile`].
    trace_buffers: std::sync::Mutex<Vec<Arc<BufferedSink>>>,
}

impl AgileHost {
    /// Create a host for the given GPU and AGILE configuration.
    pub fn new(gpu: GpuConfig, config: AgileConfig) -> Self {
        assert!(
            config.queue_depth.is_power_of_two() && config.queue_depth >= 32,
            "queue depth must be a power of two ≥ 32 (warp-window polling)"
        );
        AgileHost {
            gpu,
            config,
            pending_devices: Vec::new(),
            shards: 0,
            placement: Placement::default(),
            service_shards: 1,
            engine_sched: EngineSched::default(),
            barrier_spin_limit: None,
            topology: None,
            ctrl: None,
            service: None,
            engine: None,
            service_started: false,
            metrics: None,
            sampler: None,
            control: None,
            controller: None,
            trace_buffers: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Whether the configured engine scheduler actually runs worker threads.
    fn threaded_engine(&self) -> bool {
        matches!(self.engine_sched, EngineSched::ParallelShards(n) if n > 1)
    }

    /// The GPU configuration.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// The AGILE configuration.
    pub fn config(&self) -> &AgileConfig {
        &self.config
    }

    /// Partition the storage into `shards` lock shards (build a
    /// [`ShardedArray`] instead of the default single-lock [`FlatArray`]).
    /// Must be called before [`AgileHost::init_nvme`].
    pub fn set_shards(&mut self, shards: usize) {
        assert!(
            self.topology.is_none(),
            "set_shards must be called before init_nvme"
        );
        self.shards = shards;
    }

    /// Select the striping layer's placement seed
    /// ([`Placement::Interleave`] by default — the golden-guarded paper
    /// layout). Must be called before [`AgileHost::init_nvme`].
    pub fn set_placement(&mut self, placement: Placement) {
        assert!(
            self.topology.is_none(),
            "set_placement must be called before init_nvme"
        );
        self.placement = placement;
    }

    /// Scale the AGILE service out to `shards` shard-affine partitions, one
    /// persistent kernel each (see [`crate::service::ServiceSet`]). The
    /// default of 1 is the paper's single service, bit for bit. Must be
    /// called before [`AgileHost::start_agile`].
    pub fn set_service_shards(&mut self, shards: usize) {
        assert!(shards >= 1, "the service needs at least one partition");
        assert!(
            !self.service_started,
            "set_service_shards must be called before start_agile"
        );
        self.service_shards = shards;
    }

    /// Select the engine's scheduling loop (default: the event-driven
    /// ready-queue). Must be called before [`AgileHost::start_agile`].
    pub fn set_engine_sched(&mut self, sched: EngineSched) {
        assert!(
            !self.service_started,
            "set_engine_sched must be called before start_agile"
        );
        self.engine_sched = sched;
    }

    /// Override the threaded engine's epoch-barrier spin limit (spins per
    /// worker before falling back to `thread::yield_now`; see
    /// [`gpu_sim::Engine::set_barrier_spin_limit`]). Purely a host-CPU
    /// latency/throughput trade — simulated time is bit-identical at any
    /// setting. Must be called before [`AgileHost::start_agile`].
    pub fn set_barrier_spin_limit(&mut self, limit: u32) {
        assert!(
            !self.service_started,
            "set_barrier_spin_limit must be called before start_agile"
        );
        self.barrier_spin_limit = Some(limit);
    }

    /// Register an SSD with `namespace_pages` 4 KiB pages and a default
    /// in-memory backing. Returns the device index.
    pub fn add_nvme_dev(&mut self, namespace_pages: u64) -> usize {
        let id = self.pending_devices.len() as u32;
        let backing: Arc<dyn PageBacking> = Arc::new(MemBacking::new(id));
        self.add_backed(namespace_pages, backing)
    }

    /// Register an SSD with a caller-supplied backing (synthetic content,
    /// payload-carrying, …). Returns the device index.
    pub fn add_nvme_dev_with_backing(
        &mut self,
        namespace_pages: u64,
        backing: Arc<dyn PageBacking>,
    ) -> usize {
        self.add_backed(namespace_pages, backing)
    }

    fn add_backed(&mut self, namespace_pages: u64, backing: Arc<dyn PageBacking>) -> usize {
        assert!(
            self.topology.is_none(),
            "add_nvme_dev must be called before init_nvme"
        );
        let id = self.pending_devices.len() as u32;
        let cfg = SsdConfig {
            id,
            costs: self.config.costs.ssd.clone(),
            namespace_pages,
            clock_ghz: self.gpu.clock_ghz,
        };
        self.pending_devices.push((cfg, backing));
        id as usize
    }

    /// Build the storage topology, create and register the I/O queue pairs
    /// in (simulated) pinned GPU memory, and construct the AGILE controller
    /// — `initNvme()` + `initializeAgile()` of Listing 1.
    pub fn init_nvme(&mut self) {
        assert!(!self.pending_devices.is_empty(), "no NVMe devices added");
        assert!(self.topology.is_none(), "init_nvme called twice");
        let parts = std::mem::take(&mut self.pending_devices);
        let topology: Arc<dyn StorageTopology> = if self.shards == 0 {
            Arc::new(FlatArray::from_parts(parts).with_placement(self.placement))
        } else {
            Arc::new(ShardedArray::from_parts(parts, self.shards).with_placement(self.placement))
        };
        let per_device_queues =
            topology.register_queues(self.config.queue_pairs_per_ssd, self.config.queue_depth);
        self.ctrl = Some(Arc::new(AgileCtrl::with_topology(
            self.config.clone(),
            per_device_queues,
            Arc::clone(&topology),
        )));
        self.topology = Some(topology);
    }

    /// The controller (available after [`AgileHost::init_nvme`]).
    pub fn ctrl(&self) -> Arc<AgileCtrl> {
        Arc::clone(self.ctrl.as_ref().expect("init_nvme not called"))
    }

    /// Install one trace sink across the whole stack: the controller's
    /// submit/doorbell path, the software cache's lookup path, and every
    /// SSD's completion path. Call after [`AgileHost::init_nvme`]; the first
    /// sink installed wins (returns `false` if one was already present).
    /// Recording costs one atomic load per hook when enabled-but-absent.
    ///
    /// Under a threaded engine ([`EngineSched::ParallelShards`] with more
    /// than one thread) each *device*'s completion path records into a
    /// private [`BufferedSink`] drained into `sink` in fixed shard-major
    /// device order at every epoch boundary, so the merged event stream is
    /// identical to a sequential run. Choose the scheduler (via
    /// [`AgileHost::set_engine_sched`]) *before* installing the sink.
    pub fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) -> bool {
        let ctrl_fresh = self.ctrl().set_trace_sink(Arc::clone(&sink));
        let dev_fresh = if self.threaded_engine() {
            let topology = self.topology();
            let mut buffers = self.trace_buffers.lock().unwrap();
            let mut all_fresh = true;
            for dev in topology.device_advance_order() {
                let buffered = Arc::new(BufferedSink::new(Arc::clone(&sink)));
                let as_sink: Arc<dyn TraceSink> = Arc::clone(&buffered) as Arc<dyn TraceSink>;
                if topology.set_device_trace_sink(dev, &as_sink) {
                    buffers.push(buffered);
                } else {
                    all_fresh = false;
                }
            }
            all_fresh
        } else {
            self.topology().set_trace_sink(&sink)
        };
        ctrl_fresh && dev_fresh
    }

    /// Install a QoS policy on the controller's tenant-attributed submission
    /// path. Call after [`AgileHost::init_nvme`]; the first policy installed
    /// wins (returns `false` otherwise). See [`crate::qos`].
    pub fn set_qos_policy(&self, policy: Arc<dyn QosPolicy>) -> bool {
        self.ctrl().set_qos_policy(policy)
    }

    /// Instrument the stack with `registry`: the controller's submit path
    /// gains direct counters, and the cache / topology / device statistics
    /// are exported through snapshot-time collectors (zero hot-path cost —
    /// see [`crate::telemetry`]). Call after [`AgileHost::init_nvme`] and
    /// before [`AgileHost::start_agile`] (the engine and service bind at
    /// start). Without a registry every metrics hook is a no-op.
    pub fn set_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        assert!(
            self.ctrl.is_some(),
            "set_metrics must be called after init_nvme"
        );
        assert!(
            !self.service_started,
            "set_metrics must be called before start_agile"
        );
        let ctrl = self.ctrl();
        ctrl.bind_metrics(&registry);
        registry.register_collector(Box::new(CacheCollector::new(ctrl)));
        registry.register_collector(Box::new(TopologyCollector::new(self.topology())));
        self.metrics = Some(registry);
    }

    /// Attach a windowed sampler, bridged into the engine as a passive
    /// device at [`AgileHost::start_agile`]: it observes the simulated clock
    /// every scheduling round without perturbing event timing. Call before
    /// `start_agile`.
    pub fn set_metrics_sampler(&mut self, sampler: Arc<WindowedSampler>) {
        assert!(
            !self.service_started,
            "set_metrics_sampler must be called before start_agile"
        );
        self.sampler = Some(sampler);
    }

    /// The installed metrics registry, if any.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Request the closed-loop control plane: at [`AgileHost::start_agile`]
    /// a deterministic [`Controller`] is built over the installed sampler's
    /// window stream (a sampler is required — install one with
    /// [`AgileHost::set_metrics_sampler`]), actuating the full AGILE knob
    /// set (prefetch depth, idle backoff, and — when a QoS policy / share
    /// policy is installed — WFQ weights and cache shares) for the declared
    /// `slos`, and bridged into the engine as a passive device. Call after
    /// any [`AgileHost::set_qos_policy`] so the WFQ knob is picked up.
    pub fn set_control(&mut self, policy: ControlPolicy, slos: Vec<SloSpec>) {
        assert!(
            !self.service_started,
            "set_control must be called before start_agile"
        );
        self.control = Some((policy, slos));
    }

    /// The live controller, when the host was started with a control plane.
    pub fn controller(&self) -> Option<&Arc<Controller>> {
        self.controller.as_ref()
    }

    /// The AGILE service set (available after [`AgileHost::start_agile`]).
    pub fn service_set(&self) -> &ServiceSet {
        self.service.as_ref().expect("start_agile not called")
    }

    /// The first service partition — the whole service when
    /// `service_shards == 1` (available after [`AgileHost::start_agile`]).
    pub fn service(&self) -> Arc<ServicePartition> {
        Arc::clone(&self.service_set().partitions()[0])
    }

    /// The shared storage topology (for workload setup and statistics).
    pub fn topology(&self) -> Arc<dyn StorageTopology> {
        Arc::clone(self.topology.as_ref().expect("init_nvme not called"))
    }

    /// The page backing of device `dev` (for pre-populating datasets).
    pub fn backing(&self, dev: usize) -> Arc<dyn PageBacking> {
        self.topology().backing(dev)
    }

    /// `queryOccupancy`: maximum resident blocks per SM for a launch.
    pub fn query_occupancy(&self, launch: &LaunchConfig) -> u32 {
        occupancy(&self.gpu, launch)
    }

    /// Create the GPU engine, attach the SSD bridge and launch the
    /// persistent AGILE service kernels — `startAgile()`. One kernel per
    /// service shard (see [`AgileHost::set_service_shards`]); each kernel
    /// uses the configured `service_blocks`/`service_warps` geometry, so
    /// scaling the service out adds polling warps in proportion.
    pub fn start_agile(&mut self) {
        assert!(self.ctrl.is_some(), "init_nvme must run before start_agile");
        assert!(!self.service_started, "start_agile called twice");
        let mut engine = Engine::new(self.gpu.clone());
        engine.set_scheduler(self.engine_sched);
        if let Some(limit) = self.barrier_spin_limit {
            engine.set_barrier_spin_limit(limit);
        }
        let topology = self.topology();
        // Device-affine partition grain: one bridge per storage device, in
        // shard-major advance order (bit-identical to the sequential shard
        // walk), so ParallelShards spreads a shards=1 fleet across every
        // worker instead of leaving all but one idle.
        for dev in topology.device_advance_order() {
            engine.add_shard_device(Box::new(DeviceSsdBridge::new(Arc::clone(&topology), dev)));
        }
        {
            let buffers = self.trace_buffers.lock().unwrap();
            assert!(
                !(self.threaded_engine()
                    && self.ctrl().trace_sink().is_some()
                    && buffers.is_empty()),
                "trace sink installed before the ParallelShards scheduler was \
                 selected; call set_engine_sched before set_trace_sink"
            );
            for buffered in buffers.iter() {
                engine.add_mailbox(Arc::clone(buffered) as Arc<dyn gpu_sim::EpochMailbox>);
            }
        }
        if let Some(registry) = &self.metrics {
            engine.set_metrics(gpu_sim::EngineMetrics::bind(registry));
        }
        if let Some(sampler) = &self.sampler {
            engine.add_device(Box::new(MetricsBridge::new(Arc::clone(sampler))));
        }
        if let Some((policy, slos)) = self.control.take() {
            let sampler = self
                .sampler
                .as_ref()
                .expect("set_control requires a windowed sampler (set_metrics_sampler)");
            let ctrl = self.ctrl();
            let controller = Controller::new(
                policy,
                slos,
                knob_set(&ctrl),
                Arc::clone(sampler),
                self.gpu.clock_ghz,
                self.metrics.as_ref(),
            );
            if let Some(sink) = ctrl.trace_sink() {
                controller.set_trace_sink(Arc::clone(sink));
            }
            engine.add_device(Box::new(ControlBridge::new(Arc::clone(&controller))));
            self.controller = Some(controller);
        }

        let ctrl = self.ctrl();
        ctrl.reset_service_stop();
        let set = ServiceSet::new(&ctrl, self.service_shards);
        if let Some(registry) = &self.metrics {
            registry.register_collector(Box::new(ServiceCollector::new(set.partitions().to_vec())));
        }

        let blocks = self.config.service_blocks.max(1);
        for partition in set.partitions() {
            // Fixed geometry by default (the paper's, bit-identical); with
            // auto-sizing on, each partition derives its warp count from the
            // CQs it owns, so scale-out does not multiply idle pollers.
            let total_warps = if self.config.auto_service_warps {
                auto_service_warps(partition.target_count())
            } else {
                self.config.service_warps.max(1)
            };
            let warps_per_block = total_warps.div_ceil(blocks);
            let launch = LaunchConfig::new(blocks, warps_per_block * self.gpu.warp_size)
                .with_registers(agile_footprints::SERVICE_KERNEL_REGISTERS)
                .persistent();
            engine.launch(
                launch,
                Box::new(AgileServiceKernel::new(
                    Arc::clone(partition),
                    warps_per_block,
                    warps_per_block * blocks,
                )),
            );
        }
        self.service = Some(set);
        self.engine = Some(engine);
        self.service_started = true;
    }

    /// Access the engine (advanced use: launching extra kernels directly).
    pub fn engine_mut(&mut self) -> &mut Engine {
        self.engine.as_mut().expect("start_agile not called")
    }

    /// Launch a user kernel and run the co-simulation until it (and any other
    /// non-persistent kernel) completes — `runKernel()`. Returns the
    /// execution report, whose `elapsed` field is the measured end-to-end
    /// time of this run.
    pub fn run_kernel(
        &mut self,
        launch: LaunchConfig,
        factory: Box<dyn KernelFactory>,
    ) -> ExecutionReport {
        let engine = self.engine.as_mut().expect("start_agile not called");
        engine.launch(launch, factory);
        engine.run()
    }

    /// Ask the service kernel to stop — `stopAgile()`.
    pub fn stop_agile(&mut self) {
        if let Some(ctrl) = &self.ctrl {
            ctrl.request_service_stop();
        }
    }

    /// Tear down the NVMe state — `closeNvme()`. (The simulated equivalents
    /// of unbinding the driver: the queues and devices are dropped.)
    pub fn close_nvme(&mut self) {
        self.stop_agile();
        self.engine = None;
        self.service = None;
        self.ctrl = None;
        self.topology = None;
        self.service_started = false;
    }

    /// Current simulated time of the engine (zero before `start_agile`).
    pub fn now(&self) -> Cycles {
        self.engine
            .as_ref()
            .map(|e| e.now())
            .unwrap_or(Cycles::ZERO)
    }
}

impl GpuStorageHost for AgileHost {
    type Ctrl = AgileCtrl;

    fn ctrl(&self) -> Arc<AgileCtrl> {
        AgileHost::ctrl(self)
    }
    fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) -> bool {
        AgileHost::set_trace_sink(self, sink)
    }
    fn set_qos_policy(&self, policy: Arc<dyn QosPolicy>) -> bool {
        AgileHost::set_qos_policy(self, policy)
    }
    fn topology(&self) -> Arc<dyn StorageTopology> {
        AgileHost::topology(self)
    }
    fn query_occupancy(&self, launch: &LaunchConfig) -> u32 {
        AgileHost::query_occupancy(self, launch)
    }
    fn run_kernel(
        &mut self,
        launch: LaunchConfig,
        factory: Box<dyn KernelFactory>,
    ) -> ExecutionReport {
        AgileHost::run_kernel(self, launch, factory)
    }
    fn now(&self) -> Cycles {
        AgileHost::now(self)
    }
    fn stop(&mut self) {
        self.stop_agile();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::PrefetchComputeKernel;

    #[test]
    fn full_listing1_flow_runs_a_kernel() {
        let mut host = AgileHost::new(GpuConfig::tiny(4), AgileConfig::small_test());
        host.add_nvme_dev(1 << 16);
        host.add_nvme_dev(1 << 16);
        host.init_nvme();
        assert_eq!(host.ctrl().device_count(), 2);
        host.start_agile();
        let ctrl = host.ctrl();
        let launch = LaunchConfig::new(2, 64).with_registers(32);
        assert!(host.query_occupancy(&launch) >= 1);
        let report = host.run_kernel(
            launch,
            Box::new(PrefetchComputeKernel::new(ctrl.clone(), 4, 3_000)),
        );
        assert!(!report.deadlocked, "AGILE flow must not deadlock");
        assert!(report.elapsed.raw() > 0);
        // The user kernel really moved data: cache has content and the SSDs
        // processed reads.
        assert!(ctrl.stats().cache_misses > 0);
        assert!(host.topology().total_bytes_read() > 0);
        host.stop_agile();
        host.close_nvme();
    }

    #[test]
    fn sharded_host_runs_the_same_kernel() {
        let mut host = AgileHost::new(GpuConfig::tiny(4), AgileConfig::small_test());
        host.add_nvme_dev(1 << 16);
        host.add_nvme_dev(1 << 16);
        host.set_shards(2);
        host.init_nvme();
        assert_eq!(host.topology().shard_count(), 2);
        host.start_agile();
        let ctrl = host.ctrl();
        let report = host.run_kernel(
            LaunchConfig::new(2, 64).with_registers(32),
            Box::new(PrefetchComputeKernel::new(ctrl, 4, 3_000)),
        );
        assert!(!report.deadlocked);
        assert!(host.topology().total_bytes_read() > 0);
    }

    #[test]
    fn auto_sized_service_still_completes_fills() {
        let mut host = AgileHost::new(
            GpuConfig::tiny(4),
            AgileConfig::small_test().with_auto_service_warps(),
        );
        host.add_nvme_dev(1 << 16);
        host.init_nvme();
        host.start_agile();
        let ctrl = host.ctrl();
        let report = host.run_kernel(
            LaunchConfig::new(2, 64).with_registers(32),
            Box::new(PrefetchComputeKernel::new(ctrl.clone(), 4, 3_000)),
        );
        assert!(!report.deadlocked);
        assert!(
            host.service().stats().completions > 0,
            "the auto-sized service must process completions"
        );
    }

    #[test]
    #[should_panic(expected = "before init_nvme")]
    fn adding_devices_after_init_panics() {
        let mut host = AgileHost::new(GpuConfig::tiny(1), AgileConfig::small_test());
        host.add_nvme_dev(1024);
        host.init_nvme();
        host.add_nvme_dev(1024);
    }

    #[test]
    #[should_panic(expected = "before init_nvme")]
    fn sharding_after_init_panics() {
        let mut host = AgileHost::new(GpuConfig::tiny(1), AgileConfig::small_test());
        host.add_nvme_dev(1024);
        host.init_nvme();
        host.set_shards(4);
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn rejects_non_power_of_two_queue_depth() {
        let _ = AgileHost::new(
            GpuConfig::tiny(1),
            AgileConfig::small_test().with_queue_depth(48),
        );
    }

    #[test]
    fn occupancy_query_matches_gpu_sim() {
        let host = AgileHost::new(GpuConfig::rtx_5000_ada(), AgileConfig::small_test());
        let launch = LaunchConfig::new(1, 1024).with_registers(32);
        assert_eq!(host.query_occupancy(&launch), 1);
    }
}
