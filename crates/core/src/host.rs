//! Host-side setup, execution and teardown — the Listing 1 flow.
//!
//! [`AgileHost`] mirrors the paper's host API:
//!
//! | Listing 1 call | `AgileHost` method |
//! |---|---|
//! | `AGILE_HOST host(...)` | [`AgileHost::new`] |
//! | `host.setGPUCache(...)` / `setShareTable(...)` | fields of [`crate::config::AgileConfig`] |
//! | `host.addNvmeDev(...)` | [`AgileHost::add_nvme_dev`] / [`AgileHost::add_nvme_dev_with_backing`] |
//! | `host.initNvme()` | [`AgileHost::init_nvme`] |
//! | `host.initializeAgile(...)` | part of [`AgileHost::init_nvme`] (controller construction) |
//! | `host.configKernelParallelism(...)` / `queryOccupancy(...)` | [`AgileHost::query_occupancy`] |
//! | `host.startAgile()` | [`AgileHost::start_agile`] |
//! | `host.runKernel(kernel, args...)` | [`AgileHost::run_kernel`] |
//! | `host.stopAgile()` | [`AgileHost::stop_agile`] |
//! | `host.closeNvme()` | [`AgileHost::close_nvme`] |
//!
//! The host also owns the co-simulation plumbing: it builds the
//! [`nvme_sim::SsdArray`], bridges it into the GPU engine as an
//! [`gpu_sim::ExternalDevice`], and launches the persistent AGILE service
//! kernel before user kernels run.

use crate::config::AgileConfig;
use crate::ctrl::AgileCtrl;
use crate::service::{AgileService, AgileServiceKernel};
use agile_sim::Cycles;
use gpu_sim::registers::agile_footprints;
use gpu_sim::{
    occupancy, Engine, ExecutionReport, ExternalDevice, GpuConfig, KernelFactory, LaunchConfig,
};
use nvme_sim::{MemBacking, PageBacking, QueuePair, SsdArray, SsdConfig};
use parking_lot::Mutex;
use std::sync::Arc;

/// Bridges the SSD array into the GPU engine's device list.
pub struct SsdBridge {
    array: Arc<Mutex<SsdArray>>,
}

impl SsdBridge {
    /// Wrap a shared SSD array.
    pub fn new(array: Arc<Mutex<SsdArray>>) -> Self {
        SsdBridge { array }
    }
}

impl ExternalDevice for SsdBridge {
    fn advance_to(&mut self, now: Cycles) {
        self.array.lock().advance_to(now);
    }
    fn next_event_time(&mut self) -> Option<Cycles> {
        self.array.lock().next_event_time()
    }
    fn quiescent(&self) -> bool {
        self.array.lock().quiescent()
    }
}

/// The AGILE host: owns the GPU engine, the SSD array and the controller.
pub struct AgileHost {
    gpu: GpuConfig,
    config: AgileConfig,
    pending_devices: Vec<(SsdConfig, Arc<dyn PageBacking>)>,
    array: Option<Arc<Mutex<SsdArray>>>,
    ctrl: Option<Arc<AgileCtrl>>,
    service: Option<Arc<AgileService>>,
    engine: Option<Engine>,
    service_started: bool,
}

impl AgileHost {
    /// Create a host for the given GPU and AGILE configuration.
    pub fn new(gpu: GpuConfig, config: AgileConfig) -> Self {
        assert!(
            config.queue_depth.is_power_of_two() && config.queue_depth >= 32,
            "queue depth must be a power of two ≥ 32 (warp-window polling)"
        );
        AgileHost {
            gpu,
            config,
            pending_devices: Vec::new(),
            array: None,
            ctrl: None,
            service: None,
            engine: None,
            service_started: false,
        }
    }

    /// The GPU configuration.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// The AGILE configuration.
    pub fn config(&self) -> &AgileConfig {
        &self.config
    }

    /// Register an SSD with `namespace_pages` 4 KiB pages and a default
    /// in-memory backing. Returns the device index.
    pub fn add_nvme_dev(&mut self, namespace_pages: u64) -> usize {
        let id = self.pending_devices.len() as u32;
        let backing: Arc<dyn PageBacking> = Arc::new(MemBacking::new(id));
        self.add_backed(namespace_pages, backing)
    }

    /// Register an SSD with a caller-supplied backing (synthetic content,
    /// payload-carrying, …). Returns the device index.
    pub fn add_nvme_dev_with_backing(
        &mut self,
        namespace_pages: u64,
        backing: Arc<dyn PageBacking>,
    ) -> usize {
        self.add_backed(namespace_pages, backing)
    }

    fn add_backed(&mut self, namespace_pages: u64, backing: Arc<dyn PageBacking>) -> usize {
        assert!(
            self.array.is_none(),
            "add_nvme_dev must be called before init_nvme"
        );
        let id = self.pending_devices.len() as u32;
        let cfg = SsdConfig {
            id,
            costs: self.config.costs.ssd.clone(),
            namespace_pages,
            clock_ghz: self.gpu.clock_ghz,
        };
        self.pending_devices.push((cfg, backing));
        id as usize
    }

    /// Build the SSD array, create and register the I/O queue pairs in
    /// (simulated) pinned GPU memory, and construct the AGILE controller —
    /// `initNvme()` + `initializeAgile()` of Listing 1.
    pub fn init_nvme(&mut self) {
        assert!(!self.pending_devices.is_empty(), "no NVMe devices added");
        assert!(self.array.is_none(), "init_nvme called twice");
        let mut array = SsdArray::from_parts(std::mem::take(&mut self.pending_devices));
        let mut per_device_queues: Vec<Vec<Arc<QueuePair>>> = Vec::new();
        for dev in 0..array.len() {
            let mut qps = Vec::new();
            for q in 0..self.config.queue_pairs_per_ssd {
                let qp = QueuePair::new(q as u16, self.config.queue_depth);
                array.device_mut(dev).register_queue_pair(Arc::clone(&qp));
                qps.push(qp);
            }
            per_device_queues.push(qps);
        }
        self.array = Some(Arc::new(Mutex::new(array)));
        self.ctrl = Some(Arc::new(AgileCtrl::new(
            self.config.clone(),
            per_device_queues,
        )));
    }

    /// The controller (available after [`AgileHost::init_nvme`]).
    pub fn ctrl(&self) -> Arc<AgileCtrl> {
        Arc::clone(self.ctrl.as_ref().expect("init_nvme not called"))
    }

    /// Install one trace sink across the whole stack: the controller's
    /// submit/doorbell path, the software cache's lookup path, and every
    /// SSD's completion path. Call after [`AgileHost::init_nvme`]; the first
    /// sink installed wins (returns `false` if one was already present).
    /// Recording costs one atomic load per hook when enabled-but-absent.
    pub fn set_trace_sink(&self, sink: Arc<dyn agile_sim::trace::TraceSink>) -> bool {
        let ctrl_fresh = self.ctrl().set_trace_sink(Arc::clone(&sink));
        let dev_fresh = self.ssd_array().lock().set_trace_sink(&sink);
        ctrl_fresh && dev_fresh
    }

    /// The AGILE service (available after [`AgileHost::start_agile`]).
    pub fn service(&self) -> Arc<AgileService> {
        Arc::clone(self.service.as_ref().expect("start_agile not called"))
    }

    /// The shared SSD array (for workload setup and statistics).
    pub fn ssd_array(&self) -> Arc<Mutex<SsdArray>> {
        Arc::clone(self.array.as_ref().expect("init_nvme not called"))
    }

    /// The page backing of device `dev` (for pre-populating datasets).
    pub fn backing(&self, dev: usize) -> Arc<dyn PageBacking> {
        Arc::clone(self.ssd_array().lock().device(dev).backing())
    }

    /// `queryOccupancy`: maximum resident blocks per SM for a launch.
    pub fn query_occupancy(&self, launch: &LaunchConfig) -> u32 {
        occupancy(&self.gpu, launch)
    }

    /// Create the GPU engine, attach the SSD bridge and launch the persistent
    /// AGILE service kernel — `startAgile()`.
    pub fn start_agile(&mut self) {
        assert!(self.ctrl.is_some(), "init_nvme must run before start_agile");
        assert!(!self.service_started, "start_agile called twice");
        let mut engine = Engine::new(self.gpu.clone());
        engine.add_device(Box::new(SsdBridge::new(self.ssd_array())));

        let ctrl = self.ctrl();
        ctrl.reset_service_stop();
        let service = AgileService::new(Arc::clone(&ctrl));

        let blocks = self.config.service_blocks.max(1);
        let total_warps = self.config.service_warps.max(1);
        let warps_per_block = total_warps.div_ceil(blocks);
        let launch = LaunchConfig::new(blocks, warps_per_block * self.gpu.warp_size)
            .with_registers(agile_footprints::SERVICE_KERNEL_REGISTERS)
            .persistent();
        engine.launch(
            launch,
            Box::new(AgileServiceKernel::new(
                Arc::clone(&service),
                warps_per_block,
                warps_per_block * blocks,
            )),
        );
        self.service = Some(service);
        self.engine = Some(engine);
        self.service_started = true;
    }

    /// Access the engine (advanced use: launching extra kernels directly).
    pub fn engine_mut(&mut self) -> &mut Engine {
        self.engine.as_mut().expect("start_agile not called")
    }

    /// Launch a user kernel and run the co-simulation until it (and any other
    /// non-persistent kernel) completes — `runKernel()`. Returns the
    /// execution report, whose `elapsed` field is the measured end-to-end
    /// time of this run.
    pub fn run_kernel(
        &mut self,
        launch: LaunchConfig,
        factory: Box<dyn KernelFactory>,
    ) -> ExecutionReport {
        let engine = self.engine.as_mut().expect("start_agile not called");
        engine.launch(launch, factory);
        engine.run()
    }

    /// Ask the service kernel to stop — `stopAgile()`.
    pub fn stop_agile(&mut self) {
        if let Some(ctrl) = &self.ctrl {
            ctrl.request_service_stop();
        }
    }

    /// Tear down the NVMe state — `closeNvme()`. (The simulated equivalents
    /// of unbinding the driver: the queues and devices are dropped.)
    pub fn close_nvme(&mut self) {
        self.stop_agile();
        self.engine = None;
        self.service = None;
        self.ctrl = None;
        self.array = None;
        self.service_started = false;
    }

    /// Current simulated time of the engine (zero before `start_agile`).
    pub fn now(&self) -> Cycles {
        self.engine
            .as_ref()
            .map(|e| e.now())
            .unwrap_or(Cycles::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::PrefetchComputeKernel;

    #[test]
    fn full_listing1_flow_runs_a_kernel() {
        let mut host = AgileHost::new(GpuConfig::tiny(4), AgileConfig::small_test());
        host.add_nvme_dev(1 << 16);
        host.add_nvme_dev(1 << 16);
        host.init_nvme();
        assert_eq!(host.ctrl().device_count(), 2);
        host.start_agile();
        let ctrl = host.ctrl();
        let launch = LaunchConfig::new(2, 64).with_registers(32);
        assert!(host.query_occupancy(&launch) >= 1);
        let report = host.run_kernel(
            launch,
            Box::new(PrefetchComputeKernel::new(ctrl.clone(), 4, 3_000)),
        );
        assert!(!report.deadlocked, "AGILE flow must not deadlock");
        assert!(report.elapsed.raw() > 0);
        // The user kernel really moved data: cache has content and the SSDs
        // processed reads.
        assert!(ctrl.stats().cache_misses > 0);
        let array = host.ssd_array();
        assert!(array.lock().total_bytes_read() > 0);
        host.stop_agile();
        host.close_nvme();
    }

    #[test]
    #[should_panic(expected = "before init_nvme")]
    fn adding_devices_after_init_panics() {
        let mut host = AgileHost::new(GpuConfig::tiny(1), AgileConfig::small_test());
        host.add_nvme_dev(1024);
        host.init_nvme();
        host.add_nvme_dev(1024);
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn rejects_non_power_of_two_queue_depth() {
        let _ = AgileHost::new(
            GpuConfig::tiny(1),
            AgileConfig::small_test().with_queue_depth(48),
        );
    }

    #[test]
    fn occupancy_query_matches_gpu_sim() {
        let host = AgileHost::new(GpuConfig::rtx_5000_ada(), AgileConfig::small_test());
        let launch = LaunchConfig::new(1, 1024).with_registers(32);
        assert_eq!(host.query_occupancy(&launch), 1);
    }
}
