//! Reusable warp-kernel building blocks.
//!
//! The evaluation workloads (DLRM, BFS, SpMV, the CTC micro-benchmark) live
//! in the `agile-workloads` crate; this module provides small, generic
//! kernels used by the documentation example, the host tests and the
//! quickstart example: a prefetch → compute → consume pipeline and a simple
//! asynchronous read-modify-write kernel over user buffers.

use crate::ctrl::{AgileCtrl, ReadOutcome};
use crate::transaction::AgileBuf;
use agile_sim::Cycles;
use gpu_sim::{KernelFactory, WarpCtx, WarpKernel, WarpStep};
use nvme_sim::Lba;
use std::sync::Arc;

/// Poll interval warps use while waiting for I/O (cycles).
pub(crate) const IO_POLL_INTERVAL: u64 = 1_500;

/// A pipeline kernel: each warp iterates `iters` times; on every iteration it
/// prefetches the *next* iteration's pages, computes on the current data and
/// then reads the current pages through the array-like API. This is the
/// canonical AGILE overlap pattern (§4.2).
pub struct PrefetchComputeKernel {
    ctrl: Arc<AgileCtrl>,
    iters: u32,
    compute_cycles: u64,
}

impl PrefetchComputeKernel {
    /// `iters` iterations per warp, each computing for `compute_cycles`.
    pub fn new(ctrl: Arc<AgileCtrl>, iters: u32, compute_cycles: u64) -> Self {
        PrefetchComputeKernel {
            ctrl,
            iters,
            compute_cycles,
        }
    }
}

enum PipelinePhase {
    PrefetchNext,
    Compute,
    ReadCurrent,
}

struct PipelineWarp {
    parent: Arc<AgileCtrl>,
    iters: u32,
    compute_cycles: u64,
    pages: fn(&PipelineWarpCtx, u32, u32) -> Vec<(u32, Lba)>,
    ctx_data: PipelineWarpCtx,
    iter: u32,
    phase: PipelinePhase,
    pending_prefetch: Vec<(u32, Lba)>,
}

struct PipelineWarpCtx {
    warp_flat: u64,
    iters: u32,
    ndev: u64,
}

fn default_pages(ctx: &PipelineWarpCtx, iter: u32, lanes: u32) -> Vec<(u32, Lba)> {
    (0..lanes as u64)
        .map(|lane| {
            let idx =
                ctx.warp_flat * ctx.iters as u64 * lanes as u64 + iter as u64 * lanes as u64 + lane;
            ((idx % ctx.ndev) as u32, (idx / ctx.ndev) % 50_000)
        })
        .collect()
}

impl WarpKernel for PipelineWarp {
    fn step(&mut self, ctx: &WarpCtx) -> WarpStep {
        if self.iter >= self.iters {
            return WarpStep::Done;
        }
        match self.phase {
            PipelinePhase::PrefetchNext => {
                // Retry anything that could not be started last time, then
                // prefetch the next iteration's pages.
                let mut reqs = std::mem::take(&mut self.pending_prefetch);
                if reqs.is_empty() {
                    let target = if self.iter == 0 { 0 } else { self.iter + 1 };
                    if target < self.iters {
                        reqs = (self.pages)(&self.ctx_data, target, ctx.lanes);
                    }
                }
                if reqs.is_empty() {
                    self.phase = PipelinePhase::Compute;
                    return WarpStep::Busy(Cycles(1));
                }
                let (cost, retry) =
                    self.parent
                        .prefetch_warp(self.ctx_data.warp_flat, &reqs, ctx.now);
                self.pending_prefetch = retry;
                if self.pending_prefetch.is_empty() {
                    self.phase = PipelinePhase::Compute;
                }
                WarpStep::Busy(cost)
            }
            PipelinePhase::Compute => {
                self.phase = PipelinePhase::ReadCurrent;
                WarpStep::Busy(Cycles(self.compute_cycles))
            }
            PipelinePhase::ReadCurrent => {
                let reqs = (self.pages)(&self.ctx_data, self.iter, ctx.lanes);
                let (cost, outcome) =
                    self.parent
                        .read_warp(self.ctx_data.warp_flat, &reqs, ctx.now);
                match outcome {
                    ReadOutcome::Ready(_) => {
                        self.iter += 1;
                        self.phase = PipelinePhase::PrefetchNext;
                        WarpStep::Busy(cost)
                    }
                    ReadOutcome::Pending => WarpStep::Stall {
                        retry_after: Cycles(IO_POLL_INTERVAL).max(cost),
                    },
                }
            }
        }
    }
}

impl KernelFactory for PrefetchComputeKernel {
    fn create_warp(&self, block: u32, warp: u32) -> Box<dyn WarpKernel> {
        let warp_flat = block as u64 * 64 + warp as u64;
        Box::new(PipelineWarp {
            parent: Arc::clone(&self.ctrl),
            iters: self.iters,
            compute_cycles: self.compute_cycles,
            pages: default_pages,
            ctx_data: PipelineWarpCtx {
                warp_flat,
                iters: self.iters,
                ndev: self.ctrl.device_count() as u64,
            },
            iter: 0,
            phase: PipelinePhase::PrefetchNext,
            pending_prefetch: Vec::new(),
        })
    }
    fn name(&self) -> &str {
        "prefetch-compute"
    }
}

/// A kernel exercising the `async_issue` path: each warp reads one page per
/// iteration into a private [`AgileBuf`], waits on the barrier, "modifies" the
/// data and writes it back asynchronously.
pub struct AsyncReadModifyWriteKernel {
    ctrl: Arc<AgileCtrl>,
    iters: u32,
    pages_per_dev: u64,
}

impl AsyncReadModifyWriteKernel {
    /// `iters` read-modify-write rounds per warp over a `pages_per_dev`-page
    /// working set per device.
    pub fn new(ctrl: Arc<AgileCtrl>, iters: u32, pages_per_dev: u64) -> Self {
        AsyncReadModifyWriteKernel {
            ctrl,
            iters,
            pages_per_dev,
        }
    }
}

enum RmwPhase {
    IssueRead,
    WaitRead,
    WriteBack,
}

struct RmwWarp {
    ctrl: Arc<AgileCtrl>,
    iters: u32,
    pages_per_dev: u64,
    warp_flat: u64,
    iter: u32,
    phase: RmwPhase,
    buf: AgileBuf,
}

impl RmwWarp {
    fn target(&self) -> (u32, Lba) {
        let ndev = self.ctrl.device_count() as u64;
        let idx = self.warp_flat * self.iters as u64 + self.iter as u64;
        ((idx % ndev) as u32, (idx / ndev) % self.pages_per_dev)
    }
}

impl WarpKernel for RmwWarp {
    fn step(&mut self, ctx: &WarpCtx) -> WarpStep {
        if self.iter >= self.iters {
            return WarpStep::Done;
        }
        let (dev, lba) = self.target();
        match self.phase {
            RmwPhase::IssueRead => {
                let (cost, outcome) =
                    self.ctrl
                        .async_read(self.warp_flat, dev, lba, &self.buf, ctx.now);
                match outcome {
                    crate::ctrl::IssueOutcome::Issued => {
                        self.phase = RmwPhase::WaitRead;
                        WarpStep::Busy(cost)
                    }
                    crate::ctrl::IssueOutcome::AlreadyAvailable => {
                        self.phase = RmwPhase::WriteBack;
                        WarpStep::Busy(cost)
                    }
                    crate::ctrl::IssueOutcome::Retry => WarpStep::Stall {
                        retry_after: Cycles(IO_POLL_INTERVAL),
                    },
                }
            }
            RmwPhase::WaitRead => {
                let (cost, done) = self.ctrl.poll_barrier(&self.buf.barrier);
                if done {
                    self.phase = RmwPhase::WriteBack;
                    WarpStep::Busy(cost)
                } else {
                    WarpStep::Stall {
                        retry_after: Cycles(IO_POLL_INTERVAL),
                    }
                }
            }
            RmwPhase::WriteBack => {
                // "Modify" the page: derive a new token from the old one.
                let old = self.buf.token();
                self.buf
                    .store(nvme_sim::PageToken(old.0 ^ 0xFFFF_0000_0000_FFFF));
                let (cost, outcome) =
                    self.ctrl
                        .async_write(self.warp_flat, dev, lba, &self.buf, ctx.now);
                match outcome {
                    crate::ctrl::IssueOutcome::Retry => WarpStep::Stall {
                        retry_after: Cycles(IO_POLL_INTERVAL),
                    },
                    _ => {
                        self.iter += 1;
                        self.phase = RmwPhase::IssueRead;
                        WarpStep::Busy(cost)
                    }
                }
            }
        }
    }
}

impl KernelFactory for AsyncReadModifyWriteKernel {
    fn create_warp(&self, block: u32, warp: u32) -> Box<dyn WarpKernel> {
        Box::new(RmwWarp {
            ctrl: Arc::clone(&self.ctrl),
            iters: self.iters,
            pages_per_dev: self.pages_per_dev.max(1),
            warp_flat: block as u64 * 64 + warp as u64,
            iter: 0,
            phase: RmwPhase::IssueRead,
            buf: AgileBuf::new(),
        })
    }
    fn name(&self) -> &str {
        "async-rmw"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AgileConfig;
    use crate::host::AgileHost;
    use gpu_sim::{GpuConfig, LaunchConfig};

    #[test]
    fn pipeline_kernel_completes_and_moves_data() {
        let mut host = AgileHost::new(GpuConfig::tiny(2), AgileConfig::small_test());
        host.add_nvme_dev(1 << 16);
        host.init_nvme();
        host.start_agile();
        let ctrl = host.ctrl();
        let report = host.run_kernel(
            LaunchConfig::new(2, 64).with_registers(40),
            Box::new(PrefetchComputeKernel::new(Arc::clone(&ctrl), 3, 2_000)),
        );
        assert!(!report.deadlocked);
        let stats = ctrl.stats();
        assert!(stats.prefetch_calls > 0);
        assert!(stats.read_calls > 0);
        assert!(
            stats.cache_hits > 0,
            "prefetched data should be hit on read"
        );
    }

    #[test]
    fn rmw_kernel_round_trips_user_buffers() {
        let mut host = AgileHost::new(GpuConfig::tiny(2), AgileConfig::small_test());
        host.add_nvme_dev(1 << 16);
        host.init_nvme();
        host.start_agile();
        let ctrl = host.ctrl();
        let report = host.run_kernel(
            LaunchConfig::new(1, 64).with_registers(40),
            Box::new(AsyncReadModifyWriteKernel::new(Arc::clone(&ctrl), 2, 4096)),
        );
        assert!(!report.deadlocked);
        let stats = ctrl.stats();
        assert!(
            stats.async_calls >= 4,
            "each warp does ≥2 reads and 2 writes"
        );
        // Writes were actually applied to the devices.
        assert!(host.topology().total_bytes_written() > 0);
    }
}
