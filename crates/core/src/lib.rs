//! # agile-core — AGILE: asynchronous GPU-centric NVMe I/O
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! lightweight library that lets (simulated) GPU warps issue NVMe commands
//! **asynchronously**, without holding locks across waits and therefore
//! without the deadlock risks of §2.3, while a dedicated background service
//! processes completions on their behalf.
//!
//! The crate is organised exactly along the paper's §3 structure:
//!
//! * [`config`] — system configuration (queue topology, cache geometry,
//!   policies, cost model), the analogue of the host-side configuration calls
//!   in Listing 1;
//! * [`transaction`] — transaction barriers ([`transaction::AgileBuf`],
//!   [`transaction::Barrier`]) and the per-SQ transaction tables that map
//!   completions (by CID) back to the work they finish (§3.2.1, Figure 3);
//! * [`sq_protocol`] — the three-state SQE locks (`EMPTY → UPDATED → ISSUED`)
//!   and the serialized doorbell update of Algorithm 2 (§3.3.1);
//! * [`coalesce`] — warp-level request coalescing (§3.3.2);
//! * [`service`] — the AGILE service with warp-centric CQ polling
//!   (Algorithm 1, §3.2), scaled out as shard-affine
//!   [`service::ServicePartition`]s under a [`service::ServiceSet`];
//! * [`ctrl`] — the device-side API surface (`prefetch`, `asyncRead`,
//!   `asyncWrite`, the array-like accessor) exposed to warp kernels (§3.5);
//! * [`lockchain`] — the compile-time debug option that tracks per-thread
//!   lock chains and reports circular dependencies (§3.5);
//! * [`qos`] — QoS-aware submission scheduling across tenants: a pluggable
//!   [`qos::QosPolicy`] ([`qos::Fifo`], deficit-round-robin
//!   [`qos::WeightedFair`], [`qos::StrictPriority`]) that arbitrates SQ-slot
//!   admission ahead of the Algorithm 2 critical section;
//! * [`host`] — [`host::AgileHost`], the host-side setup/run/teardown flow of
//!   Listing 1, plus the bridge that co-simulates the SSD array with the GPU
//!   engine.
//!
//! ## Example
//!
//! ```
//! use agile_core::host::AgileHost;
//! use agile_core::config::AgileConfig;
//! use agile_core::kernels::PrefetchComputeKernel;
//! use gpu_sim::{GpuConfig, LaunchConfig};
//!
//! // Two small SSDs, a 4 MiB cache, 4 queue pairs of depth 64 per SSD.
//! let config = AgileConfig::small_test();
//! let mut host = AgileHost::new(GpuConfig::tiny(4), config);
//! host.add_nvme_dev(1 << 16); // pages
//! host.add_nvme_dev(1 << 16);
//! host.init_nvme();
//! host.start_agile();
//! let ctrl = host.ctrl();
//! let report = host.run_kernel(
//!     LaunchConfig::new(2, 64).with_registers(32),
//!     Box::new(PrefetchComputeKernel::new(ctrl, 8, 2000)),
//! );
//! assert!(!report.deadlocked);
//! host.stop_agile();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coalesce;
pub mod config;
pub mod control;
pub mod ctrl;
pub mod host;
pub mod kernels;
pub mod lockchain;
pub mod qos;
pub mod service;
pub mod sq_protocol;
pub mod telemetry;
pub mod transaction;

pub use config::AgileConfig;
pub use control::{knob_set, CacheShares, QosWeights};
pub use ctrl::{AgileCtrl, ApiStats, CtrlMetrics, IssueOutcome, ReadOutcome};
pub use host::{AgileHost, GpuStorageHost, ShardSsdBridge, SsdBridge};
pub use lockchain::{AgileLockChain, DeadlockReport, LockRegistry};
pub use qos::{
    Fifo, QosDecision, QosPolicy, QosTenantStats, StrictPriority, WeightError, WeightedFair,
    MAX_ONLINE_WEIGHT,
};
pub use service::{partition_targets, ServicePartition, ServiceSet, ServiceStats};
pub use telemetry::{
    CacheCollector, CacheStatsProvider, MetricsBridge, ServiceCollector, TopologyCollector,
};
pub use transaction::{AgileBuf, Barrier};
