//! Lock-chain tracking and deadlock reporting (the paper's debug option).
//!
//! AGILE lets users plug in their own cache and Share-Table policies, and
//! custom policies may take locks of their own — re-introducing deadlock
//! risk. The paper ships a compile-time debug option (§3.5): every thread
//! tracks the locks it has acquired in a per-thread *lock chain*; when an
//! acquisition fails, the thread records that its held locks now depend on
//! the target lock, and checks whether the target's dependency chain reaches
//! back to any lock it already holds — a cycle, i.e. a deadlock — which is
//! then reported instead of hanging.
//!
//! The reproduction implements the same machinery as a runtime-selectable
//! (rather than compile-time) option: a global [`LockRegistry`] of abstract
//! locks, per-thread [`AgileLockChain`]s, and cycle detection over the
//! wait-for graph.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identifier of an abstract lock registered with the [`LockRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LockId(pub u64);

/// Identifier of a (simulated) thread.
pub type ThreadId = u64;

/// A reported circular dependency.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadlockReport {
    /// The thread whose failed acquisition closed the cycle.
    pub thread: ThreadId,
    /// The lock that thread was trying to acquire.
    pub wanted: LockId,
    /// The cycle of locks, starting and ending at `wanted`.
    pub cycle: Vec<LockId>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deadlock: thread {} waiting for lock {:?}; cycle: {:?}",
            self.thread, self.wanted, self.cycle
        )
    }
}

#[derive(Default)]
struct RegistryInner {
    /// Current holder of each lock (if any).
    holders: HashMap<LockId, ThreadId>,
    /// wanted-by edges: thread → lock it is currently blocked on.
    waiting: HashMap<ThreadId, LockId>,
    /// locks held per thread.
    held: HashMap<ThreadId, Vec<LockId>>,
    next_id: u64,
    reports: Vec<DeadlockReport>,
}

/// The global registry of abstract locks used by the debug option.
#[derive(Default)]
pub struct LockRegistry {
    inner: Mutex<RegistryInner>,
}

impl LockRegistry {
    /// A fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new abstract lock and return its id.
    pub fn register_lock(&self) -> LockId {
        let mut inner = self.inner.lock();
        let id = LockId(inner.next_id);
        inner.next_id += 1;
        id
    }

    /// Record a successful acquisition of `lock` by `thread`.
    pub fn acquired(&self, thread: ThreadId, lock: LockId) {
        let mut inner = self.inner.lock();
        inner.holders.insert(lock, thread);
        inner.waiting.remove(&thread);
        inner.held.entry(thread).or_default().push(lock);
    }

    /// Record a release of `lock` by `thread`.
    pub fn released(&self, thread: ThreadId, lock: LockId) {
        let mut inner = self.inner.lock();
        if inner.holders.get(&lock) == Some(&thread) {
            inner.holders.remove(&lock);
        }
        if let Some(held) = inner.held.get_mut(&thread) {
            if let Some(pos) = held.iter().position(|&l| l == lock) {
                held.remove(pos);
            }
        }
    }

    /// Record that `thread` failed to acquire `lock` and is now waiting for
    /// it. Returns a [`DeadlockReport`] if this wait closes a cycle in the
    /// wait-for graph.
    pub fn blocked_on(&self, thread: ThreadId, lock: LockId) -> Option<DeadlockReport> {
        let mut inner = self.inner.lock();
        inner.waiting.insert(thread, lock);

        // Walk holder → waiting-for → holder … starting from `lock`, looking
        // for a path back to a lock held by `thread` (or to `thread` itself).
        let mut cycle = vec![lock];
        let mut visited_threads = HashSet::new();
        let mut current_lock = lock;
        loop {
            let Some(&holder) = inner.holders.get(&current_lock) else {
                // Nobody holds it: no deadlock, the acquisition will succeed
                // once retried.
                return None;
            };
            if holder == thread {
                // The requester already holds a lock on the path: cycle.
                let report = DeadlockReport {
                    thread,
                    wanted: lock,
                    cycle,
                };
                inner.reports.push(report.clone());
                return Some(report);
            }
            if !visited_threads.insert(holder) {
                // Another cycle not involving `thread`; stop walking.
                return None;
            }
            let Some(&next_lock) = inner.waiting.get(&holder) else {
                // Holder is running (not blocked): it will eventually release.
                return None;
            };
            cycle.push(next_lock);
            current_lock = next_lock;
        }
    }

    /// Clear a previously recorded wait (the thread gave up or succeeded).
    pub fn unblocked(&self, thread: ThreadId) {
        self.inner.lock().waiting.remove(&thread);
    }

    /// All deadlocks reported so far.
    pub fn reports(&self) -> Vec<DeadlockReport> {
        self.inner.lock().reports.clone()
    }

    /// Locks currently held by `thread` (its lock chain).
    pub fn chain_of(&self, thread: ThreadId) -> Vec<LockId> {
        self.inner
            .lock()
            .held
            .get(&thread)
            .cloned()
            .unwrap_or_default()
    }
}

/// Per-thread handle mirroring the `AgileLockChain chain;` declaration in
/// Listing 1: a thin wrapper that tags every registry call with the owning
/// thread id.
pub struct AgileLockChain<'r> {
    registry: &'r LockRegistry,
    thread: ThreadId,
}

impl<'r> AgileLockChain<'r> {
    /// Create the chain for `thread`.
    pub fn new(registry: &'r LockRegistry, thread: ThreadId) -> Self {
        AgileLockChain { registry, thread }
    }

    /// The owning thread.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Record a successful acquisition.
    pub fn acquired(&self, lock: LockId) {
        self.registry.acquired(self.thread, lock);
    }

    /// Record a release.
    pub fn released(&self, lock: LockId) {
        self.registry.released(self.thread, lock);
    }

    /// Record a failed acquisition; returns a report if it closes a cycle.
    pub fn blocked_on(&self, lock: LockId) -> Option<DeadlockReport> {
        self.registry.blocked_on(self.thread, lock)
    }

    /// Clear this thread's wait edge.
    pub fn unblocked(&self) {
        self.registry.unblocked(self.thread);
    }

    /// The locks this thread currently holds.
    pub fn held(&self) -> Vec<LockId> {
        self.registry.chain_of(self.thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_deadlock_on_uncontended_locks() {
        let reg = LockRegistry::new();
        let a = reg.register_lock();
        let chain = AgileLockChain::new(&reg, 1);
        chain.acquired(a);
        assert_eq!(chain.held(), vec![a]);
        chain.released(a);
        assert!(chain.held().is_empty());
        assert!(reg.reports().is_empty());
    }

    #[test]
    fn waiting_on_a_running_holder_is_not_a_deadlock() {
        let reg = LockRegistry::new();
        let a = reg.register_lock();
        let t1 = AgileLockChain::new(&reg, 1);
        let t2 = AgileLockChain::new(&reg, 2);
        t1.acquired(a);
        // t2 blocks on a, but t1 is not waiting on anything: no cycle.
        assert!(t2.blocked_on(a).is_none());
        t1.released(a);
        t2.unblocked();
        assert!(reg.reports().is_empty());
    }

    #[test]
    fn classic_ab_ba_deadlock_is_detected() {
        let reg = LockRegistry::new();
        let a = reg.register_lock();
        let b = reg.register_lock();
        let t1 = AgileLockChain::new(&reg, 1);
        let t2 = AgileLockChain::new(&reg, 2);
        // T1 holds A, T2 holds B.
        t1.acquired(a);
        t2.acquired(b);
        // T1 blocks on B — no cycle yet (T2 is still running).
        assert!(t1.blocked_on(b).is_none());
        // T2 blocks on A — cycle: A held by T1, which waits for B held by T2.
        let report = t2.blocked_on(a).expect("deadlock must be reported");
        assert_eq!(report.thread, 2);
        assert_eq!(report.wanted, a);
        assert!(report.cycle.contains(&a) && report.cycle.contains(&b));
        assert_eq!(reg.reports().len(), 1);
        let rendered = format!("{report}");
        assert!(rendered.contains("deadlock"));
    }

    #[test]
    fn three_party_cycle_is_detected() {
        let reg = LockRegistry::new();
        let locks: Vec<LockId> = (0..3).map(|_| reg.register_lock()).collect();
        let chains: Vec<AgileLockChain<'_>> = (0..3)
            .map(|t| AgileLockChain::new(&reg, t as u64))
            .collect();
        for i in 0..3 {
            chains[i].acquired(locks[i]);
        }
        // 0 waits for 1's lock, 1 waits for 2's lock — no cycle yet.
        assert!(chains[0].blocked_on(locks[1]).is_none());
        assert!(chains[1].blocked_on(locks[2]).is_none());
        // 2 waits for 0's lock — closes the three-party cycle.
        let report = chains[2].blocked_on(locks[0]).expect("cycle of three");
        assert_eq!(report.cycle.len(), 3);
    }

    #[test]
    fn releasing_breaks_the_cycle_possibility() {
        let reg = LockRegistry::new();
        let a = reg.register_lock();
        let b = reg.register_lock();
        let t1 = AgileLockChain::new(&reg, 1);
        let t2 = AgileLockChain::new(&reg, 2);
        t1.acquired(a);
        t2.acquired(b);
        assert!(t1.blocked_on(b).is_none());
        // T1 gives up and releases A before T2 ever waits: no deadlock.
        t1.unblocked();
        t1.released(a);
        assert!(t2.blocked_on(a).is_none());
    }
}
