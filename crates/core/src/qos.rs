//! QoS-aware submission scheduling across tenants.
//!
//! The AGILE design funnels every warp's I/O through the shared SQ slots of
//! §3.3.1, so one noisy tenant can stuff the rings and starve everyone else —
//! the per-tenant p99 columns of the replay reports make that visible; this
//! module is what acts on it. A [`QosPolicy`] sits **in front of** the
//! SQE-claim critical section ([`crate::sq_protocol::AgileSq::try_issue`]):
//! before a tenant-attributed submission may race for a slot, the policy
//! decides [`QosDecision::Admit`] or [`QosDecision::Defer`]. A deferred
//! submission behaves exactly like an SQ-full retry — the caller backs off and
//! retries later — so the non-blocking structure of the protocol (no lock held
//! across a wait, Figure 1 cannot form) is untouched.
//!
//! Three policies ship:
//!
//! * [`Fifo`] — admit everything; **bit-identical** to the pre-QoS stack
//!   (asserted by the golden-trace suite). This is the default when no policy
//!   is installed.
//! * [`WeightedFair`] — deficit round robin over per-tenant virtual queues,
//!   realised on the in-flight SQ slots: a tenant's round credit is its
//!   weighted share of the slot capacity, an admission spends one credit, and
//!   credits return when the command **completes** (via
//!   [`QosPolicy::on_complete`]) rather than on a timer. Spent-but-uncompleted
//!   credits are exactly the tenant's in-flight occupancy, so under
//!   saturation admitted-op shares converge to the weight ratio
//!   (property-tested in `tests/qos_fairness.rs`) while a tenant with no
//!   active competitors inherits the whole capacity — the gate stays
//!   work-conserving.
//! * [`StrictPriority`] — a tenant defers whenever any strictly
//!   higher-priority tenant has attempted an admission recently. Simple and
//!   starvation-prone by design (that is what "strict" means).
//!
//! Only **tenant-attributed** submissions are arbitrated (the `*_as` entry
//! points of [`crate::AgileCtrl`] / `bam_baseline::BamCtrl`). Cache-internal
//! traffic — dirty-victim write-backs and fills issued while a cache line is
//! held — bypasses the gate: deferring a write-back would force `abort_fill`
//! and drop the dirty snapshot (the known lost-update hazard), so system ops
//! must never wait behind tenant arbitration.

use agile_sim::trace::{TraceEvent, TraceEventKind, TraceSink};
use agile_sim::Cycles;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Run one admission check against `policy`, recording a
/// [`TraceEventKind::QosDefer`] event on deferral. The single gate both
/// controllers call, so the decision flow and the trace-event shape cannot
/// drift between the AGILE and BaM submission paths (the stats counters and
/// cycle charging stay with the caller — they live in per-controller cells).
pub fn gate_admission(
    policy: &dyn QosPolicy,
    tenant: u32,
    dev: u32,
    now: Cycles,
    sink: Option<&Arc<dyn TraceSink>>,
) -> QosDecision {
    let decision = policy.admit(tenant, now);
    if decision == QosDecision::Defer {
        if let Some(sink) = sink {
            sink.record(
                TraceEvent::new(TraceEventKind::QosDefer, now.raw())
                    .target(dev, 0)
                    .tenant(tenant),
            );
        }
    }
    decision
}

/// Largest weight an online update may install. Keeps the
/// `capacity × weight` product (computed in u128 on the admit path) far from
/// overflow even with thousands of tenants at the maximum weight, and bounds
/// how hard a runaway controller can skew the schedule in one step.
pub const MAX_ONLINE_WEIGHT: u64 = 1 << 32;

/// Why an online weight/share update was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightError {
    /// A zero weight was requested. Constructors clamp zero to 1 (a declared
    /// config is best-effort), but an *online* update to zero is always a
    /// controller bug — it could zero the active-weight denominator — so the
    /// update path refuses it outright instead of guessing.
    Zero,
    /// The policy keeps no per-tenant weights (`Fifo`, `StrictPriority`).
    Unsupported,
}

impl fmt::Display for WeightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightError::Zero => write!(f, "zero weight rejected (would empty the active set)"),
            WeightError::Unsupported => write!(f, "policy does not support online weights"),
        }
    }
}

impl std::error::Error for WeightError {}

/// Verdict of a QoS admission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QosDecision {
    /// The submission may proceed to the SQ-slot claim.
    Admit,
    /// The submission must back off and retry later (treated by callers
    /// exactly like an SQ-full outcome).
    Defer,
}

/// Per-tenant accounting snapshot of a policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QosTenantStats {
    /// Tenant id.
    pub tenant: u32,
    /// Configured weight (1 for policies without weights).
    pub weight: u64,
    /// Submissions admitted (net of refunds).
    pub admitted: u64,
    /// Submissions deferred.
    pub deferred: u64,
    /// Admissions not yet completed (occupancy-tracking policies only).
    pub in_flight: u64,
}

/// Arbitrates SQ-slot admission across tenants.
///
/// Implementations must be cheap and `&self` (the gate runs on the submission
/// hot path, potentially from several warps at once) and **deterministic**
/// given a deterministic sequence of `admit`/`refund`/`on_complete` calls —
/// replay determinism and the golden-trace suite depend on it.
pub trait QosPolicy: Send + Sync {
    /// Short lowercase policy name used in reports (`fifo`, `wfq`, `prio`).
    fn name(&self) -> &'static str;

    /// May the submission from `tenant` proceed at sim time `now`?
    /// An `Admit` is accounted immediately (it consumes scheduling credit).
    fn admit(&self, tenant: u32, now: Cycles) -> QosDecision;

    /// Return the credit of an admitted submission that could not be issued
    /// after all (every SQ full), so the failed attempt does not count
    /// against the tenant's share.
    fn refund(&self, tenant: u32);

    /// Tell the policy how many SQ slots exist in total (devices × queue
    /// pairs × depth). Called once when the policy is installed on a
    /// controller; occupancy-tracking policies size their shares from it.
    fn bind(&self, _total_slots: u64) {}

    /// The completion of one of `tenant`'s admitted submissions was
    /// processed: its in-flight credit is free again. Called by the AGILE
    /// service (or BaM's user-thread poll path) for QoS-arbitrated commands.
    fn on_complete(&self, _tenant: u32) {}

    /// Online weight update for `tenant` (the control plane's actuator).
    /// Returns the weight actually installed — values above
    /// [`MAX_ONLINE_WEIGHT`] are clamped to it — or an error for zero
    /// weights ([`WeightError::Zero`]: an all-zero active set would zero the
    /// share denominator) and for policies without per-tenant weights
    /// ([`WeightError::Unsupported`], the default).
    fn set_weight(&self, _tenant: u32, _weight: u64) -> Result<u64, WeightError> {
        Err(WeightError::Unsupported)
    }

    /// Current weight of `tenant`, `None` when the policy keeps no weights
    /// or has never seen the tenant.
    fn weight(&self, _tenant: u32) -> Option<u64> {
        None
    }

    /// Per-tenant accounting, ordered by tenant id.
    fn tenant_stats(&self) -> Vec<QosTenantStats>;
}

// ---------------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------------

/// The no-op policy: every submission is admitted immediately, preserving the
/// pre-QoS first-come-first-served slot race bit-for-bit. Keeps no state and
/// takes no lock on the admit path.
#[derive(Debug, Default)]
pub struct Fifo;

impl Fifo {
    /// A shared FIFO policy instance.
    pub fn shared() -> Arc<dyn QosPolicy> {
        Arc::new(Fifo)
    }
}

impl QosPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }
    fn admit(&self, _tenant: u32, _now: Cycles) -> QosDecision {
        QosDecision::Admit
    }
    fn refund(&self, _tenant: u32) {}
    fn tenant_stats(&self) -> Vec<QosTenantStats> {
        Vec::new()
    }
}

// ---------------------------------------------------------------------------
// Weighted fair (deficit round robin over in-flight slot shares)
// ---------------------------------------------------------------------------

/// Book-keeping of one tenant's virtual queue — all-atomic, so the
/// completion hook can return credits without touching the tenant registry
/// lock (N service partitions call [`QosPolicy::on_complete`] concurrently).
#[derive(Debug)]
struct WfTenant {
    weight: AtomicU64,
    /// Admitted-but-not-completed submissions (spent round credits). Bounded
    /// by the tenant's share through a CAS loop on the admit path, so credit
    /// accounting stays linearizable: occupancy can never exceed the share
    /// observed at admission time, no matter how admissions, refunds and
    /// completions interleave.
    in_flight: AtomicU64,
    /// Sim time of the tenant's last admission attempt **plus one**; 0 until
    /// the first attempt, so a pre-configured tenant that never shows up
    /// does not count as active (and shrink everyone's share) at time zero.
    last_seen: AtomicU64,
    admitted: AtomicU64,
    deferred: AtomicU64,
}

impl WfTenant {
    fn with_weight(weight: u64) -> Self {
        WfTenant {
            weight: AtomicU64::new(weight.max(1)),
            in_flight: AtomicU64::new(0),
            last_seen: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            deferred: AtomicU64::new(0),
        }
    }

    /// Active within the window ending at `horizon`?
    fn active_since(&self, horizon: u64) -> bool {
        let seen = self.last_seen.load(Ordering::Acquire);
        // `seen` is (last attempt time + 1), so `seen > horizon` is
        // "attempted at all, and no earlier than the horizon" (0 = never).
        seen > horizon
    }

    fn saturating_dec(counter: &AtomicU64) {
        let _ = counter.fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
            Some(v.saturating_sub(1))
        });
    }
}

/// Deficit-round-robin weighted fair queueing over per-tenant virtual queues,
/// realised on the in-flight SQ slots.
///
/// The policy is told the total slot capacity at install time
/// ([`QosPolicy::bind`]). Each tenant's round credit is its weighted share of
/// that capacity, computed over the tenants *active* within `idle_window`
/// cycles: `share(t) = capacity × weight(t) / Σ active weights` (at least 1).
/// An admission spends one credit, a completion returns it, so a tenant's
/// spent credits are exactly its in-flight occupancy and the device queues
/// can never fill beyond a tenant's entitlement while a competitor is active.
/// When the competitors go idle the active set shrinks and the survivor's
/// share grows back to the full capacity — the scheduler is work-conserving
/// and a noisy tenant loses nothing when it is alone.
///
/// ## Interior sharding
///
/// With shard-affine service scale-out ([`crate::service::ServiceSet`]) the
/// completion hook fires from N service partitions concurrently, so the
/// interior state is sharded per tenant: every hot counter lives in its
/// tenant's [`WfTenant`] atomics, and the only lock is a registry `RwLock`
/// taken shared on the hot paths (exclusive only to insert a never-seen
/// tenant). Credit accounting stays linearizable — `in_flight` is spent
/// through a bounded CAS and returned with saturating decrements — so
/// concurrent `admit`/`on_complete`/`refund` interleavings can neither
/// overdraw a share nor leak a credit.
#[derive(Debug)]
pub struct WeightedFair {
    default_weight: u64,
    idle_window: u64,
    /// Total SQ slots; 0 = unbound (admit everything) until [`QosPolicy::bind`].
    capacity: AtomicU64,
    /// Tenant registry: append-only map of per-tenant atomic cells.
    tenants: RwLock<BTreeMap<u32, Arc<WfTenant>>>,
}

impl Default for WeightedFair {
    fn default() -> Self {
        WeightedFair::new()
    }
}

impl WeightedFair {
    /// Equal-weight WFQ with the default activity window (200 000 cycles ≈
    /// 80 µs at 2.5 GHz, a few flash-read latencies).
    pub fn new() -> Self {
        WeightedFair {
            default_weight: 1,
            idle_window: 200_000,
            capacity: AtomicU64::new(0),
            tenants: RwLock::new(BTreeMap::new()),
        }
    }

    /// WFQ with explicit per-tenant weights, indexed by tenant id (tenants
    /// beyond the slice fall back to weight 1). Zero weights are clamped to 1.
    pub fn from_weights(weights: &[u64]) -> Self {
        let wf = WeightedFair::new();
        {
            let mut tenants = wf.tenants.write();
            for (tenant, &w) in weights.iter().enumerate() {
                tenants.insert(tenant as u32, Arc::new(WfTenant::with_weight(w)));
            }
        }
        wf
    }

    /// Override one tenant's weight (builder-style).
    pub fn with_weight(self, tenant: u32, weight: u64) -> Self {
        {
            let mut tenants = self.tenants.write();
            tenants
                .entry(tenant)
                .and_modify(|t| t.weight.store(weight.max(1), Ordering::Release))
                .or_insert_with(|| Arc::new(WfTenant::with_weight(weight)));
        }
        self
    }

    /// The cell of `tenant`, inserting it with the default weight on first
    /// sight (the only write-lock acquisition on the admit path).
    fn cell(&self, tenant: u32) -> Arc<WfTenant> {
        if let Some(cell) = self.tenants.read().get(&tenant) {
            return Arc::clone(cell);
        }
        let mut tenants = self.tenants.write();
        Arc::clone(
            tenants
                .entry(tenant)
                .or_insert_with(|| Arc::new(WfTenant::with_weight(self.default_weight))),
        )
    }

    /// Override the activity window (cycles since a tenant's last admission
    /// attempt before it stops counting toward the share denominator).
    pub fn with_idle_window(mut self, cycles: u64) -> Self {
        self.idle_window = cycles.max(1);
        self
    }
}

impl QosPolicy for WeightedFair {
    fn name(&self) -> &'static str {
        "wfq"
    }

    fn bind(&self, total_slots: u64) {
        self.capacity.store(total_slots, Ordering::Release);
    }

    fn admit(&self, tenant: u32, now: Cycles) -> QosDecision {
        let capacity = self.capacity.load(Ordering::Acquire);
        let entry = self.cell(tenant);
        entry.last_seen.store(now.raw() + 1, Ordering::Release);
        if capacity == 0 {
            // Unbound (no controller installed the policy yet): never defer.
            entry.in_flight.fetch_add(1, Ordering::AcqRel);
            entry.admitted.fetch_add(1, Ordering::AcqRel);
            return QosDecision::Admit;
        }
        let horizon = now.raw().saturating_sub(self.idle_window);
        let active_weight: u64 = self
            .tenants
            .read()
            .values()
            .filter(|s| s.active_since(horizon))
            .map(|s| s.weight.load(Ordering::Acquire))
            .sum();
        // The tenant's round credit: its weighted share of the slots,
        // computed over currently-active tenants (u128 guards the product).
        let weight = entry.weight.load(Ordering::Acquire);
        let share =
            ((capacity as u128 * weight as u128) / active_weight.max(1) as u128).max(1) as u64;
        // Spend one credit iff occupancy stays under the share — a bounded
        // CAS, so concurrent admissions cannot jointly overdraw it.
        let spent = entry
            .in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                (cur < share).then_some(cur + 1)
            });
        if spent.is_ok() {
            entry.admitted.fetch_add(1, Ordering::AcqRel);
            QosDecision::Admit
        } else {
            entry.deferred.fetch_add(1, Ordering::AcqRel);
            QosDecision::Defer
        }
    }

    fn refund(&self, tenant: u32) {
        if let Some(s) = self.tenants.read().get(&tenant) {
            WfTenant::saturating_dec(&s.in_flight);
            WfTenant::saturating_dec(&s.admitted);
        }
    }

    fn on_complete(&self, tenant: u32) {
        if let Some(s) = self.tenants.read().get(&tenant) {
            WfTenant::saturating_dec(&s.in_flight);
        }
    }

    /// Rebind `tenant`'s credit share online: the per-tenant cells are
    /// all-atomic, so the update is one release store the next `admit` call
    /// observes — no admission is ever blocked behind a retune.
    fn set_weight(&self, tenant: u32, weight: u64) -> Result<u64, WeightError> {
        if weight == 0 {
            return Err(WeightError::Zero);
        }
        let applied = weight.min(MAX_ONLINE_WEIGHT);
        self.cell(tenant).weight.store(applied, Ordering::Release);
        Ok(applied)
    }

    fn weight(&self, tenant: u32) -> Option<u64> {
        self.tenants
            .read()
            .get(&tenant)
            .map(|s| s.weight.load(Ordering::Acquire))
    }

    fn tenant_stats(&self) -> Vec<QosTenantStats> {
        self.tenants
            .read()
            .iter()
            .map(|(&tenant, s)| QosTenantStats {
                tenant,
                weight: s.weight.load(Ordering::Acquire),
                admitted: s.admitted.load(Ordering::Acquire),
                deferred: s.deferred.load(Ordering::Acquire),
                in_flight: s.in_flight.load(Ordering::Acquire),
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Strict priority
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct PrioTenant {
    /// Priority class; **lower values are more important**.
    class: u32,
    /// Sim time of the last admission attempt; `None` until the first one,
    /// so a configured-but-silent important tenant does not preempt anyone.
    last_seen: Option<u64>,
    admitted: u64,
    deferred: u64,
}

/// Strict priority classes: a submission defers whenever any tenant of a
/// strictly more important class (lower class value) attempted an admission
/// within the activity window. Lower classes can starve — by design.
#[derive(Debug)]
pub struct StrictPriority {
    default_class: u32,
    idle_window: u64,
    state: Mutex<BTreeMap<u32, PrioTenant>>,
}

impl StrictPriority {
    /// Priorities indexed by tenant id (class 0 is the most important);
    /// tenants beyond the slice get the lowest configured importance + 1.
    pub fn from_classes(classes: &[u32]) -> Self {
        let default_class = classes.iter().copied().max().unwrap_or(0) + 1;
        let state = classes
            .iter()
            .enumerate()
            .map(|(tenant, &class)| {
                (
                    tenant as u32,
                    PrioTenant {
                        class,
                        last_seen: None,
                        admitted: 0,
                        deferred: 0,
                    },
                )
            })
            .collect();
        StrictPriority {
            default_class,
            idle_window: 200_000,
            state: Mutex::new(state),
        }
    }

    /// Override the activity window.
    pub fn with_idle_window(mut self, cycles: u64) -> Self {
        self.idle_window = cycles.max(1);
        self
    }
}

impl QosPolicy for StrictPriority {
    fn name(&self) -> &'static str {
        "prio"
    }

    fn admit(&self, tenant: u32, now: Cycles) -> QosDecision {
        let mut state = self.state.lock();
        let default_class = self.default_class;
        let entry = state.entry(tenant).or_insert(PrioTenant {
            class: default_class,
            last_seen: None,
            admitted: 0,
            deferred: 0,
        });
        entry.last_seen = Some(now.raw());
        let class = entry.class;
        let horizon = now.raw().saturating_sub(self.idle_window);
        let preempted = state.iter().any(|(&t, s)| {
            t != tenant && s.class < class && s.last_seen.is_some_and(|at| at >= horizon)
        });
        let entry = state.get_mut(&tenant).expect("inserted above");
        if preempted {
            entry.deferred += 1;
            QosDecision::Defer
        } else {
            entry.admitted += 1;
            QosDecision::Admit
        }
    }

    fn refund(&self, tenant: u32) {
        let mut state = self.state.lock();
        if let Some(s) = state.get_mut(&tenant) {
            s.admitted = s.admitted.saturating_sub(1);
        }
    }

    fn tenant_stats(&self) -> Vec<QosTenantStats> {
        let state = self.state.lock();
        state
            .iter()
            .map(|(&tenant, s)| QosTenantStats {
                tenant,
                weight: 1,
                admitted: s.admitted,
                deferred: s.deferred,
                in_flight: 0,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_admits_everything_statelessly() {
        let p = Fifo;
        for t in 0..16 {
            assert_eq!(p.admit(t, Cycles(t as u64)), QosDecision::Admit);
        }
        p.refund(3);
        p.on_complete(3);
        assert!(p.tenant_stats().is_empty());
        assert_eq!(p.name(), "fifo");
    }

    #[test]
    fn wfq_lone_tenant_owns_the_whole_capacity() {
        let p = WeightedFair::new();
        p.bind(64);
        for i in 0..64u64 {
            assert_eq!(p.admit(0, Cycles(i)), QosDecision::Admit);
        }
        // Capacity reached: the 65th in-flight submission defers …
        assert_eq!(p.admit(0, Cycles(64)), QosDecision::Defer);
        // … and a completion frees one credit again.
        p.on_complete(0);
        assert_eq!(p.admit(0, Cycles(65)), QosDecision::Admit);
        let stats = p.tenant_stats();
        assert_eq!(stats[0].admitted, 65);
        assert_eq!(stats[0].deferred, 1);
        assert_eq!(stats[0].in_flight, 64);
    }

    #[test]
    fn wfq_unbound_policy_never_defers() {
        let p = WeightedFair::new();
        for i in 0..1_000u64 {
            assert_eq!(p.admit(0, Cycles(i)), QosDecision::Admit);
        }
    }

    #[test]
    fn wfq_active_competitor_halves_the_share() {
        let p = WeightedFair::new();
        p.bind(64);
        // Tenant 1 shows up: both are active, so tenant 0's share is 32.
        assert_eq!(p.admit(1, Cycles(0)), QosDecision::Admit);
        let mut admitted = 0;
        for i in 1..=64u64 {
            if p.admit(0, Cycles(i)) == QosDecision::Admit {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 32, "equal weights ⇒ half the slots each");
    }

    #[test]
    fn wfq_shares_follow_weights_under_saturation() {
        // Both tenants always backlogged; a FIFO "device" completes the
        // oldest in-flight op each tick. Throughput shares must converge to
        // the 3:1 weight ratio.
        let p = WeightedFair::from_weights(&[3, 1]);
        p.bind(64);
        let mut in_service: std::collections::VecDeque<u32> = Default::default();
        let mut completed = [0u64; 2];
        for i in 0..20_000u64 {
            for t in 0..2u32 {
                if p.admit(t, Cycles(i)) == QosDecision::Admit {
                    in_service.push_back(t);
                }
            }
            if let Some(t) = in_service.pop_front() {
                completed[t as usize] += 1;
                p.on_complete(t);
            }
        }
        let ratio = completed[0] as f64 / completed[1] as f64;
        assert!(
            (2.6..=3.4).contains(&ratio),
            "3:1 weights must yield ≈3:1 completions, got {completed:?}"
        );
    }

    #[test]
    fn wfq_is_work_conserving_when_competitor_goes_idle() {
        let p = WeightedFair::new().with_idle_window(100);
        p.bind(64);
        // Tenant 1 is active early, then disappears (its ops complete).
        for i in 0..8u64 {
            assert_eq!(p.admit(1, Cycles(i)), QosDecision::Admit);
        }
        for _ in 0..8 {
            p.on_complete(1);
        }
        // Long after tenant 1's window expired, tenant 0 owns all 64 slots.
        let mut admitted = 0;
        for i in 1_000..1_100u64 {
            if p.admit(0, Cycles(i)) == QosDecision::Admit {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 64, "idle competitor must not shrink the share");
    }

    #[test]
    fn wfq_configured_but_silent_tenant_is_not_active() {
        // A tenant pre-registered via from_weights that never submits must
        // not count as an active competitor — not even at time zero, where
        // the idle-window horizon saturates to 0.
        let p = WeightedFair::from_weights(&[1, 1]);
        p.bind(64);
        for i in 0..64u64 {
            assert_eq!(
                p.admit(0, Cycles(i)),
                QosDecision::Admit,
                "silent tenant 1 must not shrink tenant 0's share"
            );
        }
    }

    #[test]
    fn strict_priority_silent_important_tenant_does_not_preempt() {
        let p = StrictPriority::from_classes(&[0, 1]);
        // Class-0 tenant 0 is configured but never submits: tenant 1 must
        // not be deferred behind the phantom, even near time zero.
        assert_eq!(p.admit(1, Cycles(5)), QosDecision::Admit);
    }

    #[test]
    fn wfq_refund_returns_credit_and_admission() {
        let p = WeightedFair::new();
        p.bind(1);
        assert_eq!(p.admit(0, Cycles(0)), QosDecision::Admit);
        p.refund(0);
        let stats = p.tenant_stats();
        assert_eq!(stats[0].admitted, 0, "refund nets the admission out");
        assert_eq!(stats[0].in_flight, 0);
        // The returned credit is immediately usable.
        assert_eq!(p.admit(0, Cycles(1)), QosDecision::Admit);
    }

    #[test]
    fn strict_priority_defers_behind_active_higher_class() {
        let p = StrictPriority::from_classes(&[0, 1]).with_idle_window(1_000);
        // Tenant 0 (class 0) is active.
        assert_eq!(p.admit(0, Cycles(100)), QosDecision::Admit);
        // Tenant 1 (class 1) must defer while tenant 0 is within the window…
        assert_eq!(p.admit(1, Cycles(200)), QosDecision::Defer);
        // …and proceeds once tenant 0 has gone idle.
        assert_eq!(p.admit(1, Cycles(5_000)), QosDecision::Admit);
        let stats = p.tenant_stats();
        assert_eq!(stats[1].deferred, 1);
        assert_eq!(stats[1].admitted, 1);
    }

    #[test]
    fn wfq_online_weight_update_rebinds_the_share() {
        let p = WeightedFair::from_weights(&[1, 1]);
        p.bind(64);
        // Both active: equal weights ⇒ 32 slots each.
        assert_eq!(p.admit(1, Cycles(0)), QosDecision::Admit);
        // Retune tenant 0 to 3:1 online.
        assert_eq!(p.set_weight(0, 3), Ok(3));
        assert_eq!(p.weight(0), Some(3));
        let mut admitted = 0;
        for i in 1..=64u64 {
            if p.admit(0, Cycles(i)) == QosDecision::Admit {
                admitted += 1;
            }
        }
        // share = 64 × 3 / 4 = 48.
        assert_eq!(admitted, 48, "online weight must rebind the credit share");
    }

    #[test]
    fn wfq_rejects_zero_and_clamps_overflow_weights() {
        let p = WeightedFair::from_weights(&[2]);
        assert_eq!(p.set_weight(0, 0), Err(WeightError::Zero));
        assert_eq!(p.weight(0), Some(2), "rejected update must not apply");
        assert_eq!(p.set_weight(0, u64::MAX), Ok(MAX_ONLINE_WEIGHT));
        assert_eq!(p.weight(0), Some(MAX_ONLINE_WEIGHT));
        // Unknown tenants are inserted (weights survive until first admit).
        assert_eq!(p.set_weight(9, 5), Ok(5));
        assert_eq!(p.weight(9), Some(5));
    }

    #[test]
    fn fifo_and_prio_report_weights_unsupported() {
        assert_eq!(Fifo.set_weight(0, 2), Err(WeightError::Unsupported));
        assert_eq!(Fifo.weight(0), None);
        let p = StrictPriority::from_classes(&[0, 1]);
        assert_eq!(p.set_weight(1, 2), Err(WeightError::Unsupported));
    }

    #[test]
    fn strict_priority_unknown_tenants_rank_last() {
        let p = StrictPriority::from_classes(&[0]);
        assert_eq!(p.admit(0, Cycles(0)), QosDecision::Admit);
        assert_eq!(
            p.admit(7, Cycles(1)),
            QosDecision::Defer,
            "unconfigured tenants are least important"
        );
    }
}
