//! The AGILE service: warp-centric completion-queue polling (§3.2),
//! scaled out as shard-affine service partitions.
//!
//! A small persistent kernel runs in the background on the GPU. Its warps
//! rotate over the registered CQs in round-robin order; on each visit a warp
//! examines a 32-entry window of the CQ — one CQE per lane — exactly as
//! Algorithm 1 describes:
//!
//! 1. load the window offset, the expected phase and the 32-bit mask of
//!    already-seen completions;
//! 2. every lane whose mask bit is clear probes its CQE's phase tag and sets
//!    the bit if a new completion is present — and the service *processes*
//!    that completion: it maps the `(SQ, CID)` back to its transaction,
//!    releases the SQE lock (so the submission slot can be reused), completes
//!    cache fills, clears user barriers and marks Share-Table entries ready;
//! 3. when the whole window is processed the warp writes the CQ head doorbell
//!    (consuming the 32 entries) and resets the mask for the next window.
//!
//! Because the *service* — not the issuing thread — releases SQ entries, a
//! thread that finds every SQ full can simply retry later: the entries it is
//! waiting for will be freed regardless of what any user thread is doing,
//! which eliminates the deadlock of Figure 1.
//!
//! ## Scale-out: shard-affine partitions
//!
//! The paper's service is a single kernel whose warps sweep *every* CQ —
//! fine at 1–3 SSDs, the compute-side scalability ceiling at production
//! device counts. [`ServiceSet`] splits the CQ space into N
//! [`ServicePartition`]s along the storage topology's lock shards
//! ([`nvme_sim::StorageTopology::shard_of`]): one persistent kernel per
//! partition, each sweeping only its own shard's `(device, queue-pair)`
//! targets, so completion processing scales with the storage side instead of
//! funnelling through one kernel's rotation. With one shard (the default)
//! the set degenerates to exactly the paper's single service, bit for bit.

use crate::ctrl::AgileCtrl;
use crate::sq_protocol::AgileSq;
use crate::transaction::Transaction;
use agile_sim::Cycles;
use gpu_sim::{KernelFactory, WarpCtx, WarpKernel, WarpStep};
use nvme_sim::StorageTopology;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Partition the `(device, queue-pair)` CQ targets of a storage stack into
/// `shards` shard-affine groups.
///
/// When a topology with at least `shards` lock shards is attached, device
/// `d` belongs to service partition `shard_of(d) % shards`, so every service
/// keeps polling CQs whose submissions contend on the same storage shard —
/// the compute-side mirror of the lock partitioning. With fewer storage
/// shards than services (including the single-shard [`nvme_sim::FlatArray`])
/// the grouping falls back to round-robin by device index, so no partition
/// is left without work. Targets within a partition keep the global
/// `(device asc, queue asc)` order; `shards == 1` therefore reproduces the
/// historical single-service target list exactly.
pub fn partition_targets(
    topology: Option<&Arc<dyn StorageTopology>>,
    queues_per_device: &[usize],
    shards: usize,
) -> Vec<Vec<(usize, usize)>> {
    let n = shards.max(1);
    let mut parts: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (dev, &queues) in queues_per_device.iter().enumerate() {
        let part = match topology {
            Some(t) if n > 1 && t.shard_count() >= n => t.shard_of(dev) % n,
            _ => dev % n,
        };
        for q in 0..queues {
            parts[part].push((dev, q));
        }
    }
    parts
}

/// Auto-sized warp count for a service partition polling `targets` CQs
/// (the "Service geometry tuning" opener): one warp per 8 owned CQs keeps a
/// warp's round-robin visit period — the SQE-recycle latency ceiling the
/// scale-out work measured — bounded as the CQ space grows, while idle
/// partitions do not burn polling warps they cannot use. Clamped to
/// `[1, 32]`: at least one warp even for an empty partition (the kernel
/// must exist to observe the stop flag), and at most one thread block's
/// worth of warps so the launch geometry stays within one SM's occupancy.
///
/// Used when [`crate::config::AgileConfig::auto_service_warps`] is set; the
/// default remains the paper's fixed `service_warps` geometry.
pub fn auto_service_warps(targets: usize) -> u32 {
    (targets.div_ceil(8) as u32).clamp(1, 32)
}

/// Poll cursor of one CQ (owned by the service).
struct CqPollState {
    /// Ring index of the first entry of the current 32-entry window.
    window_start: u32,
    /// Expected phase tag for entries in the current pass of the ring.
    phase: bool,
    /// Bit `i` set ⇒ entry `window_start + i` has been observed and processed.
    mask: u32,
}

impl CqPollState {
    fn new() -> Self {
        CqPollState {
            window_start: 0,
            phase: true,
            mask: 0,
        }
    }
}

/// Statistics of the service kernel.
///
/// Note: the unified registry exports these as `agile_service_*` labelled
/// by partition; this struct stays for direct programmatic access.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Completions processed.
    pub completions: u64,
    /// CQ head-doorbell updates (windows consumed).
    pub cq_doorbells: u64,
    /// Poll rounds that found no new completion.
    pub idle_rounds: u64,
    /// Poll rounds that found at least one completion.
    pub busy_rounds: u64,
}

#[derive(Default)]
struct ServiceStatCells {
    completions: AtomicU64,
    cq_doorbells: AtomicU64,
    idle_rounds: AtomicU64,
    busy_rounds: AtomicU64,
}

/// One shard-affine slice of the AGILE service: a poll cursor per owned CQ
/// plus the completion-processing logic of Algorithm 1. The single-service
/// configuration is simply a set with one partition owning every CQ.
pub struct ServicePartition {
    ctrl: Arc<AgileCtrl>,
    /// Which service shard this partition is (index within its set).
    shard: usize,
    /// `(device, queue-pair)` flattened list of CQs this partition polls.
    targets: Vec<(usize, usize)>,
    cursors: Vec<Mutex<CqPollState>>,
    stats: ServiceStatCells,
    /// Cycles a poll round costs when it found completions.
    poll_round_cost: u64,
    /// Cycles a warp backs off when its round found nothing (keeps the
    /// simulation cheap without changing behaviour: an idle poll loop).
    /// Seeded from `costs.api.agile_service_idle_backoff`; the cell is
    /// shared with the controller so a control plane can retune it online —
    /// partitions load it once per idle round.
    idle_backoff: Arc<AtomicU64>,
}

/// The pre-scale-out name of [`ServicePartition`]; a single partition over
/// every CQ is exactly the old `AgileService`.
pub type AgileService = ServicePartition;

impl ServicePartition {
    /// Build a single partition over every CQ registered with the controller
    /// — the paper's one-kernel service.
    pub fn new(ctrl: Arc<AgileCtrl>) -> Arc<Self> {
        let mut targets = Vec::new();
        for dev in 0..ctrl.device_count() {
            for q in 0..ctrl.device_queues(dev).len() {
                targets.push((dev, q));
            }
        }
        ServicePartition::for_targets(ctrl, 0, targets)
    }

    /// Build partition `shard` over an explicit `(device, queue-pair)` target
    /// list (normally computed by [`partition_targets`] via [`ServiceSet`]).
    pub fn for_targets(
        ctrl: Arc<AgileCtrl>,
        shard: usize,
        targets: Vec<(usize, usize)>,
    ) -> Arc<Self> {
        let cursors = targets
            .iter()
            .map(|_| Mutex::new(CqPollState::new()))
            .collect();
        let api = &ctrl.config().costs.api;
        let poll_round_cost = api.agile_service_poll_round;
        let idle_backoff = ctrl.idle_backoff_cell();
        Arc::new(ServicePartition {
            ctrl,
            shard,
            targets,
            cursors,
            stats: ServiceStatCells::default(),
            poll_round_cost,
            idle_backoff,
        })
    }

    /// Which service shard this partition is.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The `(device, queue-pair)` CQs this partition polls.
    pub fn targets(&self) -> &[(usize, usize)] {
        &self.targets
    }

    /// Number of CQs the service is responsible for.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            completions: self.stats.completions.load(Ordering::Relaxed),
            cq_doorbells: self.stats.cq_doorbells.load(Ordering::Relaxed),
            idle_rounds: self.stats.idle_rounds.load(Ordering::Relaxed),
            busy_rounds: self.stats.busy_rounds.load(Ordering::Relaxed),
        }
    }

    /// Execute one warp-centric polling round on CQ `target_idx`
    /// (Algorithm 1) at sim time `now`. Returns the number of completions
    /// processed.
    pub fn poll_cq(&self, target_idx: usize, now: Cycles) -> u32 {
        let (dev, qidx) = self.targets[target_idx];
        let sq: &Arc<AgileSq> = &self.ctrl.device_queues(dev)[qidx];
        let cq = &sq.queue_pair().cq;
        let depth = cq.depth();
        let mut cursor = self.cursors[target_idx].lock();
        let mut processed = 0u32;

        // Each of the 32 "lanes" probes one entry of the window.
        let window = 32.min(depth);
        for lane in 0..window {
            let bit = 1u32 << lane;
            if cursor.mask & bit != 0 {
                continue;
            }
            let idx = (cursor.window_start + lane) % depth;
            if let Some(cqe) = cq.poll_slot(idx, cursor.phase) {
                self.process_completion(dev, cqe.sq_id as usize, cqe.cid, now);
                cursor.mask |= bit;
                processed += 1;
            }
        }

        // Window fully processed: ring the CQ head doorbell and move on.
        let full_mask = if window == 32 {
            u32::MAX
        } else {
            (1u32 << window) - 1
        };
        if cursor.mask == full_mask {
            cq.consume(window);
            self.stats.cq_doorbells.fetch_add(1, Ordering::Relaxed);
            cursor.mask = 0;
            let next = (cursor.window_start + window) % depth;
            if next <= cursor.window_start {
                cursor.phase = !cursor.phase;
            }
            cursor.window_start = next;
        }
        processed
    }

    /// Handle one completion: release the SQE and finish its transaction.
    fn process_completion(&self, dev: usize, qidx: usize, cid: u16, now: Cycles) {
        let sq = &self.ctrl.device_queues(dev)[qidx];
        let txn = sq
            .transactions()
            .take(cid)
            .expect("completion for a command with no transaction");
        sq.release(cid);
        self.stats.completions.fetch_add(1, Ordering::Relaxed);
        if let Some(sink) = self.ctrl.trace_sink() {
            sink.record(
                agile_sim::trace::TraceEvent::new(
                    agile_sim::trace::TraceEventKind::ServiceCompletion,
                    now.raw(),
                )
                .target(dev as u32, 0)
                .queue(qidx as u16, cid),
            );
        }
        match txn {
            Transaction::CacheFill { line } => {
                self.ctrl.cache().complete_fill(line);
                self.ctrl.cache().unpin(line);
            }
            Transaction::WriteBack => {}
            Transaction::UserRead { barrier, shared } => {
                barrier.complete();
                if let Some(s) = shared {
                    s.mark_ready();
                }
            }
            Transaction::UserWrite { barrier } => barrier.complete(),
            Transaction::Raw {
                barrier,
                qos_tenant,
                ..
            } => {
                barrier.complete();
                // Return the in-flight QoS credit so the scheduler can admit
                // the tenant's next submission.
                if let Some(tenant) = qos_tenant {
                    if let Some(qos) = self.ctrl.qos_policy() {
                        qos.on_complete(tenant);
                    }
                }
            }
        }
    }

    /// One scheduling step of a service warp at sim time `now`: poll the next
    /// CQ in this warp's rotation. Returns the cycle cost of the step.
    pub fn service_step(
        &self,
        rotation: &mut usize,
        stride: usize,
        offset: usize,
        now: Cycles,
    ) -> Cycles {
        if self.targets.is_empty() {
            return Cycles(self.idle_backoff.load(Ordering::Relaxed).max(1));
        }
        let idx = (offset + *rotation * stride) % self.targets.len();
        *rotation += 1;
        let processed = self.poll_cq(idx, now);
        if processed > 0 {
            self.stats.busy_rounds.fetch_add(1, Ordering::Relaxed);
            Cycles(self.poll_round_cost)
        } else {
            self.stats.idle_rounds.fetch_add(1, Ordering::Relaxed);
            let backoff = self.idle_backoff.load(Ordering::Relaxed).max(1);
            Cycles(self.poll_round_cost.max(backoff))
        }
    }

    /// The controller this service works for.
    pub fn ctrl(&self) -> &Arc<AgileCtrl> {
        &self.ctrl
    }
}

/// Kernel factory for one persistent AGILE service kernel (one per
/// [`ServicePartition`]).
pub struct AgileServiceKernel {
    service: Arc<ServicePartition>,
    warps_per_block: u32,
    total_warps: u32,
    name: String,
}

impl AgileServiceKernel {
    /// Create the factory; `warps_per_block`/`total_warps` must match the
    /// launch configuration used for the service kernel. Partition 0 keeps
    /// the historical kernel name `agile-service`; higher shards are
    /// suffixed (`agile-service-s1`, …) so per-kernel reports stay
    /// distinguishable.
    pub fn new(service: Arc<ServicePartition>, warps_per_block: u32, total_warps: u32) -> Self {
        let name = if service.shard() == 0 {
            "agile-service".to_string()
        } else {
            format!("agile-service-s{}", service.shard())
        };
        AgileServiceKernel {
            service,
            warps_per_block,
            total_warps: total_warps.max(1),
            name,
        }
    }
}

struct ServiceWarp {
    service: Arc<ServicePartition>,
    rotation: usize,
    stride: usize,
    offset: usize,
}

impl WarpKernel for ServiceWarp {
    fn step(&mut self, ctx: &WarpCtx) -> WarpStep {
        if self.service.ctrl().service_stop_requested() {
            return WarpStep::Done;
        }
        let cost = self
            .service
            .service_step(&mut self.rotation, self.stride, self.offset, ctx.now);
        WarpStep::Busy(cost)
    }
}

impl KernelFactory for AgileServiceKernel {
    fn create_warp(&self, block: u32, warp: u32) -> Box<dyn WarpKernel> {
        let flat = block * self.warps_per_block + warp;
        Box::new(ServiceWarp {
            service: Arc::clone(&self.service),
            rotation: 0,
            stride: self.total_warps as usize,
            offset: flat as usize,
        })
    }
    fn name(&self) -> &str {
        &self.name
    }
}

// ---------------------------------------------------------------------------
// ServiceSet: N shard-affine partitions
// ---------------------------------------------------------------------------

/// The scale-out service: N shard-affine [`ServicePartition`]s over one
/// controller, one persistent kernel each (launched by
/// `AgileHost::start_agile`). `shards == 1` is exactly the paper's single
/// service — same target order, same kernel geometry, bit-identical
/// behaviour (asserted by the golden-trace suite).
pub struct ServiceSet {
    partitions: Vec<Arc<ServicePartition>>,
}

impl ServiceSet {
    /// Partition the controller's CQs into `shards` shard-affine services
    /// (see [`partition_targets`] for the grouping rule).
    pub fn new(ctrl: &Arc<AgileCtrl>, shards: usize) -> Self {
        let queues_per_device: Vec<usize> = (0..ctrl.device_count())
            .map(|dev| ctrl.device_queues(dev).len())
            .collect();
        let parts = partition_targets(ctrl.topology(), &queues_per_device, shards);
        let partitions = parts
            .into_iter()
            .enumerate()
            .map(|(shard, targets)| ServicePartition::for_targets(Arc::clone(ctrl), shard, targets))
            .collect();
        ServiceSet { partitions }
    }

    /// The partitions, in shard order.
    pub fn partitions(&self) -> &[Arc<ServicePartition>] {
        &self.partitions
    }

    /// Number of service shards.
    pub fn shard_count(&self) -> usize {
        self.partitions.len()
    }

    /// Per-shard statistics snapshots, in shard order.
    pub fn partition_stats(&self) -> Vec<ServiceStats> {
        self.partitions.iter().map(|p| p.stats()).collect()
    }

    /// Aggregate statistics across every partition.
    pub fn stats(&self) -> ServiceStats {
        let mut total = ServiceStats::default();
        for p in &self.partitions {
            let s = p.stats();
            total.completions += s.completions;
            total.cq_doorbells += s.cq_doorbells;
            total.idle_rounds += s.idle_rounds;
            total.busy_rounds += s.busy_rounds;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AgileConfig;
    use crate::transaction::{AgileBuf, Barrier};
    use nvme_sim::{DmaHandle, MemBacking, PageToken, QueuePair, SsdConfig, SsdDevice};

    /// Build a ctrl + device pair wired through real queue pairs.
    fn rig(qps: usize, depth: u32) -> (Arc<AgileCtrl>, SsdDevice) {
        let cfg = AgileConfig::small_test()
            .with_queue_pairs(qps)
            .with_queue_depth(depth);
        let mut dev = SsdDevice::new(
            SsdConfig::new(0).with_capacity_pages(1 << 20),
            Arc::new(MemBacking::new(0)),
        );
        let queues: Vec<Arc<QueuePair>> = (0..qps)
            .map(|q| {
                let qp = QueuePair::new(q as u16, depth);
                dev.register_queue_pair(Arc::clone(&qp));
                qp
            })
            .collect();
        let ctrl = Arc::new(AgileCtrl::new(cfg, vec![queues]));
        (ctrl, dev)
    }

    /// Drive device + service from `start` until the predicate holds (or panic).
    fn drive_until_from(
        dev: &mut SsdDevice,
        service: &AgileService,
        start: Cycles,
        mut pred: impl FnMut() -> bool,
    ) -> Cycles {
        let mut now = start;
        let mut rotation = 0usize;
        for _ in 0..200_000 {
            now += Cycles(2_000);
            dev.advance_to(now);
            // One service warp sweeping all CQs.
            let _ = service.service_step(&mut rotation, 1, 0, now);
            if pred() {
                return now;
            }
        }
        panic!("condition never became true");
    }

    /// Drive device + service from time zero until the predicate holds.
    fn drive_until(
        dev: &mut SsdDevice,
        service: &AgileService,
        pred: impl FnMut() -> bool,
    ) -> Cycles {
        drive_until_from(dev, service, Cycles(0), pred)
    }

    #[test]
    fn service_completes_cache_fills_end_to_end() {
        let (ctrl, mut dev) = rig(2, 64);
        let service = AgileService::new(Arc::clone(&ctrl));
        assert_eq!(service.target_count(), 2);
        let (_, retry) = ctrl.prefetch_warp(0, &[(0, 11), (0, 12), (0, 13)], Cycles(0));
        assert!(retry.is_empty());
        let c = Arc::clone(&ctrl);
        drive_until(&mut dev, &service, move || {
            c.cache().peek(0, 11).is_some()
                && c.cache().peek(0, 12).is_some()
                && c.cache().peek(0, 13).is_some()
        });
        // Tokens are the device's pristine content.
        assert_eq!(ctrl.cache().peek(0, 11), Some(PageToken::pristine(0, 11)));
        assert_eq!(service.stats().completions, 3);
        // All SQ entries were recycled and no pins leaked.
        assert_eq!(ctrl.cache().total_pins(), 0);
        let free: u32 = ctrl.device_queues(0).iter().map(|q| q.free_slots()).sum();
        assert_eq!(free, 2 * 64);
    }

    #[test]
    fn service_clears_user_read_barriers() {
        let (ctrl, mut dev) = rig(1, 64);
        let service = AgileService::new(Arc::clone(&ctrl));
        let buf = AgileBuf::new();
        let (_, outcome) = ctrl.async_read(3, 0, 500, &buf, Cycles(0));
        assert_eq!(outcome, crate::ctrl::IssueOutcome::Issued);
        let b = buf.clone();
        drive_until(&mut dev, &service, move || b.is_ready());
        assert_eq!(buf.token(), PageToken::pristine(0, 500));
        // The Share Table entry is ready for other threads.
        let other = AgileBuf::new();
        let (_, o2) = ctrl.async_read(4, 0, 500, &other, Cycles(0));
        assert_eq!(o2, crate::ctrl::IssueOutcome::AlreadyAvailable);
    }

    #[test]
    fn service_recycles_sq_entries_under_pressure() {
        // SQ depth 4, one queue pair: issue 32 raw reads, which only works if
        // the service keeps freeing entries — the Figure 1 scenario resolved.
        let (ctrl, mut dev) = rig(1, 4);
        let service = AgileService::new(Arc::clone(&ctrl));
        let barriers: Vec<Barrier> = (0..32).map(|_| Barrier::new()).collect();
        let mut issued = 0usize;
        let mut now = Cycles(0);
        let mut rotation = 0usize;
        let mut guard = 0;
        while issued < 32 {
            guard += 1;
            assert!(guard < 100_000, "made no progress issuing under pressure");
            let (_, o) = ctrl.raw_read(
                0,
                0,
                1000 + issued as u64,
                DmaHandle::new(),
                barriers[issued].clone(),
                now,
            );
            if o == crate::ctrl::IssueOutcome::Issued {
                issued += 1;
            }
            now += Cycles(5_000);
            dev.advance_to(now);
            let _ = service.service_step(&mut rotation, 1, 0, now);
        }
        // Drain the rest.
        let done = barriers.clone();
        drive_until_from(&mut dev, &service, now, move || {
            done.iter().all(|b| b.is_complete())
        });
        assert_eq!(service.stats().completions, 32);
        assert!(
            ctrl.stats().sq_full_retries > 0,
            "pressure should have been observed"
        );
    }

    #[test]
    fn cq_windows_wrap_and_flip_phase() {
        // Depth 64 CQ: drive > 64 completions through one queue and make sure
        // polling keeps working across the wrap (phase flip).
        let (ctrl, mut dev) = rig(1, 64);
        let service = AgileService::new(Arc::clone(&ctrl));
        let barriers: Vec<Barrier> = (0..96).map(|_| Barrier::new()).collect();
        let mut now = Cycles(0);
        let mut rotation = 0usize;
        let mut issued = 0;
        let mut guard = 0;
        while issued < 96 {
            guard += 1;
            assert!(guard < 200_000);
            let (_, o) = ctrl.raw_read(
                0,
                0,
                issued as u64,
                DmaHandle::new(),
                barriers[issued].clone(),
                now,
            );
            if o == crate::ctrl::IssueOutcome::Issued {
                issued += 1;
            }
            now += Cycles(3_000);
            dev.advance_to(now);
            let _ = service.service_step(&mut rotation, 1, 0, now);
        }
        let done = barriers.clone();
        drive_until_from(&mut dev, &service, now, move || {
            done.iter().all(|b| b.is_complete())
        });
        assert_eq!(service.stats().completions, 96);
        assert!(
            service.stats().cq_doorbells >= 2,
            "at least two windows consumed"
        );
    }

    #[test]
    fn auto_service_warps_scale_with_the_cq_count() {
        // One warp per 8 CQs, clamped to [1, 32].
        assert_eq!(auto_service_warps(0), 1, "empty partitions keep one warp");
        assert_eq!(auto_service_warps(1), 1);
        assert_eq!(auto_service_warps(8), 1);
        assert_eq!(auto_service_warps(9), 2);
        assert_eq!(auto_service_warps(64), 8);
        assert_eq!(auto_service_warps(128), 16, "paper default: 128 QPs/SSD");
        assert_eq!(auto_service_warps(256), 32);
        assert_eq!(auto_service_warps(10_000), 32, "clamped to one block");
    }

    #[test]
    fn auto_service_warps_partition_math_composes_with_partition_targets() {
        // 8 devices × 4 QPs split across 4 shard-affine partitions: each
        // partition owns 8 CQs ⇒ 1 warp; the single-service fallback owns
        // all 32 ⇒ 4 warps.
        use nvme_sim::ShardedArray;
        let topo: Arc<dyn nvme_sim::StorageTopology> = Arc::new(ShardedArray::new(8, 4));
        let parts = partition_targets(Some(&topo), &[4; 8], 4);
        for targets in &parts {
            assert_eq!(auto_service_warps(targets.len()), 1);
        }
        let single = partition_targets(Some(&topo), &[4; 8], 1);
        assert_eq!(auto_service_warps(single[0].len()), 4);
    }

    #[test]
    fn partition_targets_one_shard_is_the_historical_target_list() {
        // n = 1 must reproduce the single service's (dev asc, qp asc) sweep
        // exactly — this is the order the pre-scale-out AgileService polled.
        let parts = partition_targets(None, &[3, 3, 3], 1);
        assert_eq!(parts.len(), 1);
        let expected: Vec<(usize, usize)> =
            (0..3).flat_map(|d| (0..3).map(move |q| (d, q))).collect();
        assert_eq!(parts[0], expected);
    }

    #[test]
    fn partition_targets_follow_storage_shards() {
        use nvme_sim::ShardedArray;
        let topo: Arc<dyn nvme_sim::StorageTopology> = Arc::new(ShardedArray::new(8, 4));
        let parts = partition_targets(Some(&topo), &[2; 8], 4);
        assert_eq!(parts.len(), 4);
        for (service, targets) in parts.iter().enumerate() {
            // Shard-affinity: every target's device maps to this service.
            assert!(!targets.is_empty());
            for &(dev, _) in targets {
                assert_eq!(topo.shard_of(dev) % 4, service);
            }
        }
        // Every CQ is owned exactly once.
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn partition_targets_fall_back_to_round_robin_on_flat_topology() {
        use nvme_sim::FlatArray;
        // One storage shard, four services: shard-affinity would starve
        // three of them, so grouping falls back to device round-robin.
        let topo: Arc<dyn nvme_sim::StorageTopology> = Arc::new(FlatArray::new(8));
        let parts = partition_targets(Some(&topo), &[1; 8], 4);
        for (service, targets) in parts.iter().enumerate() {
            assert_eq!(targets.len(), 2, "service {service} must own work");
            for &(dev, _) in targets {
                assert_eq!(dev % 4, service);
            }
        }
    }

    #[test]
    fn service_set_partitions_cover_all_cqs_and_aggregate_stats() {
        let (ctrl, mut dev) = rig(4, 64);
        let set = ServiceSet::new(&ctrl, 2);
        assert_eq!(set.shard_count(), 2);
        let owned: usize = set.partitions().iter().map(|p| p.target_count()).sum();
        assert_eq!(owned, 4, "the partitions cover every CQ exactly once");
        // Drive completions through partition 0 only (the bare rig has one
        // device, so dev % 2 puts every CQ there) and check the aggregate.
        let (_, retry) = ctrl.prefetch_warp(0, &[(0, 5), (0, 6)], Cycles(0));
        assert!(retry.is_empty());
        let p0 = Arc::clone(&set.partitions()[0]);
        drive_until(&mut dev, &p0, {
            let c = Arc::clone(&ctrl);
            move || c.cache().peek(0, 5).is_some() && c.cache().peek(0, 6).is_some()
        });
        assert_eq!(set.stats().completions, 2);
        assert_eq!(set.partition_stats()[0].completions, 2);
        assert_eq!(set.partition_stats()[1].completions, 0);
    }

    #[test]
    fn service_kernel_factory_stops_on_request() {
        let (ctrl, _dev) = rig(1, 16);
        let service = AgileService::new(Arc::clone(&ctrl));
        let factory = AgileServiceKernel::new(Arc::clone(&service), 1, 2);
        let mut warp = factory.create_warp(0, 0);
        let ctx = WarpCtx {
            now: Cycles(0),
            warp: gpu_sim::WarpId {
                kernel: gpu_sim::KernelId(0),
                block: 0,
                warp: 0,
            },
            lanes: 32,
            clock_ghz: 2.5,
        };
        assert!(matches!(warp.step(&ctx), WarpStep::Busy(_)));
        ctrl.request_service_stop();
        assert!(matches!(warp.step(&ctx), WarpStep::Done));
        assert_eq!(factory.name(), "agile-service");
    }
}
