//! The SQE lock protocol and serialized doorbell updates (Algorithm 2).
//!
//! Every SQ entry carries a small state machine:
//!
//! ```text
//!   EMPTY ──claim──▶ CLAIMED ──command written──▶ UPDATED ──doorbell scan──▶ ISSUED ──completion──▶ EMPTY
//! ```
//!
//! * A thread that wants to issue a command claims the next slot at the
//!   allocation cursor **only if it is `EMPTY`** — allocation stays contiguous
//!   at the ring tail, which the NVMe protocol requires.
//! * After writing the command into the ring the thread flips its slot to
//!   `UPDATED`: the command is now visible in (simulated) global memory and
//!   safe to announce to the SSD.
//! * All threads then race to acquire the doorbell lock. The winner scans
//!   forward from the software tail, promoting consecutive `UPDATED` entries
//!   to `ISSUED`, stops at the first entry that is not `UPDATED` (either
//!   `EMPTY`, or claimed-but-not-yet-visible), rings the SQ doorbell once for
//!   the whole batch and releases the lock. Every thread — winner or not —
//!   simply re-checks its own slot until it reads `ISSUED` (Algorithm 2,
//!   lines 8–17).
//! * The **AGILE service** (not the issuing thread) later resets the slot to
//!   `EMPTY` when it processes the matching completion, which is exactly why
//!   issuing threads never hold a queue resource while waiting and the
//!   deadlock of Figure 1 cannot form.
//!
//! CIDs are the slot indices, so completions map back to slots (and to their
//! [`crate::transaction::Transaction`]s) without any search.
//!
//! **QoS ordering.** When a [`crate::qos::QosPolicy`] is installed, tenant
//! admission is arbitrated *before* `Attempt_Enqueue` — a deferred thread
//! never reaches the allocation cursor, so the slot-claim critical section
//! below stays policy-free and a deferral can never hold (or even observe) a
//! queue resource. The protocol itself is unchanged under any policy.

use crate::transaction::{Transaction, TransactionTable};
use agile_sim::Cycles;
use nvme_sim::{NvmeCommand, QueuePair};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// SQE lock states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SqeState {
    /// Free for a new command.
    Empty = 0,
    /// Claimed by a thread; command not yet visible.
    Claimed = 1,
    /// Command written and visible; safe to announce to the SSD.
    Updated = 2,
    /// Announced to the SSD; waiting for its completion.
    Issued = 3,
}

impl SqeState {
    fn from_u32(v: u32) -> SqeState {
        match v {
            0 => SqeState::Empty,
            1 => SqeState::Claimed,
            2 => SqeState::Updated,
            3 => SqeState::Issued,
            _ => unreachable!("invalid SQE state {v}"),
        }
    }
}

/// Receipt returned by a successful issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueReceipt {
    /// The CID (= SQE slot index) of the issued command.
    pub cid: u16,
    /// Whether this thread's doorbell attempt actually rang the register
    /// (false when another thread's batch covered it).
    pub rang_doorbell: bool,
    /// Number of doorbell-attempt iterations before the command was observed
    /// `ISSUED` (1 for the uncontended fast path).
    pub attempts: u32,
}

/// One AGILE-managed submission queue: the raw ring plus the lock words,
/// software tail, doorbell lock and transaction table.
pub struct AgileSq {
    qp: Arc<QueuePair>,
    states: Vec<AtomicU32>,
    /// Free-running allocation cursor (not wrapped).
    alloc_cursor: AtomicU64,
    /// Free-running software tail (entries announced to the device).
    sw_tail: AtomicU64,
    doorbell_lock: AtomicBool,
    transactions: TransactionTable,
    depth: u32,
}

impl AgileSq {
    /// Wrap a queue pair.
    pub fn new(qp: Arc<QueuePair>) -> Self {
        let depth = qp.depth();
        AgileSq {
            states: (0..depth)
                .map(|_| AtomicU32::new(SqeState::Empty as u32))
                .collect(),
            alloc_cursor: AtomicU64::new(0),
            sw_tail: AtomicU64::new(0),
            doorbell_lock: AtomicBool::new(false),
            transactions: TransactionTable::new(depth),
            depth,
            qp,
        }
    }

    /// The underlying queue pair.
    pub fn queue_pair(&self) -> &Arc<QueuePair> {
        &self.qp
    }

    /// Queue depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The transaction table for this SQ.
    pub fn transactions(&self) -> &TransactionTable {
        &self.transactions
    }

    /// State of slot `idx` (diagnostics, tests).
    pub fn slot_state(&self, idx: u32) -> SqeState {
        SqeState::from_u32(self.states[idx as usize].load(Ordering::Acquire))
    }

    /// Number of `EMPTY` slots.
    pub fn free_slots(&self) -> u32 {
        self.states
            .iter()
            .filter(|s| s.load(Ordering::Acquire) == SqeState::Empty as u32)
            .count() as u32
    }

    /// Attempt to issue one command (Algorithm 2).
    ///
    /// `build` receives the CID and produces the command; `txn` describes what
    /// its completion means. Returns `None` when the SQ has no free entry —
    /// the caller tries another SQ or retries later; it never blocks.
    pub fn try_issue(
        &self,
        build: impl FnOnce(u16) -> NvmeCommand,
        txn: Transaction,
        now: Cycles,
    ) -> Option<IssueReceipt> {
        // --- Attempt_Enqueue: claim the slot at the allocation cursor. ---
        let slot = loop {
            let cur = self.alloc_cursor.load(Ordering::Acquire);
            let slot = (cur % self.depth as u64) as u32;
            if self.states[slot as usize].load(Ordering::Acquire) != SqeState::Empty as u32 {
                // check_full(): the entry at the tail has not been recycled yet.
                return None;
            }
            if self
                .alloc_cursor
                .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // We own this slot index exclusively; mark it claimed.
                self.states[slot as usize].store(SqeState::Claimed as u32, Ordering::Release);
                break slot;
            }
            // Lost the cursor race; retry with the new cursor.
        };

        let cid = slot as u16;
        // Record the transaction before the command can possibly complete.
        self.transactions.put(cid, txn);
        // enqueue_cmd(): write the SQE into the ring.
        let wrote = self.qp.sq.write_slot(slot, build(cid));
        debug_assert!(wrote, "claimed SQE slot was occupied in the ring");
        // update_SQE(..., UPDATED): command now visible.
        self.states[slot as usize].store(SqeState::Updated as u32, Ordering::Release);

        // --- Attempt_SQDB loop: serialize the doorbell update. ---
        let mut rang = false;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            if self
                .doorbell_lock
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // move_SQ_tail(): promote consecutive UPDATED entries.
                let start = self.sw_tail.load(Ordering::Acquire);
                let mut t = start;
                loop {
                    let s = (t % self.depth as u64) as usize;
                    if self.states[s]
                        .compare_exchange(
                            SqeState::Updated as u32,
                            SqeState::Issued as u32,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        t += 1;
                    } else {
                        break;
                    }
                }
                if t != start {
                    self.qp
                        .sq_doorbell
                        .ring((t % self.depth as u64) as u32, now);
                    self.sw_tail.store(t, Ordering::Release);
                    rang = true;
                }
                self.doorbell_lock.store(false, Ordering::Release);
            }
            // check_SQE(): has *our* command been issued (by us or by whoever
            // held the doorbell lock)?
            if self.states[slot as usize].load(Ordering::Acquire) == SqeState::Issued as u32 {
                break;
            }
            assert!(
                attempts < 1_000_000,
                "doorbell serialization did not converge; protocol bug"
            );
            std::hint::spin_loop();
        }

        Some(IssueReceipt {
            cid,
            rang_doorbell: rang,
            attempts,
        })
    }

    /// Release a slot whose completion the service has processed:
    /// `ISSUED → EMPTY`, making it available for reuse.
    pub fn release(&self, cid: u16) {
        let prev = self.states[cid as usize].swap(SqeState::Empty as u32, Ordering::AcqRel);
        debug_assert_eq!(
            SqeState::from_u32(prev),
            SqeState::Issued,
            "released an SQE that was not ISSUED"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Transaction;
    use nvme_sim::DmaHandle;

    fn sq(depth: u32) -> AgileSq {
        AgileSq::new(QueuePair::new(0, depth))
    }

    fn read_cmd(cid: u16) -> NvmeCommand {
        NvmeCommand::read(cid, cid as u64, DmaHandle::new())
    }

    #[test]
    fn issue_fast_path_rings_doorbell() {
        let q = sq(8);
        let r = q
            .try_issue(read_cmd, Transaction::WriteBack, Cycles(10))
            .unwrap();
        assert_eq!(r.cid, 0);
        assert!(r.rang_doorbell);
        assert_eq!(q.slot_state(0), SqeState::Issued);
        assert_eq!(q.queue_pair().sq_doorbell.value(), 1);
        assert_eq!(q.transactions().in_flight(), 1);
        assert_eq!(q.free_slots(), 7);
    }

    #[test]
    fn queue_full_returns_none_without_blocking() {
        let q = sq(4);
        for i in 0..4 {
            let r = q
                .try_issue(read_cmd, Transaction::WriteBack, Cycles(0))
                .unwrap();
            assert_eq!(r.cid, i as u16);
        }
        assert_eq!(q.free_slots(), 0);
        assert!(q
            .try_issue(read_cmd, Transaction::WriteBack, Cycles(0))
            .is_none());
        // Completion of the command in slot 0 (the device fetched the entry,
        // the service takes the transaction and releases the SQE) makes
        // exactly one new issue possible; the allocation cursor wraps onto
        // the freed slot.
        let _ = q.queue_pair().sq.take_slot(0); // device-side fetch
        let _ = q.transactions().take(0);
        q.release(0);
        let r = q
            .try_issue(read_cmd, Transaction::WriteBack, Cycles(0))
            .unwrap();
        assert_eq!(r.cid, 0, "cursor wrapped to the first freed slot");
        // The ring is full again (slot 1 is still ISSUED), so the next issue
        // is rejected without blocking.
        assert!(q
            .try_issue(read_cmd, Transaction::WriteBack, Cycles(0))
            .is_none());
    }

    #[test]
    fn doorbell_batches_consecutive_updates() {
        let q = sq(16);
        // Issue three commands; each issue call promotes everything pending,
        // so the doorbell value always reflects the full batch.
        for _ in 0..3 {
            q.try_issue(read_cmd, Transaction::WriteBack, Cycles(0))
                .unwrap();
        }
        assert_eq!(q.queue_pair().sq_doorbell.value(), 3);
        let drained = q.queue_pair().sq_doorbell.drain();
        // Ring values are monotonically increasing ring indices.
        let values: Vec<u32> = drained.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, vec![1, 2, 3]);
    }

    #[test]
    fn release_resets_state_for_reuse() {
        let q = sq(2);
        let a = q
            .try_issue(read_cmd, Transaction::WriteBack, Cycles(0))
            .unwrap();
        let b = q
            .try_issue(read_cmd, Transaction::WriteBack, Cycles(0))
            .unwrap();
        assert_ne!(a.cid, b.cid);
        assert!(q
            .try_issue(read_cmd, Transaction::WriteBack, Cycles(0))
            .is_none());
        // Simulate the device fetching both entries, then their completions.
        let _ = q.queue_pair().sq.take_slot(a.cid as u32);
        let _ = q.queue_pair().sq.take_slot(b.cid as u32);
        q.release(a.cid);
        q.release(b.cid);
        let _ = q.transactions().take(a.cid);
        let _ = q.transactions().take(b.cid);
        assert_eq!(q.free_slots(), 2);
        assert!(q
            .try_issue(read_cmd, Transaction::WriteBack, Cycles(0))
            .is_some());
    }

    #[test]
    fn concurrent_issues_use_distinct_slots() {
        use std::thread;
        let q = Arc::new(sq(64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut cids = Vec::new();
                    for _ in 0..8 {
                        if let Some(r) = q.try_issue(read_cmd, Transaction::WriteBack, Cycles(0)) {
                            cids.push(r.cid);
                        }
                    }
                    cids
                })
            })
            .collect();
        let mut all: Vec<u16> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let before = all.len();
        all.dedup();
        assert_eq!(before, all.len(), "no CID may be handed to two threads");
        assert_eq!(before, 64, "all 64 slots should be claimable exactly once");
        // Every issued slot is in the ISSUED state and the doorbell covers all.
        assert_eq!(q.free_slots(), 0);
        assert_eq!(q.queue_pair().sq_doorbell.value() % 64, 0);
    }

    #[test]
    fn device_interoperation_end_to_end() {
        // The AgileSq protocol must produce command streams a real device
        // model can consume.
        use nvme_sim::{MemBacking, SsdConfig, SsdDevice};
        let qp = QueuePair::new(0, 32);
        let mut dev = SsdDevice::new(
            SsdConfig::new(0).with_capacity_pages(1 << 20),
            Arc::new(MemBacking::new(0)),
        );
        dev.register_queue_pair(Arc::clone(&qp));
        let q = AgileSq::new(qp);
        let dmas: Vec<DmaHandle> = (0..8).map(|_| DmaHandle::new()).collect();
        for (i, dma) in dmas.iter().enumerate() {
            let dma = dma.clone();
            q.try_issue(
                move |cid| NvmeCommand::read(cid, 1000 + i as u64, dma),
                Transaction::WriteBack,
                Cycles(0),
            )
            .unwrap();
        }
        // Let the device run long enough to complete everything.
        let mut now = Cycles(0);
        for _ in 0..500 {
            now += Cycles(10_000);
            dev.advance_to(now);
        }
        assert_eq!(dev.stats().reads_completed, 8);
        for (i, dma) in dmas.iter().enumerate() {
            assert_eq!(
                dma.load(),
                nvme_sim::PageToken::pristine(0, 1000 + i as u64)
            );
        }
    }
}
