//! Bridges between the AGILE stack's existing statistics and the
//! [`agile_metrics`] registry.
//!
//! Layers that already keep relaxed-atomic counters (the software cache, the
//! storage topology's lock and devices, the service partitions) are exported
//! through [`agile_metrics::Collector`]s polled only at snapshot time — the
//! hot paths are untouched, which is what keeps instrumented replays
//! byte-identical to uninstrumented ones. Only events with no existing
//! counter (SQ admissions, per-tenant QoS deferrals, engine rounds) carry
//! direct instruments, installed behind `OnceLock`s so the disabled path is
//! one atomic load.
//!
//! [`MetricsBridge`] connects a [`agile_metrics::WindowedSampler`] to the
//! engine as a **passive** external device: it never schedules a wakeup
//! (`next_event_time` is `None`) and is always quiescent, so installing it
//! cannot perturb replay timing — it merely observes the clock on scheduling
//! rounds the engine was going to run anyway.

use crate::ctrl::AgileCtrl;
use crate::service::ServicePartition;
use agile_cache::{CacheStats, TenantCacheStats};
use agile_metrics::{Collector, Labels, MetricValue, Sample, WindowedSampler};
use agile_sim::Cycles;
use gpu_sim::ExternalDevice;
use nvme_sim::StorageTopology;
use std::sync::Arc;

fn counter(out: &mut Vec<Sample>, name: &str, labels: Labels, v: u64) {
    out.push(Sample {
        name: name.to_string(),
        labels,
        value: MetricValue::Counter(v),
    });
}

fn gauge(out: &mut Vec<Sample>, name: &str, labels: Labels, v: u64) {
    out.push(Sample {
        name: name.to_string(),
        labels,
        value: MetricValue::Gauge(v),
    });
}

/// A controller that can report its software cache's statistics — the
/// indirection letting [`CacheCollector`] serve both the AGILE controller
/// and the BaM baseline's.
pub trait CacheStatsProvider: Send + Sync {
    /// Global cache counters.
    fn cache_stats(&self) -> CacheStats;
    /// Per-tenant counters, ordered by tenant id.
    fn cache_tenant_stats(&self) -> Vec<TenantCacheStats>;
    /// Per-shard counters, indexed by cache shard. The default reports the
    /// whole cache as one shard (unsharded providers).
    fn cache_shard_stats(&self) -> Vec<CacheStats> {
        vec![self.cache_stats()]
    }
    /// Cycles queued on each cache shard's access port (empty or all-zero
    /// when the port model is off).
    fn cache_port_wait_by_shard(&self) -> Vec<u64> {
        Vec::new()
    }
    /// Acquisitions of each cache shard's access port.
    fn cache_port_acquires_by_shard(&self) -> Vec<u64> {
        Vec::new()
    }
}

impl CacheStatsProvider for AgileCtrl {
    fn cache_stats(&self) -> CacheStats {
        self.cache().stats()
    }
    fn cache_tenant_stats(&self) -> Vec<TenantCacheStats> {
        self.cache().tenant_stats()
    }
    fn cache_shard_stats(&self) -> Vec<CacheStats> {
        self.cache().stats_by_shard()
    }
    fn cache_port_wait_by_shard(&self) -> Vec<u64> {
        self.cache().port_wait_by_shard()
    }
    fn cache_port_acquires_by_shard(&self) -> Vec<u64> {
        self.cache().port_acquires_by_shard()
    }
}

/// Exports the software cache's global and per-tenant counters
/// (`agile_cache_*`) from a controller's existing atomic cells.
pub struct CacheCollector {
    ctrl: Arc<dyn CacheStatsProvider>,
}

impl CacheCollector {
    /// A collector over `ctrl`'s cache.
    pub fn new(ctrl: Arc<dyn CacheStatsProvider>) -> Self {
        CacheCollector { ctrl }
    }
}

impl Collector for CacheCollector {
    fn collect(&self, out: &mut Vec<Sample>) {
        let s = self.ctrl.cache_stats();
        counter(out, "agile_cache_hits_total", Labels::NONE, s.hits);
        counter(
            out,
            "agile_cache_busy_hits_total",
            Labels::NONE,
            s.busy_hits,
        );
        counter(out, "agile_cache_misses_total", Labels::NONE, s.misses);
        counter(
            out,
            "agile_cache_evictions_total",
            Labels::NONE,
            s.evictions,
        );
        counter(
            out,
            "agile_cache_writebacks_total",
            Labels::NONE,
            s.writebacks,
        );
        counter(out, "agile_cache_no_line_total", Labels::NONE, s.no_line);
        for t in self.ctrl.cache_tenant_stats() {
            let l = Labels::tenant(t.tenant);
            counter(out, "agile_cache_tenant_hits_total", l, t.hits);
            counter(out, "agile_cache_tenant_misses_total", l, t.misses);
            counter(out, "agile_cache_tenant_fills_total", l, t.fills);
            counter(out, "agile_cache_tenant_evictions_total", l, t.evictions);
            gauge(out, "agile_cache_tenant_occupancy", l, t.occupancy);
        }
        // Per-shard families only when the cache is actually sharded: the
        // single-shard rows would duplicate the aggregates above under a
        // different key.
        let shards = self.ctrl.cache_shard_stats();
        if shards.len() > 1 {
            for (shard, s) in shards.into_iter().enumerate() {
                let l = Labels::shard(shard as u32);
                counter(out, "agile_cache_shard_hits_total", l, s.hits);
                counter(out, "agile_cache_shard_misses_total", l, s.misses);
                counter(out, "agile_cache_shard_evictions_total", l, s.evictions);
            }
        }
        // Port contention, mirroring the submit path's `agile_submit_lock_*`
        // families: rows appear only once something was charged.
        let waits = self.ctrl.cache_port_wait_by_shard();
        let acquires = self.ctrl.cache_port_acquires_by_shard();
        if acquires.iter().any(|&n| n > 0) {
            for (shard, (wait, n)) in waits.into_iter().zip(acquires).enumerate() {
                let l = Labels::shard(shard as u32);
                counter(out, "agile_cache_port_wait_cycles_total", l, wait);
                counter(out, "agile_cache_port_acquires_total", l, n);
            }
        }
    }
}

/// Exports the storage topology's lock-contention counters
/// (`agile_submit_lock_*` per shard) and per-device completion statistics
/// (`agile_device_*`).
pub struct TopologyCollector {
    topology: Arc<dyn StorageTopology>,
}

impl TopologyCollector {
    /// A collector over `topology`.
    pub fn new(topology: Arc<dyn StorageTopology>) -> Self {
        TopologyCollector { topology }
    }
}

impl Collector for TopologyCollector {
    fn collect(&self, out: &mut Vec<Sample>) {
        for (shard, wait) in self.topology.lock_wait_by_shard().into_iter().enumerate() {
            counter(
                out,
                "agile_submit_lock_wait_cycles_total",
                Labels::shard(shard as u32),
                wait,
            );
        }
        for (shard, n) in self
            .topology
            .lock_acquires_by_shard()
            .into_iter()
            .enumerate()
        {
            counter(
                out,
                "agile_submit_lock_acquires_total",
                Labels::shard(shard as u32),
                n,
            );
        }
        for dev in 0..self.topology.device_count() {
            let s = self.topology.device_stats(dev);
            let l = Labels::device(dev as u32);
            counter(
                out,
                "agile_device_reads_completed_total",
                l,
                s.reads_completed,
            );
            counter(
                out,
                "agile_device_writes_completed_total",
                l,
                s.writes_completed,
            );
            counter(out, "agile_device_errors_total", l, s.errors);
            counter(out, "agile_device_bytes_read_total", l, s.bytes_read);
            counter(out, "agile_device_bytes_written_total", l, s.bytes_written);
            counter(out, "agile_device_cq_stalls_total", l, s.cq_stalls);
            counter(out, "agile_device_doorbells_total", l, s.doorbells);
            gauge(
                out,
                "agile_device_inflight",
                l,
                self.topology.device_inflight(dev),
            );
        }
    }
}

/// Exports per-partition AGILE-service counters (`agile_service_*`).
pub struct ServiceCollector {
    partitions: Vec<Arc<ServicePartition>>,
}

impl ServiceCollector {
    /// A collector over the given service partitions.
    pub fn new(partitions: Vec<Arc<ServicePartition>>) -> Self {
        ServiceCollector { partitions }
    }
}

impl Collector for ServiceCollector {
    fn collect(&self, out: &mut Vec<Sample>) {
        for (idx, p) in self.partitions.iter().enumerate() {
            let s = p.stats();
            let l = Labels::partition(idx as u32);
            counter(out, "agile_service_completions_total", l, s.completions);
            counter(out, "agile_service_cq_doorbells_total", l, s.cq_doorbells);
            counter(out, "agile_service_busy_rounds_total", l, s.busy_rounds);
            counter(out, "agile_service_idle_rounds_total", l, s.idle_rounds);
        }
    }
}

/// A passive [`ExternalDevice`] that feeds the simulated clock to a
/// [`WindowedSampler`] every few engine scheduling rounds.
///
/// It never requests a wakeup and reports quiescent, so the engine's event
/// scheduling — and therefore the replay's timing — is identical with or
/// without the bridge installed.
pub struct MetricsBridge {
    sampler: Arc<WindowedSampler>,
    rounds: u32,
}

impl MetricsBridge {
    /// How many scheduling rounds pass between sampler observations. Window
    /// boundaries are still detected — just up to this many rounds late,
    /// which at typical round lengths is a tiny fraction of any sane window
    /// — while the per-round cost drops to a counter increment.
    const OBSERVE_EVERY: u32 = 32;

    /// A bridge driving `sampler`.
    pub fn new(sampler: Arc<WindowedSampler>) -> Self {
        MetricsBridge { sampler, rounds: 0 }
    }
}

impl ExternalDevice for MetricsBridge {
    fn advance_to(&mut self, now: Cycles) {
        self.rounds += 1;
        if self.rounds.is_multiple_of(Self::OBSERVE_EVERY) {
            self.sampler.observe(now.raw());
        }
    }
    fn next_event_time(&mut self) -> Option<Cycles> {
        None
    }
    fn quiescent(&self) -> bool {
        true
    }
}
