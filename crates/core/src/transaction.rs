//! Transaction barriers and the per-SQ transaction tables.
//!
//! When a user thread hands a command off to the NVMe queues it receives back
//! a *barrier* (the `lock a` of Figure 3): a one-shot flag the AGILE service
//! clears when the corresponding completion is processed. The thread never
//! holds a queue lock while waiting — it only polls its private barrier,
//! which is what removes the deadlock window of §2.3.1.
//!
//! The service needs to know, for each completion `(SQ, CID)`, what finishing
//! that command means: completing a software-cache fill, releasing a
//! user-buffer read, acknowledging a write-back, … That mapping is the
//! [`TransactionTable`]: one slot per SQE, indexed by CID (AGILE uses the SQE
//! slot index as the CID so the mapping is trivial and collision-free within
//! a queue).

use agile_cache::LineId;
use agile_cache::SharedBuf;
use nvme_sim::{DmaHandle, Lba, PageToken};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A one-shot completion flag shared between a user thread and the service.
///
/// The barrier starts *armed* (pending). The AGILE service clears it when the
/// transaction's completion has been processed; the user thread polls
/// [`Barrier::is_complete`].
#[derive(Debug, Clone, Default)]
pub struct Barrier {
    flag: Arc<AtomicU32>,
}

impl Barrier {
    /// A new, armed barrier.
    pub fn new() -> Self {
        Barrier {
            flag: Arc::new(AtomicU32::new(0)),
        }
    }

    /// True once the transaction completed.
    pub fn is_complete(&self) -> bool {
        self.flag.load(Ordering::Acquire) == 1
    }

    /// Mark the transaction complete (service side).
    pub fn complete(&self) {
        self.flag.store(1, Ordering::Release);
    }

    /// Re-arm the barrier for reuse (buffers are commonly reused across
    /// epochs; real AGILE reuses the `AgileBufPtr` the same way).
    pub fn reset(&self) {
        self.flag.store(0, Ordering::Release);
    }
}

/// A user-registered buffer for `async_issue(src, dst)`: a page-sized slot in
/// GPU global memory plus the barrier that tracks the in-flight transfer.
///
/// This is the reproduction's `AgileBufPtr` (Listing 1, line 12).
#[derive(Debug, Clone, Default)]
pub struct AgileBuf {
    /// The data slot (what the NVMe DMA engine reads/writes).
    pub dma: DmaHandle,
    /// Completion barrier for the most recent asynchronous operation.
    pub barrier: Barrier,
}

impl AgileBuf {
    /// A fresh buffer with no pending transfer.
    pub fn new() -> Self {
        AgileBuf {
            dma: DmaHandle::new(),
            barrier: Barrier::new(),
        }
    }

    /// A buffer pre-filled with `token` (for writes).
    pub fn with_token(token: PageToken) -> Self {
        AgileBuf {
            dma: DmaHandle::with_token(token),
            barrier: Barrier::new(),
        }
    }

    /// True when the last asynchronous operation on this buffer finished
    /// (`buf.wait()` in Listing 1 polls this).
    pub fn is_ready(&self) -> bool {
        self.barrier.is_complete()
    }

    /// The token currently held by the buffer.
    pub fn token(&self) -> PageToken {
        self.dma.load()
    }

    /// Store a token into the buffer (host-side fill before a write).
    pub fn store(&self, token: PageToken) {
        self.dma.store(token);
    }
}

/// What completing a command means to the rest of the system.
#[derive(Debug, Clone)]
pub enum Transaction {
    /// A software-cache fill: transition the line `BUSY → READY` and release
    /// the reservation pin taken at miss time.
    CacheFill {
        /// The reserved line.
        line: LineId,
    },
    /// A write-back of an evicted dirty line (or of a dirty shared buffer);
    /// nothing to release beyond the SQE itself.
    WriteBack,
    /// An `asyncRead` into a user buffer: clear the barrier and, when the
    /// Share Table tracks the buffer, mark it ready for other threads.
    UserRead {
        /// Barrier to clear.
        barrier: Barrier,
        /// Share-Table entry to mark ready (if sharing is enabled).
        shared: Option<Arc<SharedBuf>>,
    },
    /// An `asyncWrite` from a user buffer: clear the barrier (the buffer was
    /// already free to reuse the moment the command was issued, because the
    /// data was snapshotted — the barrier reports durability).
    UserWrite {
        /// Barrier to clear.
        barrier: Barrier,
    },
    /// A raw request issued by a benchmark kernel (4 KiB random read/write
    /// experiments): clear the barrier.
    Raw {
        /// Barrier to clear.
        barrier: Barrier,
        /// Source/destination page, kept for diagnostics.
        lba: Lba,
        /// Tenant whose QoS admission this command consumed, when a
        /// [`crate::qos::QosPolicy`] arbitrated it: the completion processor
        /// returns the in-flight credit via `QosPolicy::on_complete`.
        /// `None` when no policy was installed at issue time.
        qos_tenant: Option<u32>,
    },
}

/// One slot per SQE; indexed by CID.
pub struct TransactionTable {
    slots: Vec<Mutex<Option<Transaction>>>,
}

impl TransactionTable {
    /// Table for an SQ of `depth` entries.
    pub fn new(depth: u32) -> Self {
        TransactionTable {
            slots: (0..depth).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Number of slots.
    pub fn depth(&self) -> usize {
        self.slots.len()
    }

    /// Record the transaction behind CID `cid`. Panics if the slot is already
    /// occupied (that would mean a CID was reused while in flight).
    pub fn put(&self, cid: u16, t: Transaction) {
        let mut slot = self.slots[cid as usize].lock();
        assert!(
            slot.is_none(),
            "transaction slot {cid} reused while still in flight"
        );
        *slot = Some(t);
    }

    /// Take the transaction behind CID `cid` (service side, on completion).
    pub fn take(&self, cid: u16) -> Option<Transaction> {
        self.slots[cid as usize].lock().take()
    }

    /// Number of in-flight transactions (diagnostic).
    pub fn in_flight(&self) -> usize {
        self.slots.iter().filter(|s| s.lock().is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_lifecycle() {
        let b = Barrier::new();
        assert!(!b.is_complete());
        let alias = b.clone();
        alias.complete();
        assert!(b.is_complete());
        b.reset();
        assert!(!b.is_complete());
    }

    #[test]
    fn agile_buf_roundtrip() {
        let buf = AgileBuf::with_token(PageToken(5));
        assert_eq!(buf.token(), PageToken(5));
        assert!(!buf.is_ready());
        buf.barrier.complete();
        assert!(buf.is_ready());
        buf.store(PageToken(6));
        assert_eq!(buf.token(), PageToken(6));
    }

    #[test]
    fn transaction_table_put_take() {
        let t = TransactionTable::new(8);
        assert_eq!(t.depth(), 8);
        assert_eq!(t.in_flight(), 0);
        t.put(3, Transaction::WriteBack);
        t.put(5, Transaction::CacheFill { line: LineId(7) });
        assert_eq!(t.in_flight(), 2);
        match t.take(5) {
            Some(Transaction::CacheFill { line }) => assert_eq!(line, LineId(7)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(t.take(5).is_none());
        assert_eq!(t.in_flight(), 1);
    }

    #[test]
    #[should_panic(expected = "reused while still in flight")]
    fn transaction_table_rejects_cid_reuse() {
        let t = TransactionTable::new(4);
        t.put(0, Transaction::WriteBack);
        t.put(0, Transaction::WriteBack);
    }

    #[test]
    fn barrier_is_shared_not_copied() {
        let buf = AgileBuf::new();
        let t = Transaction::UserRead {
            barrier: buf.barrier.clone(),
            shared: None,
        };
        // Completing through the transaction's clone is visible via the buffer.
        if let Transaction::UserRead { barrier, .. } = &t {
            barrier.complete();
        }
        assert!(buf.is_ready());
    }
}
