//! GPU device configuration.

use agile_sim::units::{GIB, KIB};
use serde::{Deserialize, Serialize};

/// Static description of the simulated GPU.
///
/// Only the resources that shape the paper's experiments are modelled:
/// SM count (parallelism), per-SM register file and warp/block limits
/// (occupancy, hence latency-hiding capacity), warp size, clock, and HBM
/// capacity (bounds the software cache).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Human-readable device name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Threads per warp (32 on every NVIDIA part).
    pub warp_size: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// Maximum threads per thread block.
    pub max_threads_per_block: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// HBM capacity in bytes.
    pub hbm_bytes: u64,
}

impl GpuConfig {
    /// The NVIDIA RTX 5000 Ada Generation card used in the paper's testbed:
    /// 100 SMs, 64 K registers and up to 48 resident warps per SM, 32 GB of
    /// GDDR6 (treated as the "HBM" tier that hosts the software cache).
    pub fn rtx_5000_ada() -> Self {
        GpuConfig {
            name: "RTX 5000 Ada (simulated)".to_string(),
            num_sms: 100,
            warp_size: 32,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 24,
            registers_per_sm: 65_536,
            shared_mem_per_sm: 100 * KIB as u32,
            max_threads_per_block: 1024,
            clock_ghz: agile_sim::DEFAULT_GPU_CLOCK_GHZ,
            hbm_bytes: 32 * GIB,
        }
    }

    /// A deliberately small device used by unit tests so that occupancy
    /// limits and block-wave scheduling are exercised with tiny workloads.
    pub fn tiny(num_sms: u32) -> Self {
        GpuConfig {
            name: format!("tiny-{num_sms}"),
            num_sms,
            warp_size: 32,
            max_warps_per_sm: 8,
            max_blocks_per_sm: 4,
            registers_per_sm: 16_384,
            shared_mem_per_sm: 48 * KIB as u32,
            max_threads_per_block: 256,
            clock_ghz: agile_sim::DEFAULT_GPU_CLOCK_GHZ,
            hbm_bytes: GIB,
        }
    }

    /// Total resident-warp capacity of the device.
    pub fn total_warp_slots(&self) -> u32 {
        self.num_sms * self.max_warps_per_sm
    }

    /// Total concurrent thread capacity of the device.
    pub fn total_thread_slots(&self) -> u64 {
        self.total_warp_slots() as u64 * self.warp_size as u64
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::rtx_5000_ada()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ada_preset_is_sane() {
        let g = GpuConfig::rtx_5000_ada();
        assert_eq!(g.warp_size, 32);
        assert_eq!(g.num_sms, 100);
        assert_eq!(g.total_warp_slots(), 4800);
        assert_eq!(g.total_thread_slots(), 4800 * 32);
        assert!(g.hbm_bytes >= 16 * GIB);
    }

    #[test]
    fn tiny_preset_scales_with_sm_count() {
        let g = GpuConfig::tiny(2);
        assert_eq!(g.num_sms, 2);
        assert_eq!(g.total_warp_slots(), 16);
        assert!(g.max_threads_per_block <= 256);
    }

    #[test]
    fn default_is_ada() {
        assert_eq!(GpuConfig::default(), GpuConfig::rtx_5000_ada());
    }
}
