//! The co-simulation engine.
//!
//! [`Engine`] owns the GPU state (SMs with resident warps), the launched
//! kernels, and any external latency-bearing devices (the SSD array, wrapped
//! behind [`ExternalDevice`]). `run()` advances virtual time event by event:
//!
//! 1. all external devices are advanced to the current time so their
//!    completions (DMA writes, CQ entries) become visible to warps;
//! 2. every resident, ready warp is stepped once;
//! 3. finished blocks release their SM resources and pending blocks from the
//!    dispatch queue are placed (wave scheduling);
//! 4. the clock jumps to the next interesting time (earliest warp wake-up or
//!    device event).
//!
//! The engine also watches for livelock: if no warp makes forward progress
//! (`Busy` or `Done`) for a configurable window while kernels are still
//! incomplete, it stops and flags the run as deadlocked — this is how the
//! repository demonstrates the queue deadlock of paper §2.3.1 on the
//! synchronous baseline, and its absence under AGILE.

use crate::config::GpuConfig;
use crate::kernel::{occupancy, KernelFactory, KernelId, LaunchConfig, WarpCtx, WarpId, WarpStep};
use crate::sm::{ResidentWarp, SmState};
use agile_sim::{Cycles, SimClock};
use serde::{Deserialize, Serialize};

/// An external device co-simulated with the GPU (in practice: the SSD array).
pub trait ExternalDevice {
    /// Advance the device's internal state to time `now`.
    fn advance_to(&mut self, now: Cycles);
    /// Earliest pending internal event, if any.
    fn next_event_time(&mut self) -> Option<Cycles>;
    /// True when the device has no in-flight work.
    fn quiescent(&self) -> bool;
}

/// Per-kernel execution summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelReport {
    /// Kernel name (from the factory).
    pub name: String,
    /// Kernel id.
    pub id: u32,
    /// Total warps executed.
    pub warps: u64,
    /// Sum of busy cycles across warps.
    pub busy_cycles: u64,
    /// Sum of stall cycles across warps.
    pub stall_cycles: u64,
    /// Total `step` invocations.
    pub steps: u64,
    /// Time the last (non-persistent) block of the kernel retired; zero for
    /// persistent kernels that were still running when the engine stopped.
    pub completed_at: u64,
    /// Whether the kernel was launched persistent.
    pub persistent: bool,
}

/// Result of an [`Engine::run`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Simulated end-to-end time (cycles) from launch to completion of all
    /// non-persistent kernels.
    pub elapsed: Cycles,
    /// The same, in seconds at the configured clock.
    pub elapsed_secs: f64,
    /// Per-kernel summaries, in launch order.
    pub kernels: Vec<KernelReport>,
    /// True when the engine detected a lack of forward progress (deadlock /
    /// livelock) and aborted the run.
    pub deadlocked: bool,
    /// Number of engine scheduling rounds executed.
    pub rounds: u64,
}

impl ExecutionReport {
    /// Report for the kernel with the given name, if present.
    pub fn kernel(&self, name: &str) -> Option<&KernelReport> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

struct KernelInstance {
    id: KernelId,
    name: String,
    launch: LaunchConfig,
    factory: Box<dyn KernelFactory>,
    blocks_retired: u32,
    completed_at: Option<Cycles>,
    // accumulated stats
    warps: u64,
    busy: Cycles,
    stall: Cycles,
    steps: u64,
}

impl KernelInstance {
    fn complete(&self) -> bool {
        self.blocks_retired == self.launch.grid_dim
    }
}

/// The GPU + devices co-simulation engine.
pub struct Engine {
    gpu: GpuConfig,
    clock: SimClock,
    sms: Vec<SmState>,
    kernels: Vec<KernelInstance>,
    devices: Vec<Box<dyn ExternalDevice>>,
    /// Pending (kernel_idx, block_idx) waiting for SM space, FIFO.
    dispatch_queue: std::collections::VecDeque<(usize, u32)>,
    /// Window without forward progress after which the run is declared
    /// deadlocked.
    deadlock_window: Cycles,
    /// Hard wall on simulated time (safety net for tests).
    max_cycles: Cycles,
    rounds: u64,
}

impl Engine {
    /// Create an engine for the given GPU.
    pub fn new(gpu: GpuConfig) -> Self {
        let clock = SimClock::new(gpu.clock_ghz);
        let sms = (0..gpu.num_sms).map(SmState::new).collect();
        Engine {
            gpu,
            clock,
            sms,
            kernels: Vec::new(),
            devices: Vec::new(),
            dispatch_queue: std::collections::VecDeque::new(),
            deadlock_window: Cycles(50_000_000),
            max_cycles: Cycles(u64::MAX / 4),
            rounds: 0,
        }
    }

    /// The GPU configuration.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        self.clock.now()
    }

    /// Override the no-progress window used for deadlock detection.
    pub fn set_deadlock_window(&mut self, window: Cycles) {
        self.deadlock_window = window;
    }

    /// Override the hard limit on simulated cycles.
    pub fn set_max_cycles(&mut self, max: Cycles) {
        self.max_cycles = max;
    }

    /// Attach an external device (SSD array). Devices are advanced in the
    /// order they were added.
    pub fn add_device(&mut self, dev: Box<dyn ExternalDevice>) {
        self.devices.push(dev);
    }

    /// Launch a kernel; its blocks enter the dispatch queue immediately.
    pub fn launch(&mut self, launch: LaunchConfig, factory: Box<dyn KernelFactory>) -> KernelId {
        assert!(launch.grid_dim > 0, "grid must contain at least one block");
        assert!(
            launch.block_dim.is_multiple_of(self.gpu.warp_size) && launch.block_dim > 0,
            "block_dim must be a positive warp-size multiple"
        );
        // Validate the launch fits the device at all.
        let occ = occupancy(&self.gpu, &launch);
        assert!(occ > 0, "kernel footprint too large for one SM");
        let id = KernelId(self.kernels.len() as u32);
        let idx = self.kernels.len();
        self.kernels.push(KernelInstance {
            id,
            name: factory.name().to_string(),
            launch,
            factory,
            blocks_retired: 0,
            completed_at: None,
            warps: 0,
            busy: Cycles::ZERO,
            stall: Cycles::ZERO,
            steps: 0,
        });
        let grid = self.kernels[idx].launch.grid_dim;
        for b in 0..grid {
            self.dispatch_queue.push_back((idx, b));
        }
        self.fill_sms();
        id
    }

    /// Place as many pending blocks as the SMs can hold.
    fn fill_sms(&mut self) {
        // Round-robin over SMs for each pending block, preserving FIFO order
        // per the hardware's global block scheduler.
        let mut made_progress = true;
        while made_progress {
            made_progress = false;
            let Some(&(kidx, block_idx)) = self.dispatch_queue.front() else {
                break;
            };
            let (warps, regs, smem) = {
                let k = &self.kernels[kidx];
                (
                    k.launch.warps_per_block(&self.gpu),
                    k.launch.registers_per_thread * k.launch.block_dim,
                    k.launch.shared_mem_per_block,
                )
            };
            // Choose the least-loaded SM that can take the block.
            let candidate = self
                .sms
                .iter()
                .enumerate()
                .filter(|(_, sm)| sm.can_place(&self.gpu, warps, regs, smem))
                .min_by_key(|(_, sm)| sm.used_warps)
                .map(|(i, _)| i);
            if let Some(sm_idx) = candidate {
                self.dispatch_queue.pop_front();
                self.place_block(sm_idx, kidx, block_idx, warps, regs, smem);
                made_progress = true;
            }
        }
    }

    fn place_block(
        &mut self,
        sm_idx: usize,
        kidx: usize,
        block_idx: u32,
        warps: u32,
        regs: u32,
        smem: u32,
    ) {
        let slot = self.sms[sm_idx].place_block(kidx, block_idx, warps, regs, smem);
        let kernel_id = self.kernels[kidx].id;
        for w in 0..warps {
            let state = self.kernels[kidx].factory.create_warp(block_idx, w);
            self.kernels[kidx].warps += 1;
            self.sms[sm_idx].warps.push(ResidentWarp {
                id: WarpId {
                    kernel: kernel_id,
                    block: block_idx,
                    warp: w,
                },
                kernel_idx: kidx,
                block_slot: slot,
                state,
                ready_at: self.clock.now(),
                done: false,
                busy: Cycles::ZERO,
                stall: Cycles::ZERO,
                steps: 0,
            });
        }
    }

    fn all_user_kernels_complete(&self) -> bool {
        self.kernels
            .iter()
            .filter(|k| !k.launch.persistent)
            .all(|k| k.complete())
    }

    /// Run until every non-persistent kernel has completed (or until deadlock
    /// / the cycle limit is hit) and return the execution report.
    pub fn run(&mut self) -> ExecutionReport {
        let start = self.clock.now();
        let mut last_progress = self.clock.now();
        let mut deadlocked = false;

        while !self.all_user_kernels_complete() {
            self.rounds += 1;
            let now = self.clock.now();

            // 1. Let devices catch up so completions are visible to warps.
            for dev in &mut self.devices {
                dev.advance_to(now);
            }

            // 2. Step every ready warp once.
            let mut progressed = false;
            let mut retired_blocks: Vec<(usize, usize)> = Vec::new(); // (sm, slot)
            for sm_idx in 0..self.sms.len() {
                let sm = &mut self.sms[sm_idx];
                for widx in 0..sm.warps.len() {
                    let w = &mut sm.warps[widx];
                    if w.done || w.ready_at > now {
                        continue;
                    }
                    let ctx = WarpCtx {
                        now,
                        warp: w.id,
                        lanes: self.gpu.warp_size,
                        clock_ghz: self.gpu.clock_ghz,
                    };
                    w.steps += 1;
                    self.kernels[w.kernel_idx].steps += 1;
                    match w.state.step(&ctx) {
                        WarpStep::Busy(c) => {
                            let c = c.max(Cycles(1));
                            w.ready_at = now + c;
                            w.busy += c;
                            self.kernels[w.kernel_idx].busy += c;
                            progressed = true;
                        }
                        WarpStep::Stall { retry_after } => {
                            let r = retry_after.max(Cycles(1));
                            w.ready_at = now + r;
                            w.stall += r;
                            self.kernels[w.kernel_idx].stall += r;
                        }
                        WarpStep::Done => {
                            w.done = true;
                            progressed = true;
                            let slot = w.block_slot;
                            let kidx = w.kernel_idx;
                            if sm.warp_retired(slot) {
                                retired_blocks.push((sm_idx, slot));
                                self.kernels[kidx].blocks_retired += 1;
                                if self.kernels[kidx].complete() {
                                    self.kernels[kidx].completed_at = Some(now);
                                }
                            }
                        }
                    }
                }
            }

            // 3. Clean up retired blocks and place pending ones.
            if !retired_blocks.is_empty() {
                for sm in &mut self.sms {
                    sm.compact();
                }
                self.fill_sms();
            }

            if progressed {
                last_progress = now;
            } else if now.saturating_sub(last_progress) > self.deadlock_window {
                deadlocked = true;
                break;
            }

            if self.all_user_kernels_complete() {
                break;
            }

            // 4. Advance time to the next interesting moment.
            let next_warp = self
                .sms
                .iter()
                .flat_map(|sm| sm.warps.iter())
                .filter(|w| !w.done)
                .map(|w| w.ready_at)
                .filter(|&t| t > now)
                .min();
            let next_dev = self
                .devices
                .iter_mut()
                .filter_map(|d| d.next_event_time())
                .filter(|&t| t > now)
                .min();
            let next = match (next_warp, next_dev) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                // Nothing scheduled: either we are done (checked above) or
                // every warp is ready right now — re-run immediately with a
                // minimal time bump to guarantee forward motion of the clock.
                (None, None) => now + Cycles(1),
            };
            if next <= now {
                self.clock.advance(Cycles(1));
            } else {
                self.clock.advance_to(next);
            }
            if self.clock.now() > self.max_cycles {
                deadlocked = true;
                break;
            }
        }

        // Final device sync so statistics reflect everything visible at the end.
        let now = self.clock.now();
        for dev in &mut self.devices {
            dev.advance_to(now);
        }

        let elapsed = self.clock.now() - start;
        ExecutionReport {
            elapsed,
            elapsed_secs: elapsed.to_secs(self.gpu.clock_ghz),
            kernels: self
                .kernels
                .iter()
                .map(|k| KernelReport {
                    name: k.name.clone(),
                    id: k.id.0,
                    warps: k.warps,
                    busy_cycles: k.busy.raw(),
                    stall_cycles: k.stall.raw(),
                    steps: k.steps,
                    completed_at: k.completed_at.map(|c| c.raw()).unwrap_or(0),
                    persistent: k.launch.persistent,
                })
                .collect(),
            deadlocked,
            rounds: self.rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ComputeOnlyKernel;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn compute_only_kernel_time_matches_work() {
        let mut eng = Engine::new(GpuConfig::tiny(2));
        // 4 blocks × 2 warps, each warp busy for 1000 cycles in 2 steps.
        eng.launch(
            LaunchConfig::new(4, 64).with_registers(16),
            Box::new(ComputeOnlyKernel {
                cycles_per_warp: Cycles(1000),
                steps: 2,
            }),
        );
        let report = eng.run();
        assert!(!report.deadlocked);
        // Everything fits concurrently, so elapsed ≈ 1000 cycles (+ rounding).
        assert!(
            report.elapsed.raw() >= 1000 && report.elapsed.raw() < 1100,
            "elapsed {}",
            report.elapsed
        );
        let k = &report.kernels[0];
        assert_eq!(k.warps, 8);
        assert_eq!(k.busy_cycles, 8 * 1000);
    }

    #[test]
    fn waves_serialize_when_grid_exceeds_capacity() {
        // tiny(1): at most 4 resident blocks per SM. Launch 16 single-warp
        // blocks of 1000 cycles: needs four waves ⇒ elapsed ≈ 4000 cycles.
        let mut eng = Engine::new(GpuConfig::tiny(1));
        eng.launch(
            LaunchConfig::new(16, 32).with_registers(16),
            Box::new(ComputeOnlyKernel {
                cycles_per_warp: Cycles(1000),
                steps: 1,
            }),
        );
        let report = eng.run();
        assert!(!report.deadlocked);
        assert!(
            report.elapsed.raw() >= 4000 && report.elapsed.raw() < 4400,
            "elapsed {}",
            report.elapsed
        );
    }

    /// A kernel whose warps wait for an external "device" to flip a flag.
    struct WaitingKernel {
        flag: Arc<AtomicU64>,
    }
    struct WaitingWarp {
        flag: Arc<AtomicU64>,
        issued: bool,
    }
    impl crate::kernel::WarpKernel for WaitingWarp {
        fn step(&mut self, _ctx: &WarpCtx) -> WarpStep {
            if !self.issued {
                self.issued = true;
                return WarpStep::Busy(Cycles(10));
            }
            if self.flag.load(Ordering::Acquire) == 1 {
                WarpStep::Done
            } else {
                WarpStep::Stall {
                    retry_after: Cycles(100),
                }
            }
        }
    }
    impl KernelFactory for WaitingKernel {
        fn create_warp(&self, _b: u32, _w: u32) -> Box<dyn crate::kernel::WarpKernel> {
            Box::new(WaitingWarp {
                flag: Arc::clone(&self.flag),
                issued: false,
            })
        }
        fn name(&self) -> &str {
            "waiting"
        }
    }

    /// Device that flips the flag at a fixed time.
    struct FlagDevice {
        flag: Arc<AtomicU64>,
        at: Cycles,
        fired: bool,
    }
    impl ExternalDevice for FlagDevice {
        fn advance_to(&mut self, now: Cycles) {
            if !self.fired && now >= self.at {
                self.flag.store(1, Ordering::Release);
                self.fired = true;
            }
        }
        fn next_event_time(&mut self) -> Option<Cycles> {
            (!self.fired).then_some(self.at)
        }
        fn quiescent(&self) -> bool {
            self.fired
        }
    }

    #[test]
    fn warps_wake_when_device_event_fires() {
        let flag = Arc::new(AtomicU64::new(0));
        let mut eng = Engine::new(GpuConfig::tiny(1));
        eng.add_device(Box::new(FlagDevice {
            flag: Arc::clone(&flag),
            at: Cycles(50_000),
            fired: false,
        }));
        eng.launch(
            LaunchConfig::new(2, 32).with_registers(16),
            Box::new(WaitingKernel { flag }),
        );
        let report = eng.run();
        assert!(!report.deadlocked);
        // Completion should land shortly after the device event.
        assert!(
            report.elapsed.raw() >= 50_000 && report.elapsed.raw() < 51_000,
            "elapsed {}",
            report.elapsed
        );
        let k = &report.kernels[0];
        assert!(k.stall_cycles > 0, "warps should have recorded stall time");
    }

    #[test]
    fn deadlock_is_detected_when_no_progress_is_possible() {
        // Flag never flips and there is no device: warps stall forever.
        let flag = Arc::new(AtomicU64::new(0));
        let mut eng = Engine::new(GpuConfig::tiny(1));
        eng.set_deadlock_window(Cycles(100_000));
        eng.launch(
            LaunchConfig::new(1, 32).with_registers(16),
            Box::new(WaitingKernel { flag }),
        );
        let report = eng.run();
        assert!(report.deadlocked);
    }

    #[test]
    fn persistent_kernel_does_not_gate_completion() {
        struct Forever;
        struct ForeverWarp;
        impl crate::kernel::WarpKernel for ForeverWarp {
            fn step(&mut self, _ctx: &WarpCtx) -> WarpStep {
                WarpStep::Busy(Cycles(500))
            }
        }
        impl KernelFactory for Forever {
            fn create_warp(&self, _b: u32, _w: u32) -> Box<dyn crate::kernel::WarpKernel> {
                Box::new(ForeverWarp)
            }
            fn name(&self) -> &str {
                "service"
            }
        }
        let mut eng = Engine::new(GpuConfig::tiny(2));
        eng.launch(
            LaunchConfig::new(1, 32).with_registers(16).persistent(),
            Box::new(Forever),
        );
        eng.launch(
            LaunchConfig::new(2, 32).with_registers(16),
            Box::new(ComputeOnlyKernel {
                cycles_per_warp: Cycles(2000),
                steps: 2,
            }),
        );
        let report = eng.run();
        assert!(!report.deadlocked);
        assert!(report.elapsed.raw() < 3000);
        let service = report.kernel("service").unwrap();
        assert!(service.persistent);
        assert_eq!(service.completed_at, 0);
        assert!(service.busy_cycles > 0);
    }

    #[test]
    #[should_panic(expected = "footprint too large")]
    fn launch_rejects_impossible_footprint() {
        let mut eng = Engine::new(GpuConfig::tiny(1));
        eng.launch(
            LaunchConfig::new(1, 256).with_registers(255),
            Box::new(ComputeOnlyKernel {
                cycles_per_warp: Cycles(10),
                steps: 1,
            }),
        );
    }

    #[test]
    fn report_lookup_by_name() {
        let mut eng = Engine::new(GpuConfig::tiny(1));
        eng.launch(
            LaunchConfig::new(1, 32).with_registers(16),
            Box::new(ComputeOnlyKernel {
                cycles_per_warp: Cycles(10),
                steps: 1,
            }),
        );
        let report = eng.run();
        assert!(report.kernel("compute-only").is_some());
        assert!(report.kernel("missing").is_none());
    }
}
