//! The co-simulation engine.
//!
//! [`Engine`] owns the GPU state (SMs with resident warps), the launched
//! kernels, and any external latency-bearing devices (the SSD array, wrapped
//! behind [`ExternalDevice`]). `run()` advances virtual time event by event:
//!
//! 1. all external devices are advanced to the current time so their
//!    completions (DMA writes, CQ entries) become visible to warps;
//! 2. every resident warp whose wake time has arrived is stepped once;
//! 3. finished blocks release their SM resources and pending blocks from the
//!    dispatch queue are placed (wave scheduling);
//! 4. the clock jumps to the next interesting time.
//!
//! Scheduling is **event-driven** ([`EngineSched::EventQueue`], the default):
//! warps live in a min-heap ready-queue keyed on `ready_at`, re-enqueued on
//! every `Busy`/`Stall` — a persistent kernel's idle backoff is just a timer
//! event like any other — so a round costs O(ready warps · log W) instead of
//! a scan over every resident warp, and rounds fire only at warp wake times:
//! device events (`next_event_time`) no longer force empty rounds, because a
//! discrete-event device advanced straight to the next warp wake produces the
//! same completions it would have produced stepwise. The pre-refactor
//! scheduler is kept as [`EngineSched::FullScan`] for equivalence tests and
//! wall-time comparisons; both schedulers step the same warps at the same
//! simulated times in the same order, so reports are bit-identical — only
//! `rounds` (and wall time) differ.
//!
//! The engine also watches for livelock: if no warp makes forward progress
//! (`Busy` or `Done`) for a configurable window while kernels are still
//! incomplete, it stops and flags the run as deadlocked — this is how the
//! repository demonstrates the queue deadlock of paper §2.3.1 on the
//! synchronous baseline, and its absence under AGILE.

use crate::config::GpuConfig;
use crate::kernel::{occupancy, KernelFactory, KernelId, LaunchConfig, WarpCtx, WarpId, WarpStep};
use crate::sm::{ResidentWarp, SmState};
use agile_sim::{Cycles, SimClock};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which scheduling loop [`Engine::run`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EngineSched {
    /// Min-heap ready-queue on `ready_at`: rounds fire only at warp wake
    /// times and step only the warps that are due. The default.
    #[default]
    EventQueue,
    /// The pre-ready-queue scheduler: every round scans every resident warp
    /// and wakes at every device event. Kept for equivalence tests and
    /// wall-time comparisons; behaviourally identical, just O(warps)/round.
    FullScan,
}

/// Engine-level instruments (the `agile_engine_*` metric family), bound once
/// from a registry. The scheduling loops accumulate into plain engine fields
/// and flush to these atomics only every few thousand rounds (and at run
/// end), so the hot loop never touches the registry — windowed series see
/// engine counters at that flush granularity.
pub struct EngineMetrics {
    rounds: agile_metrics::Counter,
    warp_steps: agile_metrics::Counter,
    stale_wakes: agile_metrics::Counter,
    ready_high_water: agile_metrics::Gauge,
}

impl EngineMetrics {
    /// Register (or reuse) the engine instruments in `registry`.
    pub fn bind(registry: &std::sync::Arc<agile_metrics::MetricsRegistry>) -> Self {
        use agile_metrics::Labels;
        EngineMetrics {
            rounds: registry.counter("agile_engine_rounds_total", Labels::NONE),
            warp_steps: registry.counter("agile_engine_warp_steps_total", Labels::NONE),
            stale_wakes: registry.counter("agile_engine_stale_wakes_total", Labels::NONE),
            ready_high_water: registry.gauge("agile_engine_ready_queue_high_water", Labels::NONE),
        }
    }
}

/// An external device co-simulated with the GPU (in practice: the SSD array).
pub trait ExternalDevice {
    /// Advance the device's internal state to time `now`.
    fn advance_to(&mut self, now: Cycles);
    /// Earliest pending internal event, if any.
    fn next_event_time(&mut self) -> Option<Cycles>;
    /// True when the device has no in-flight work.
    fn quiescent(&self) -> bool;
}

/// Per-kernel execution summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelReport {
    /// Kernel name (from the factory).
    pub name: String,
    /// Kernel id.
    pub id: u32,
    /// Total warps executed.
    pub warps: u64,
    /// Sum of busy cycles across warps.
    pub busy_cycles: u64,
    /// Sum of stall cycles across warps.
    pub stall_cycles: u64,
    /// Total `step` invocations.
    pub steps: u64,
    /// Time the last (non-persistent) block of the kernel retired; zero for
    /// persistent kernels that were still running when the engine stopped.
    pub completed_at: u64,
    /// Whether the kernel was launched persistent.
    pub persistent: bool,
}

/// Result of an [`Engine::run`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Simulated end-to-end time (cycles) from launch to completion of all
    /// non-persistent kernels.
    pub elapsed: Cycles,
    /// The same, in seconds at the configured clock.
    pub elapsed_secs: f64,
    /// Per-kernel summaries, in launch order.
    pub kernels: Vec<KernelReport>,
    /// True when the engine detected a lack of forward progress (deadlock /
    /// livelock) and aborted the run.
    pub deadlocked: bool,
    /// Number of engine scheduling rounds executed.
    pub rounds: u64,
}

impl ExecutionReport {
    /// Report for the kernel with the given name, if present.
    pub fn kernel(&self, name: &str) -> Option<&KernelReport> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

struct KernelInstance {
    id: KernelId,
    name: String,
    launch: LaunchConfig,
    factory: Box<dyn KernelFactory>,
    blocks_retired: u32,
    completed_at: Option<Cycles>,
    // accumulated stats
    warps: u64,
    busy: Cycles,
    stall: Cycles,
    steps: u64,
}

impl KernelInstance {
    fn complete(&self) -> bool {
        self.blocks_retired == self.launch.grid_dim
    }
}

/// The GPU + devices co-simulation engine.
pub struct Engine {
    gpu: GpuConfig,
    clock: SimClock,
    sms: Vec<SmState>,
    kernels: Vec<KernelInstance>,
    devices: Vec<Box<dyn ExternalDevice>>,
    /// Pending (kernel_idx, block_idx) waiting for SM space, FIFO.
    dispatch_queue: std::collections::VecDeque<(usize, u32)>,
    /// Window without forward progress after which the run is declared
    /// deadlocked.
    deadlock_window: Cycles,
    /// Hard wall on simulated time (safety net for tests).
    max_cycles: Cycles,
    rounds: u64,
    /// Scheduling loop selector.
    sched: EngineSched,
    /// The ready-queue: one `(ready_at, sm, warp-slot)` entry per live warp.
    /// Rebuilt at the start of every event-driven run (warp slots are stable
    /// within a run because the event loop never compacts the SM warp lists).
    ready: BinaryHeap<Reverse<(u64, usize, usize)>>,
    /// Optional engine instruments (`agile_engine_*`).
    metrics: Option<EngineMetrics>,
    /// Warp steps / stale wakes / ready-queue high water accumulated in
    /// plain fields; [`Engine::flush_metrics`] mirrors them into the
    /// registry on a coarse cadence.
    m_steps: u64,
    m_stale: u64,
    m_ready_hw: u64,
    /// (rounds, steps, stale) already flushed to the instruments.
    m_flushed: (u64, u64, u64),
}

impl Engine {
    /// Create an engine for the given GPU.
    pub fn new(gpu: GpuConfig) -> Self {
        let clock = SimClock::new(gpu.clock_ghz);
        let sms = (0..gpu.num_sms).map(SmState::new).collect();
        Engine {
            gpu,
            clock,
            sms,
            kernels: Vec::new(),
            devices: Vec::new(),
            dispatch_queue: std::collections::VecDeque::new(),
            deadlock_window: Cycles(50_000_000),
            max_cycles: Cycles(u64::MAX / 4),
            rounds: 0,
            sched: EngineSched::default(),
            ready: BinaryHeap::new(),
            metrics: None,
            m_steps: 0,
            m_stale: 0,
            m_ready_hw: 0,
            m_flushed: (0, 0, 0),
        }
    }

    /// Mirror the accumulated engine counts into the bound instruments
    /// (no-op without metrics). Called every few thousand rounds and at run
    /// end — the scheduling hot loops never touch an atomic.
    fn flush_metrics(&mut self) {
        if let Some(m) = &self.metrics {
            let (rounds, steps, stale) = self.m_flushed;
            m.rounds.add(self.rounds - rounds);
            m.warp_steps.add(self.m_steps - steps);
            m.stale_wakes.add(self.m_stale - stale);
            m.ready_high_water.record_max(self.m_ready_hw);
            self.m_flushed = (self.rounds, self.m_steps, self.m_stale);
        }
    }

    /// Bind engine instruments. Scheduling is unaffected — the loops only
    /// mirror counts they already track into the registry.
    pub fn set_metrics(&mut self, metrics: EngineMetrics) {
        self.metrics = Some(metrics);
    }

    /// Select the scheduling loop (default: [`EngineSched::EventQueue`]).
    /// May be switched between runs; both schedulers produce bit-identical
    /// execution, only `rounds` and wall time differ.
    pub fn set_scheduler(&mut self, sched: EngineSched) {
        self.sched = sched;
    }

    /// The active scheduling loop.
    pub fn scheduler(&self) -> EngineSched {
        self.sched
    }

    /// The GPU configuration.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        self.clock.now()
    }

    /// Override the no-progress window used for deadlock detection.
    pub fn set_deadlock_window(&mut self, window: Cycles) {
        self.deadlock_window = window;
    }

    /// Override the hard limit on simulated cycles.
    pub fn set_max_cycles(&mut self, max: Cycles) {
        self.max_cycles = max;
    }

    /// Attach an external device (SSD array). Devices are advanced in the
    /// order they were added.
    pub fn add_device(&mut self, dev: Box<dyn ExternalDevice>) {
        self.devices.push(dev);
    }

    /// Launch a kernel; its blocks enter the dispatch queue immediately.
    pub fn launch(&mut self, launch: LaunchConfig, factory: Box<dyn KernelFactory>) -> KernelId {
        assert!(launch.grid_dim > 0, "grid must contain at least one block");
        assert!(
            launch.block_dim.is_multiple_of(self.gpu.warp_size) && launch.block_dim > 0,
            "block_dim must be a positive warp-size multiple"
        );
        // Validate the launch fits the device at all.
        let occ = occupancy(&self.gpu, &launch);
        assert!(occ > 0, "kernel footprint too large for one SM");
        let id = KernelId(self.kernels.len() as u32);
        let idx = self.kernels.len();
        self.kernels.push(KernelInstance {
            id,
            name: factory.name().to_string(),
            launch,
            factory,
            blocks_retired: 0,
            completed_at: None,
            warps: 0,
            busy: Cycles::ZERO,
            stall: Cycles::ZERO,
            steps: 0,
        });
        let grid = self.kernels[idx].launch.grid_dim;
        for b in 0..grid {
            self.dispatch_queue.push_back((idx, b));
        }
        self.fill_sms();
        id
    }

    /// Place as many pending blocks as the SMs can hold.
    fn fill_sms(&mut self) {
        // Round-robin over SMs for each pending block, preserving FIFO order
        // per the hardware's global block scheduler.
        let mut made_progress = true;
        while made_progress {
            made_progress = false;
            let Some(&(kidx, block_idx)) = self.dispatch_queue.front() else {
                break;
            };
            let (warps, regs, smem) = {
                let k = &self.kernels[kidx];
                (
                    k.launch.warps_per_block(&self.gpu),
                    k.launch.registers_per_thread * k.launch.block_dim,
                    k.launch.shared_mem_per_block,
                )
            };
            // Choose the least-loaded SM that can take the block.
            let candidate = self
                .sms
                .iter()
                .enumerate()
                .filter(|(_, sm)| sm.can_place(&self.gpu, warps, regs, smem))
                .min_by_key(|(_, sm)| sm.used_warps)
                .map(|(i, _)| i);
            if let Some(sm_idx) = candidate {
                self.dispatch_queue.pop_front();
                self.place_block(sm_idx, kidx, block_idx, warps, regs, smem);
                made_progress = true;
            }
        }
    }

    fn place_block(
        &mut self,
        sm_idx: usize,
        kidx: usize,
        block_idx: u32,
        warps: u32,
        regs: u32,
        smem: u32,
    ) {
        let slot = self.sms[sm_idx].place_block(kidx, block_idx, warps, regs, smem);
        let kernel_id = self.kernels[kidx].id;
        for w in 0..warps {
            let state = self.kernels[kidx].factory.create_warp(block_idx, w);
            self.kernels[kidx].warps += 1;
            self.sms[sm_idx].warps.push(ResidentWarp {
                id: WarpId {
                    kernel: kernel_id,
                    block: block_idx,
                    warp: w,
                },
                kernel_idx: kidx,
                block_slot: slot,
                state,
                ready_at: self.clock.now(),
                done: false,
                busy: Cycles::ZERO,
                stall: Cycles::ZERO,
                steps: 0,
            });
            // Enter the warp into the ready-queue (a placement mid-run wakes
            // at the next visited time point; run entry rebuilds the heap
            // anyway, so pre-run launches are covered either way).
            let widx = self.sms[sm_idx].warps.len() - 1;
            self.ready
                .push(Reverse((self.clock.now().raw(), sm_idx, widx)));
        }
    }

    fn all_user_kernels_complete(&self) -> bool {
        self.kernels
            .iter()
            .filter(|k| !k.launch.persistent)
            .all(|k| k.complete())
    }

    /// Run until every non-persistent kernel has completed (or until deadlock
    /// / the cycle limit is hit) and return the execution report.
    pub fn run(&mut self) -> ExecutionReport {
        match self.sched {
            EngineSched::EventQueue => self.run_event_queue(),
            EngineSched::FullScan => self.run_full_scan(),
        }
    }

    /// Step one warp at `now`, updating warp/kernel accounting. Returns the
    /// warp's next wake time (`None` once it retired) and whether the step
    /// counted as forward progress. Shared by both schedulers so they cannot
    /// drift behaviourally.
    fn step_warp(
        &mut self,
        sm_idx: usize,
        widx: usize,
        now: Cycles,
        retired_blocks: &mut Vec<(usize, usize)>,
    ) -> (Option<Cycles>, bool) {
        let sm = &mut self.sms[sm_idx];
        let w = &mut sm.warps[widx];
        let ctx = WarpCtx {
            now,
            warp: w.id,
            lanes: self.gpu.warp_size,
            clock_ghz: self.gpu.clock_ghz,
        };
        w.steps += 1;
        self.kernels[w.kernel_idx].steps += 1;
        match w.state.step(&ctx) {
            WarpStep::Busy(c) => {
                let c = c.max(Cycles(1));
                w.ready_at = now + c;
                w.busy += c;
                self.kernels[w.kernel_idx].busy += c;
                (Some(w.ready_at), true)
            }
            WarpStep::Stall { retry_after } => {
                let r = retry_after.max(Cycles(1));
                w.ready_at = now + r;
                w.stall += r;
                self.kernels[w.kernel_idx].stall += r;
                (Some(w.ready_at), false)
            }
            WarpStep::Done => {
                w.done = true;
                let slot = w.block_slot;
                let kidx = w.kernel_idx;
                if sm.warp_retired(slot) {
                    retired_blocks.push((sm_idx, slot));
                    self.kernels[kidx].blocks_retired += 1;
                    if self.kernels[kidx].complete() {
                        self.kernels[kidx].completed_at = Some(now);
                    }
                }
                (None, true)
            }
        }
    }

    /// The event-driven scheduler: warps wake out of the ready-queue, rounds
    /// fire only at warp wake times, and device state is pulled forward
    /// lazily — discrete-event devices produce identical completions whether
    /// advanced stepwise or straight to the next warp wake, so skipping the
    /// device-only rounds changes `rounds`/wall time but not behaviour.
    fn run_event_queue(&mut self) -> ExecutionReport {
        let start = self.clock.now();
        let mut last_progress = self.clock.now();
        let mut deadlocked = false;

        // Drop retired warps now, while it is safe: mid-run the event loop
        // never compacts (heap entries index into the warp lists), so
        // repeated runs on one engine would otherwise accumulate dead
        // entries from every block ever launched.
        for sm in &mut self.sms {
            sm.compact();
        }
        // Rebuild the queue from the live warps: `launch()` may have placed
        // blocks since the last run, the compaction above shifted slots, and
        // a previous `FullScan` run does not maintain the heap.
        self.ready.clear();
        for (sm_idx, sm) in self.sms.iter().enumerate() {
            for (widx, w) in sm.warps.iter().enumerate() {
                if !w.done {
                    self.ready.push(Reverse((w.ready_at.raw(), sm_idx, widx)));
                }
            }
        }

        while !self.all_user_kernels_complete() {
            self.rounds += 1;
            let now = self.clock.now();
            let depth = self.ready.len() as u64;
            if depth > self.m_ready_hw {
                self.m_ready_hw = depth;
            }

            // 1. Let devices catch up so completions are visible to warps.
            for dev in &mut self.devices {
                dev.advance_to(now);
            }

            // 2. Pop every warp that is due and step the batch in SM/slot
            //    order — the exact order the scan scheduler visits warps, so
            //    equal-time steps interleave identically.
            let mut batch: Vec<(usize, usize)> = Vec::new();
            while let Some(&Reverse((t, sm_idx, widx))) = self.ready.peek() {
                if t > now.raw() {
                    break;
                }
                self.ready.pop();
                batch.push((sm_idx, widx));
            }
            batch.sort_unstable();

            let mut progressed = false;
            let mut retired_blocks: Vec<(usize, usize)> = Vec::new(); // (sm, slot)
            let (mut steps, mut stale) = (0u64, 0u64);
            for (sm_idx, widx) in batch {
                if self.sms[sm_idx].warps[widx].done {
                    stale += 1;
                    continue;
                }
                steps += 1;
                let (wake, progress) = self.step_warp(sm_idx, widx, now, &mut retired_blocks);
                if let Some(at) = wake {
                    self.ready.push(Reverse((at.raw(), sm_idx, widx)));
                }
                progressed |= progress;
            }
            self.m_steps += steps;
            self.m_stale += stale;
            if self.rounds & 0xFFF == 0 {
                self.flush_metrics();
            }

            // 3. Place pending blocks freed capacity admits. The event loop
            //    never compacts the warp lists (heap entries index into
            //    them); `place_block` enqueues the new warps at `now`.
            if !retired_blocks.is_empty() {
                self.fill_sms();
            }

            if progressed {
                last_progress = now;
            } else if now.saturating_sub(last_progress) > self.deadlock_window {
                deadlocked = true;
                break;
            }

            if self.all_user_kernels_complete() {
                break;
            }

            // 4. Advance to the next warp wake. Entries still at ≤ now are
            //    warps placed this round: like the scan scheduler, they step
            //    at the next *visited* time point, which then must also
            //    consider device events (the scan scheduler would have woken
            //    there).
            let mut placed_now: Vec<(u64, usize, usize)> = Vec::new();
            while let Some(&Reverse(e)) = self.ready.peek() {
                if e.0 > now.raw() {
                    break;
                }
                self.ready.pop();
                placed_now.push(e);
            }
            let next_warp = self.ready.peek().map(|Reverse((t, _, _))| Cycles(*t));
            let need_dev_wake = !placed_now.is_empty() || next_warp.is_none();
            for e in placed_now {
                self.ready.push(Reverse(e));
            }
            let next_dev = if need_dev_wake {
                self.devices
                    .iter_mut()
                    .filter_map(|d| d.next_event_time())
                    .filter(|&t| t > now)
                    .min()
            } else {
                None
            };
            let next = match (next_warp, next_dev) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => now + Cycles(1),
            };
            if next <= now {
                self.clock.advance(Cycles(1));
            } else {
                self.clock.advance_to(next);
            }
            if self.clock.now() > self.max_cycles {
                deadlocked = true;
                break;
            }
        }

        self.finish_run(start, deadlocked)
    }

    /// The pre-ready-queue scheduler: every round scans every resident warp
    /// and the clock wakes at every device event. Behaviourally identical to
    /// [`Engine::run_event_queue`]; kept for equivalence tests and wall-time
    /// comparisons.
    fn run_full_scan(&mut self) -> ExecutionReport {
        // The scan does not maintain the heap; drop stale entries so they do
        // not accumulate across runs.
        self.ready.clear();
        let start = self.clock.now();
        let mut last_progress = self.clock.now();
        let mut deadlocked = false;

        while !self.all_user_kernels_complete() {
            self.rounds += 1;
            let now = self.clock.now();

            // 1. Let devices catch up so completions are visible to warps.
            for dev in &mut self.devices {
                dev.advance_to(now);
            }

            // 2. Step every ready warp once.
            let mut progressed = false;
            let mut retired_blocks: Vec<(usize, usize)> = Vec::new(); // (sm, slot)
            let mut steps = 0u64;
            for sm_idx in 0..self.sms.len() {
                for widx in 0..self.sms[sm_idx].warps.len() {
                    {
                        let w = &self.sms[sm_idx].warps[widx];
                        if w.done || w.ready_at > now {
                            continue;
                        }
                    }
                    steps += 1;
                    let (_, progress) = self.step_warp(sm_idx, widx, now, &mut retired_blocks);
                    progressed |= progress;
                }
            }
            self.m_steps += steps;
            if self.rounds & 0xFFF == 0 {
                self.flush_metrics();
            }

            // 3. Clean up retired blocks and place pending ones.
            if !retired_blocks.is_empty() {
                for sm in &mut self.sms {
                    sm.compact();
                }
                self.fill_sms();
                self.ready.clear();
            }

            if progressed {
                last_progress = now;
            } else if now.saturating_sub(last_progress) > self.deadlock_window {
                deadlocked = true;
                break;
            }

            if self.all_user_kernels_complete() {
                break;
            }

            // 4. Advance time to the next interesting moment.
            let next_warp = self
                .sms
                .iter()
                .flat_map(|sm| sm.warps.iter())
                .filter(|w| !w.done)
                .map(|w| w.ready_at)
                .filter(|&t| t > now)
                .min();
            let next_dev = self
                .devices
                .iter_mut()
                .filter_map(|d| d.next_event_time())
                .filter(|&t| t > now)
                .min();
            let next = match (next_warp, next_dev) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                // Nothing scheduled: either we are done (checked above) or
                // every warp is ready right now — re-run immediately with a
                // minimal time bump to guarantee forward motion of the clock.
                (None, None) => now + Cycles(1),
            };
            if next <= now {
                self.clock.advance(Cycles(1));
            } else {
                self.clock.advance_to(next);
            }
            if self.clock.now() > self.max_cycles {
                deadlocked = true;
                break;
            }
        }

        self.finish_run(start, deadlocked)
    }

    /// Final device sync + report assembly shared by both schedulers.
    fn finish_run(&mut self, start: Cycles, deadlocked: bool) -> ExecutionReport {
        // Final device sync so statistics reflect everything visible at the end.
        let now = self.clock.now();
        for dev in &mut self.devices {
            dev.advance_to(now);
        }
        self.flush_metrics();

        let elapsed = self.clock.now() - start;
        ExecutionReport {
            elapsed,
            elapsed_secs: elapsed.to_secs(self.gpu.clock_ghz),
            kernels: self
                .kernels
                .iter()
                .map(|k| KernelReport {
                    name: k.name.clone(),
                    id: k.id.0,
                    warps: k.warps,
                    busy_cycles: k.busy.raw(),
                    stall_cycles: k.stall.raw(),
                    steps: k.steps,
                    completed_at: k.completed_at.map(|c| c.raw()).unwrap_or(0),
                    persistent: k.launch.persistent,
                })
                .collect(),
            deadlocked,
            rounds: self.rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ComputeOnlyKernel;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn compute_only_kernel_time_matches_work() {
        let mut eng = Engine::new(GpuConfig::tiny(2));
        // 4 blocks × 2 warps, each warp busy for 1000 cycles in 2 steps.
        eng.launch(
            LaunchConfig::new(4, 64).with_registers(16),
            Box::new(ComputeOnlyKernel {
                cycles_per_warp: Cycles(1000),
                steps: 2,
            }),
        );
        let report = eng.run();
        assert!(!report.deadlocked);
        // Everything fits concurrently, so elapsed ≈ 1000 cycles (+ rounding).
        assert!(
            report.elapsed.raw() >= 1000 && report.elapsed.raw() < 1100,
            "elapsed {}",
            report.elapsed
        );
        let k = &report.kernels[0];
        assert_eq!(k.warps, 8);
        assert_eq!(k.busy_cycles, 8 * 1000);
    }

    #[test]
    fn waves_serialize_when_grid_exceeds_capacity() {
        // tiny(1): at most 4 resident blocks per SM. Launch 16 single-warp
        // blocks of 1000 cycles: needs four waves ⇒ elapsed ≈ 4000 cycles.
        let mut eng = Engine::new(GpuConfig::tiny(1));
        eng.launch(
            LaunchConfig::new(16, 32).with_registers(16),
            Box::new(ComputeOnlyKernel {
                cycles_per_warp: Cycles(1000),
                steps: 1,
            }),
        );
        let report = eng.run();
        assert!(!report.deadlocked);
        assert!(
            report.elapsed.raw() >= 4000 && report.elapsed.raw() < 4400,
            "elapsed {}",
            report.elapsed
        );
    }

    /// A kernel whose warps wait for an external "device" to flip a flag.
    struct WaitingKernel {
        flag: Arc<AtomicU64>,
    }
    struct WaitingWarp {
        flag: Arc<AtomicU64>,
        issued: bool,
    }
    impl crate::kernel::WarpKernel for WaitingWarp {
        fn step(&mut self, _ctx: &WarpCtx) -> WarpStep {
            if !self.issued {
                self.issued = true;
                return WarpStep::Busy(Cycles(10));
            }
            if self.flag.load(Ordering::Acquire) == 1 {
                WarpStep::Done
            } else {
                WarpStep::Stall {
                    retry_after: Cycles(100),
                }
            }
        }
    }
    impl KernelFactory for WaitingKernel {
        fn create_warp(&self, _b: u32, _w: u32) -> Box<dyn crate::kernel::WarpKernel> {
            Box::new(WaitingWarp {
                flag: Arc::clone(&self.flag),
                issued: false,
            })
        }
        fn name(&self) -> &str {
            "waiting"
        }
    }

    /// Device that flips the flag at a fixed time.
    struct FlagDevice {
        flag: Arc<AtomicU64>,
        at: Cycles,
        fired: bool,
    }
    impl ExternalDevice for FlagDevice {
        fn advance_to(&mut self, now: Cycles) {
            if !self.fired && now >= self.at {
                self.flag.store(1, Ordering::Release);
                self.fired = true;
            }
        }
        fn next_event_time(&mut self) -> Option<Cycles> {
            (!self.fired).then_some(self.at)
        }
        fn quiescent(&self) -> bool {
            self.fired
        }
    }

    #[test]
    fn warps_wake_when_device_event_fires() {
        let flag = Arc::new(AtomicU64::new(0));
        let mut eng = Engine::new(GpuConfig::tiny(1));
        eng.add_device(Box::new(FlagDevice {
            flag: Arc::clone(&flag),
            at: Cycles(50_000),
            fired: false,
        }));
        eng.launch(
            LaunchConfig::new(2, 32).with_registers(16),
            Box::new(WaitingKernel { flag }),
        );
        let report = eng.run();
        assert!(!report.deadlocked);
        // Completion should land shortly after the device event.
        assert!(
            report.elapsed.raw() >= 50_000 && report.elapsed.raw() < 51_000,
            "elapsed {}",
            report.elapsed
        );
        let k = &report.kernels[0];
        assert!(k.stall_cycles > 0, "warps should have recorded stall time");
    }

    #[test]
    fn deadlock_is_detected_when_no_progress_is_possible() {
        // Flag never flips and there is no device: warps stall forever.
        let flag = Arc::new(AtomicU64::new(0));
        let mut eng = Engine::new(GpuConfig::tiny(1));
        eng.set_deadlock_window(Cycles(100_000));
        eng.launch(
            LaunchConfig::new(1, 32).with_registers(16),
            Box::new(WaitingKernel { flag }),
        );
        let report = eng.run();
        assert!(report.deadlocked);
    }

    #[test]
    fn persistent_kernel_does_not_gate_completion() {
        struct Forever;
        struct ForeverWarp;
        impl crate::kernel::WarpKernel for ForeverWarp {
            fn step(&mut self, _ctx: &WarpCtx) -> WarpStep {
                WarpStep::Busy(Cycles(500))
            }
        }
        impl KernelFactory for Forever {
            fn create_warp(&self, _b: u32, _w: u32) -> Box<dyn crate::kernel::WarpKernel> {
                Box::new(ForeverWarp)
            }
            fn name(&self) -> &str {
                "service"
            }
        }
        let mut eng = Engine::new(GpuConfig::tiny(2));
        eng.launch(
            LaunchConfig::new(1, 32).with_registers(16).persistent(),
            Box::new(Forever),
        );
        eng.launch(
            LaunchConfig::new(2, 32).with_registers(16),
            Box::new(ComputeOnlyKernel {
                cycles_per_warp: Cycles(2000),
                steps: 2,
            }),
        );
        let report = eng.run();
        assert!(!report.deadlocked);
        assert!(report.elapsed.raw() < 3000);
        let service = report.kernel("service").unwrap();
        assert!(service.persistent);
        assert_eq!(service.completed_at, 0);
        assert!(service.busy_cycles > 0);
    }

    #[test]
    #[should_panic(expected = "footprint too large")]
    fn launch_rejects_impossible_footprint() {
        let mut eng = Engine::new(GpuConfig::tiny(1));
        eng.launch(
            LaunchConfig::new(1, 256).with_registers(255),
            Box::new(ComputeOnlyKernel {
                cycles_per_warp: Cycles(10),
                steps: 1,
            }),
        );
    }

    #[test]
    fn schedulers_are_equivalent_and_event_queue_visits_fewer_rounds() {
        // A stalling kernel plus a periodically-firing device: the scan
        // wakes at every device event, the event queue only at warp wakes —
        // identical execution, fewer rounds.
        struct Ticker {
            flag: Arc<AtomicU64>,
            at: Cycles,
            fired: u32,
        }
        impl ExternalDevice for Ticker {
            fn advance_to(&mut self, now: Cycles) {
                while self.fired < 100 && now >= self.at {
                    self.fired += 1;
                    self.at += Cycles(313);
                    if self.fired == 100 {
                        self.flag.store(1, Ordering::Release);
                    }
                }
            }
            fn next_event_time(&mut self) -> Option<Cycles> {
                (self.fired < 100).then_some(self.at)
            }
            fn quiescent(&self) -> bool {
                self.fired >= 100
            }
        }
        let run = |sched: EngineSched| {
            let flag = Arc::new(AtomicU64::new(0));
            let mut eng = Engine::new(GpuConfig::tiny(2));
            eng.set_scheduler(sched);
            eng.add_device(Box::new(Ticker {
                flag: Arc::clone(&flag),
                at: Cycles(100),
                fired: 0,
            }));
            eng.launch(
                LaunchConfig::new(2, 64).with_registers(16),
                Box::new(WaitingKernel { flag }),
            );
            eng.run()
        };
        let event = run(EngineSched::EventQueue);
        let scan = run(EngineSched::FullScan);
        assert!(!event.deadlocked && !scan.deadlocked);
        assert_eq!(event.elapsed, scan.elapsed, "bit-identical timing");
        assert_eq!(event.kernels[0].steps, scan.kernels[0].steps);
        assert_eq!(event.kernels[0].busy_cycles, scan.kernels[0].busy_cycles);
        assert_eq!(event.kernels[0].stall_cycles, scan.kernels[0].stall_cycles);
        assert!(
            event.rounds < scan.rounds,
            "the event queue must skip device-only rounds ({} vs {})",
            event.rounds,
            scan.rounds
        );
    }

    #[test]
    fn full_scan_handles_waves_like_the_event_queue() {
        for sched in [EngineSched::EventQueue, EngineSched::FullScan] {
            let mut eng = Engine::new(GpuConfig::tiny(1));
            eng.set_scheduler(sched);
            eng.launch(
                LaunchConfig::new(16, 32).with_registers(16),
                Box::new(ComputeOnlyKernel {
                    cycles_per_warp: Cycles(1000),
                    steps: 1,
                }),
            );
            let report = eng.run();
            assert!(!report.deadlocked);
            assert!(
                report.elapsed.raw() >= 4000 && report.elapsed.raw() < 4400,
                "{sched:?} elapsed {}",
                report.elapsed
            );
        }
    }

    #[test]
    fn report_lookup_by_name() {
        let mut eng = Engine::new(GpuConfig::tiny(1));
        eng.launch(
            LaunchConfig::new(1, 32).with_registers(16),
            Box::new(ComputeOnlyKernel {
                cycles_per_warp: Cycles(10),
                steps: 1,
            }),
        );
        let report = eng.run();
        assert!(report.kernel("compute-only").is_some());
        assert!(report.kernel("missing").is_none());
    }
}
