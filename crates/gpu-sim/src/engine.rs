//! The co-simulation engine.
//!
//! [`Engine`] owns the GPU state (SMs with resident warps), the launched
//! kernels, and any external latency-bearing devices (the SSD array, wrapped
//! behind [`ExternalDevice`]). `run()` advances virtual time event by event:
//!
//! 1. all external devices are advanced to the current time so their
//!    completions (DMA writes, CQ entries) become visible to warps;
//! 2. every resident warp whose wake time has arrived is stepped once;
//! 3. finished blocks release their SM resources and pending blocks from the
//!    dispatch queue are placed (wave scheduling);
//! 4. the clock jumps to the next interesting time.
//!
//! Scheduling is **event-driven** ([`EngineSched::EventQueue`], the default):
//! warps live in a min-heap ready-queue keyed on `ready_at`, re-enqueued on
//! every `Busy`/`Stall` — a persistent kernel's idle backoff is just a timer
//! event like any other — so a round costs O(ready warps · log W) instead of
//! a scan over every resident warp, and rounds fire only at warp wake times:
//! device events (`next_event_time`) no longer force empty rounds, because a
//! discrete-event device advanced straight to the next warp wake produces the
//! same completions it would have produced stepwise. The pre-refactor
//! scheduler is kept as [`EngineSched::FullScan`] for equivalence tests and
//! wall-time comparisons; both schedulers step the same warps at the same
//! simulated times in the same order, so reports are bit-identical — only
//! `rounds` (and wall time) differ.
//!
//! # Determinism contract: device order
//!
//! External devices come in two tiers. **Shard devices**
//! ([`Engine::add_shard_device`]) are the shard-affine partitions of the
//! storage topology: mutually independent between epoch boundaries, so they
//! may be advanced concurrently. **Passive devices** ([`Engine::add_device`])
//! observe state the shard devices and warps produce (metrics samplers,
//! feedback controllers) and always run on the coordinating thread. Every
//! scheduler advances shard devices first, in the order they were added, then
//! drains the [`EpochMailbox`]es in registration order, then advances passive
//! devices in the order *they* were added. That combined order is part of the
//! determinism contract — reordering either list reorders device side effects
//! (trace records, metric windows, control decisions) and breaks bit-identity
//! with the golden traces. `add_shard_device` therefore `debug_assert`s that
//! no passive device was registered yet.
//!
//! # Parallel shards: the two-phase epoch
//!
//! [`EngineSched::ParallelShards(n)`](EngineSched::ParallelShards) runs each
//! epoch in two worker phases while the warp scheduler (the exact event-queue
//! loop) stays on the coordinating thread. Virtual time advances in lockstep
//! epochs through a seqlock-style barrier:
//!
//! - **Phase A — devices.** The coordinator publishes the horizon `now`;
//!   every worker advances its fixed bucket of shard devices (device *i* is
//!   owned by worker *i mod n* for the whole run, preserving add-order inside
//!   each bucket) and reports back. Hosts register one shard device per
//!   *storage device* (device-affine partitioning), so the workers scale with
//!   fleet size rather than lock-shard count — a `shards=1` topology still
//!   fans its SSDs out across every worker. Shard-lock state is only ever
//!   touched from the coordinator's submit paths, so lock advancement stays
//!   single-writer by construction.
//! - **Phase B — warps.** The due warps whose kernels are
//!   [`plan-capable`](crate::kernel::WarpKernel::parallel_capable) are handed
//!   to the workers in SM-affine partitions (warp of SM *s* plans on worker
//!   *s mod n*); each worker runs the read-mostly
//!   [`plan_step`](crate::kernel::WarpKernel::plan_step) prefix of its warps'
//!   steps concurrently while the coordinator is parked at the barrier.
//!
//! The coordinator then drains the epoch mailboxes — per-partition buffers of
//! cross-thread effects such as trace records — in fixed registration order,
//! advances the passive devices, and *commits* every due warp in canonical
//! `(sm, slot)` order: planned warps finalise through
//! [`commit_step`](crate::kernel::WarpKernel::commit_step), everything else
//! steps serially exactly as the sequential scheduler would. A serial step
//! marks the epoch dirty (`epoch_clean = false`), and every later commit must
//! re-validate its snapshot — snapshot, validate, retry, with the serial
//! re-derivation as the always-correct slow path. When the next wake time
//! must consider device events, the same barrier collects each partition's
//! earliest pending event and the horizon is their minimum. Because every
//! worker only touches its own partition's state between barriers, every
//! cross-thread effect is committed in canonical order at the epoch boundary,
//! and plans only observe state that serial-class steps mutate (which dirties
//! the epoch), the merged event order — and with it every stat, trace and
//! replay summary — is bit-identical to [`EngineSched::EventQueue`]
//! regardless of thread count; `ParallelShards(1)` *is* the sequential event
//! queue, bit for bit.
//!
//! The engine also watches for livelock: if no warp makes forward progress
//! (`Busy` or `Done`) for a configurable window while kernels are still
//! incomplete, it stops and flags the run as deadlocked — this is how the
//! repository demonstrates the queue deadlock of paper §2.3.1 on the
//! synchronous baseline, and its absence under AGILE.

use crate::config::GpuConfig;
use crate::kernel::{
    occupancy, KernelFactory, KernelId, LaunchConfig, WarpCtx, WarpId, WarpKernel, WarpStep,
};
use crate::sm::{ResidentWarp, SmState};
use agile_sim::{Cycles, SimClock};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicU8, AtomicUsize, Ordering};

/// Which scheduling loop [`Engine::run`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EngineSched {
    /// Min-heap ready-queue on `ready_at`: rounds fire only at warp wake
    /// times and step only the warps that are due. The default.
    #[default]
    EventQueue,
    /// The pre-ready-queue scheduler: every round scans every resident warp
    /// and wakes at every device event. Kept for equivalence tests and
    /// wall-time comparisons; behaviourally identical, just O(warps)/round.
    FullScan,
    /// The event-queue loop with shard devices advanced by up to `n` OS
    /// worker threads in lockstep epochs (see the module docs). Bit-identical
    /// to [`EngineSched::EventQueue`] for every `n`; `ParallelShards(1)` is
    /// the sequential scheduler itself.
    ParallelShards(usize),
}

/// Engine-level instruments (the `agile_engine_*` metric family), bound once
/// from a registry. The scheduling loops accumulate into plain engine fields
/// and flush to these atomics only every `metrics_flush_interval` rounds (and
/// at run end), so the hot loop never touches the registry — windowed series
/// see engine counters at that flush granularity.
pub struct EngineMetrics {
    registry: std::sync::Arc<agile_metrics::MetricsRegistry>,
    rounds: agile_metrics::Counter,
    warp_steps: agile_metrics::Counter,
    stale_wakes: agile_metrics::Counter,
    ready_high_water: agile_metrics::Gauge,
}

impl EngineMetrics {
    /// Register (or reuse) the engine instruments in `registry`.
    pub fn bind(registry: &std::sync::Arc<agile_metrics::MetricsRegistry>) -> Self {
        use agile_metrics::Labels;
        EngineMetrics {
            registry: std::sync::Arc::clone(registry),
            rounds: registry.counter("agile_engine_rounds_total", Labels::NONE),
            warp_steps: registry.counter("agile_engine_warp_steps_total", Labels::NONE),
            stale_wakes: registry.counter("agile_engine_stale_wakes_total", Labels::NONE),
            ready_high_water: registry.gauge("agile_engine_ready_queue_high_water", Labels::NONE),
        }
    }

    /// Emit the threaded-run instruments (`agile_engine_epoch_*` /
    /// `agile_engine_thread_*` / `agile_engine_phase_*` /
    /// `agile_engine_warp_partition_*`). Only called after a run that
    /// actually used worker threads — sequential runs never create these
    /// families, so metrics snapshots of unthreaded runs stay untouched.
    ///
    /// `phase_ns` is coordinator wall time per epoch phase (device advance,
    /// worker warp planning, commit walk) in nanoseconds — host cycles, not
    /// simulated ones; the `_cycles_total` suffix mirrors the naming of the
    /// epoch families. `partition_steps` counts the planned warp steps
    /// committed from each SM-affine worker partition (deterministic, tallied
    /// on the coordinator).
    #[allow(clippy::too_many_arguments)]
    fn note_parallel(
        &self,
        threads: u64,
        epochs: u64,
        syncs: u64,
        advances: &[u64],
        devs: &[u64],
        phase_ns: (u64, u64, u64),
        partition_steps: &[u64],
    ) {
        use agile_metrics::Labels;
        self.registry
            .counter("agile_engine_epoch_advances_total", Labels::NONE)
            .add(epochs);
        self.registry
            .counter("agile_engine_epoch_next_event_syncs_total", Labels::NONE)
            .add(syncs);
        self.registry
            .gauge("agile_engine_thread_count", Labels::NONE)
            .set(threads);
        let (device_ns, warp_ns, commit_ns) = phase_ns;
        self.registry
            .counter("agile_engine_phase_device_cycles_total", Labels::NONE)
            .add(device_ns);
        self.registry
            .counter("agile_engine_phase_warp_cycles_total", Labels::NONE)
            .add(warp_ns);
        self.registry
            .counter("agile_engine_phase_commit_cycles_total", Labels::NONE)
            .add(commit_ns);
        for (t, (&adv, &nd)) in advances.iter().zip(devs.iter()).enumerate() {
            self.registry
                .counter(
                    "agile_engine_thread_device_advances_total",
                    Labels::partition(t as u32),
                )
                .add(adv);
            self.registry
                .gauge("agile_engine_thread_devices", Labels::partition(t as u32))
                .set(nd);
        }
        for (t, &steps) in partition_steps.iter().enumerate() {
            self.registry
                .counter(
                    "agile_engine_warp_partition_steps_total",
                    Labels::partition(t as u32),
                )
                .add(steps);
        }
    }
}

/// An external device co-simulated with the GPU (in practice: the SSD array).
///
/// `Send` because shard devices migrate to worker threads under
/// [`EngineSched::ParallelShards`]; each device is only ever touched by one
/// thread at a time (its owning worker between barriers, the coordinator
/// otherwise), so no `Sync` is required.
pub trait ExternalDevice: Send {
    /// Advance the device's internal state to time `now`.
    fn advance_to(&mut self, now: Cycles);
    /// Earliest pending internal event, if any.
    fn next_event_time(&mut self) -> Option<Cycles>;
    /// True when the device has no in-flight work.
    fn quiescent(&self) -> bool;
}

/// A per-partition buffer of cross-shard effects (in practice: trace records
/// produced while a shard device advanced on a worker thread). The engine
/// drains every registered mailbox — in registration order, which the hosts
/// make shard order — right after the shard devices reach the epoch horizon
/// and before any passive device or warp runs, so buffered effects land in
/// exactly the order the sequential scheduler would have produced them.
pub trait EpochMailbox: Send + Sync {
    /// Flush the buffered effects downstream, preserving record order.
    fn drain(&self);
}

impl EpochMailbox for agile_sim::BufferedSink {
    fn drain(&self) {
        self.flush();
    }
}

/// Per-kernel execution summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelReport {
    /// Kernel name (from the factory).
    pub name: String,
    /// Kernel id.
    pub id: u32,
    /// Total warps executed.
    pub warps: u64,
    /// Sum of busy cycles across warps.
    pub busy_cycles: u64,
    /// Sum of stall cycles across warps.
    pub stall_cycles: u64,
    /// Total `step` invocations.
    pub steps: u64,
    /// Time the last (non-persistent) block of the kernel retired; zero for
    /// persistent kernels that were still running when the engine stopped.
    pub completed_at: u64,
    /// Whether the kernel was launched persistent.
    pub persistent: bool,
}

/// Result of an [`Engine::run`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Simulated end-to-end time (cycles) from launch to completion of all
    /// non-persistent kernels.
    pub elapsed: Cycles,
    /// The same, in seconds at the configured clock.
    pub elapsed_secs: f64,
    /// Per-kernel summaries, in launch order.
    pub kernels: Vec<KernelReport>,
    /// True when the engine detected a lack of forward progress (deadlock /
    /// livelock) and aborted the run.
    pub deadlocked: bool,
    /// Number of engine scheduling rounds executed.
    pub rounds: u64,
}

impl ExecutionReport {
    /// Report for the kernel with the given name, if present.
    pub fn kernel(&self, name: &str) -> Option<&KernelReport> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

struct KernelInstance {
    id: KernelId,
    name: String,
    launch: LaunchConfig,
    factory: Box<dyn KernelFactory>,
    blocks_retired: u32,
    completed_at: Option<Cycles>,
    // accumulated stats
    warps: u64,
    busy: Cycles,
    stall: Cycles,
    steps: u64,
}

impl KernelInstance {
    fn complete(&self) -> bool {
        self.blocks_retired == self.launch.grid_dim
    }
}

/// How a scheduling loop reaches the external shard devices: directly
/// ([`SeqDriver`]) or through the worker-thread barrier ([`ParDriver`]).
/// Both loops are written against this trait so the sequential and parallel
/// schedulers share one body and cannot drift behaviourally.
trait DeviceDriver {
    /// Advance every shard device to `now` (one lockstep epoch).
    fn advance_to(&mut self, now: Cycles);
    /// Earliest pending shard-device event strictly after `now`, if any.
    fn next_event_after(&mut self, now: Cycles) -> Option<Cycles>;
    /// True when the driver runs the phase-B plan window on worker threads.
    fn parallel_warps(&self) -> bool {
        false
    }
    /// Number of worker partitions (0: everything on the coordinator).
    fn workers(&self) -> usize {
        0
    }
    /// Run `plan_step` for every task on its SM-affine worker partition
    /// (worker `sm % workers`). No-op on the sequential driver.
    fn plan_warps(&mut self, _tasks: &mut [PlanTask], _now: Cycles) {}
}

/// In-thread driver: shard devices advanced in add order on the caller.
struct SeqDriver<'a> {
    devs: &'a mut [Box<dyn ExternalDevice>],
}

impl DeviceDriver for SeqDriver<'_> {
    fn advance_to(&mut self, now: Cycles) {
        for dev in self.devs.iter_mut() {
            dev.advance_to(now);
        }
    }

    fn next_event_after(&mut self, now: Cycles) -> Option<Cycles> {
        self.devs
            .iter_mut()
            .filter_map(|d| d.next_event_time())
            .filter(|&t| t > now)
            .min()
    }
}

const CMD_ADVANCE: u8 = 0;
const CMD_NEXT: u8 = 1;
const CMD_EXIT: u8 = 2;
const CMD_PLAN: u8 = 3;

/// Default for [`Engine::set_barrier_spin_limit`]: busy-spin this many
/// iterations before each further wait yields the CPU.
const DEFAULT_SPIN_LIMIT: u32 = 256;

/// One due, plan-capable warp published to the workers for the phase-B plan
/// window of an epoch. Built (and consumed) by the coordinator in canonical
/// `(sm, slot)` order; worker `sm % workers` owns the task during the window.
struct PlanTask {
    /// SM index: the partition key and the leading canonical-order key.
    sm: usize,
    /// Warp slot within the SM (the trailing canonical-order key).
    widx: usize,
    /// The warp's kernel state machine, borrowed raw from the SM table for
    /// exactly one plan window (see the safety notes at the `CMD_PLAN`
    /// handler in [`worker_loop`]).
    state: *mut dyn WarpKernel,
    /// The context `commit_step` will also receive (same `now`).
    ctx: WarpCtx,
    /// The owning worker's `plan_step` answer.
    planned: bool,
}

/// One worker's slot in the barrier, cache-line padded so the spin loops of
/// neighbouring workers do not false-share.
#[repr(align(64))]
struct WorkerCell {
    /// Last command sequence number this worker completed.
    done: AtomicU64,
    /// This worker's answer to `CMD_NEXT` (`u64::MAX` = no pending event).
    next: AtomicU64,
    /// Device advances executed by this worker (telemetry).
    advances: AtomicU64,
}

/// The coordinator↔worker barrier. Commands are published by storing `cmd`
/// and `now` and then bumping `seq` with `Release`; workers spin on `seq`
/// with `Acquire` (which makes the command payload visible *and* every
/// coordinator-side write before it — the warp steps of the previous epoch),
/// execute, and acknowledge by storing the sequence number into their `done`
/// cell with `Release`, which the coordinator's `Acquire` spin turns into
/// the matching happens-before edge back. Rounds are a few microseconds of
/// simulated work, so the barrier spins (`std::hint::spin_loop`) rather than
/// parking on an OS primitive; after a short bound the spin falls back to
/// `yield_now`, so an oversubscribed (or single-core) machine degrades to
/// context-switch cost instead of burning whole timeslices.
struct ParShared {
    seq: AtomicU64,
    cmd: AtomicU8,
    now: AtomicU64,
    /// Busy-spin bound before barrier waits fall back to `yield_now`
    /// ([`Engine::set_barrier_spin_limit`]).
    spin_limit: u32,
    /// Phase-B plan window: base pointer / length of the coordinator's
    /// `PlanTask` slice, published before a `CMD_PLAN` and cleared after the
    /// acks. Null outside a window.
    tasks: AtomicPtr<PlanTask>,
    tasks_len: AtomicUsize,
    cells: Vec<WorkerCell>,
}

impl ParShared {
    fn new(workers: usize, spin_limit: u32) -> Self {
        ParShared {
            seq: AtomicU64::new(0),
            cmd: AtomicU8::new(CMD_ADVANCE),
            now: AtomicU64::new(0),
            spin_limit,
            tasks: AtomicPtr::new(std::ptr::null_mut()),
            tasks_len: AtomicUsize::new(0),
            cells: (0..workers)
                .map(|_| WorkerCell {
                    done: AtomicU64::new(0),
                    next: AtomicU64::new(u64::MAX),
                    advances: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    fn issue(&self, cmd: u8, now: u64) {
        self.cmd.store(cmd, Ordering::Relaxed);
        self.now.store(now, Ordering::Relaxed);
        self.seq.fetch_add(1, Ordering::Release);
    }

    fn wait_all(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        for cell in &self.cells {
            let mut spins = 0u32;
            while cell.done.load(Ordering::Acquire) != s {
                if spins < self.spin_limit {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Barrier driver: one epoch per `advance_to`, one extra sync per
/// `next_event_after`, one plan window per epoch with ≥ 2 plan-capable
/// due warps.
struct ParDriver<'a> {
    shared: &'a ParShared,
    epochs: u64,
    next_syncs: u64,
}

impl DeviceDriver for ParDriver<'_> {
    fn advance_to(&mut self, now: Cycles) {
        self.epochs += 1;
        self.shared.issue(CMD_ADVANCE, now.raw());
        self.shared.wait_all();
    }

    fn next_event_after(&mut self, now: Cycles) -> Option<Cycles> {
        self.next_syncs += 1;
        self.shared.issue(CMD_NEXT, now.raw());
        self.shared.wait_all();
        let min = self
            .shared
            .cells
            .iter()
            .map(|c| c.next.load(Ordering::Relaxed))
            .min()
            .unwrap_or(u64::MAX);
        (min != u64::MAX).then_some(Cycles(min))
    }

    fn parallel_warps(&self) -> bool {
        true
    }

    fn workers(&self) -> usize {
        self.shared.cells.len()
    }

    fn plan_warps(&mut self, tasks: &mut [PlanTask], now: Cycles) {
        // Publish the slice, release the workers, park until every ack.
        // Safety contract (upheld by the `CMD_PLAN` handler in
        // `worker_loop`): between `issue` and the final ack the coordinator
        // does not touch `tasks`, and each element is accessed by exactly one
        // worker (`sm % workers`), so the hand-off is a transfer, not
        // sharing. The `Release` bump in `issue` makes the freshly written
        // tasks visible; the workers' `Release` acks (matched by the
        // `Acquire` spin in `wait_all`) make their `planned` answers and
        // kernel-state mutations visible back.
        self.shared
            .tasks
            .store(tasks.as_mut_ptr(), Ordering::Relaxed);
        self.shared.tasks_len.store(tasks.len(), Ordering::Relaxed);
        self.shared.issue(CMD_PLAN, now.raw());
        self.shared.wait_all();
        self.shared
            .tasks
            .store(std::ptr::null_mut(), Ordering::Relaxed);
        self.shared.tasks_len.store(0, Ordering::Relaxed);
    }
}

/// Publishes `CMD_EXIT` when dropped, so the workers are released even if
/// the coordinator's event loop panics (otherwise `thread::scope` would
/// deadlock joining workers that spin forever).
struct ExitGuard<'a> {
    shared: &'a ParShared,
}

impl Drop for ExitGuard<'_> {
    fn drop(&mut self) {
        self.shared.issue(CMD_EXIT, 0);
    }
}

/// The worker side of the barrier: execute each published command on this
/// worker's fixed bucket of shard devices, hand the bucket back on exit.
fn worker_loop<'a>(
    slot: usize,
    mut bucket: Vec<(usize, Box<dyn ExternalDevice>)>,
    shared: &'a ParShared,
) -> Vec<(usize, Box<dyn ExternalDevice>)> {
    let cell = &shared.cells[slot];
    let mut seen = 0u64;
    loop {
        let mut spins = 0u32;
        let mut seq = shared.seq.load(Ordering::Acquire);
        while seq == seen {
            if spins < shared.spin_limit {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
            seq = shared.seq.load(Ordering::Acquire);
        }
        seen = seq;
        match shared.cmd.load(Ordering::Relaxed) {
            CMD_ADVANCE => {
                let now = Cycles(shared.now.load(Ordering::Relaxed));
                for (_, dev) in bucket.iter_mut() {
                    dev.advance_to(now);
                }
                cell.advances.fetch_add(bucket.len() as u64, Ordering::Relaxed);
                cell.done.store(seq, Ordering::Release);
            }
            CMD_NEXT => {
                let now = Cycles(shared.now.load(Ordering::Relaxed));
                let min = bucket
                    .iter_mut()
                    .filter_map(|(_, d)| d.next_event_time())
                    .filter(|&t| t > now)
                    .map(|t| t.raw())
                    .min()
                    .unwrap_or(u64::MAX);
                cell.next.store(min, Ordering::Relaxed);
                cell.done.store(seq, Ordering::Release);
            }
            CMD_PLAN => {
                let base = shared.tasks.load(Ordering::Relaxed);
                let len = shared.tasks_len.load(Ordering::Relaxed);
                let workers = shared.cells.len();
                for i in 0..len {
                    // SAFETY: the coordinator published a live, initialised
                    // slice before the `Release` bump of `seq` (matched by
                    // our `Acquire` load) and is parked in `wait_all` until
                    // every ack; it does not touch the tasks in between. All
                    // access below stays field-granular through the raw
                    // pointer: `sm`/`ctx` are only read (never written during
                    // the window), and `planned` / the kernel state behind
                    // `state` are written only by this worker for tasks in
                    // its own partition — distinct warps hold distinct kernel
                    // state machines, and the coordinator skips duplicate
                    // `(sm, widx)` heap entries when building tasks.
                    unsafe {
                        let task = base.add(i);
                        if (*task).sm % workers != slot {
                            continue;
                        }
                        let planned = (*(*task).state).plan_step(&(*task).ctx);
                        (*task).planned = planned;
                    }
                }
                cell.done.store(seq, Ordering::Release);
            }
            _ => {
                cell.done.store(seq, Ordering::Release);
                return bucket;
            }
        }
    }
}

/// The GPU + devices co-simulation engine.
pub struct Engine {
    gpu: GpuConfig,
    clock: SimClock,
    sms: Vec<SmState>,
    kernels: Vec<KernelInstance>,
    /// Shard-affine devices, advanced first each round — in add order
    /// sequentially, concurrently (one fixed worker per device) under
    /// [`EngineSched::ParallelShards`].
    shard_devices: Vec<Box<dyn ExternalDevice>>,
    /// Passive observers (metrics/control bridges), advanced after the shard
    /// devices and mailboxes, always on the coordinating thread.
    devices: Vec<Box<dyn ExternalDevice>>,
    /// Cross-shard effect buffers, drained in registration order at every
    /// epoch boundary (between shard and passive device advancement).
    mailboxes: Vec<std::sync::Arc<dyn EpochMailbox>>,
    /// Pending (kernel_idx, block_idx) waiting for SM space, FIFO.
    dispatch_queue: std::collections::VecDeque<(usize, u32)>,
    /// Window without forward progress after which the run is declared
    /// deadlocked.
    deadlock_window: Cycles,
    /// Hard wall on simulated time (safety net for tests).
    max_cycles: Cycles,
    rounds: u64,
    /// Scheduling loop selector.
    sched: EngineSched,
    /// The ready-queue: one `(ready_at, sm, warp-slot)` entry per live warp.
    /// Rebuilt at the start of every event-driven run (warp slots are stable
    /// within a run because the event loop never compacts the SM warp lists).
    ready: BinaryHeap<Reverse<(u64, usize, usize)>>,
    /// Optional engine instruments (`agile_engine_*`).
    metrics: Option<EngineMetrics>,
    /// Rounds between metric flushes (power of two not required). The
    /// default matches the historical hardcoded cadence of 4096 rounds;
    /// `finish_run` always performs a final flush, so no partial interval is
    /// ever lost regardless of the setting.
    metrics_flush_interval: u64,
    /// Warp steps / stale wakes / ready-queue high water accumulated in
    /// plain fields; [`Engine::flush_metrics`] mirrors them into the
    /// registry on a coarse cadence.
    m_steps: u64,
    m_stale: u64,
    m_ready_hw: u64,
    /// (rounds, steps, stale) already flushed to the instruments.
    m_flushed: (u64, u64, u64),
    /// Busy-spin bound for the epoch barrier before waits yield the CPU.
    barrier_spin_limit: u32,
    /// Coordinator wall time (nanoseconds) per epoch phase — device advance,
    /// worker warp planning, commit walk — accumulated only on threaded runs
    /// with metrics bound.
    m_phase_ns: (u64, u64, u64),
    /// Planned warp steps committed per SM-affine worker partition (threaded
    /// runs; tallied deterministically on the coordinator).
    m_partition_steps: Vec<u64>,
}

impl Engine {
    /// Create an engine for the given GPU.
    pub fn new(gpu: GpuConfig) -> Self {
        let clock = SimClock::new(gpu.clock_ghz);
        let sms = (0..gpu.num_sms).map(SmState::new).collect();
        Engine {
            gpu,
            clock,
            sms,
            kernels: Vec::new(),
            shard_devices: Vec::new(),
            devices: Vec::new(),
            mailboxes: Vec::new(),
            dispatch_queue: std::collections::VecDeque::new(),
            deadlock_window: Cycles(50_000_000),
            max_cycles: Cycles(u64::MAX / 4),
            rounds: 0,
            sched: EngineSched::default(),
            ready: BinaryHeap::new(),
            metrics: None,
            metrics_flush_interval: 4096,
            m_steps: 0,
            m_stale: 0,
            m_ready_hw: 0,
            m_flushed: (0, 0, 0),
            barrier_spin_limit: DEFAULT_SPIN_LIMIT,
            m_phase_ns: (0, 0, 0),
            m_partition_steps: Vec::new(),
        }
    }

    /// Mirror the accumulated engine counts into the bound instruments
    /// (no-op without metrics). Called every `metrics_flush_interval` rounds
    /// and at run end — the scheduling hot loops never touch an atomic.
    fn flush_metrics(&mut self) {
        if let Some(m) = &self.metrics {
            let (rounds, steps, stale) = self.m_flushed;
            m.rounds.add(self.rounds - rounds);
            m.warp_steps.add(self.m_steps - steps);
            m.stale_wakes.add(self.m_stale - stale);
            m.ready_high_water.record_max(self.m_ready_hw);
            self.m_flushed = (self.rounds, self.m_steps, self.m_stale);
        }
    }

    /// Bind engine instruments. Scheduling is unaffected — the loops only
    /// mirror counts they already track into the registry.
    pub fn set_metrics(&mut self, metrics: EngineMetrics) {
        self.metrics = Some(metrics);
    }

    /// Set the metric flush cadence in rounds (default 4096). A larger
    /// interval trades windowed-series resolution for fewer atomic writes;
    /// totals are unaffected because [`Engine::run`] always flushes the final
    /// partial interval before reporting.
    pub fn set_metrics_flush_interval(&mut self, rounds: u64) {
        assert!(rounds > 0, "metrics flush interval must be at least 1 round");
        self.metrics_flush_interval = rounds;
    }

    /// Bound the number of busy-spin iterations each epoch-barrier wait
    /// performs before falling back to `std::thread::yield_now` (default
    /// 256). Zero makes every wait yield immediately — the behaviour any
    /// oversubscribed or single-core machine degrades to regardless. Purely
    /// a host-side scheduling knob: simulation results are bit-identical at
    /// every setting; only wall time changes.
    pub fn set_barrier_spin_limit(&mut self, limit: u32) {
        self.barrier_spin_limit = limit;
    }

    /// Select the scheduling loop (default: [`EngineSched::EventQueue`]).
    /// May be switched between runs; all schedulers produce bit-identical
    /// execution, only `rounds` and wall time differ (and `ParallelShards`
    /// matches `rounds` too).
    pub fn set_scheduler(&mut self, sched: EngineSched) {
        self.sched = sched;
    }

    /// The active scheduling loop.
    pub fn scheduler(&self) -> EngineSched {
        self.sched
    }

    /// The GPU configuration.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        self.clock.now()
    }

    /// Override the no-progress window used for deadlock detection.
    pub fn set_deadlock_window(&mut self, window: Cycles) {
        self.deadlock_window = window;
    }

    /// Override the hard limit on simulated cycles.
    pub fn set_max_cycles(&mut self, max: Cycles) {
        self.max_cycles = max;
    }

    /// Attach a passive external device (metrics/control bridges). Passive
    /// devices are advanced after the shard devices and mailbox drains, in
    /// the order they were added — that order is part of the determinism
    /// contract (see the module docs).
    pub fn add_device(&mut self, dev: Box<dyn ExternalDevice>) {
        self.devices.push(dev);
    }

    /// Attach a shard-affine external device (one storage shard of the SSD
    /// array). Shard devices are advanced before every passive device, in
    /// the order they were added; under [`EngineSched::ParallelShards`] each
    /// one is pinned to worker `index % threads` for the whole run, which
    /// preserves the add order inside every worker's bucket. All shard
    /// devices must be registered before the first passive device — the
    /// combined advance order is what the golden traces gate.
    pub fn add_shard_device(&mut self, dev: Box<dyn ExternalDevice>) {
        debug_assert!(
            self.devices.is_empty(),
            "determinism contract: all shard devices must be added before any \
             passive device — the engine advances shard devices (in add \
             order), then passive devices (in add order), and interleaved \
             registration would silently reorder device side effects"
        );
        self.shard_devices.push(dev);
    }

    /// Register a cross-shard effect buffer, drained in registration order
    /// at every epoch boundary. Hosts register one per storage shard, in
    /// shard order, when the scheduler runs shard devices on worker threads.
    pub fn add_mailbox(&mut self, mailbox: std::sync::Arc<dyn EpochMailbox>) {
        self.mailboxes.push(mailbox);
    }

    /// Launch a kernel; its blocks enter the dispatch queue immediately.
    pub fn launch(&mut self, launch: LaunchConfig, factory: Box<dyn KernelFactory>) -> KernelId {
        assert!(launch.grid_dim > 0, "grid must contain at least one block");
        assert!(
            launch.block_dim.is_multiple_of(self.gpu.warp_size) && launch.block_dim > 0,
            "block_dim must be a positive warp-size multiple"
        );
        // Validate the launch fits the device at all.
        let occ = occupancy(&self.gpu, &launch);
        assert!(occ > 0, "kernel footprint too large for one SM");
        let id = KernelId(self.kernels.len() as u32);
        let idx = self.kernels.len();
        self.kernels.push(KernelInstance {
            id,
            name: factory.name().to_string(),
            launch,
            factory,
            blocks_retired: 0,
            completed_at: None,
            warps: 0,
            busy: Cycles::ZERO,
            stall: Cycles::ZERO,
            steps: 0,
        });
        let grid = self.kernels[idx].launch.grid_dim;
        for b in 0..grid {
            self.dispatch_queue.push_back((idx, b));
        }
        self.fill_sms();
        id
    }

    /// Place as many pending blocks as the SMs can hold.
    fn fill_sms(&mut self) {
        // Round-robin over SMs for each pending block, preserving FIFO order
        // per the hardware's global block scheduler.
        let mut made_progress = true;
        while made_progress {
            made_progress = false;
            let Some(&(kidx, block_idx)) = self.dispatch_queue.front() else {
                break;
            };
            let (warps, regs, smem) = {
                let k = &self.kernels[kidx];
                (
                    k.launch.warps_per_block(&self.gpu),
                    k.launch.registers_per_thread * k.launch.block_dim,
                    k.launch.shared_mem_per_block,
                )
            };
            // Choose the least-loaded SM that can take the block.
            let candidate = self
                .sms
                .iter()
                .enumerate()
                .filter(|(_, sm)| sm.can_place(&self.gpu, warps, regs, smem))
                .min_by_key(|(_, sm)| sm.used_warps)
                .map(|(i, _)| i);
            if let Some(sm_idx) = candidate {
                self.dispatch_queue.pop_front();
                self.place_block(sm_idx, kidx, block_idx, warps, regs, smem);
                made_progress = true;
            }
        }
    }

    fn place_block(
        &mut self,
        sm_idx: usize,
        kidx: usize,
        block_idx: u32,
        warps: u32,
        regs: u32,
        smem: u32,
    ) {
        let slot = self.sms[sm_idx].place_block(kidx, block_idx, warps, regs, smem);
        let kernel_id = self.kernels[kidx].id;
        for w in 0..warps {
            let state = self.kernels[kidx].factory.create_warp(block_idx, w);
            let plan_capable = state.parallel_capable();
            self.kernels[kidx].warps += 1;
            self.sms[sm_idx].warps.push(ResidentWarp {
                id: WarpId {
                    kernel: kernel_id,
                    block: block_idx,
                    warp: w,
                },
                kernel_idx: kidx,
                block_slot: slot,
                state,
                plan_capable,
                ready_at: self.clock.now(),
                done: false,
                busy: Cycles::ZERO,
                stall: Cycles::ZERO,
                steps: 0,
            });
            // Enter the warp into the ready-queue (a placement mid-run wakes
            // at the next visited time point; run entry rebuilds the heap
            // anyway, so pre-run launches are covered either way).
            let widx = self.sms[sm_idx].warps.len() - 1;
            self.ready
                .push(Reverse((self.clock.now().raw(), sm_idx, widx)));
        }
    }

    fn all_user_kernels_complete(&self) -> bool {
        self.kernels
            .iter()
            .filter(|k| !k.launch.persistent)
            .all(|k| k.complete())
    }

    /// Run until every non-persistent kernel has completed (or until deadlock
    /// / the cycle limit is hit) and return the execution report.
    pub fn run(&mut self) -> ExecutionReport {
        match self.sched {
            EngineSched::EventQueue => self.run_sequential(false),
            EngineSched::FullScan => self.run_sequential(true),
            EngineSched::ParallelShards(n) => self.run_parallel_shards(n),
        }
    }

    /// Run the chosen loop with the shard devices driven in-thread.
    fn run_sequential(&mut self, full_scan: bool) -> ExecutionReport {
        let mut devs = std::mem::take(&mut self.shard_devices);
        let mut driver = SeqDriver { devs: &mut devs };
        let report = if full_scan {
            self.full_scan_loop(&mut driver)
        } else {
            self.event_loop(&mut driver)
        };
        self.shard_devices = devs;
        report
    }

    /// Run the event loop with shard devices and warp planning on up to
    /// `threads` OS workers. With thread count ≤ 1 this *is* the sequential
    /// event queue — same code path, bit for bit. Workers are no longer
    /// clamped to the shard-device count: partitions are keyed on devices
    /// (phase A) and SMs (phase B) independently, so extra workers still
    /// earn their keep planning warps even when devices are scarce.
    fn run_parallel_shards(&mut self, threads: usize) -> ExecutionReport {
        let workers = threads.max(1);
        if workers <= 1 {
            return self.run_sequential(false);
        }
        let devs = std::mem::take(&mut self.shard_devices);
        let total = devs.len();
        let mut buckets: Vec<Vec<(usize, Box<dyn ExternalDevice>)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, dev) in devs.into_iter().enumerate() {
            buckets[i % workers].push((i, dev));
        }
        let bucket_sizes: Vec<u64> = buckets.iter().map(|b| b.len() as u64).collect();
        self.m_phase_ns = (0, 0, 0);
        self.m_partition_steps = vec![0; workers];
        let shared = ParShared::new(workers, self.barrier_spin_limit);
        let (report, epochs, syncs, returned) = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for (slot, bucket) in buckets.into_iter().enumerate() {
                let shared = &shared;
                handles.push(scope.spawn(move || worker_loop(slot, bucket, shared)));
            }
            let exit = ExitGuard { shared: &shared };
            let mut driver = ParDriver {
                shared: &shared,
                epochs: 0,
                next_syncs: 0,
            };
            let report = self.event_loop(&mut driver);
            let (epochs, syncs) = (driver.epochs, driver.next_syncs);
            drop(exit);
            let mut returned: Vec<Option<Box<dyn ExternalDevice>>> =
                (0..total).map(|_| None).collect();
            for handle in handles {
                for (i, dev) in handle.join().expect("engine worker panicked") {
                    returned[i] = Some(dev);
                }
            }
            (report, epochs, syncs, returned)
        });
        self.shard_devices = returned
            .into_iter()
            .map(|d| d.expect("worker returned every device"))
            .collect();
        if let Some(m) = &self.metrics {
            let advances: Vec<u64> = shared
                .cells
                .iter()
                .map(|c| c.advances.load(Ordering::Relaxed))
                .collect();
            m.note_parallel(
                workers as u64,
                epochs,
                syncs,
                &advances,
                &bucket_sizes,
                self.m_phase_ns,
                &self.m_partition_steps,
            );
        }
        report
    }

    /// One epoch boundary: shard devices to the horizon, buffered cross-
    /// shard effects in shard order, then the passive observers.
    fn advance_devices(&mut self, driver: &mut dyn DeviceDriver, now: Cycles) {
        driver.advance_to(now);
        for mailbox in &self.mailboxes {
            mailbox.drain();
        }
        for dev in &mut self.devices {
            dev.advance_to(now);
        }
    }

    /// Earliest pending device event strictly after `now` across both tiers.
    fn next_device_event(&mut self, driver: &mut dyn DeviceDriver, now: Cycles) -> Option<Cycles> {
        let shard = driver.next_event_after(now);
        let passive = self
            .devices
            .iter_mut()
            .filter_map(|d| d.next_event_time())
            .filter(|&t| t > now)
            .min();
        match (shard, passive) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    /// Step one warp at `now`, updating warp/kernel accounting. Returns the
    /// warp's next wake time (`None` once it retired) and whether the step
    /// counted as forward progress. Shared by both schedulers so they cannot
    /// drift behaviourally.
    fn step_warp(
        &mut self,
        sm_idx: usize,
        widx: usize,
        now: Cycles,
        retired_blocks: &mut Vec<(usize, usize)>,
    ) -> (Option<Cycles>, bool) {
        self.drive_warp(sm_idx, widx, now, retired_blocks, None)
    }

    /// Commit a worker-planned step on the coordinator (threaded runs only):
    /// identical accounting to [`Engine::step_warp`], but the kernel
    /// finalises through `commit_step(ctx, epoch_clean)` instead of `step`.
    fn commit_warp(
        &mut self,
        sm_idx: usize,
        widx: usize,
        now: Cycles,
        retired_blocks: &mut Vec<(usize, usize)>,
        epoch_clean: bool,
    ) -> (Option<Cycles>, bool) {
        self.drive_warp(sm_idx, widx, now, retired_blocks, Some(epoch_clean))
    }

    /// The single warp-advancement body behind `step_warp` / `commit_warp`:
    /// only the kernel entry point differs (`step` vs `commit_step`), so the
    /// serial and planned paths cannot drift in their accounting.
    fn drive_warp(
        &mut self,
        sm_idx: usize,
        widx: usize,
        now: Cycles,
        retired_blocks: &mut Vec<(usize, usize)>,
        committed: Option<bool>,
    ) -> (Option<Cycles>, bool) {
        let sm = &mut self.sms[sm_idx];
        let w = &mut sm.warps[widx];
        let ctx = WarpCtx {
            now,
            warp: w.id,
            lanes: self.gpu.warp_size,
            clock_ghz: self.gpu.clock_ghz,
        };
        w.steps += 1;
        self.kernels[w.kernel_idx].steps += 1;
        let outcome = match committed {
            Some(epoch_clean) => w.state.commit_step(&ctx, epoch_clean),
            None => w.state.step(&ctx),
        };
        match outcome {
            WarpStep::Busy(c) => {
                let c = c.max(Cycles(1));
                w.ready_at = now + c;
                w.busy += c;
                self.kernels[w.kernel_idx].busy += c;
                (Some(w.ready_at), true)
            }
            WarpStep::Stall { retry_after } => {
                let r = retry_after.max(Cycles(1));
                w.ready_at = now + r;
                w.stall += r;
                self.kernels[w.kernel_idx].stall += r;
                (Some(w.ready_at), false)
            }
            WarpStep::Done => {
                w.done = true;
                let slot = w.block_slot;
                let kidx = w.kernel_idx;
                if sm.warp_retired(slot) {
                    retired_blocks.push((sm_idx, slot));
                    self.kernels[kidx].blocks_retired += 1;
                    if self.kernels[kidx].complete() {
                        self.kernels[kidx].completed_at = Some(now);
                    }
                }
                (None, true)
            }
        }
    }

    /// The event-driven scheduler: warps wake out of the ready-queue, rounds
    /// fire only at warp wake times, and device state is pulled forward
    /// lazily — discrete-event devices produce identical completions whether
    /// advanced stepwise or straight to the next warp wake, so skipping the
    /// device-only rounds changes `rounds`/wall time but not behaviour.
    fn event_loop(&mut self, driver: &mut dyn DeviceDriver) -> ExecutionReport {
        let start = self.clock.now();
        let mut last_progress = self.clock.now();
        let mut deadlocked = false;
        // Phase wall-clock attribution is only worth an `Instant` pair per
        // phase on threaded runs with metrics bound.
        let time_phases = driver.parallel_warps() && self.metrics.is_some();
        let workers = driver.workers();

        // Drop retired warps now, while it is safe: mid-run the event loop
        // never compacts (heap entries index into the warp lists), so
        // repeated runs on one engine would otherwise accumulate dead
        // entries from every block ever launched.
        for sm in &mut self.sms {
            sm.compact();
        }
        // Rebuild the queue from the live warps: `launch()` may have placed
        // blocks since the last run, the compaction above shifted slots, and
        // a previous `FullScan` run does not maintain the heap.
        self.ready.clear();
        for (sm_idx, sm) in self.sms.iter().enumerate() {
            for (widx, w) in sm.warps.iter().enumerate() {
                if !w.done {
                    self.ready.push(Reverse((w.ready_at.raw(), sm_idx, widx)));
                }
            }
        }

        while !self.all_user_kernels_complete() {
            self.rounds += 1;
            let now = self.clock.now();
            let depth = self.ready.len() as u64;
            if depth > self.m_ready_hw {
                self.m_ready_hw = depth;
            }

            // 1. Phase A: let devices catch up so completions are visible to
            //    warps.
            let t0 = time_phases.then(std::time::Instant::now);
            self.advance_devices(driver, now);
            if let Some(t0) = t0 {
                self.m_phase_ns.0 += t0.elapsed().as_nanos() as u64;
            }

            // 2. Pop every warp that is due and step the batch in SM/slot
            //    order — the exact order the scan scheduler visits warps, so
            //    equal-time steps interleave identically.
            let mut batch: Vec<(usize, usize)> = Vec::new();
            while let Some(&Reverse((t, sm_idx, widx))) = self.ready.peek() {
                if t > now.raw() {
                    break;
                }
                self.ready.pop();
                batch.push((sm_idx, widx));
            }
            batch.sort_unstable();

            // Phase B (threaded runs): hand the plan-capable due warps to the
            // workers in SM-affine partitions (warp of SM s plans on worker
            // s % workers) while the coordinator parks at the barrier. The
            // commit walk below then finalises every step in canonical
            // (sm, slot) order. A single capable warp gains nothing from a
            // barrier round trip, so the window only opens for two or more.
            let mut tasks: Vec<PlanTask> = Vec::new();
            if driver.parallel_warps() && batch.len() >= 2 {
                let mut prev: Option<(usize, usize)> = None;
                for &(sm_idx, widx) in &batch {
                    if prev == Some((sm_idx, widx)) {
                        continue; // duplicate heap entry: one plan per warp
                    }
                    prev = Some((sm_idx, widx));
                    let w = &mut self.sms[sm_idx].warps[widx];
                    if w.done || !w.plan_capable {
                        continue;
                    }
                    let ctx = WarpCtx {
                        now,
                        warp: w.id,
                        lanes: self.gpu.warp_size,
                        clock_ghz: self.gpu.clock_ghz,
                    };
                    tasks.push(PlanTask {
                        sm: sm_idx,
                        widx,
                        state: w.state.as_mut() as *mut dyn WarpKernel,
                        ctx,
                        planned: false,
                    });
                }
                if tasks.len() >= 2 {
                    let t0 = time_phases.then(std::time::Instant::now);
                    driver.plan_warps(&mut tasks, now);
                    if let Some(t0) = t0 {
                        self.m_phase_ns.1 += t0.elapsed().as_nanos() as u64;
                    }
                } else {
                    tasks.clear();
                }
            }

            // Commit walk: canonical (sm, slot) order. Serial-class steps
            // (kernels that never plan, declined plans, duplicate wakes) mark
            // the epoch dirty so every later planned commit re-validates its
            // snapshot of shared state — snapshot, validate, retry.
            let mut progressed = false;
            let mut retired_blocks: Vec<(usize, usize)> = Vec::new(); // (sm, slot)
            let (mut steps, mut stale) = (0u64, 0u64);
            let t0 = time_phases.then(std::time::Instant::now);
            let mut epoch_clean = true;
            let mut ti = 0usize;
            for (sm_idx, widx) in batch {
                let planned = match tasks.get(ti) {
                    Some(t) if t.sm == sm_idx && t.widx == widx => {
                        ti += 1;
                        Some(tasks[ti - 1].planned)
                    }
                    _ => None,
                };
                if self.sms[sm_idx].warps[widx].done {
                    stale += 1;
                    continue;
                }
                steps += 1;
                let (wake, progress) = match planned {
                    Some(true) => {
                        self.m_partition_steps[sm_idx % workers] += 1;
                        self.commit_warp(sm_idx, widx, now, &mut retired_blocks, epoch_clean)
                    }
                    _ => {
                        epoch_clean = false;
                        self.step_warp(sm_idx, widx, now, &mut retired_blocks)
                    }
                };
                if let Some(at) = wake {
                    self.ready.push(Reverse((at.raw(), sm_idx, widx)));
                }
                progressed |= progress;
            }
            if let Some(t0) = t0 {
                self.m_phase_ns.2 += t0.elapsed().as_nanos() as u64;
            }
            self.m_steps += steps;
            self.m_stale += stale;
            if self.rounds.is_multiple_of(self.metrics_flush_interval) {
                self.flush_metrics();
            }

            // 3. Place pending blocks freed capacity admits. The event loop
            //    never compacts the warp lists (heap entries index into
            //    them); `place_block` enqueues the new warps at `now`.
            if !retired_blocks.is_empty() {
                self.fill_sms();
            }

            if progressed {
                last_progress = now;
            } else if now.saturating_sub(last_progress) > self.deadlock_window {
                deadlocked = true;
                break;
            }

            if self.all_user_kernels_complete() {
                break;
            }

            // 4. Advance to the next warp wake. Entries still at ≤ now are
            //    warps placed this round: like the scan scheduler, they step
            //    at the next *visited* time point, which then must also
            //    consider device events (the scan scheduler would have woken
            //    there).
            let mut placed_now: Vec<(u64, usize, usize)> = Vec::new();
            while let Some(&Reverse(e)) = self.ready.peek() {
                if e.0 > now.raw() {
                    break;
                }
                self.ready.pop();
                placed_now.push(e);
            }
            let next_warp = self.ready.peek().map(|Reverse((t, _, _))| Cycles(*t));
            let need_dev_wake = !placed_now.is_empty() || next_warp.is_none();
            for e in placed_now {
                self.ready.push(Reverse(e));
            }
            let next_dev = if need_dev_wake {
                self.next_device_event(driver, now)
            } else {
                None
            };
            let next = match (next_warp, next_dev) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => now + Cycles(1),
            };
            if next <= now {
                self.clock.advance(Cycles(1));
            } else {
                self.clock.advance_to(next);
            }
            if self.clock.now() > self.max_cycles {
                deadlocked = true;
                break;
            }
        }

        // Final device sync so statistics reflect everything visible at the
        // end (and the mailboxes are fully drained).
        let now = self.clock.now();
        self.advance_devices(driver, now);
        self.finish_run(start, deadlocked)
    }

    /// The pre-ready-queue scheduler: every round scans every resident warp
    /// and the clock wakes at every device event. Behaviourally identical to
    /// [`Engine::event_loop`]; kept for equivalence tests and wall-time
    /// comparisons.
    fn full_scan_loop(&mut self, driver: &mut dyn DeviceDriver) -> ExecutionReport {
        // The scan does not maintain the heap; drop stale entries so they do
        // not accumulate across runs.
        self.ready.clear();
        let start = self.clock.now();
        let mut last_progress = self.clock.now();
        let mut deadlocked = false;

        while !self.all_user_kernels_complete() {
            self.rounds += 1;
            let now = self.clock.now();

            // 1. Let devices catch up so completions are visible to warps.
            self.advance_devices(driver, now);

            // 2. Step every ready warp once.
            let mut progressed = false;
            let mut retired_blocks: Vec<(usize, usize)> = Vec::new(); // (sm, slot)
            let mut steps = 0u64;
            for sm_idx in 0..self.sms.len() {
                for widx in 0..self.sms[sm_idx].warps.len() {
                    {
                        let w = &self.sms[sm_idx].warps[widx];
                        if w.done || w.ready_at > now {
                            continue;
                        }
                    }
                    steps += 1;
                    let (_, progress) = self.step_warp(sm_idx, widx, now, &mut retired_blocks);
                    progressed |= progress;
                }
            }
            self.m_steps += steps;
            if self.rounds.is_multiple_of(self.metrics_flush_interval) {
                self.flush_metrics();
            }

            // 3. Clean up retired blocks and place pending ones.
            if !retired_blocks.is_empty() {
                for sm in &mut self.sms {
                    sm.compact();
                }
                self.fill_sms();
                self.ready.clear();
            }

            if progressed {
                last_progress = now;
            } else if now.saturating_sub(last_progress) > self.deadlock_window {
                deadlocked = true;
                break;
            }

            if self.all_user_kernels_complete() {
                break;
            }

            // 4. Advance time to the next interesting moment.
            let next_warp = self
                .sms
                .iter()
                .flat_map(|sm| sm.warps.iter())
                .filter(|w| !w.done)
                .map(|w| w.ready_at)
                .filter(|&t| t > now)
                .min();
            let next_dev = self.next_device_event(driver, now);
            let next = match (next_warp, next_dev) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                // Nothing scheduled: either we are done (checked above) or
                // every warp is ready right now — re-run immediately with a
                // minimal time bump to guarantee forward motion of the clock.
                (None, None) => now + Cycles(1),
            };
            if next <= now {
                self.clock.advance(Cycles(1));
            } else {
                self.clock.advance_to(next);
            }
            if self.clock.now() > self.max_cycles {
                deadlocked = true;
                break;
            }
        }

        let now = self.clock.now();
        self.advance_devices(driver, now);
        self.finish_run(start, deadlocked)
    }

    /// Final metric flush + report assembly shared by all schedulers (the
    /// loops have already synced the devices to the end time).
    fn finish_run(&mut self, start: Cycles, deadlocked: bool) -> ExecutionReport {
        self.flush_metrics();

        let elapsed = self.clock.now() - start;
        ExecutionReport {
            elapsed,
            elapsed_secs: elapsed.to_secs(self.gpu.clock_ghz),
            kernels: self
                .kernels
                .iter()
                .map(|k| KernelReport {
                    name: k.name.clone(),
                    id: k.id.0,
                    warps: k.warps,
                    busy_cycles: k.busy.raw(),
                    stall_cycles: k.stall.raw(),
                    steps: k.steps,
                    completed_at: k.completed_at.map(|c| c.raw()).unwrap_or(0),
                    persistent: k.launch.persistent,
                })
                .collect(),
            deadlocked,
            rounds: self.rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ComputeOnlyKernel;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    #[test]
    fn compute_only_kernel_time_matches_work() {
        let mut eng = Engine::new(GpuConfig::tiny(2));
        // 4 blocks × 2 warps, each warp busy for 1000 cycles in 2 steps.
        eng.launch(
            LaunchConfig::new(4, 64).with_registers(16),
            Box::new(ComputeOnlyKernel {
                cycles_per_warp: Cycles(1000),
                steps: 2,
            }),
        );
        let report = eng.run();
        assert!(!report.deadlocked);
        // Everything fits concurrently, so elapsed ≈ 1000 cycles (+ rounding).
        assert!(
            report.elapsed.raw() >= 1000 && report.elapsed.raw() < 1100,
            "elapsed {}",
            report.elapsed
        );
        let k = &report.kernels[0];
        assert_eq!(k.warps, 8);
        assert_eq!(k.busy_cycles, 8 * 1000);
    }

    #[test]
    fn waves_serialize_when_grid_exceeds_capacity() {
        // tiny(1): at most 4 resident blocks per SM. Launch 16 single-warp
        // blocks of 1000 cycles: needs four waves ⇒ elapsed ≈ 4000 cycles.
        let mut eng = Engine::new(GpuConfig::tiny(1));
        eng.launch(
            LaunchConfig::new(16, 32).with_registers(16),
            Box::new(ComputeOnlyKernel {
                cycles_per_warp: Cycles(1000),
                steps: 1,
            }),
        );
        let report = eng.run();
        assert!(!report.deadlocked);
        assert!(
            report.elapsed.raw() >= 4000 && report.elapsed.raw() < 4400,
            "elapsed {}",
            report.elapsed
        );
    }

    /// A kernel whose warps wait for an external "device" to flip a flag.
    struct WaitingKernel {
        flag: Arc<AtomicU64>,
    }
    struct WaitingWarp {
        flag: Arc<AtomicU64>,
        issued: bool,
    }
    impl crate::kernel::WarpKernel for WaitingWarp {
        fn step(&mut self, _ctx: &WarpCtx) -> WarpStep {
            if !self.issued {
                self.issued = true;
                return WarpStep::Busy(Cycles(10));
            }
            if self.flag.load(Ordering::Acquire) == 1 {
                WarpStep::Done
            } else {
                WarpStep::Stall {
                    retry_after: Cycles(100),
                }
            }
        }
    }
    impl KernelFactory for WaitingKernel {
        fn create_warp(&self, _b: u32, _w: u32) -> Box<dyn crate::kernel::WarpKernel> {
            Box::new(WaitingWarp {
                flag: Arc::clone(&self.flag),
                issued: false,
            })
        }
        fn name(&self) -> &str {
            "waiting"
        }
    }

    /// Device that flips the flag at a fixed time.
    struct FlagDevice {
        flag: Arc<AtomicU64>,
        at: Cycles,
        fired: bool,
    }
    impl ExternalDevice for FlagDevice {
        fn advance_to(&mut self, now: Cycles) {
            if !self.fired && now >= self.at {
                self.flag.store(1, Ordering::Release);
                self.fired = true;
            }
        }
        fn next_event_time(&mut self) -> Option<Cycles> {
            (!self.fired).then_some(self.at)
        }
        fn quiescent(&self) -> bool {
            self.fired
        }
    }

    #[test]
    fn warps_wake_when_device_event_fires() {
        let flag = Arc::new(AtomicU64::new(0));
        let mut eng = Engine::new(GpuConfig::tiny(1));
        eng.add_device(Box::new(FlagDevice {
            flag: Arc::clone(&flag),
            at: Cycles(50_000),
            fired: false,
        }));
        eng.launch(
            LaunchConfig::new(2, 32).with_registers(16),
            Box::new(WaitingKernel { flag }),
        );
        let report = eng.run();
        assert!(!report.deadlocked);
        // Completion should land shortly after the device event.
        assert!(
            report.elapsed.raw() >= 50_000 && report.elapsed.raw() < 51_000,
            "elapsed {}",
            report.elapsed
        );
        let k = &report.kernels[0];
        assert!(k.stall_cycles > 0, "warps should have recorded stall time");
    }

    #[test]
    fn deadlock_is_detected_when_no_progress_is_possible() {
        // Flag never flips and there is no device: warps stall forever.
        let flag = Arc::new(AtomicU64::new(0));
        let mut eng = Engine::new(GpuConfig::tiny(1));
        eng.set_deadlock_window(Cycles(100_000));
        eng.launch(
            LaunchConfig::new(1, 32).with_registers(16),
            Box::new(WaitingKernel { flag }),
        );
        let report = eng.run();
        assert!(report.deadlocked);
    }

    #[test]
    fn persistent_kernel_does_not_gate_completion() {
        struct Forever;
        struct ForeverWarp;
        impl crate::kernel::WarpKernel for ForeverWarp {
            fn step(&mut self, _ctx: &WarpCtx) -> WarpStep {
                WarpStep::Busy(Cycles(500))
            }
        }
        impl KernelFactory for Forever {
            fn create_warp(&self, _b: u32, _w: u32) -> Box<dyn crate::kernel::WarpKernel> {
                Box::new(ForeverWarp)
            }
            fn name(&self) -> &str {
                "service"
            }
        }
        let mut eng = Engine::new(GpuConfig::tiny(2));
        eng.launch(
            LaunchConfig::new(1, 32).with_registers(16).persistent(),
            Box::new(Forever),
        );
        eng.launch(
            LaunchConfig::new(2, 32).with_registers(16),
            Box::new(ComputeOnlyKernel {
                cycles_per_warp: Cycles(2000),
                steps: 2,
            }),
        );
        let report = eng.run();
        assert!(!report.deadlocked);
        assert!(report.elapsed.raw() < 3000);
        let service = report.kernel("service").unwrap();
        assert!(service.persistent);
        assert_eq!(service.completed_at, 0);
        assert!(service.busy_cycles > 0);
    }

    #[test]
    #[should_panic(expected = "footprint too large")]
    fn launch_rejects_impossible_footprint() {
        let mut eng = Engine::new(GpuConfig::tiny(1));
        eng.launch(
            LaunchConfig::new(1, 256).with_registers(255),
            Box::new(ComputeOnlyKernel {
                cycles_per_warp: Cycles(10),
                steps: 1,
            }),
        );
    }

    /// A periodically-firing device; flips `flag` once it has fired
    /// `fires` times.
    struct Ticker {
        flag: Arc<AtomicU64>,
        at: Cycles,
        period: Cycles,
        fires: u32,
        fired: u32,
    }
    impl Ticker {
        fn new(flag: Arc<AtomicU64>, start: u64, period: u64, fires: u32) -> Self {
            Ticker {
                flag,
                at: Cycles(start),
                period: Cycles(period),
                fires,
                fired: 0,
            }
        }
    }
    impl ExternalDevice for Ticker {
        fn advance_to(&mut self, now: Cycles) {
            while self.fired < self.fires && now >= self.at {
                self.fired += 1;
                self.at += self.period;
                if self.fired == self.fires {
                    self.flag.fetch_add(1, Ordering::Release);
                }
            }
        }
        fn next_event_time(&mut self) -> Option<Cycles> {
            (self.fired < self.fires).then_some(self.at)
        }
        fn quiescent(&self) -> bool {
            self.fired >= self.fires
        }
    }

    #[test]
    fn schedulers_are_equivalent_and_event_queue_visits_fewer_rounds() {
        // A stalling kernel plus a periodically-firing device: the scan
        // wakes at every device event, the event queue only at warp wakes —
        // identical execution, fewer rounds.
        let run = |sched: EngineSched| {
            let flag = Arc::new(AtomicU64::new(0));
            let mut eng = Engine::new(GpuConfig::tiny(2));
            eng.set_scheduler(sched);
            eng.add_device(Box::new(Ticker::new(Arc::clone(&flag), 100, 313, 100)));
            eng.launch(
                LaunchConfig::new(2, 64).with_registers(16),
                Box::new(WaitingKernel { flag }),
            );
            eng.run()
        };
        let event = run(EngineSched::EventQueue);
        let scan = run(EngineSched::FullScan);
        assert!(!event.deadlocked && !scan.deadlocked);
        assert_eq!(event.elapsed, scan.elapsed, "bit-identical timing");
        assert_eq!(event.kernels[0].steps, scan.kernels[0].steps);
        assert_eq!(event.kernels[0].busy_cycles, scan.kernels[0].busy_cycles);
        assert_eq!(event.kernels[0].stall_cycles, scan.kernels[0].stall_cycles);
        assert!(
            event.rounds < scan.rounds,
            "the event queue must skip device-only rounds ({} vs {})",
            event.rounds,
            scan.rounds
        );
    }

    /// `WaitingWarp` waits for the flag to reach 1; with `n` tickers each
    /// contributing one increment once exhausted, wait for all of them.
    struct WaitingAllKernel {
        flag: Arc<AtomicU64>,
        want: u64,
    }
    struct WaitingAllWarp {
        flag: Arc<AtomicU64>,
        want: u64,
        issued: bool,
    }
    impl crate::kernel::WarpKernel for WaitingAllWarp {
        fn step(&mut self, _ctx: &WarpCtx) -> WarpStep {
            if !self.issued {
                self.issued = true;
                return WarpStep::Busy(Cycles(10));
            }
            if self.flag.load(Ordering::Acquire) >= self.want {
                WarpStep::Done
            } else {
                WarpStep::Stall {
                    retry_after: Cycles(97),
                }
            }
        }
    }
    impl KernelFactory for WaitingAllKernel {
        fn create_warp(&self, _b: u32, _w: u32) -> Box<dyn crate::kernel::WarpKernel> {
            Box::new(WaitingAllWarp {
                flag: Arc::clone(&self.flag),
                want: self.want,
                issued: false,
            })
        }
        fn name(&self) -> &str {
            "waiting-all"
        }
    }

    #[test]
    fn parallel_shards_matches_event_queue_bit_for_bit() {
        // Four independent shard devices with co-prime periods plus a warp
        // that completes only when every one is exhausted: the parallel
        // scheduler must produce the identical report (including `rounds`)
        // for every thread count; thread counts beyond the device count just
        // leave the surplus workers with empty partitions.
        let run = |sched: EngineSched| {
            let flag = Arc::new(AtomicU64::new(0));
            let mut eng = Engine::new(GpuConfig::tiny(2));
            eng.set_scheduler(sched);
            for (start, period, fires) in
                [(100, 313, 60), (150, 401, 50), (60, 257, 70), (220, 199, 90)]
            {
                eng.add_shard_device(Box::new(Ticker::new(
                    Arc::clone(&flag),
                    start,
                    period,
                    fires,
                )));
            }
            eng.launch(
                LaunchConfig::new(2, 64).with_registers(16),
                Box::new(WaitingAllKernel { flag, want: 4 }),
            );
            eng.run()
        };
        let base = run(EngineSched::EventQueue);
        assert!(!base.deadlocked);
        for threads in [1usize, 2, 3, 4, 8] {
            let par = run(EngineSched::ParallelShards(threads));
            assert_eq!(par.elapsed, base.elapsed, "threads={threads}");
            assert_eq!(par.rounds, base.rounds, "threads={threads}");
            assert_eq!(par.kernels[0].steps, base.kernels[0].steps);
            assert_eq!(par.kernels[0].busy_cycles, base.kernels[0].busy_cycles);
            assert_eq!(par.kernels[0].stall_cycles, base.kernels[0].stall_cycles);
        }
    }

    /// Appends its id to a shared log on every `advance_to` with a fresh
    /// timestamp — a probe for the device advance order.
    struct OrderProbe {
        id: u32,
        log: Arc<Mutex<Vec<u32>>>,
        last: Option<Cycles>,
    }
    impl ExternalDevice for OrderProbe {
        fn advance_to(&mut self, now: Cycles) {
            if self.last != Some(now) {
                self.last = Some(now);
                self.log.lock().unwrap().push(self.id);
            }
        }
        fn next_event_time(&mut self) -> Option<Cycles> {
            None
        }
        fn quiescent(&self) -> bool {
            true
        }
    }

    struct ProbeMailbox {
        id: u32,
        log: Arc<Mutex<Vec<u32>>>,
    }
    impl EpochMailbox for ProbeMailbox {
        fn drain(&self) {
            let mut log = self.log.lock().unwrap();
            // Dedup like the probes: one entry per epoch boundary.
            if log.last() != Some(&self.id) {
                log.push(self.id);
            }
        }
    }

    #[test]
    fn device_advance_order_is_shard_then_mailboxes_then_passive() {
        // The determinism contract: shard devices in add order, then the
        // mailboxes in registration order, then passive devices in add
        // order — every round.
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut eng = Engine::new(GpuConfig::tiny(1));
        for id in [0u32, 1] {
            eng.add_shard_device(Box::new(OrderProbe {
                id,
                log: Arc::clone(&log),
                last: None,
            }));
        }
        eng.add_mailbox(Arc::new(ProbeMailbox {
            id: 100,
            log: Arc::clone(&log),
        }));
        for id in [10u32, 11] {
            eng.add_device(Box::new(OrderProbe {
                id,
                log: Arc::clone(&log),
                last: None,
            }));
        }
        eng.launch(
            LaunchConfig::new(1, 32).with_registers(16),
            Box::new(ComputeOnlyKernel {
                cycles_per_warp: Cycles(10),
                steps: 1,
            }),
        );
        eng.run();
        let log = log.lock().unwrap();
        assert!(log.len() >= 5, "probe log too short: {log:?}");
        assert_eq!(
            &log[..5],
            &[0, 1, 100, 10, 11],
            "advance order must be shard devices, mailboxes, passive devices"
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "determinism contract")]
    fn shard_devices_must_precede_passive_devices() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut eng = Engine::new(GpuConfig::tiny(1));
        eng.add_device(Box::new(OrderProbe {
            id: 10,
            log: Arc::clone(&log),
            last: None,
        }));
        eng.add_shard_device(Box::new(OrderProbe {
            id: 0,
            log,
            last: None,
        }));
    }

    #[test]
    fn final_metrics_flush_is_never_lost() {
        // A flush interval far larger than the run's round count: the only
        // flush is the final one in `finish_run`, and it must still land the
        // exact totals in the registry.
        let registry = std::sync::Arc::new(agile_metrics::MetricsRegistry::new());
        let mut eng = Engine::new(GpuConfig::tiny(2));
        eng.set_metrics(EngineMetrics::bind(&registry));
        eng.set_metrics_flush_interval(u64::MAX / 2);
        eng.launch(
            LaunchConfig::new(4, 64).with_registers(16),
            Box::new(ComputeOnlyKernel {
                cycles_per_warp: Cycles(1000),
                steps: 3,
            }),
        );
        let report = eng.run();
        assert!(!report.deadlocked);
        use agile_metrics::Labels;
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("agile_engine_rounds_total", Labels::NONE),
            report.rounds,
            "final partial flush must deliver every round"
        );
        let steps: u64 = report.kernels.iter().map(|k| k.steps).sum();
        assert_eq!(
            snap.counter("agile_engine_warp_steps_total", Labels::NONE),
            steps,
            "final partial flush must deliver every warp step"
        );
        assert!(snap.gauge("agile_engine_ready_queue_high_water", Labels::NONE) > 0);
    }

    #[test]
    #[should_panic(expected = "at least 1 round")]
    fn zero_flush_interval_is_rejected() {
        let mut eng = Engine::new(GpuConfig::tiny(1));
        eng.set_metrics_flush_interval(0);
    }

    #[test]
    fn parallel_run_emits_epoch_and_thread_metrics() {
        let registry = std::sync::Arc::new(agile_metrics::MetricsRegistry::new());
        let flag = Arc::new(AtomicU64::new(0));
        let mut eng = Engine::new(GpuConfig::tiny(2));
        eng.set_scheduler(EngineSched::ParallelShards(2));
        eng.set_metrics(EngineMetrics::bind(&registry));
        for (start, period) in [(100, 313), (150, 401), (60, 257), (220, 199)] {
            eng.add_shard_device(Box::new(Ticker::new(Arc::clone(&flag), start, period, 50)));
        }
        eng.launch(
            LaunchConfig::new(2, 64).with_registers(16),
            Box::new(WaitingAllKernel { flag, want: 4 }),
        );
        let report = eng.run();
        assert!(!report.deadlocked);
        use agile_metrics::Labels;
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("agile_engine_thread_count", Labels::NONE), 2);
        assert!(snap.counter("agile_engine_epoch_advances_total", Labels::NONE) >= report.rounds);
        let advances: u64 = (0..2)
            .map(|t| snap.counter("agile_engine_thread_device_advances_total", Labels::partition(t)))
            .sum();
        assert!(advances > 0, "workers must report their device advances");
        assert_eq!(snap.gauge("agile_engine_thread_devices", Labels::partition(0)), 2);
        assert_eq!(snap.gauge("agile_engine_thread_devices", Labels::partition(1)), 2);
    }

    #[test]
    fn sequential_run_emits_no_parallel_metric_families() {
        let registry = std::sync::Arc::new(agile_metrics::MetricsRegistry::new());
        let mut eng = Engine::new(GpuConfig::tiny(1));
        eng.set_metrics(EngineMetrics::bind(&registry));
        eng.launch(
            LaunchConfig::new(1, 32).with_registers(16),
            Box::new(ComputeOnlyKernel {
                cycles_per_warp: Cycles(10),
                steps: 1,
            }),
        );
        eng.run();
        let snap = registry.snapshot();
        assert!(
            !snap.samples.iter().any(|s| {
                s.name.starts_with("agile_engine_epoch_")
                    || s.name.starts_with("agile_engine_thread_")
                    || s.name.starts_with("agile_engine_phase_")
                    || s.name.starts_with("agile_engine_warp_partition_")
            }),
            "unthreaded runs must not create the parallel metric families"
        );
    }

    #[test]
    fn barrier_spin_limit_zero_is_bit_identical() {
        // Spin limit 0 forces every barrier wait straight onto the
        // `thread::yield_now` fallback — the path a 1-core box lives on,
        // where spinning can never observe progress. The run must terminate
        // and stay bit-identical to the sequential scheduler.
        let run = |sched: EngineSched, limit: Option<u32>| {
            let flag = Arc::new(AtomicU64::new(0));
            let mut eng = Engine::new(GpuConfig::tiny(2));
            eng.set_scheduler(sched);
            if let Some(limit) = limit {
                eng.set_barrier_spin_limit(limit);
            }
            for (start, period, fires) in [(100, 313, 40), (150, 401, 30), (60, 257, 50)] {
                eng.add_shard_device(Box::new(Ticker::new(Arc::clone(&flag), start, period, fires)));
            }
            eng.launch(
                LaunchConfig::new(2, 64).with_registers(16),
                Box::new(WaitingAllKernel { flag, want: 3 }),
            );
            eng.run()
        };
        let base = run(EngineSched::EventQueue, None);
        assert!(!base.deadlocked);
        for limit in [0u32, 1, 4096] {
            let par = run(EngineSched::ParallelShards(3), Some(limit));
            assert_eq!(par.elapsed, base.elapsed, "spin limit {limit}");
            assert_eq!(par.rounds, base.rounds, "spin limit {limit}");
            assert_eq!(par.kernels[0].steps, base.kernels[0].steps);
        }
    }

    /// A plan-capable kernel: the plan tallies itself into a commutative
    /// counter, the commit observes the epoch-clean flag and then behaves
    /// exactly like `step`.
    struct PlannedKernel {
        plans: Arc<AtomicU64>,
        dirty_commits: Arc<AtomicU64>,
        steps: u32,
    }
    struct PlannedWarp {
        plans: Arc<AtomicU64>,
        dirty_commits: Arc<AtomicU64>,
        left: u32,
    }
    impl PlannedWarp {
        fn advance(&mut self) -> WarpStep {
            if self.left == 0 {
                return WarpStep::Done;
            }
            self.left -= 1;
            WarpStep::Busy(Cycles(100))
        }
    }
    impl crate::kernel::WarpKernel for PlannedWarp {
        fn step(&mut self, _ctx: &WarpCtx) -> WarpStep {
            self.advance()
        }
        fn parallel_capable(&self) -> bool {
            true
        }
        fn plan_step(&mut self, _ctx: &WarpCtx) -> bool {
            self.plans.fetch_add(1, Ordering::Relaxed);
            true
        }
        fn commit_step(&mut self, _ctx: &WarpCtx, epoch_clean: bool) -> WarpStep {
            if !epoch_clean {
                self.dirty_commits.fetch_add(1, Ordering::Relaxed);
            }
            self.advance()
        }
    }
    impl KernelFactory for PlannedKernel {
        fn create_warp(&self, _b: u32, _w: u32) -> Box<dyn crate::kernel::WarpKernel> {
            Box::new(PlannedWarp {
                plans: Arc::clone(&self.plans),
                dirty_commits: Arc::clone(&self.dirty_commits),
                left: self.steps,
            })
        }
        fn name(&self) -> &str {
            "planned"
        }
    }

    #[test]
    fn plan_capable_warps_are_planned_and_stay_bit_identical() {
        // All-capable epochs: workers plan every due warp, the coordinator
        // commits with `epoch_clean == true` throughout, and the report is
        // bit-identical to the sequential scheduler.
        let run = |sched: EngineSched| {
            let plans = Arc::new(AtomicU64::new(0));
            let dirty = Arc::new(AtomicU64::new(0));
            let mut eng = Engine::new(GpuConfig::tiny(2));
            eng.set_scheduler(sched);
            eng.launch(
                LaunchConfig::new(4, 32).with_registers(16),
                Box::new(PlannedKernel {
                    plans: Arc::clone(&plans),
                    dirty_commits: Arc::clone(&dirty),
                    steps: 20,
                }),
            );
            let report = eng.run();
            (
                report,
                plans.load(Ordering::Relaxed),
                dirty.load(Ordering::Relaxed),
            )
        };
        let (base, base_plans, _) = run(EngineSched::EventQueue);
        assert!(!base.deadlocked);
        assert_eq!(base_plans, 0, "sequential runs never call plan_step");
        let (par, par_plans, par_dirty) = run(EngineSched::ParallelShards(2));
        assert_eq!(par.elapsed, base.elapsed);
        assert_eq!(par.rounds, base.rounds);
        assert_eq!(par.kernels[0].steps, base.kernels[0].steps);
        assert_eq!(par.kernels[0].busy_cycles, base.kernels[0].busy_cycles);
        assert!(par_plans > 0, "threaded run must plan the capable warps");
        assert_eq!(
            par_dirty, 0,
            "epochs of only plan-capable warps must commit clean"
        );
    }

    #[test]
    fn serial_warps_dirty_the_epoch_for_later_commits() {
        // Mixed epochs: a serial (non-capable) kernel co-resident with the
        // plan-capable one flips `epoch_clean` off for any capable commit
        // after it in canonical order — and the run stays bit-identical.
        let run = |sched: EngineSched| {
            let plans = Arc::new(AtomicU64::new(0));
            let dirty = Arc::new(AtomicU64::new(0));
            let mut eng = Engine::new(GpuConfig::tiny(2));
            eng.set_scheduler(sched);
            // The serial kernel lands on SM 0 first; capable warps that
            // share its batch and sort after it see a dirty epoch.
            eng.launch(
                LaunchConfig::new(1, 32).with_registers(16),
                Box::new(ComputeOnlyKernel {
                    cycles_per_warp: Cycles(2_000),
                    steps: 20,
                }),
            );
            eng.launch(
                LaunchConfig::new(4, 32).with_registers(16),
                Box::new(PlannedKernel {
                    plans: Arc::clone(&plans),
                    dirty_commits: Arc::clone(&dirty),
                    steps: 20,
                }),
            );
            let report = eng.run();
            (
                report,
                plans.load(Ordering::Relaxed),
                dirty.load(Ordering::Relaxed),
            )
        };
        let (base, _, base_dirty) = run(EngineSched::EventQueue);
        assert!(!base.deadlocked);
        assert_eq!(base_dirty, 0);
        let (par, par_plans, par_dirty) = run(EngineSched::ParallelShards(2));
        assert_eq!(par.elapsed, base.elapsed);
        assert_eq!(par.rounds, base.rounds);
        for k in 0..2 {
            assert_eq!(par.kernels[k].steps, base.kernels[k].steps);
            assert_eq!(par.kernels[k].busy_cycles, base.kernels[k].busy_cycles);
        }
        assert!(par_plans > 0, "capable warps must still be planned");
        assert!(
            par_dirty > 0,
            "serial steps in the batch must dirty the epoch for later commits"
        );
    }

    #[test]
    fn full_scan_handles_waves_like_the_event_queue() {
        for sched in [EngineSched::EventQueue, EngineSched::FullScan] {
            let mut eng = Engine::new(GpuConfig::tiny(1));
            eng.set_scheduler(sched);
            eng.launch(
                LaunchConfig::new(16, 32).with_registers(16),
                Box::new(ComputeOnlyKernel {
                    cycles_per_warp: Cycles(1000),
                    steps: 1,
                }),
            );
            let report = eng.run();
            assert!(!report.deadlocked);
            assert!(
                report.elapsed.raw() >= 4000 && report.elapsed.raw() < 4400,
                "{sched:?} elapsed {}",
                report.elapsed
            );
        }
    }

    #[test]
    fn report_lookup_by_name() {
        let mut eng = Engine::new(GpuConfig::tiny(1));
        eng.launch(
            LaunchConfig::new(1, 32).with_registers(16),
            Box::new(ComputeOnlyKernel {
                cycles_per_warp: Cycles(10),
                steps: 1,
            }),
        );
        let report = eng.run();
        assert!(report.kernel("compute-only").is_some());
        assert!(report.kernel("missing").is_none());
    }
}
