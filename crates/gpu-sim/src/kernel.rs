//! Kernels, launch configurations, warps-as-state-machines and occupancy.
//!
//! A simulated CUDA kernel is a [`KernelFactory`] that manufactures one
//! [`WarpKernel`] state machine per warp when the engine places the warp's
//! thread block on an SM. Each [`WarpKernel::step`] call advances the warp by
//! one coarse-grained slice of work (a compute phase, an API call, a poll of
//! a barrier, …) and reports how long that slice keeps the warp busy — or
//! that the warp is stalled and when it should be re-polled.

use crate::config::GpuConfig;
use agile_sim::Cycles;
use serde::{Deserialize, Serialize};

/// Identifier of a launched kernel within an [`crate::engine::Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KernelId(pub u32);

/// Identity of one warp of one launched kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WarpId {
    /// Which kernel launch this warp belongs to.
    pub kernel: KernelId,
    /// Thread-block index within the grid (flattened).
    pub block: u32,
    /// Warp index within the block.
    pub warp: u32,
}

impl WarpId {
    /// A globally unique flat index (useful for seeding per-warp RNG streams
    /// or selecting NVMe queues, as the paper does "based on its thread
    /// index").
    pub fn flat(&self, warps_per_block: u32) -> u64 {
        (self.kernel.0 as u64) << 48
            | (self.block as u64 * warps_per_block as u64 + self.warp as u64)
    }
}

/// Kernel launch configuration (the `<<<gridDim, blockDim>>>` analogue plus
/// the static per-thread resource footprint the compiler would report).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub grid_dim: u32,
    /// Threads per block (must be a multiple of the warp size).
    pub block_dim: u32,
    /// Registers per thread (affects occupancy; see Figure 12).
    pub registers_per_thread: u32,
    /// Shared memory per block in bytes.
    pub shared_mem_per_block: u32,
    /// Persistent kernels (the AGILE service) run until explicitly stopped
    /// and do not gate engine completion.
    pub persistent: bool,
}

impl LaunchConfig {
    /// A simple launch with the given grid/block dimensions and a default
    /// 32-register footprint.
    pub fn new(grid_dim: u32, block_dim: u32) -> Self {
        LaunchConfig {
            grid_dim,
            block_dim,
            registers_per_thread: 32,
            shared_mem_per_block: 0,
            persistent: false,
        }
    }

    /// Set the per-thread register footprint.
    pub fn with_registers(mut self, regs: u32) -> Self {
        self.registers_per_thread = regs;
        self
    }

    /// Set the shared-memory-per-block footprint.
    pub fn with_shared_mem(mut self, bytes: u32) -> Self {
        self.shared_mem_per_block = bytes;
        self
    }

    /// Mark the kernel persistent (service kernels).
    pub fn persistent(mut self) -> Self {
        self.persistent = true;
        self
    }

    /// Warps per block under the device's warp size.
    pub fn warps_per_block(&self, gpu: &GpuConfig) -> u32 {
        debug_assert_eq!(self.block_dim % gpu.warp_size, 0);
        self.block_dim / gpu.warp_size
    }

    /// Total warps in the grid.
    pub fn total_warps(&self, gpu: &GpuConfig) -> u64 {
        self.grid_dim as u64 * self.warps_per_block(gpu) as u64
    }
}

/// Maximum number of this kernel's blocks that can be resident on one SM,
/// limited by the block/warp/register/shared-memory budgets — the
/// `cudaOccupancyMaxActiveBlocksPerMultiprocessor` analogue the host code
/// queries in Listing 1 (`queryOccupancy`).
pub fn occupancy(gpu: &GpuConfig, launch: &LaunchConfig) -> u32 {
    assert!(
        launch.block_dim <= gpu.max_threads_per_block,
        "block_dim {} exceeds device limit {}",
        launch.block_dim,
        gpu.max_threads_per_block
    );
    assert!(
        launch.block_dim.is_multiple_of(gpu.warp_size),
        "block_dim must be a warp-size multiple"
    );
    let warps_per_block = launch.block_dim / gpu.warp_size;
    let by_blocks = gpu.max_blocks_per_sm;
    let by_warps = gpu.max_warps_per_sm / warps_per_block.max(1);
    let regs_per_block = launch.registers_per_thread * launch.block_dim;
    let by_regs = gpu
        .registers_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(u32::MAX);
    let by_smem = gpu
        .shared_mem_per_sm
        .checked_div(launch.shared_mem_per_block)
        .unwrap_or(u32::MAX);
    by_blocks.min(by_warps).min(by_regs).min(by_smem)
}

/// What a warp did during one `step` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpStep {
    /// The warp executed work that keeps it busy for the given number of
    /// cycles; it will not be stepped again until that time has elapsed.
    Busy(Cycles),
    /// The warp cannot make progress (waiting on an I/O barrier, a BUSY cache
    /// line, a lock, …). `retry_after` is the poll interval after which the
    /// scheduler should step it again; it must be at least one cycle.
    Stall {
        /// Cycles to wait before re-polling this warp.
        retry_after: Cycles,
    },
    /// The warp has retired.
    Done,
}

/// Execution context handed to every [`WarpKernel::step`] call.
#[derive(Debug, Clone, Copy)]
pub struct WarpCtx {
    /// Current simulated time.
    pub now: Cycles,
    /// Identity of the warp being stepped.
    pub warp: WarpId,
    /// Number of active lanes in this warp (the tail warp of a block whose
    /// `block_dim` is not a warp multiple would have fewer; in this model it
    /// is always the full warp size).
    pub lanes: u32,
    /// GPU core clock in GHz (for converting nanosecond latencies).
    pub clock_ghz: f64,
}

/// Device code, expressed at warp granularity.
///
/// Implementations hold whatever state the warp needs across steps (loop
/// indices, outstanding transaction barriers, …) plus `Arc`s to the shared
/// structures (AGILE controller, caches, queues).
///
/// # The parallel warp phase (plan / commit)
///
/// The threaded engine (`EngineSched::ParallelShards`) splits each epoch in
/// two: phase A advances device partitions on the workers, phase B lets the
/// workers *plan* the due warps' steps in SM-affine partitions while the
/// coordinator is parked at the barrier, then the coordinator *commits* every
/// step in canonical `(sm, slot)` order. A kernel opts in by returning `true`
/// from [`parallel_capable`](Self::parallel_capable) and implementing the
/// plan/commit pair; everything else keeps running serially through
/// [`step`](Self::step) on the coordinator, bit-identically to the sequential
/// schedulers.
///
/// The contract a plan must honour:
///
/// - `plan_step` runs concurrently with other warps' plans (never with the
///   coordinator, never with phase A). It may read warp-local state freely,
///   and shared state only where every mutation of that state happens in
///   *serial-class* warp steps (e.g. I/O barrier completions, which only the
///   service/polling warps flip) — the engine invalidates the snapshot when
///   any serial-class warp steps in the same epoch. It must not mutate shared
///   state except through commutative collectors whose final snapshot is
///   order-independent.
/// - `commit_step` runs on the coordinator in canonical order and must
///   produce exactly the [`WarpStep`] and side effects `step` would have
///   produced at that position. When `epoch_clean` is `false`, a warp that
///   stepped serially earlier in the same epoch may have mutated what the
///   plan observed: the kernel must re-validate (typically a cheap re-scan)
///   and fall back to re-deriving the step — snapshot, validate, retry.
pub trait WarpKernel: Send {
    /// Execute the warp's next slice of work.
    fn step(&mut self, ctx: &WarpCtx) -> WarpStep;

    /// True when this kernel participates in the threaded engine's parallel
    /// warp phase. Sampled once, when the warp is placed on an SM.
    fn parallel_capable(&self) -> bool {
        false
    }

    /// Run the read-mostly prefix of the next step on a worker thread and
    /// stash the resulting plan in warp-local state. Returns `true` when a
    /// plan was recorded (the engine will call
    /// [`commit_step`](Self::commit_step)); `false` declines this step, and
    /// the engine falls back to a plain serial [`step`](Self::step).
    fn plan_step(&mut self, _ctx: &WarpCtx) -> bool {
        false
    }

    /// Commit a previously planned step on the coordinator. `epoch_clean` is
    /// `false` when any warp stepped serially earlier in this epoch's commit
    /// walk — the plan's snapshot of shared state may be stale and must be
    /// re-validated. The default ignores any plan and re-derives everything.
    fn commit_step(&mut self, ctx: &WarpCtx, _epoch_clean: bool) -> WarpStep {
        self.step(ctx)
    }
}

/// Manufactures the per-warp state machines of a kernel when its blocks are
/// placed on SMs.
pub trait KernelFactory: Send {
    /// Create the state machine for warp `warp` of block `block`.
    fn create_warp(&self, block: u32, warp: u32) -> Box<dyn WarpKernel>;

    /// Human-readable kernel name (for reports).
    fn name(&self) -> &str {
        "kernel"
    }
}

/// A trivial kernel whose warps compute for a fixed number of cycles and
/// finish. Used by engine tests and as a building block for calibration.
pub struct ComputeOnlyKernel {
    /// Busy time per warp.
    pub cycles_per_warp: Cycles,
    /// Number of equal steps to split the work into.
    pub steps: u32,
}

struct ComputeOnlyWarp {
    remaining_steps: u32,
    per_step: Cycles,
}

impl WarpKernel for ComputeOnlyWarp {
    fn step(&mut self, _ctx: &WarpCtx) -> WarpStep {
        if self.remaining_steps == 0 {
            return WarpStep::Done;
        }
        self.remaining_steps -= 1;
        WarpStep::Busy(self.per_step)
    }
}

impl KernelFactory for ComputeOnlyKernel {
    fn create_warp(&self, _block: u32, _warp: u32) -> Box<dyn WarpKernel> {
        Box::new(ComputeOnlyWarp {
            remaining_steps: self.steps.max(1),
            per_step: Cycles(self.cycles_per_warp.raw() / self.steps.max(1) as u64),
        })
    }
    fn name(&self) -> &str {
        "compute-only"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_id_flat_is_unique_within_kernel() {
        let a = WarpId {
            kernel: KernelId(0),
            block: 0,
            warp: 1,
        };
        let b = WarpId {
            kernel: KernelId(0),
            block: 1,
            warp: 0,
        };
        assert_ne!(a.flat(4), b.flat(4));
        assert_eq!(a.flat(4), 1);
        assert_eq!(b.flat(4), 4);
    }

    #[test]
    fn launch_config_builders() {
        let gpu = GpuConfig::rtx_5000_ada();
        let lc = LaunchConfig::new(10, 256)
            .with_registers(64)
            .with_shared_mem(1024)
            .persistent();
        assert_eq!(lc.warps_per_block(&gpu), 8);
        assert_eq!(lc.total_warps(&gpu), 80);
        assert!(lc.persistent);
        assert_eq!(lc.registers_per_thread, 64);
    }

    #[test]
    fn occupancy_limited_by_warps() {
        let gpu = GpuConfig::rtx_5000_ada();
        // 1024-thread blocks = 32 warps; 48 warps/SM ⇒ only 1 block fits.
        let lc = LaunchConfig::new(1, 1024).with_registers(32);
        assert_eq!(occupancy(&gpu, &lc), 1);
        // 128-thread blocks = 4 warps ⇒ warp limit allows 12.
        let lc = LaunchConfig::new(1, 128).with_registers(32);
        assert_eq!(occupancy(&gpu, &lc), 12);
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let gpu = GpuConfig::rtx_5000_ada();
        // 256-thread blocks at 128 regs/thread = 32768 regs/block ⇒ 2 blocks.
        let lc = LaunchConfig::new(1, 256).with_registers(128);
        assert_eq!(occupancy(&gpu, &lc), 2);
        // Dropping to 64 regs/thread doubles it (until the warp limit caps it).
        let lc = LaunchConfig::new(1, 256).with_registers(64);
        assert_eq!(occupancy(&gpu, &lc), 4);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let gpu = GpuConfig::rtx_5000_ada();
        let lc = LaunchConfig::new(1, 64)
            .with_registers(16)
            .with_shared_mem(40 * 1024);
        assert_eq!(occupancy(&gpu, &lc), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds device limit")]
    fn occupancy_rejects_oversized_blocks() {
        let gpu = GpuConfig::tiny(1);
        let lc = LaunchConfig::new(1, 1024);
        occupancy(&gpu, &lc);
    }

    #[test]
    fn register_pressure_reduces_occupancy_monotonically() {
        // The motivation behind Figure 12: more registers per thread ⇒ fewer
        // resident blocks ⇒ less latency-hiding capacity.
        let gpu = GpuConfig::rtx_5000_ada();
        let mut last = u32::MAX;
        for regs in [32u32, 48, 64, 96, 128, 192, 255] {
            let lc = LaunchConfig::new(1, 256).with_registers(regs);
            let occ = occupancy(&gpu, &lc);
            assert!(occ <= last, "occupancy must not increase with registers");
            last = occ;
        }
    }

    #[test]
    fn compute_only_kernel_steps_to_completion() {
        let k = ComputeOnlyKernel {
            cycles_per_warp: Cycles(1000),
            steps: 4,
        };
        let mut w = k.create_warp(0, 0);
        let ctx = WarpCtx {
            now: Cycles::ZERO,
            warp: WarpId {
                kernel: KernelId(0),
                block: 0,
                warp: 0,
            },
            lanes: 32,
            clock_ghz: 2.5,
        };
        let mut busy = Cycles::ZERO;
        loop {
            match w.step(&ctx) {
                WarpStep::Busy(c) => busy += c,
                WarpStep::Done => break,
                WarpStep::Stall { .. } => panic!("compute-only never stalls"),
            }
        }
        assert_eq!(busy, Cycles(1000));
    }
}
