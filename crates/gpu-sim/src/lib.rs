//! # gpu-sim — a SIMT GPU execution model
//!
//! The AGILE paper's behaviour rests on a handful of GPU architectural
//! mechanisms (paper §2.2): threads grouped into warps and thread blocks,
//! blocks statically resident on streaming multiprocessors (SMs) until they
//! finish, per-SM limits on resident warps / registers / shared memory that
//! bound how much latency warp scheduling can hide, and warp-level lockstep
//! execution. This crate models exactly those mechanisms as a deterministic,
//! discrete-event simulator:
//!
//! * [`config::GpuConfig`] — the device description (SM count, register file,
//!   warp limits, clock), with a preset for the RTX 5000 Ada used in the
//!   paper's testbed;
//! * [`kernel`] — the [`kernel::WarpKernel`] state-machine trait that device
//!   code implements, [`kernel::LaunchConfig`] and the occupancy calculator;
//! * [`registers`] — the static register-footprint model used to reproduce
//!   the paper's Figure 12;
//! * [`sm`] — resident-warp bookkeeping per SM;
//! * [`engine`] — the co-simulation engine that advances warps and external
//!   devices (SSDs) in virtual time.
//!
//! GPU "kernels" are written as warp-granular state machines: each call to
//! [`kernel::WarpKernel::step`] represents the next slice of work the warp
//! would execute, and returns either a busy time, a stall (with a retry
//! hint), or completion. The AGILE and BaM device-side libraries expose
//! non-blocking APIs that fit this model naturally.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod engine;
pub mod kernel;
pub mod registers;
pub mod sm;

pub use config::GpuConfig;
pub use engine::{
    Engine, EngineMetrics, EngineSched, EpochMailbox, ExecutionReport, ExternalDevice, KernelReport,
};
pub use kernel::{
    occupancy, KernelFactory, KernelId, LaunchConfig, WarpCtx, WarpId, WarpKernel, WarpStep,
};
pub use registers::{KernelRegisterModel, RegisterFootprint};
pub use sm::SmState;
