//! Static per-thread register-footprint model (paper Figure 12).
//!
//! The paper reports the per-thread register counts `nvcc` allocates for
//! three application kernels implemented on top of BaM and AGILE, and for the
//! AGILE service kernel. We cannot run the CUDA compiler, so this module
//! models the *cause* the paper identifies: a kernel's register footprint is
//! its own arithmetic state plus the live state of every device-side API
//! routine inlined into it; AGILE's routines are leaner and, crucially, AGILE
//! offloads CQ polling into the separate service kernel so user kernels do
//! not carry the poll-loop state at all.
//!
//! The model is `registers = base + Σ footprint(api routine)`, clamped to the
//! hardware maximum of 255 registers per thread. The footprint constants are
//! calibrated so the modelled totals land close to the paper's measurements;
//! EXPERIMENTS.md records modelled-vs-paper for every kernel.

use serde::{Deserialize, Serialize};

/// Hardware limit on registers per thread (NVIDIA parts).
pub const MAX_REGISTERS_PER_THREAD: u32 = 255;

/// A named register contribution of one device-side API routine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterFootprint {
    /// Routine name (for reports).
    pub name: String,
    /// Registers the routine keeps live in the calling kernel.
    pub registers: u32,
}

impl RegisterFootprint {
    /// Convenience constructor.
    pub fn new(name: &str, registers: u32) -> Self {
        RegisterFootprint {
            name: name.to_string(),
            registers,
        }
    }
}

/// Register footprints of the AGILE device-side API (per routine inlined into
/// a user kernel). CQ polling contributes zero because it lives in the
/// service kernel.
pub mod agile_footprints {
    use super::RegisterFootprint;

    /// Software-cache access path (`prefetch` / array operator).
    pub fn cache_access() -> RegisterFootprint {
        RegisterFootprint::new("agile::cache_access", 10)
    }
    /// Asynchronous issue path (`asyncRead` / `asyncWrite`, Algorithm 2).
    pub fn async_issue() -> RegisterFootprint {
        RegisterFootprint::new("agile::async_issue", 12)
    }
    /// Transaction-barrier wait (`AgileBuf::wait`).
    pub fn barrier_wait() -> RegisterFootprint {
        RegisterFootprint::new("agile::barrier_wait", 4)
    }
    /// Warp-level coalescing helper.
    pub fn warp_coalesce() -> RegisterFootprint {
        RegisterFootprint::new("agile::warp_coalesce", 4)
    }
    /// Per-thread registers of the dedicated AGILE service kernel itself
    /// (paper: 37 registers).
    pub const SERVICE_KERNEL_REGISTERS: u32 = 37;
}

/// Register footprints of the BaM-style synchronous API.
pub mod bam_footprints {
    use super::RegisterFootprint;

    /// Software-cache access path (lock acquire/release + line bookkeeping).
    pub fn cache_access() -> RegisterFootprint {
        RegisterFootprint::new("bam::cache_access", 14)
    }
    /// Synchronous read/write issue path.
    pub fn sync_issue() -> RegisterFootprint {
        RegisterFootprint::new("bam::sync_issue", 8)
    }
    /// In-kernel CQ polling loop state (head, phase, CID match, doorbell).
    pub fn cq_poll() -> RegisterFootprint {
        RegisterFootprint::new("bam::cq_poll", 8)
    }
}

/// The register model of one kernel variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRegisterModel {
    /// Kernel name.
    pub kernel: String,
    /// Registers the kernel's own computation keeps live.
    pub base: u32,
    /// API routines linked into the kernel.
    pub api: Vec<RegisterFootprint>,
}

impl KernelRegisterModel {
    /// Start a model for `kernel` with the kernel's own register need.
    pub fn new(kernel: &str, base: u32) -> Self {
        KernelRegisterModel {
            kernel: kernel.to_string(),
            base,
            api: Vec::new(),
        }
    }

    /// Add an API routine's footprint.
    pub fn with(mut self, fp: RegisterFootprint) -> Self {
        self.api.push(fp);
        self
    }

    /// Total per-thread registers, clamped to the hardware maximum.
    pub fn total(&self) -> u32 {
        let sum = self.base + self.api.iter().map(|f| f.registers).sum::<u32>();
        sum.min(MAX_REGISTERS_PER_THREAD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate_and_clamp() {
        let m = KernelRegisterModel::new("k", 20)
            .with(RegisterFootprint::new("a", 10))
            .with(RegisterFootprint::new("b", 5));
        assert_eq!(m.total(), 35);

        let big = KernelRegisterModel::new("k", 200).with(RegisterFootprint::new("a", 100));
        assert_eq!(big.total(), MAX_REGISTERS_PER_THREAD);
    }

    #[test]
    fn agile_api_is_leaner_than_bam() {
        let agile: u32 = [
            agile_footprints::cache_access().registers,
            agile_footprints::async_issue().registers,
            agile_footprints::barrier_wait().registers,
        ]
        .iter()
        .sum();
        let bam: u32 = [
            bam_footprints::cache_access().registers,
            bam_footprints::sync_issue().registers,
            bam_footprints::cq_poll().registers,
        ]
        .iter()
        .sum();
        assert!(
            agile < bam,
            "AGILE footprint {agile} must be below BaM {bam}"
        );
    }

    #[test]
    fn service_kernel_register_count_matches_paper() {
        assert_eq!(agile_footprints::SERVICE_KERNEL_REGISTERS, 37);
    }

    #[test]
    fn same_base_kernel_uses_fewer_registers_with_agile() {
        // Mirrors how Figure 12's kernels are constructed: identical kernel
        // base, different API stacks.
        let base = 30;
        let agile = KernelRegisterModel::new("spmv-agile", base)
            .with(agile_footprints::cache_access())
            .with(agile_footprints::async_issue())
            .with(agile_footprints::barrier_wait())
            .total();
        let bam = KernelRegisterModel::new("spmv-bam", base)
            .with(bam_footprints::cache_access())
            .with(bam_footprints::sync_issue())
            .with(bam_footprints::cq_poll())
            .total();
        assert!(agile < bam);
        // Ratio should be in the ballpark the paper reports (1.0–1.4×).
        let ratio = bam as f64 / agile as f64;
        assert!(ratio > 1.0 && ratio < 1.6, "ratio {ratio}");
    }
}
