//! Streaming-multiprocessor resident-state bookkeeping.
//!
//! The paper (§2.2) highlights the static resource allocation model of
//! current GPUs: once a thread block is scheduled onto an SM it occupies its
//! registers, shared memory and warp slots until every warp of the block
//! retires, even if those warps spend most of their time stalled. This module
//! tracks exactly that: which blocks are resident on an SM, what they
//! consume, and the per-warp execution state.

use crate::kernel::{WarpId, WarpKernel};
use crate::GpuConfig;
use agile_sim::Cycles;

/// One warp resident on an SM.
pub struct ResidentWarp {
    /// Identity of the warp.
    pub id: WarpId,
    /// Index of the owning kernel launch in the engine's kernel table.
    pub kernel_idx: usize,
    /// Index of the owning resident block in [`SmState::blocks`].
    pub block_slot: usize,
    /// The warp's state machine.
    pub state: Box<dyn WarpKernel>,
    /// Cached [`WarpKernel::parallel_capable`] answer, sampled at placement
    /// so the epoch hot path never pays a virtual call for serial kernels.
    pub plan_capable: bool,
    /// Next time the scheduler may step this warp.
    pub ready_at: Cycles,
    /// True once the warp returned [`crate::kernel::WarpStep::Done`].
    pub done: bool,
    /// Accumulated busy time.
    pub busy: Cycles,
    /// Accumulated stall time (the sum of the retry intervals it requested).
    pub stall: Cycles,
    /// Number of `step` calls.
    pub steps: u64,
}

/// One thread block resident on an SM.
pub struct ResidentBlock {
    /// Index of the owning kernel launch.
    pub kernel_idx: usize,
    /// Flattened block index within the grid.
    pub block_idx: u32,
    /// Total warps in the block.
    pub warps_total: u32,
    /// Warps that have retired.
    pub warps_done: u32,
    /// Registers this block pins on the SM.
    pub regs: u32,
    /// Shared memory this block pins on the SM.
    pub smem: u32,
    /// True once all warps retired and the resources were released.
    pub retired: bool,
}

/// The mutable state of one SM.
pub struct SmState {
    /// SM index.
    pub id: u32,
    /// Resident blocks (retired entries are kept for reporting; their
    /// resources are released).
    pub blocks: Vec<ResidentBlock>,
    /// Resident warps, including retired ones until their block is cleaned up.
    pub warps: Vec<ResidentWarp>,
    /// Warp slots currently in use.
    pub used_warps: u32,
    /// Registers currently in use.
    pub used_regs: u32,
    /// Shared memory currently in use.
    pub used_smem: u32,
    /// Number of blocks currently resident (not retired).
    pub live_blocks: u32,
}

impl SmState {
    /// An empty SM.
    pub fn new(id: u32) -> Self {
        SmState {
            id,
            blocks: Vec::new(),
            warps: Vec::new(),
            used_warps: 0,
            used_regs: 0,
            used_smem: 0,
            live_blocks: 0,
        }
    }

    /// Can a block with the given footprint be placed here?
    pub fn can_place(
        &self,
        gpu: &GpuConfig,
        warps: u32,
        regs_per_block: u32,
        smem_per_block: u32,
    ) -> bool {
        self.live_blocks < gpu.max_blocks_per_sm
            && self.used_warps + warps <= gpu.max_warps_per_sm
            && self.used_regs + regs_per_block <= gpu.registers_per_sm
            && self.used_smem + smem_per_block <= gpu.shared_mem_per_sm
    }

    /// Place a block and return the slot index its warps should reference.
    pub fn place_block(
        &mut self,
        kernel_idx: usize,
        block_idx: u32,
        warps: u32,
        regs_per_block: u32,
        smem_per_block: u32,
    ) -> usize {
        self.used_warps += warps;
        self.used_regs += regs_per_block;
        self.used_smem += smem_per_block;
        self.live_blocks += 1;
        self.blocks.push(ResidentBlock {
            kernel_idx,
            block_idx,
            warps_total: warps,
            warps_done: 0,
            regs: regs_per_block,
            smem: smem_per_block,
            retired: false,
        });
        self.blocks.len() - 1
    }

    /// Record that one warp of block `slot` retired. Returns true if the
    /// whole block retired with it (resources released).
    pub fn warp_retired(&mut self, slot: usize) -> bool {
        let block = &mut self.blocks[slot];
        debug_assert!(!block.retired, "warp retired on an already-retired block");
        block.warps_done += 1;
        if block.warps_done == block.warps_total {
            block.retired = true;
            self.used_warps -= block.warps_total;
            self.used_regs -= block.regs;
            self.used_smem -= block.smem;
            self.live_blocks -= 1;
            true
        } else {
            false
        }
    }

    /// Drop retired warps to keep the scheduler's scan short. Warps of
    /// non-retired blocks are kept even when individually done, because the
    /// block still pins its resources (static allocation model).
    pub fn compact(&mut self) {
        let blocks = &self.blocks;
        self.warps
            .retain(|w| !(w.done && blocks[w.block_slot].retired));
    }

    /// Number of warps that still have work (not done).
    pub fn live_warps(&self) -> usize {
        self.warps.iter().filter(|w| !w.done).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelId, WarpCtx, WarpStep};

    struct NopWarp;
    impl WarpKernel for NopWarp {
        fn step(&mut self, _ctx: &WarpCtx) -> WarpStep {
            WarpStep::Done
        }
    }

    fn wid(block: u32, warp: u32) -> WarpId {
        WarpId {
            kernel: KernelId(0),
            block,
            warp,
        }
    }

    #[test]
    fn placement_respects_limits() {
        let gpu = GpuConfig::tiny(1); // 8 warps, 4 blocks, 16384 regs per SM
        let mut sm = SmState::new(0);
        assert!(sm.can_place(&gpu, 4, 8000, 0));
        sm.place_block(0, 0, 4, 8000, 0);
        // Second identical block exceeds neither warps (8) nor regs (16000).
        assert!(sm.can_place(&gpu, 4, 8000, 0));
        sm.place_block(0, 1, 4, 8000, 0);
        // Third block exceeds the warp limit.
        assert!(!sm.can_place(&gpu, 4, 400, 0));
        assert_eq!(sm.live_blocks, 2);
    }

    #[test]
    fn block_retirement_releases_resources() {
        let gpu = GpuConfig::tiny(1);
        let mut sm = SmState::new(0);
        let slot = sm.place_block(0, 0, 2, 1000, 512);
        for w in 0..2 {
            sm.warps.push(ResidentWarp {
                id: wid(0, w),
                kernel_idx: 0,
                block_slot: slot,
                state: Box::new(NopWarp),
                plan_capable: false,
                ready_at: Cycles::ZERO,
                done: false,
                busy: Cycles::ZERO,
                stall: Cycles::ZERO,
                steps: 0,
            });
        }
        assert!(!sm.warp_retired(slot));
        assert_eq!(sm.used_warps, 2);
        assert!(sm.warp_retired(slot));
        assert_eq!(sm.used_warps, 0);
        assert_eq!(sm.used_regs, 0);
        assert_eq!(sm.used_smem, 0);
        assert_eq!(sm.live_blocks, 0);
        assert!(sm.can_place(&gpu, 8, 16_000, 0));
    }

    #[test]
    fn compact_drops_only_retired_blocks_warps() {
        let mut sm = SmState::new(0);
        let s0 = sm.place_block(0, 0, 1, 100, 0);
        let s1 = sm.place_block(0, 1, 1, 100, 0);
        for (slot, block) in [(s0, 0), (s1, 1)] {
            sm.warps.push(ResidentWarp {
                id: wid(block, 0),
                kernel_idx: 0,
                block_slot: slot,
                state: Box::new(NopWarp),
                plan_capable: false,
                ready_at: Cycles::ZERO,
                done: true,
                busy: Cycles::ZERO,
                stall: Cycles::ZERO,
                steps: 1,
            });
        }
        // Retire only block 0.
        assert!(sm.warp_retired(s0));
        sm.compact();
        assert_eq!(sm.warps.len(), 1);
        assert_eq!(sm.warps[0].id.block, 1);
        assert_eq!(sm.live_warps(), 0);
    }
}
