//! Snapshot exporters: JSON and Prometheus text exposition.
//!
//! Both formats are emitted deterministically (samples are already sorted by
//! `(name, labels)`) and both parse back (`from_json` / `from_prometheus`),
//! so a snapshot round-trips losslessly — the invariant the telemetry tests
//! pin. Everything is integers by construction: counters, gauges, bucket
//! counts and bucket indices are `u64`/`u32`, so no float formatting is
//! involved and byte-identity across runs is structural.
//!
//! Prometheus histograms are the standard `_bucket{le=…}` cumulative form
//! (upper bounds from the log-linear layout) plus `_sum`/`_count`, extended
//! with `_min`/`_max` lines so the tracked extremes survive the round trip.

use crate::registry::Labels;
use crate::snapshot::{HistoSnapshot, MetricValue, MetricsSnapshot, Sample};
use agile_trace::stats::{bucket_index, bucket_upper_bound};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

fn labels_json(labels: &Labels) -> String {
    let pairs: Vec<String> = labels
        .pairs()
        .into_iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

impl MetricsSnapshot {
    /// Serialize as deterministic JSON (integers only, samples in
    /// `(name, labels)` order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"samples\":[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"labels\":{}",
                s.name,
                labels_json(&s.labels)
            );
            match &s.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, ",\"type\":\"counter\",\"value\":{v}}}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, ",\"type\":\"gauge\",\"value\":{v}}}");
                }
                MetricValue::Histo(h) => {
                    let _ = write!(
                        out,
                        ",\"type\":\"histo\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                        h.count, h.sum, h.min, h.max
                    );
                    for (j, (idx, c)) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{idx},{c}]");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Parse a snapshot back from [`MetricsSnapshot::to_json`] output.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        let value = json::parse(text)?;
        let samples_v = value
            .field("samples")
            .ok_or_else(|| "missing samples".to_string())?;
        let mut samples = Vec::new();
        for item in samples_v.array()? {
            let name = item
                .field("name")
                .and_then(|v| v.string())
                .ok_or_else(|| "sample missing name".to_string())?;
            let mut labels = Labels::NONE;
            if let Some(lv) = item.field("labels") {
                for (k, v) in lv.object()? {
                    let id = v.number()? as u32;
                    match k.as_str() {
                        "tenant" => labels.tenant = Some(id),
                        "shard" => labels.shard = Some(id),
                        "device" => labels.device = Some(id),
                        "partition" => labels.partition = Some(id),
                        other => return Err(format!("unknown label key {other}")),
                    }
                }
            }
            let kind = item
                .field("type")
                .and_then(|v| v.string())
                .ok_or_else(|| "sample missing type".to_string())?;
            let value = match kind.as_str() {
                "counter" => MetricValue::Counter(
                    item.field("value")
                        .ok_or_else(|| "counter missing value".to_string())?
                        .number()?,
                ),
                "gauge" => MetricValue::Gauge(
                    item.field("value")
                        .ok_or_else(|| "gauge missing value".to_string())?
                        .number()?,
                ),
                "histo" => {
                    let num = |key: &str| -> Result<u64, String> {
                        item.field(key)
                            .ok_or_else(|| format!("histo missing {key}"))?
                            .number()
                    };
                    let mut buckets = Vec::new();
                    for pair in item
                        .field("buckets")
                        .ok_or_else(|| "histo missing buckets".to_string())?
                        .array()?
                    {
                        let pair = pair.array()?;
                        if pair.len() != 2 {
                            return Err("bucket pair must have two entries".into());
                        }
                        buckets.push((pair[0].number()? as u32, pair[1].number()?));
                    }
                    MetricValue::Histo(HistoSnapshot {
                        buckets,
                        count: num("count")?,
                        sum: num("sum")?,
                        min: num("min")?,
                        max: num("max")?,
                    })
                }
                other => return Err(format!("unknown sample type {other}")),
            };
            samples.push(Sample {
                name,
                labels,
                value,
            });
        }
        Ok(MetricsSnapshot { samples })
    }

    /// Serialize as Prometheus text exposition.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for s in &self.samples {
            let kind = match &s.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histo(_) => "histogram",
            };
            if last_name != Some(s.name.as_str()) {
                let _ = writeln!(out, "# TYPE {} {}", s.name, kind);
                last_name = Some(s.name.as_str());
            }
            let base_labels: Vec<String> = s
                .labels
                .pairs()
                .into_iter()
                .map(|(k, v)| format!("{k}=\"{v}\""))
                .collect();
            let plain = if base_labels.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", base_labels.join(","))
            };
            match &s.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, plain, v);
                }
                MetricValue::Histo(h) => {
                    let with_le = |le: &str| {
                        let mut ls = base_labels.clone();
                        ls.push(format!("le=\"{le}\""));
                        format!("{{{}}}", ls.join(","))
                    };
                    let mut cumulative = 0u64;
                    for &(idx, c) in &h.buckets {
                        cumulative += c;
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            s.name,
                            with_le(&bucket_upper_bound(idx as usize).to_string()),
                            cumulative
                        );
                    }
                    let _ = writeln!(out, "{}_bucket{} {}", s.name, with_le("+Inf"), h.count);
                    let _ = writeln!(out, "{}_sum{} {}", s.name, plain, h.sum);
                    let _ = writeln!(out, "{}_count{} {}", s.name, plain, h.count);
                    // Non-standard: the tracked extremes, so snapshots
                    // round-trip exactly through this format too.
                    let _ = writeln!(out, "{}_min{} {}", s.name, plain, h.min);
                    let _ = writeln!(out, "{}_max{} {}", s.name, plain, h.max);
                }
            }
        }
        out
    }

    /// Parse a snapshot back from [`MetricsSnapshot::to_prometheus`] output.
    pub fn from_prometheus(text: &str) -> Result<MetricsSnapshot, String> {
        use std::collections::BTreeMap;
        let mut kinds: BTreeMap<String, String> = BTreeMap::new();
        // Histogram accumulation keyed by (base name, labels).
        #[derive(Default)]
        struct HistoAcc {
            cumulative: Vec<(u64, u64)>, // (le, cumulative count) in order
            count: u64,
            sum: u64,
            min: u64,
            max: u64,
        }
        let mut plain: Vec<Sample> = Vec::new();
        let mut histos: BTreeMap<(String, Labels), HistoAcc> = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().ok_or("bad TYPE line")?;
                let kind = it.next().ok_or("bad TYPE line")?;
                kinds.insert(name.to_string(), kind.to_string());
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let (ident, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("bad sample line: {line}"))?;
            let (name, labels, le) = parse_ident(ident)?;
            // Histogram series lines carry a suffix on the base name.
            let histo_part = ["_bucket", "_sum", "_count", "_min", "_max"]
                .iter()
                .find_map(|suffix| {
                    let base = name.strip_suffix(suffix)?;
                    (kinds.get(base).map(String::as_str) == Some("histogram"))
                        .then(|| (base.to_string(), *suffix))
                });
            if let Some((base, suffix)) = histo_part {
                let acc = histos.entry((base, labels)).or_default();
                let v: u64 = value.parse().map_err(|_| format!("bad value: {value}"))?;
                match suffix {
                    "_bucket" => match le.as_deref() {
                        Some("+Inf") => {}
                        Some(le) => {
                            let le: u64 = le.parse().map_err(|_| format!("bad le: {le}"))?;
                            acc.cumulative.push((le, v));
                        }
                        None => return Err("bucket line without le".into()),
                    },
                    "_sum" => acc.sum = v,
                    "_count" => acc.count = v,
                    "_min" => acc.min = v,
                    "_max" => acc.max = v,
                    _ => unreachable!(),
                }
                continue;
            }
            if le.is_some() {
                return Err(format!("unexpected le label on {name}"));
            }
            let v: u64 = value.parse().map_err(|_| format!("bad value: {value}"))?;
            let value = match kinds.get(&name).map(String::as_str) {
                Some("counter") => MetricValue::Counter(v),
                Some("gauge") => MetricValue::Gauge(v),
                other => return Err(format!("unknown kind {other:?} for {name}")),
            };
            plain.push(Sample {
                name,
                labels,
                value,
            });
        }
        for ((name, labels), acc) in histos {
            let mut buckets = Vec::with_capacity(acc.cumulative.len());
            let mut prev = 0u64;
            for (le, cum) in acc.cumulative {
                let c = cum.saturating_sub(prev);
                prev = cum;
                if c > 0 {
                    buckets.push((bucket_index(le) as u32, c));
                }
            }
            plain.push(Sample {
                name,
                labels,
                value: MetricValue::Histo(HistoSnapshot {
                    buckets,
                    count: acc.count,
                    sum: acc.sum,
                    min: acc.min,
                    max: acc.max,
                }),
            });
        }
        plain.sort_by(|a, b| (&a.name, a.labels).cmp(&(&b.name, b.labels)));
        Ok(MetricsSnapshot { samples: plain })
    }
}

/// Parse `name{k="v",…}` into `(name, labels, le)`.
fn parse_ident(ident: &str) -> Result<(String, Labels, Option<String>), String> {
    let Some(brace) = ident.find('{') else {
        return Ok((ident.to_string(), Labels::NONE, None));
    };
    let name = ident[..brace].to_string();
    let body = ident[brace + 1..]
        .strip_suffix('}')
        .ok_or_else(|| format!("unterminated labels in {ident}"))?;
    let mut labels = Labels::NONE;
    let mut le = None;
    for pair in body.split(',').filter(|p| !p.is_empty()) {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| format!("bad label pair {pair}"))?;
        let v = v
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted label value {v}"))?;
        if k == "le" {
            le = Some(v.to_string());
            continue;
        }
        let id: u32 = v.parse().map_err(|_| format!("bad label value {v}"))?;
        match k {
            "tenant" => labels.tenant = Some(id),
            "shard" => labels.shard = Some(id),
            "device" => labels.device = Some(id),
            "partition" => labels.partition = Some(id),
            other => return Err(format!("unknown label key {other}")),
        }
    }
    Ok((name, labels, le))
}

/// A minimal JSON reader covering exactly what [`MetricsSnapshot::to_json`]
/// emits: objects, arrays, strings without escapes, unsigned integers.
mod json {
    pub enum Value {
        Num(u64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn field(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn object(&self) -> Result<&Vec<(String, Value)>, String> {
            match self {
                Value::Obj(fields) => Ok(fields),
                _ => Err("expected object".into()),
            }
        }

        pub fn array(&self) -> Result<&Vec<Value>, String> {
            match self {
                Value::Arr(items) => Ok(items),
                _ => Err("expected array".into()),
            }
        }

        pub fn string(&self) -> Option<String> {
            match self {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            }
        }

        pub fn number(&self) -> Result<u64, String> {
            match self {
                Value::Num(n) => Ok(*n),
                _ => Err("expected number".into()),
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    expect(bytes, pos, b':')?;
                    fields.push((key, parse_value(bytes, pos)?));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("bad object at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("bad array at byte {pos}")),
                    }
                }
            }
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b) if b.is_ascii_digit() => {
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
                    *pos += 1;
                }
                std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|e| e.to_string())?
                    .parse()
                    .map(Value::Num)
                    .map_err(|e| e.to_string())
            }
            _ => Err(format!("unexpected byte at {pos}")),
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}"));
        }
        *pos += 1;
        let start = *pos;
        while *pos < bytes.len() && bytes[*pos] != b'"' {
            if bytes[*pos] == b'\\' {
                return Err("escapes are not supported".into());
            }
            *pos += 1;
        }
        if *pos >= bytes.len() {
            return Err("unterminated string".into());
        }
        let s = std::str::from_utf8(&bytes[start..*pos])
            .map_err(|e| e.to_string())?
            .to_string();
        *pos += 1;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LabelDim, MetricsRegistry};

    fn sample_registry() -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.counter("agile_submit_admissions_total", Labels::NONE)
            .add(42);
        let fam = reg.counter_family("agile_submit_qos_deferrals_total", LabelDim::Tenant);
        fam.add(0, 3);
        fam.add(1, 9);
        reg.gauge("agile_engine_ready_queue_high_water", Labels::NONE)
            .set(17);
        let h = reg.histo("agile_replay_latency_cycles", Labels::tenant(1));
        for v in [5u64, 5, 70, 4_000, 1 << 22] {
            h.record(v);
        }
        // An empty histogram must round-trip too.
        let _ = reg.histo("agile_replay_latency_cycles", Labels::tenant(2));
        reg.snapshot()
    }

    #[test]
    fn json_round_trips() {
        let snap = sample_registry();
        let parsed = MetricsSnapshot::from_json(&snap.to_json()).expect("parse back");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn prometheus_round_trips() {
        let snap = sample_registry();
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE agile_replay_latency_cycles histogram"));
        assert!(text.contains("agile_submit_qos_deferrals_total{tenant=\"1\"} 9"));
        let parsed = MetricsSnapshot::from_prometheus(&text).expect("parse back");
        assert_eq!(parsed, snap);
    }
}
