//! Unified metrics and telemetry for the AGILE reproduction.
//!
//! Every layer of the stack counts things privately — `ApiStats` on the
//! controllers, `TenantTable` in the cache, per-partition `ServiceStats`,
//! `DeviceStats` on the simulated SSDs. This crate turns those scattered
//! counters into one queryable surface:
//!
//! * [`MetricsRegistry`] — an append-only registry of typed, lock-free
//!   instruments ([`Counter`], [`Gauge`], [`Histo`]) registered under
//!   hierarchical names with a static label set ([`Labels`]: `tenant`,
//!   `shard`, `device`, `partition`). Instruments are plain atomic cells
//!   behind `Arc`s, in the same style as the cache's `TenantTable`: the hot
//!   path pays one relaxed atomic op, and when no registry is installed the
//!   instrumented components pay a single atomic load (the disabled path is
//!   a no-op — replay summaries stay byte-identical).
//! * [`Collector`] — a bridge polled at snapshot time, so layers that
//!   already keep atomic stats (cache, service, devices, topology lock)
//!   export them with **zero** extra hot-path cost.
//! * [`MetricsSnapshot`] — a point-in-time copy with delta/merge semantics,
//!   exportable as JSON ([`MetricsSnapshot::to_json`]) and Prometheus text
//!   ([`MetricsSnapshot::to_prometheus`]); both formats parse back for
//!   round-trip tests.
//! * [`WindowedSampler`] — driven by the *simulated* clock, snapshots the
//!   registry every N cycles and emits per-window deltas: windowed IOPS,
//!   p50/p95/p99 via histogram deltas, occupancy gauges — time series
//!   instead of end-of-run aggregates.
//!
//! # Naming scheme
//!
//! One rule across the stack: `agile_<layer>_<what>` with a `_total` suffix
//! on monotonic counters, label dimensions carried by [`Labels`] rather than
//! encoded in names. Layers in use:
//!
//! | layer     | examples                                                          |
//! |-----------|-------------------------------------------------------------------|
//! | `submit`  | `agile_submit_admissions_total`, `agile_submit_qos_deferrals_total{tenant}`, `agile_submit_lock_wait_cycles_total{shard}` |
//! | `cache`   | `agile_cache_hits_total`, `agile_cache_no_line_total`, `agile_cache_tenant_occupancy{tenant}` |
//! | `service` | `agile_service_completions_total{partition}`, `agile_service_idle_rounds_total{partition}` |
//! | `engine`  | `agile_engine_rounds_total`, `agile_engine_ready_queue_high_water` |
//! | `device`  | `agile_device_reads_completed_total{device}`, `agile_device_inflight{device}` |
//! | `replay`  | `agile_replay_ops_total{tenant}`, `agile_replay_latency_cycles{tenant}` |
//!
//! Histograms carry their unit as the trailing noun (`_cycles`). The
//! `Histo` instrument reuses `agile_trace::stats::LatencyHistogram`'s
//! log-linear bucketing (32 sub-buckets per octave, relative quantile error
//! ≤ 1/32), so percentiles computed from registry snapshots agree with the
//! replay reports.

pub mod export;
pub mod registry;
pub mod sampler;
pub mod snapshot;

pub use registry::{
    Collector, Counter, CounterFamily, Gauge, GaugeFamily, Histo, HistoFamily, LabelDim, Labels,
    MetricsRegistry,
};
pub use sampler::{windows_to_json, WindowSample, WindowedSampler};
pub use snapshot::{HistoSnapshot, MetricValue, MetricsSnapshot, Sample};
