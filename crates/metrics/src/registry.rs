//! The instrument types and the append-only registry.
//!
//! Instruments are `Arc`-shared atomic cells: recording is one (or, for
//! histograms, a handful of) `Ordering::Relaxed` atomic ops with no locks on
//! the hot path. The registry itself is an append-only map behind a
//! `parking_lot::RwLock`, mirroring the cache's `TenantTable`: lookups take
//! the read lock, the write lock is only ever taken the first time a
//! (name, labels) pair is seen.

use crate::snapshot::{HistoSnapshot, MetricValue, MetricsSnapshot, Sample};
use agile_trace::stats::{bucket_count, bucket_index};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Labels
// ---------------------------------------------------------------------------

/// The static label set of the stack: every metric is identified by its name
/// plus at most one value per dimension. Dimensions are fixed — ad-hoc label
/// keys would defeat the "one queryable surface" goal — and `None` simply
/// omits the dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Labels {
    /// Tenant id (the cache/QoS tenant space).
    pub tenant: Option<u32>,
    /// Storage lock shard index.
    pub shard: Option<u32>,
    /// Global device index.
    pub device: Option<u32>,
    /// Service partition index.
    pub partition: Option<u32>,
}

impl Labels {
    /// The empty label set.
    pub const NONE: Labels = Labels {
        tenant: None,
        shard: None,
        device: None,
        partition: None,
    };

    /// Label set with only `tenant` set.
    pub fn tenant(tenant: u32) -> Self {
        Labels {
            tenant: Some(tenant),
            ..Labels::NONE
        }
    }

    /// Label set with only `shard` set.
    pub fn shard(shard: u32) -> Self {
        Labels {
            shard: Some(shard),
            ..Labels::NONE
        }
    }

    /// Label set with only `device` set.
    pub fn device(device: u32) -> Self {
        Labels {
            device: Some(device),
            ..Labels::NONE
        }
    }

    /// Label set with only `partition` set.
    pub fn partition(partition: u32) -> Self {
        Labels {
            partition: Some(partition),
            ..Labels::NONE
        }
    }

    /// `(key, value)` pairs of the set dimensions, in fixed order.
    pub fn pairs(&self) -> Vec<(&'static str, u32)> {
        let mut out = Vec::new();
        if let Some(t) = self.tenant {
            out.push(("tenant", t));
        }
        if let Some(s) = self.shard {
            out.push(("shard", s));
        }
        if let Some(d) = self.device {
            out.push(("device", d));
        }
        if let Some(p) = self.partition {
            out.push(("partition", p));
        }
        out
    }
}

/// One label dimension — the key of an instrument *family* (a set of
/// same-named instruments differing only in that dimension's value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelDim {
    /// Keyed by tenant id.
    Tenant,
    /// Keyed by lock shard.
    Shard,
    /// Keyed by device index.
    Device,
    /// Keyed by service partition.
    Partition,
}

impl LabelDim {
    fn labels(self, id: u32) -> Labels {
        match self {
            LabelDim::Tenant => Labels::tenant(id),
            LabelDim::Shard => Labels::shard(id),
            LabelDim::Device => Labels::device(id),
            LabelDim::Partition => Labels::partition(id),
        }
    }
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing counter. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time value. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Raise the value to at least `v` (high-water marks).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
pub(crate) struct HistoCells {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Sum of samples. `u64` (not the live histogram's `u128`): latency
    /// sums over a replay stay far below 2^64.
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A lock-free log-linear histogram over `u64` samples, reusing
/// `agile_trace::stats::LatencyHistogram`'s bucketing (32 sub-buckets per
/// octave, relative quantile error ≤ 1/32 ≈ 3 %). Cloning shares the cells.
#[derive(Debug, Clone)]
pub struct Histo(Arc<HistoCells>);

impl Default for Histo {
    fn default() -> Self {
        Histo(Arc::new(HistoCells {
            buckets: (0..bucket_count()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histo {
    /// Record one sample — five relaxed atomic ops, no locks.
    #[inline]
    pub fn record(&self, value: u64) {
        let c = &self.0;
        c.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(value, Ordering::Relaxed);
        c.min.fetch_min(value, Ordering::Relaxed);
        c.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Point-in-time snapshot (sparse buckets).
    pub fn snapshot(&self) -> HistoSnapshot {
        let c = &self.0;
        let count = c.count.load(Ordering::Relaxed);
        if count == 0 {
            return HistoSnapshot::default();
        }
        let min = c.min.load(Ordering::Relaxed);
        let max = c.max.load(Ordering::Relaxed);
        // The tracked extremes bound the populated range, so the scan visits
        // only the live buckets instead of all ~2k (snapshots happen on
        // every sampler window — this is the layer's hottest read path).
        let buckets = (bucket_index(min)..=bucket_index(max))
            .filter_map(|i| {
                let n = c.buckets[i].load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistoSnapshot {
            buckets,
            count,
            sum: c.sum.load(Ordering::Relaxed),
            min,
            max,
        }
    }
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

#[derive(Clone)]
enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Histo(Histo),
}

struct Entry {
    name: &'static str,
    labels: Labels,
    cell: Cell,
}

#[derive(Default)]
struct Inner {
    entries: Vec<Entry>,
    index: BTreeMap<(&'static str, Labels), usize>,
}

/// A bridge polled at snapshot time. Layers that already keep atomic stats
/// (the cache's `TenantTable`, per-partition `ServiceStats`, `DeviceStats`)
/// implement this instead of double-counting on the hot path: registering a
/// collector costs those layers nothing until someone takes a snapshot.
pub trait Collector: Send + Sync {
    /// Append this layer's samples (names follow the crate naming scheme).
    fn collect(&self, out: &mut Vec<Sample>);
}

/// The append-only registry of instruments and collectors.
///
/// Hosts install one registry across the stack (`HostBuilder::metrics`);
/// components hold `OnceLock`-cached instrument handles, so an absent
/// registry costs a single atomic load per hot-path call site.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: RwLock<Inner>,
    collectors: RwLock<Vec<Box<dyn Collector>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(MetricsRegistry::default())
    }

    fn instrument(&self, name: &'static str, labels: Labels, make: impl FnOnce() -> Cell) -> Cell {
        if let Some(&i) = self.inner.read().index.get(&(name, labels)) {
            return self.inner.read().entries[i].cell.clone();
        }
        let mut inner = self.inner.write();
        if let Some(&i) = inner.index.get(&(name, labels)) {
            return inner.entries[i].cell.clone();
        }
        let cell = make();
        let i = inner.entries.len();
        inner.entries.push(Entry {
            name,
            labels,
            cell: cell.clone(),
        });
        inner.index.insert((name, labels), i);
        cell
    }

    /// Get or register the counter `name{labels}`. Re-registration returns
    /// the same cell; a kind mismatch on an existing name panics.
    pub fn counter(&self, name: &'static str, labels: Labels) -> Counter {
        match self.instrument(name, labels, || Cell::Counter(Counter::default())) {
            Cell::Counter(c) => c,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Get or register the gauge `name{labels}`.
    pub fn gauge(&self, name: &'static str, labels: Labels) -> Gauge {
        match self.instrument(name, labels, || Cell::Gauge(Gauge::default())) {
            Cell::Gauge(g) => g,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Get or register the histogram `name{labels}`.
    pub fn histo(&self, name: &'static str, labels: Labels) -> Histo {
        match self.instrument(name, labels, || Cell::Histo(Histo::default())) {
            Cell::Histo(h) => h,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// A counter family keyed by one label dimension (per-tenant, per-shard,
    /// …): members are registered lazily on first sight of each id, exactly
    /// like `TenantTable` rows.
    pub fn counter_family(self: &Arc<Self>, name: &'static str, dim: LabelDim) -> CounterFamily {
        CounterFamily {
            name,
            dim,
            registry: Arc::clone(self),
            cells: RwLock::new(BTreeMap::new()),
        }
    }

    /// A gauge family keyed by one label dimension.
    pub fn gauge_family(self: &Arc<Self>, name: &'static str, dim: LabelDim) -> GaugeFamily {
        GaugeFamily {
            name,
            dim,
            registry: Arc::clone(self),
            cells: RwLock::new(BTreeMap::new()),
        }
    }

    /// A histogram family keyed by one label dimension.
    pub fn histo_family(self: &Arc<Self>, name: &'static str, dim: LabelDim) -> HistoFamily {
        HistoFamily {
            name,
            dim,
            registry: Arc::clone(self),
            cells: RwLock::new(BTreeMap::new()),
        }
    }

    /// Register a snapshot-time bridge.
    pub fn register_collector(&self, collector: Box<dyn Collector>) {
        self.collectors.write().push(collector);
    }

    /// Point-in-time snapshot of every instrument and collector, sorted by
    /// `(name, labels)` for deterministic export order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut samples: Vec<Sample> = Vec::new();
        {
            let inner = self.inner.read();
            for e in &inner.entries {
                let value = match &e.cell {
                    Cell::Counter(c) => MetricValue::Counter(c.get()),
                    Cell::Gauge(g) => MetricValue::Gauge(g.get()),
                    Cell::Histo(h) => MetricValue::Histo(h.snapshot()),
                };
                samples.push(Sample {
                    name: e.name.to_string(),
                    labels: e.labels,
                    value,
                });
            }
        }
        for c in self.collectors.read().iter() {
            c.collect(&mut samples);
        }
        samples.sort_by(|a, b| (&a.name, a.labels).cmp(&(&b.name, b.labels)));
        MetricsSnapshot { samples }
    }
}

macro_rules! family {
    ($Family:ident, $Instrument:ident, $register:ident, $doc:expr) => {
        #[doc = $doc]
        pub struct $Family {
            name: &'static str,
            dim: LabelDim,
            registry: Arc<MetricsRegistry>,
            cells: RwLock<BTreeMap<u32, $Instrument>>,
        }

        impl $Family {
            /// The member instrument for `id`, registering it on first sight.
            /// The returned handle can be cached by the caller to skip the
            /// family's read-lock lookup entirely.
            pub fn with(&self, id: u32) -> $Instrument {
                if let Some(c) = self.cells.read().get(&id) {
                    return c.clone();
                }
                let cell = self.registry.$register(self.name, self.dim.labels(id));
                self.cells.write().entry(id).or_insert(cell).clone()
            }
        }
    };
}

family!(
    CounterFamily,
    Counter,
    counter,
    "A set of same-named counters keyed by one label dimension."
);
family!(
    GaugeFamily,
    Gauge,
    gauge,
    "A set of same-named gauges keyed by one label dimension."
);
family!(
    HistoFamily,
    Histo,
    histo,
    "A set of same-named histograms keyed by one label dimension."
);

impl CounterFamily {
    /// Increment the member for `id` (read-lock lookup + one relaxed add).
    #[inline]
    pub fn inc(&self, id: u32) {
        self.with(id).inc();
    }

    /// Add `n` to the member for `id`.
    #[inline]
    pub fn add(&self, id: u32, n: u64) {
        self.with(id).add(n);
    }
}

impl HistoFamily {
    /// Record one sample into the member for `id`.
    #[inline]
    pub fn record(&self, id: u32, value: u64) {
        self.with(id).record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_share_cells_and_reregister() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("agile_test_total", Labels::NONE);
        let b = reg.counter("agile_test_total", Labels::NONE);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = reg.gauge("agile_test_depth", Labels::shard(1));
        g.set(7);
        g.record_max(3);
        assert_eq!(g.get(), 7);
        g.sub(9);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn families_register_lazily_per_id() {
        let reg = MetricsRegistry::new();
        let fam = reg.counter_family("agile_test_by_tenant_total", LabelDim::Tenant);
        fam.inc(0);
        fam.add(3, 5);
        fam.inc(0);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("agile_test_by_tenant_total", Labels::tenant(0)),
            2
        );
        assert_eq!(
            snap.counter("agile_test_by_tenant_total", Labels::tenant(3)),
            5
        );
        assert_eq!(
            snap.counter("agile_test_by_tenant_total", Labels::tenant(9)),
            0
        );
    }

    #[test]
    fn histo_quantiles_match_live_histogram() {
        let reg = MetricsRegistry::new();
        let h = reg.histo("agile_test_cycles", Labels::NONE);
        let mut live = agile_trace::stats::LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 3);
            live.record(v * 3);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, live.count());
        assert_eq!(snap.p50(), live.p50());
        assert_eq!(snap.p99(), live.p99());
        assert_eq!(snap.min_value(), live.min());
        assert_eq!(snap.max_value(), live.max());
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("agile_test_total", Labels::NONE);
        let _ = reg.gauge("agile_test_total", Labels::NONE);
    }
}
