//! Windowed time-series sampling driven by the *simulated* clock.
//!
//! The sampler is a passive observer: the host's engine calls
//! [`WindowedSampler::observe`] with the current simulated time on every
//! scheduling round (through a bridge device that never schedules wakeups of
//! its own, so installing it cannot perturb replay timing). Whenever the
//! clock crosses a window boundary the registry is snapshotted and the delta
//! against the previous snapshot becomes that window's [`WindowSample`]:
//! counters become per-window increments, histograms become the window's
//! latency distribution (p50/p95/p99 via bucket deltas), gauges keep their
//! end-of-window value.
//!
//! Window edges are observed at the first engine round **at or after** each
//! boundary — activity between the boundary and that round smears into the
//! earlier window. Engine rounds are deterministic, so the smear is too:
//! identical runs produce identical series (pinned by the determinism test).

use crate::registry::MetricsRegistry;
use crate::snapshot::MetricsSnapshot;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One window of the time series: the registry delta over
/// `[start, end)` simulated cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSample {
    /// Window index (0-based).
    pub index: u64,
    /// Window start (cycles).
    pub start: u64,
    /// Window end (cycles; `start + window` except for a trailing partial
    /// window flushed at [`WindowedSampler::finish`]).
    pub end: u64,
    /// Registry delta over the window (gauges: end-of-window values).
    pub deltas: MetricsSnapshot,
}

impl WindowSample {
    /// Per-second rate of counter `name{labels}` over this window.
    pub fn rate(&self, name: &str, labels: crate::Labels, clock_ghz: f64) -> f64 {
        let secs = (self.end - self.start) as f64 / (clock_ghz * 1e9);
        if secs > 0.0 {
            self.deltas.counter(name, labels) as f64 / secs
        } else {
            0.0
        }
    }
}

struct SamplerState {
    prev: MetricsSnapshot,
    windows: Vec<WindowSample>,
    finished: bool,
}

/// Snapshots a [`MetricsRegistry`] every `window` simulated cycles,
/// producing a per-window time series.
pub struct WindowedSampler {
    registry: Arc<MetricsRegistry>,
    window: u64,
    /// Next boundary, readable without the state lock: the per-round fast
    /// path is one relaxed load and a compare.
    next_boundary: AtomicU64,
    state: Mutex<SamplerState>,
}

impl WindowedSampler {
    /// A sampler over `registry` with `window_cycles`-wide windows.
    pub fn new(registry: Arc<MetricsRegistry>, window_cycles: u64) -> Arc<Self> {
        let window = window_cycles.max(1);
        Arc::new(WindowedSampler {
            registry,
            window,
            next_boundary: AtomicU64::new(window),
            state: Mutex::new(SamplerState {
                prev: MetricsSnapshot::default(),
                windows: Vec::new(),
                finished: false,
            }),
        })
    }

    /// Window width in cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window
    }

    /// Observe the simulated clock at `now` cycles; emits one window per
    /// boundary crossed since the last call. Cheap when no boundary was
    /// crossed (one relaxed atomic load).
    pub fn observe(&self, now: u64) {
        if now < self.next_boundary.load(Ordering::Relaxed) {
            return;
        }
        let mut state = self.state.lock();
        if state.finished {
            return;
        }
        let mut boundary = self.next_boundary.load(Ordering::Relaxed);
        while now >= boundary {
            let snap = self.registry.snapshot();
            let deltas = snap.delta_since(&state.prev);
            state.prev = snap;
            state.windows.push(WindowSample {
                index: boundary / self.window - 1,
                start: boundary - self.window,
                end: boundary,
                deltas,
            });
            boundary += self.window;
        }
        self.next_boundary.store(boundary, Ordering::Relaxed);
    }

    /// Flush the trailing partial window `[last boundary, now)` (if any
    /// time elapsed past the last emitted boundary) and stop sampling.
    pub fn finish(&self, now: u64) {
        self.observe(now);
        let mut state = self.state.lock();
        if state.finished {
            return;
        }
        state.finished = true;
        let boundary = self.next_boundary.load(Ordering::Relaxed);
        let start = boundary - self.window;
        if now > start {
            let snap = self.registry.snapshot();
            let deltas = snap.delta_since(&state.prev);
            state.prev = snap;
            state.windows.push(WindowSample {
                index: boundary / self.window - 1,
                start,
                end: now,
                deltas,
            });
        }
    }

    /// The emitted windows so far, in time order.
    pub fn windows(&self) -> Vec<WindowSample> {
        self.state.lock().windows.clone()
    }

    /// Number of windows emitted so far (cheap: no cloning).
    pub fn window_count(&self) -> usize {
        self.state.lock().windows.len()
    }

    /// The emitted windows from index `start` onward, in time order — the
    /// incremental consumer API: remember how many windows you have seen and
    /// ask only for the tail, instead of cloning the whole series each poll.
    pub fn windows_from(&self, start: usize) -> Vec<WindowSample> {
        let state = self.state.lock();
        if start >= state.windows.len() {
            return Vec::new();
        }
        state.windows[start..].to_vec()
    }
}

/// Serialize a window series as a JSON array (each entry: window bounds plus
/// the delta snapshot in [`MetricsSnapshot::to_json`]'s sample format).
pub fn windows_to_json(windows: &[WindowSample]) -> String {
    let mut out = String::from("[");
    for (i, w) in windows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let samples = w.deltas.to_json();
        let _ = write!(
            out,
            "{{\"index\":{},\"start\":{},\"end\":{},\"deltas\":{}}}",
            w.index, w.start, w.end, samples
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Labels;

    #[test]
    fn windows_split_counter_increments() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("agile_test_total", Labels::NONE);
        let sampler = WindowedSampler::new(Arc::clone(&reg), 100);
        c.add(3);
        sampler.observe(40); // no boundary yet
        c.add(4);
        sampler.observe(110); // window 0 closes with all 7
        c.add(5);
        sampler.observe(330); // windows 1..3 close; only window at [200,300) is skipped over
        sampler.finish(350);
        let w = sampler.windows();
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].deltas.counter("agile_test_total", Labels::NONE), 7);
        // The boundary at 200 and 300 were crossed in one observe: the first
        // crossed window absorbs the activity, the next is empty.
        assert_eq!(w[1].deltas.counter("agile_test_total", Labels::NONE), 5);
        assert_eq!(w[2].deltas.counter("agile_test_total", Labels::NONE), 0);
        assert_eq!((w[3].start, w[3].end), (300, 350));
    }

    #[test]
    fn finish_is_idempotent_and_stops_sampling() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("agile_test_total", Labels::NONE);
        let sampler = WindowedSampler::new(Arc::clone(&reg), 100);
        c.inc();
        sampler.finish(50);
        let n = sampler.windows().len();
        c.inc();
        sampler.observe(500);
        sampler.finish(500);
        assert_eq!(sampler.windows().len(), n);
    }
}
