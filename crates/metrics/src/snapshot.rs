//! Point-in-time snapshots with delta and merge semantics.
//!
//! Snapshots are plain values: counters and histogram buckets subtract
//! (`delta_since`) and add (`merge`) bucket-wise, which is what gives the
//! [`crate::WindowedSampler`] its per-window percentiles — the delta of two
//! cumulative histograms *is* the histogram of the window.

use agile_trace::stats::bucket_upper_bound;

/// Sparse snapshot of a [`crate::Histo`]: `(bucket index, count)` pairs in
/// index order, plus the tracked aggregate cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoSnapshot {
    /// Non-empty buckets as `(index, count)`, ascending by index.
    pub buckets: Vec<(u32, u64)>,
    /// Total recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// Smallest recorded sample (`u64::MAX` when empty). Exact for live
    /// snapshots; bucket-resolution for deltas.
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
}

impl Default for HistoSnapshot {
    fn default() -> Self {
        HistoSnapshot {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistoSnapshot {
    /// Smallest recorded sample (`None` when empty).
    pub fn min_value(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max_value(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]` — the bucket upper bound, clamped
    /// into `[min, max]`, same contract as `LatencyHistogram::quantile`
    /// (≤ ~3 % high). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            seen += c;
            if seen >= target {
                return Some(bucket_upper_bound(i as usize).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median (p50).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Bucket-wise sum of two snapshots. Associative and commutative with
    /// the empty snapshot as identity.
    pub fn merge(&self, other: &HistoSnapshot) -> HistoSnapshot {
        let mut buckets: Vec<(u32, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        buckets.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        buckets.push((ib, cb));
                        b.next();
                    } else {
                        buckets.push((ia, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&e), None) => {
                    buckets.push(e);
                    a.next();
                }
                (None, Some(&&e)) => {
                    buckets.push(e);
                    b.next();
                }
                (None, None) => break,
            }
        }
        HistoSnapshot {
            buckets,
            count: self.count.saturating_add(other.count),
            sum: self.sum.saturating_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// The histogram of the interval between `earlier` and `self` (both
    /// cumulative snapshots of the same instrument): buckets, count and sum
    /// subtract; `min`/`max` are reconstructed from the surviving buckets at
    /// bucket resolution (the exact extremes of an interval are not
    /// recoverable from cumulative cells).
    pub fn delta_since(&self, earlier: &HistoSnapshot) -> HistoSnapshot {
        let mut buckets: Vec<(u32, u64)> = Vec::new();
        let earlier_at = |idx: u32| -> u64 {
            earlier
                .buckets
                .binary_search_by_key(&idx, |&(i, _)| i)
                .map(|p| earlier.buckets[p].1)
                .unwrap_or(0)
        };
        for &(i, c) in &self.buckets {
            let d = c.saturating_sub(earlier_at(i));
            if d > 0 {
                buckets.push((i, d));
            }
        }
        let min = buckets
            .first()
            .map(|&(i, _)| lower_bound(i as usize))
            .unwrap_or(u64::MAX);
        let max = buckets
            .last()
            .map(|&(i, _)| bucket_upper_bound(i as usize))
            .unwrap_or(0);
        HistoSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min,
            max,
        }
    }
}

/// Inclusive lower bound of bucket `index` (one past the previous bucket's
/// upper bound; bucket 0 starts at 0).
fn lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        bucket_upper_bound(index - 1).saturating_add(1)
    }
}

/// The value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Point-in-time gauge value.
    Gauge(u64),
    /// Histogram snapshot.
    Histo(HistoSnapshot),
}

impl MetricValue {
    /// Scalar view: the value of a counter or gauge, a histogram's count.
    pub fn as_u64(&self) -> u64 {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => *v,
            MetricValue::Histo(h) => h.count,
        }
    }
}

/// One named, labeled metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Metric name (`agile_<layer>_<what>{_total}`).
    pub name: String,
    /// Static label set.
    pub labels: crate::Labels,
    /// The value.
    pub value: MetricValue,
}

/// A point-in-time copy of a whole registry, sorted by `(name, labels)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// All samples, in deterministic order.
    pub samples: Vec<Sample>,
}

impl MetricsSnapshot {
    /// The sample `name{labels}`, if present.
    pub fn get(&self, name: &str, labels: crate::Labels) -> Option<&MetricValue> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == labels)
            .map(|s| &s.value)
    }

    /// Counter value of `name{labels}` (0 when absent).
    pub fn counter(&self, name: &str, labels: crate::Labels) -> u64 {
        match self.get(name, labels) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value of `name{labels}` (0 when absent).
    pub fn gauge(&self, name: &str, labels: crate::Labels) -> u64 {
        match self.get(name, labels) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram snapshot of `name{labels}`, if present.
    pub fn histo(&self, name: &str, labels: crate::Labels) -> Option<&HistoSnapshot> {
        match self.get(name, labels) {
            Some(MetricValue::Histo(h)) => Some(h),
            _ => None,
        }
    }

    /// All samples whose name is `name`, in label order (e.g. every tenant
    /// of a family).
    pub fn family<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Sample> + 'a {
        self.samples.iter().filter(move |s| s.name == name)
    }

    /// The interval between `earlier` and `self`: counters and histograms
    /// subtract, gauges keep their current (end-of-window) value. Samples
    /// absent from `earlier` are treated as zero there.
    ///
    /// Both snapshots carry their samples in `(name, labels)` order (the
    /// registry invariant), so matching is a single merge walk — this runs
    /// on every sampler window crossing and a quadratic scan shows up in the
    /// replay's overhead budget.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut prev = earlier.samples.iter().peekable();
        let mut samples = Vec::with_capacity(self.samples.len());
        for s in &self.samples {
            let key = (s.name.as_str(), s.labels);
            while prev
                .peek()
                .is_some_and(|p| (p.name.as_str(), p.labels) < key)
            {
                prev.next();
            }
            let matched = prev
                .peek()
                .filter(|p| (p.name.as_str(), p.labels) == key)
                .map(|p| &p.value);
            let value = match (&s.value, matched) {
                (MetricValue::Counter(v), Some(MetricValue::Counter(e))) => {
                    MetricValue::Counter(v.saturating_sub(*e))
                }
                (MetricValue::Histo(h), Some(MetricValue::Histo(e))) => {
                    MetricValue::Histo(h.delta_since(e))
                }
                // Gauges are point-in-time; counters/histos new this
                // window delta against zero.
                (v, _) => v.clone(),
            };
            samples.push(Sample {
                name: s.name.clone(),
                labels: s.labels,
                value,
            });
        }
        MetricsSnapshot { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histo_of(values: &[u64]) -> HistoSnapshot {
        let h = crate::Histo::default();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn merge_matches_combined_recording() {
        let a = histo_of(&[1, 5, 900, 70_000]);
        let b = histo_of(&[2, 5, 1_000_000]);
        let both = histo_of(&[1, 5, 900, 70_000, 2, 5, 1_000_000]);
        assert_eq!(a.merge(&b), both);
        assert_eq!(b.merge(&a), both);
        assert_eq!(a.merge(&HistoSnapshot::default()), a);
    }

    #[test]
    fn delta_recovers_the_interval() {
        let h = crate::Histo::default();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let early = h.snapshot();
        for v in [100u64, 200] {
            h.record(v);
        }
        let late = h.snapshot();
        let delta = late.delta_since(&early);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 300);
        assert_eq!(delta.buckets, histo_of(&[100, 200]).buckets);
        // min/max are bucket-resolution in deltas.
        assert!(delta.min <= 100 && delta.max >= 200);
    }

    #[test]
    fn snapshot_delta_subtracts_counters_keeps_gauges() {
        use crate::{Labels, MetricsRegistry};
        let reg = MetricsRegistry::new();
        let c = reg.counter("agile_test_total", Labels::NONE);
        let g = reg.gauge("agile_test_gauge", Labels::NONE);
        c.add(5);
        g.set(3);
        let early = reg.snapshot();
        c.add(7);
        g.set(11);
        let delta = reg.snapshot().delta_since(&early);
        assert_eq!(delta.counter("agile_test_total", Labels::NONE), 7);
        assert_eq!(delta.gauge("agile_test_gauge", Labels::NONE), 11);
    }
}
