//! Page content backings.
//!
//! The device model resolves a `(namespace, LBA)` to a [`PageToken`] through a
//! [`PageBacking`]. Three implementations cover the reproduction's needs:
//!
//! * [`ZeroBacking`] — every page reads as its deterministic "pristine" token;
//!   writes are validated but not stored. Used by the raw-bandwidth
//!   experiments (Figures 5/6), which never re-read written data.
//! * [`MemBacking`] — written pages are stored in a hash map; reads of
//!   untouched pages return the pristine token. Used by correctness tests and
//!   the graph workloads (the CSR arrays genuinely live "on the SSD").
//! * [`SyntheticBacking`] — page content is computed by a caller-supplied
//!   function of the LBA. Used by the DLRM embedding tables, which would be
//!   hundreds of gigabytes if materialised (DESIGN.md §2 substitution note).
//!
//! An optional byte-level payload store ([`MemBacking::with_payloads`]) keeps
//! real 4 KiB buffers (via `bytes::Bytes`) for the small tests that verify
//! byte-exact data movement end to end.

use crate::spec::{Lba, PageToken};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Resolves page content for a device.
pub trait PageBacking: Send + Sync {
    /// Token stored at `lba`.
    fn read(&self, lba: Lba) -> PageToken;
    /// Store `token` at `lba`.
    fn write(&self, lba: Lba, token: PageToken);
    /// Number of pages that have been explicitly written.
    fn written_pages(&self) -> usize;
}

/// Backing for experiments that never re-read their writes.
pub struct ZeroBacking {
    dev: u32,
    writes: std::sync::atomic::AtomicUsize,
}

impl ZeroBacking {
    /// Create a backing for device `dev`.
    pub fn new(dev: u32) -> Self {
        ZeroBacking {
            dev,
            writes: std::sync::atomic::AtomicUsize::new(0),
        }
    }
}

impl PageBacking for ZeroBacking {
    fn read(&self, lba: Lba) -> PageToken {
        PageToken::pristine(self.dev, lba)
    }
    fn write(&self, _lba: Lba, _token: PageToken) {
        self.writes
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn written_pages(&self) -> usize {
        self.writes.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Sparse in-memory backing storing written tokens (and optionally payloads).
pub struct MemBacking {
    dev: u32,
    pages: RwLock<HashMap<Lba, PageToken>>,
    payloads: Option<RwLock<HashMap<Lba, Bytes>>>,
}

impl MemBacking {
    /// Token-only backing for device `dev`.
    pub fn new(dev: u32) -> Self {
        MemBacking {
            dev,
            pages: RwLock::new(HashMap::new()),
            payloads: None,
        }
    }

    /// Backing that additionally stores byte payloads written through
    /// [`MemBacking::write_payload`].
    pub fn with_payloads(dev: u32) -> Self {
        MemBacking {
            dev,
            pages: RwLock::new(HashMap::new()),
            payloads: Some(RwLock::new(HashMap::new())),
        }
    }

    /// Store a byte payload (≤ 4 KiB) at `lba`, alongside a token derived
    /// from its contents.
    pub fn write_payload(&self, lba: Lba, data: Bytes) {
        assert!(data.len() <= 4096, "payload exceeds one page");
        let token = PageToken(fxhash64(&data));
        self.pages.write().insert(lba, token);
        if let Some(p) = &self.payloads {
            p.write().insert(lba, data);
        }
    }

    /// Fetch the byte payload stored at `lba`, if any.
    pub fn read_payload(&self, lba: Lba) -> Option<Bytes> {
        self.payloads
            .as_ref()
            .and_then(|p| p.read().get(&lba).cloned())
    }
}

/// A small FNV-1a style hash for payload → token derivation.
fn fxhash64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl PageBacking for MemBacking {
    fn read(&self, lba: Lba) -> PageToken {
        self.pages
            .read()
            .get(&lba)
            .copied()
            .unwrap_or_else(|| PageToken::pristine(self.dev, lba))
    }
    fn write(&self, lba: Lba, token: PageToken) {
        self.pages.write().insert(lba, token);
    }
    fn written_pages(&self) -> usize {
        self.pages.read().len()
    }
}

/// Backing whose read content is computed on demand from the LBA.
pub struct SyntheticBacking {
    gen: Box<dyn Fn(Lba) -> PageToken + Send + Sync>,
    overlay: RwLock<HashMap<Lba, PageToken>>,
}

impl SyntheticBacking {
    /// Create a backing whose pristine content is `gen(lba)`. Writes are
    /// stored in an overlay and shadow the generator.
    pub fn new(gen: impl Fn(Lba) -> PageToken + Send + Sync + 'static) -> Self {
        SyntheticBacking {
            gen: Box::new(gen),
            overlay: RwLock::new(HashMap::new()),
        }
    }
}

impl PageBacking for SyntheticBacking {
    fn read(&self, lba: Lba) -> PageToken {
        if let Some(t) = self.overlay.read().get(&lba) {
            return *t;
        }
        (self.gen)(lba)
    }
    fn write(&self, lba: Lba, token: PageToken) {
        self.overlay.write().insert(lba, token);
    }
    fn written_pages(&self) -> usize {
        self.overlay.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_backing_reads_pristine() {
        let b = ZeroBacking::new(2);
        assert_eq!(b.read(10), PageToken::pristine(2, 10));
        b.write(10, PageToken(99));
        // ZeroBacking intentionally discards writes.
        assert_eq!(b.read(10), PageToken::pristine(2, 10));
        assert_eq!(b.written_pages(), 1);
    }

    #[test]
    fn mem_backing_read_after_write() {
        let b = MemBacking::new(0);
        let pristine = b.read(5);
        assert_eq!(pristine, PageToken::pristine(0, 5));
        b.write(5, PageToken(1234));
        assert_eq!(b.read(5), PageToken(1234));
        assert_eq!(b.read(6), PageToken::pristine(0, 6));
        assert_eq!(b.written_pages(), 1);
    }

    #[test]
    fn mem_backing_payloads() {
        let b = MemBacking::with_payloads(0);
        let data = Bytes::from(vec![7u8; 512]);
        b.write_payload(3, data.clone());
        assert_eq!(b.read_payload(3).unwrap(), data);
        assert!(b.read_payload(4).is_none());
        // Token reflects the payload deterministically.
        let again = MemBacking::with_payloads(0);
        again.write_payload(3, data);
        assert_eq!(b.read(3), again.read(3));
    }

    #[test]
    #[should_panic(expected = "exceeds one page")]
    fn oversized_payload_rejected() {
        let b = MemBacking::with_payloads(0);
        b.write_payload(0, Bytes::from(vec![0u8; 5000]));
    }

    #[test]
    fn synthetic_backing_with_overlay() {
        let b = SyntheticBacking::new(|lba| PageToken(lba * 2));
        assert_eq!(b.read(21), PageToken(42));
        b.write(21, PageToken(7));
        assert_eq!(b.read(21), PageToken(7));
        assert_eq!(b.read(22), PageToken(44));
        assert_eq!(b.written_pages(), 1);
    }
}
