//! The SSD device model.
//!
//! One [`SsdDevice`] owns a set of registered I/O queue pairs (shared with the
//! GPU-side libraries), a [`PageBacking`], and a channel-parallel flash
//! back-end. Its behaviour follows the NVMe flow the paper describes in §2.1:
//!
//! 1. software writes commands into SQ slots and rings the SQ tail doorbell;
//! 2. after a command-fetch latency the device pulls entries in ring order,
//!    assigns each to the least-loaded flash channel and schedules its
//!    completion at `max(fetch_done, channel_free) + service + overhead`;
//! 3. at completion time the device performs the DMA (page token transfer)
//!    and posts a CQE — with the correct phase tag — into the paired CQ,
//!    *unless* the CQ is full, in which case the completion is parked until
//!    software frees CQ entries by ringing the CQ head doorbell (consuming
//!    entries). This models the "SSDs will stall while waiting for available
//!    CQEs" behaviour that motivates AGILE's dedicated polling service.
//!
//! The device is advanced by the co-simulation engine via
//! [`SsdDevice::advance_to`]; it never runs ahead of the GPU clock.

use crate::backing::PageBacking;
use crate::queue::QueuePair;
use crate::spec::{CmdStatus, NvmeCommand, NvmeCompletion, Opcode, PageToken, QueueId};
use agile_sim::costs::SsdCosts;
use agile_sim::trace::{TraceEvent, TraceEventKind, TraceSink};
use agile_sim::{Cycles, EventWheel};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

/// Static configuration of one simulated SSD.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Device index (also used to derive pristine page tokens).
    pub id: u32,
    /// Timing model.
    pub costs: SsdCosts,
    /// Namespace capacity in 4 KiB pages.
    pub namespace_pages: u64,
    /// GPU core clock in GHz, used to convert nanosecond latencies to cycles.
    pub clock_ghz: f64,
}

impl SsdConfig {
    /// A 1.6 TB-class device (≈400 M pages) with default timing.
    pub fn new(id: u32) -> Self {
        SsdConfig {
            id,
            costs: SsdCosts::default(),
            namespace_pages: 400_000_000,
            clock_ghz: agile_sim::DEFAULT_GPU_CLOCK_GHZ,
        }
    }

    /// Override the namespace capacity (pages).
    pub fn with_capacity_pages(mut self, pages: u64) -> Self {
        self.namespace_pages = pages;
        self
    }

    /// Override the timing model.
    pub fn with_costs(mut self, costs: SsdCosts) -> Self {
        self.costs = costs;
        self
    }
}

/// Aggregate statistics kept by the device.
///
/// Note: the unified registry exports these as `agile_device_*` labelled by
/// device index; this struct stays for direct programmatic access.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Read commands completed.
    pub reads_completed: u64,
    /// Write commands completed.
    pub writes_completed: u64,
    /// Flush commands completed.
    pub flushes_completed: u64,
    /// Commands that completed with a non-success status.
    pub errors: u64,
    /// Total bytes read from flash.
    pub bytes_read: u64,
    /// Total bytes written to flash.
    pub bytes_written: u64,
    /// Completions that had to be parked because the CQ was full.
    pub cq_stalls: u64,
    /// Doorbell ring events observed.
    pub doorbells: u64,
    /// Time of the last completion posted (cycles).
    pub last_completion: u64,
}

/// Per-SQ fetch cursor.
#[derive(Debug, Default)]
struct SqCursor {
    /// Next ring index the device will fetch from.
    fetch_head: u32,
    /// Last tail value observed via the doorbell.
    tail: u32,
}

/// Per-CQ posting state.
#[derive(Debug)]
struct CqCursor {
    /// Ring index the device will post the next CQE into.
    tail: u32,
    /// Current phase tag for entries posted on this pass of the ring.
    phase: bool,
    /// Completions waiting for CQ space.
    parked: VecDeque<PendingCompletion>,
}

impl Default for CqCursor {
    fn default() -> Self {
        CqCursor {
            tail: 0,
            // NVMe starts with phase = 1 on the first pass so that zeroed
            // (phase 0) entries are never mistaken for valid completions.
            phase: true,
            parked: VecDeque::new(),
        }
    }
}

/// A completion that has finished flash service and is ready to be posted.
#[derive(Debug, Clone)]
struct PendingCompletion {
    qid: QueueId,
    cid: u16,
    sq_head: u16,
    status: CmdStatus,
    /// For reads: token to DMA into the command's destination before posting.
    dma_token: Option<(crate::spec::DmaHandle, PageToken)>,
    /// Target page, kept for trace records.
    lba: u64,
    /// True when the command was a write (trace records).
    write: bool,
}

/// Internal device events.
enum DeviceEvent {
    /// A doorbell ring becomes visible to the controller; fetch new commands.
    FetchCommands { qid: QueueId, tail: u32 },
    /// A command finishes flash service.
    Complete(PendingCompletion),
}

/// One simulated NVMe SSD.
pub struct SsdDevice {
    cfg: SsdConfig,
    qps: Vec<Arc<QueuePair>>,
    sq_cursors: Vec<SqCursor>,
    cq_cursors: Vec<CqCursor>,
    backing: Arc<dyn PageBacking>,
    /// Busy-until time per flash channel.
    channels: Vec<Cycles>,
    events: EventWheel<DeviceEvent>,
    stats: DeviceStats,
    now: Cycles,
    /// Optional trace recorder for the completion path.
    trace: OnceLock<Arc<dyn TraceSink>>,
}

impl SsdDevice {
    /// Create a device with the given backing store.
    pub fn new(cfg: SsdConfig, backing: Arc<dyn PageBacking>) -> Self {
        let channels = vec![Cycles::ZERO; cfg.costs.channels as usize];
        SsdDevice {
            cfg,
            qps: Vec::new(),
            sq_cursors: Vec::new(),
            cq_cursors: Vec::new(),
            backing,
            channels,
            events: EventWheel::new(),
            stats: DeviceStats::default(),
            now: Cycles::ZERO,
            trace: OnceLock::new(),
        }
    }

    /// Install a trace sink recording every posted completion. Returns
    /// `false` if a sink was already installed (the first one wins).
    pub fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) -> bool {
        self.trace.set(sink).is_ok()
    }

    /// Device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// The page backing (shared with workload setup code).
    pub fn backing(&self) -> &Arc<dyn PageBacking> {
        &self.backing
    }

    /// Register an I/O queue pair (admin-queue `Create I/O SQ/CQ` analogue).
    /// Queue pairs must be registered before the simulation starts.
    pub fn register_queue_pair(&mut self, qp: Arc<QueuePair>) -> QueueId {
        let qid = self.qps.len() as QueueId;
        assert_eq!(
            qp.id(),
            qid,
            "queue pair id must match its registration order"
        );
        self.qps.push(qp);
        self.sq_cursors.push(SqCursor::default());
        self.cq_cursors.push(CqCursor::default());
        qid
    }

    /// Number of registered queue pairs.
    pub fn queue_pair_count(&self) -> usize {
        self.qps.len()
    }

    /// The registered queue pairs (shared with the GPU-side libraries).
    pub fn queue_pairs(&self) -> &[Arc<QueuePair>] {
        &self.qps
    }

    /// Earliest pending internal event, if any (used by the engine to skip
    /// idle time).
    pub fn next_event_time(&mut self) -> Option<Cycles> {
        self.events.peek_time()
    }

    /// True when no commands are in flight and no completions are parked.
    pub fn quiescent(&self) -> bool {
        self.events.is_empty() && self.cq_cursors.iter().all(|c| c.parked.is_empty())
    }

    /// Commands currently in flight: scheduled completions plus completions
    /// parked behind a full CQ (the `agile_device_inflight` gauge).
    pub fn inflight(&self) -> u64 {
        self.events.len() as u64
            + self
                .cq_cursors
                .iter()
                .map(|c| c.parked.len() as u64)
                .sum::<u64>()
    }

    fn ns_to_cycles(&self, ns: agile_sim::Nanos) -> Cycles {
        ns.to_cycles(self.cfg.clock_ghz)
    }

    /// Advance the device to time `now`: observe doorbells, fetch commands,
    /// retire flash work and post completions.
    pub fn advance_to(&mut self, now: Cycles) {
        debug_assert!(now >= self.now, "device clock moved backwards");
        self.now = now;

        // 1. Observe doorbell rings (SQ tails). The GPU side records the ring
        //    time; the controller notices after `command_fetch`.
        for qid in 0..self.qps.len() {
            let qp = Arc::clone(&self.qps[qid]);
            for (ring_time, tail) in qp.sq_doorbell.drain() {
                self.stats.doorbells += 1;
                let visible = ring_time + self.ns_to_cycles(self.cfg.costs.command_fetch);
                self.events.schedule(
                    visible,
                    DeviceEvent::FetchCommands {
                        qid: qid as QueueId,
                        tail,
                    },
                );
            }
        }

        // 2. Retry parked completions first — CQ space may have been freed.
        self.drain_parked();

        // 3. Fire due events.
        let due = self.events.pop_ready(now);
        for (at, ev) in due {
            match ev {
                DeviceEvent::FetchCommands { qid, tail } => self.fetch_commands(qid, tail, at),
                DeviceEvent::Complete(pending) => self.complete(pending, at),
            }
        }
    }

    /// Fetch commands from SQ `qid` up to ring index `tail`.
    fn fetch_commands(&mut self, qid: QueueId, tail: u32, at: Cycles) {
        let qp = Arc::clone(&self.qps[qid as usize]);
        let depth = qp.sq.depth();
        // Record the newest tail; fetch from our cursor to that tail.
        {
            let cur = &mut self.sq_cursors[qid as usize];
            cur.tail = tail % depth;
        }
        loop {
            let (fetch_head, tail) = {
                let cur = &self.sq_cursors[qid as usize];
                (cur.fetch_head, cur.tail)
            };
            if fetch_head == tail {
                break;
            }
            let Some(cmd) = qp.sq.take_slot(fetch_head) else {
                // The doorbell ran ahead of the command becoming visible.
                // Real hardware would read whatever bytes are there; AGILE's
                // serialization protocol (Algorithm 2) exists precisely to
                // prevent this. Treat it as "nothing to fetch yet".
                break;
            };
            qp.sq.advance_head();
            {
                let cur = &mut self.sq_cursors[qid as usize];
                cur.fetch_head = (cur.fetch_head + 1) % depth;
            }
            self.schedule_command(qid, cmd, at);
        }
    }

    /// Assign a fetched command to a flash channel and schedule completion.
    fn schedule_command(&mut self, qid: QueueId, cmd: NvmeCommand, at: Cycles) {
        let costs = &self.cfg.costs;
        let pages = cmd.page_count();
        let (status, service_ns, dma_token) = match cmd.opcode {
            Opcode::Read => {
                if cmd.slba + pages > self.cfg.namespace_pages {
                    (CmdStatus::LbaOutOfRange, agile_sim::Nanos::ZERO, None)
                } else {
                    let token = self.backing.read(cmd.slba);
                    (
                        CmdStatus::Success,
                        agile_sim::Nanos::new(costs.read_page_service.raw() * pages),
                        Some((cmd.dma.clone(), token)),
                    )
                }
            }
            Opcode::Write => {
                if cmd.slba + pages > self.cfg.namespace_pages {
                    (CmdStatus::LbaOutOfRange, agile_sim::Nanos::ZERO, None)
                } else {
                    // The device DMAs the payload out of the host buffer at
                    // fetch time; users must not reuse the buffer until the
                    // completion arrives (AGILE's Share Table enforces this).
                    let token = cmd.dma.load();
                    self.backing.write(cmd.slba, token);
                    (
                        CmdStatus::Success,
                        agile_sim::Nanos::new(costs.write_page_service.raw() * pages),
                        None,
                    )
                }
            }
            Opcode::Flush => (CmdStatus::Success, agile_sim::Nanos::ZERO, None),
        };

        // Pick the channel that frees up first (the FTL stripes pages across
        // channels; for single-page commands least-loaded assignment is
        // equivalent).
        let (ch_idx, ch_free) = self
            .channels
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|(_, busy)| *busy)
            .expect("device has at least one channel");
        let overhead = self.ns_to_cycles(costs.controller_overhead);
        let service = self.ns_to_cycles(service_ns);
        let start = at.max(ch_free);
        let flash_done = start + service;
        self.channels[ch_idx] = flash_done;
        let completion_at = flash_done + overhead + self.ns_to_cycles(costs.completion_post);

        let sq_head = self.qps[qid as usize].sq.head() as u16;
        self.events.schedule(
            completion_at,
            DeviceEvent::Complete(PendingCompletion {
                qid,
                cid: cmd.cid,
                sq_head,
                status,
                dma_token: if status.is_ok() { dma_token } else { None },
                lba: cmd.slba,
                write: cmd.opcode == Opcode::Write,
            }),
        );

        match (cmd.opcode, status.is_ok()) {
            (Opcode::Read, true) => {
                self.stats.reads_completed += 1;
                self.stats.bytes_read += pages * agile_sim::units::SSD_PAGE_SIZE;
            }
            (Opcode::Write, true) => {
                self.stats.writes_completed += 1;
                self.stats.bytes_written += pages * agile_sim::units::SSD_PAGE_SIZE;
            }
            (Opcode::Flush, true) => self.stats.flushes_completed += 1,
            _ => self.stats.errors += 1,
        }
    }

    /// A command finished flash service: DMA its data and post the CQE.
    fn complete(&mut self, pending: PendingCompletion, at: Cycles) {
        self.stats.last_completion = at.raw();
        self.try_post(pending);
    }

    fn try_post(&mut self, pending: PendingCompletion) {
        let qid = pending.qid as usize;
        let qp = Arc::clone(&self.qps[qid]);
        if qp.cq.is_full() {
            self.stats.cq_stalls += 1;
            self.cq_cursors[qid].parked.push_back(pending);
            return;
        }
        // Perform the "DMA" before the completion becomes visible, matching
        // hardware ordering guarantees.
        if let Some((dma, token)) = &pending.dma_token {
            dma.store(*token);
        }
        let cursor = &mut self.cq_cursors[qid];
        let cqe = NvmeCompletion {
            cid: pending.cid,
            sq_id: pending.qid,
            sq_head: pending.sq_head,
            status: pending.status,
            phase: cursor.phase,
        };
        qp.cq.post(cursor.tail, cqe);
        cursor.tail += 1;
        if cursor.tail == qp.cq.depth() {
            cursor.tail = 0;
            cursor.phase = !cursor.phase;
        }
        if let Some(sink) = self.trace.get() {
            sink.record(
                TraceEvent::new(TraceEventKind::DeviceCompletion, self.now.raw())
                    .target(self.cfg.id, pending.lba)
                    .queue(pending.qid, pending.cid)
                    .write(pending.write),
            );
        }
    }

    fn drain_parked(&mut self) {
        for qid in 0..self.qps.len() {
            while let Some(pending) = self.cq_cursors[qid].parked.pop_front() {
                if self.qps[qid].cq.is_full() {
                    self.cq_cursors[qid].parked.push_front(pending);
                    break;
                }
                self.try_post(pending);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::MemBacking;
    use crate::spec::DmaHandle;

    fn make_device(qp_depth: u32) -> (SsdDevice, Arc<QueuePair>) {
        let backing = Arc::new(MemBacking::new(0));
        let mut dev = SsdDevice::new(SsdConfig::new(0).with_capacity_pages(1 << 20), backing);
        let qp = QueuePair::new(0, qp_depth);
        dev.register_queue_pair(Arc::clone(&qp));
        (dev, qp)
    }

    /// Submit a command through the raw protocol (slot write + doorbell).
    fn submit(qp: &QueuePair, slot: u32, cmd: NvmeCommand, now: Cycles) {
        assert!(qp.sq.write_slot(slot, cmd));
        qp.sq_doorbell.ring((slot + 1) % qp.depth(), now);
    }

    /// Poll until a completion with the expected phase shows up at `idx`.
    fn wait_completion(
        dev: &mut SsdDevice,
        qp: &QueuePair,
        idx: u32,
        phase: bool,
        mut now: Cycles,
    ) -> (NvmeCompletion, Cycles) {
        for _ in 0..10_000 {
            dev.advance_to(now);
            if let Some(cqe) = qp.cq.poll_slot(idx, phase) {
                return (cqe, now);
            }
            now += Cycles(1_000);
        }
        panic!("completion never arrived");
    }

    #[test]
    fn read_completes_with_data_and_latency() {
        let (mut dev, qp) = make_device(16);
        let dma = DmaHandle::new();
        submit(&qp, 0, NvmeCommand::read(42, 7, dma.clone()), Cycles(0));
        let (cqe, when) = wait_completion(&mut dev, &qp, 0, true, Cycles(0));
        assert_eq!(cqe.cid, 42);
        assert!(cqe.status.is_ok());
        assert_eq!(dma.load(), PageToken::pristine(0, 7));
        // Latency should be in the tens of microseconds (≥ 20 µs at 2.5 GHz
        // = 50k cycles) and well under a millisecond.
        assert!(when.raw() > 50_000, "completed suspiciously fast: {when}");
        assert!(when.raw() < 2_500_000, "completed too slowly: {when}");
        assert_eq!(dev.stats().reads_completed, 1);
        assert_eq!(dev.stats().bytes_read, 4096);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (mut dev, qp) = make_device(16);
        let wdma = DmaHandle::with_token(PageToken(0xFEED));
        submit(&qp, 0, NvmeCommand::write(1, 99, wdma), Cycles(0));
        let (wc, t) = wait_completion(&mut dev, &qp, 0, true, Cycles(0));
        assert!(wc.status.is_ok());
        qp.cq.consume(1);

        let rdma = DmaHandle::new();
        submit(&qp, 1, NvmeCommand::read(2, 99, rdma.clone()), t);
        let (rc, _) = wait_completion(&mut dev, &qp, 1, true, t);
        assert!(rc.status.is_ok());
        assert_eq!(rdma.load(), PageToken(0xFEED));
        assert_eq!(dev.stats().writes_completed, 1);
        assert_eq!(dev.stats().reads_completed, 1);
    }

    #[test]
    fn out_of_range_read_errors() {
        let (mut dev, qp) = make_device(8);
        let dma = DmaHandle::new();
        submit(
            &qp,
            0,
            NvmeCommand::read(3, u64::MAX / 8192, dma.clone()),
            Cycles(0),
        );
        let (cqe, _) = wait_completion(&mut dev, &qp, 0, true, Cycles(0));
        assert_eq!(cqe.status, CmdStatus::LbaOutOfRange);
        assert_eq!(dma.load(), PageToken(0), "no DMA on failed read");
        assert_eq!(dev.stats().errors, 1);
    }

    #[test]
    fn cq_full_parks_completions_until_consumed() {
        let (mut dev, qp) = make_device(4);
        // Submit 4 commands; CQ depth is 4 so nothing needs to park yet, but
        // we don't consume, then submit 2 more after tail wraps.
        for i in 0..4u32 {
            submit(
                &qp,
                i,
                NvmeCommand::read(i as u16, i as u64, DmaHandle::new()),
                Cycles(0),
            );
        }
        let mut now = Cycles(0);
        for _ in 0..10_000 {
            dev.advance_to(now);
            if qp.cq.occupancy() == 4 {
                break;
            }
            now += Cycles(1_000);
        }
        assert_eq!(qp.cq.occupancy(), 4);
        assert!(qp.cq.is_full());

        // Two more commands; their completions must park.
        // SQ slots 0..3 were consumed by the device, so reuse slot 0 and 1;
        // the tail doorbell keeps increasing in ring order.
        assert!(qp
            .sq
            .write_slot(0, NvmeCommand::read(10, 100, DmaHandle::new())));
        assert!(qp
            .sq
            .write_slot(1, NvmeCommand::read(11, 101, DmaHandle::new())));
        qp.sq_doorbell.ring(2, now);
        for _ in 0..200 {
            now += Cycles(10_000);
            dev.advance_to(now);
        }
        assert!(dev.stats().cq_stalls > 0, "expected CQ stalls");
        assert!(!dev.quiescent());

        // Consume the first pass of completions; parked ones should now land
        // with the flipped phase.
        qp.cq.consume(4);
        for _ in 0..200 {
            now += Cycles(10_000);
            dev.advance_to(now);
            if qp.cq.occupancy() == 2 {
                break;
            }
        }
        assert_eq!(qp.cq.occupancy(), 2);
        // Second pass ⇒ phase flipped to false.
        assert!(qp.cq.poll_slot(0, false).is_some());
        assert!(qp.cq.poll_slot(1, false).is_some());
        assert!(dev.quiescent());
    }

    #[test]
    fn throughput_saturates_near_configured_bandwidth() {
        let (mut dev, qp) = make_device(256);
        // Keep the device saturated with 4 KiB reads for a simulated stretch
        // and check the aggregate bandwidth approaches ~3.7 GB/s.
        let mut now = Cycles(0);
        let mut next_slot = 0u32;
        let mut issued = 0u64;
        let mut consumed_total = 0u64;
        let mut phase = true;
        let mut poll_idx = 0u32;
        let total: u64 = 4096;
        while consumed_total < total {
            // Issue as many as the SQ allows (slots freed when device fetches).
            let mut batch = 0;
            while issued < total && batch < 64 && !qp.sq.slot_occupied(next_slot) {
                assert!(qp.sq.write_slot(
                    next_slot,
                    NvmeCommand::read(
                        (issued % 65_536) as u16,
                        issued % 1_000_000,
                        DmaHandle::new()
                    )
                ));
                next_slot = (next_slot + 1) % qp.depth();
                issued += 1;
                batch += 1;
            }
            if batch > 0 {
                qp.sq_doorbell.ring(next_slot, now);
            }
            dev.advance_to(now);
            // Consume whatever completed.
            let mut got = 0;
            while qp.cq.poll_slot(poll_idx, phase).is_some() {
                poll_idx += 1;
                if poll_idx == qp.cq.depth() {
                    poll_idx = 0;
                    phase = !phase;
                }
                got += 1;
            }
            if got > 0 {
                qp.cq.consume(got);
                consumed_total += got as u64;
            }
            now += Cycles(5_000);
        }
        let secs = now.to_secs(dev.config().clock_ghz);
        let gbps = agile_sim::units::gb_per_sec(total * 4096, secs);
        assert!(
            gbps > 2.8 && gbps < 4.2,
            "saturated read bandwidth {gbps:.2} GB/s out of expected range"
        );
    }
}
