//! Doorbell registers.
//!
//! In the real system the SQ tail doorbells live in the SSD's PCIe BAR, which
//! AGILE maps into the GPU's address space with `cudaHostRegister(...,
//! cudaHostRegisterIoMemory)` so device threads can ring them directly
//! (paper §3.1). Here a doorbell is an atomic register plus a timestamped
//! event queue the device model drains when the engine advances it: the value
//! is visible immediately (like a posted MMIO write) but the device only acts
//! on it after its command-fetch latency.

use agile_sim::Cycles;
use crossbeam::queue::SegQueue;
use std::sync::atomic::{AtomicU32, Ordering};

/// A single 32-bit doorbell register with a ring log.
pub struct DoorbellRegister {
    value: AtomicU32,
    rings: SegQueue<(Cycles, u32)>,
    ring_count: AtomicU32,
}

impl Default for DoorbellRegister {
    fn default() -> Self {
        Self::new()
    }
}

impl DoorbellRegister {
    /// A doorbell initialised to zero.
    pub fn new() -> Self {
        DoorbellRegister {
            value: AtomicU32::new(0),
            rings: SegQueue::new(),
            ring_count: AtomicU32::new(0),
        }
    }

    /// Ring the doorbell: store `value` at simulated time `now`.
    pub fn ring(&self, value: u32, now: Cycles) {
        self.value.store(value, Ordering::Release);
        self.rings.push((now, value));
        self.ring_count.fetch_add(1, Ordering::Relaxed);
    }

    /// The last value written (what the register currently reads).
    pub fn value(&self) -> u32 {
        self.value.load(Ordering::Acquire)
    }

    /// Device side: drain all pending ring events in FIFO order.
    pub fn drain(&self) -> Vec<(Cycles, u32)> {
        let mut out = Vec::new();
        while let Some(ev) = self.rings.pop() {
            out.push(ev);
        }
        out
    }

    /// Total number of times the doorbell has been rung.
    pub fn ring_count(&self) -> u32 {
        self.ring_count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_and_drain() {
        let db = DoorbellRegister::new();
        assert_eq!(db.value(), 0);
        db.ring(3, Cycles(100));
        db.ring(7, Cycles(200));
        assert_eq!(db.value(), 7);
        assert_eq!(db.ring_count(), 2);
        let drained = db.drain();
        assert_eq!(drained, vec![(Cycles(100), 3), (Cycles(200), 7)]);
        assert!(db.drain().is_empty());
        // Value persists after drain.
        assert_eq!(db.value(), 7);
    }

    #[test]
    fn concurrent_rings_are_all_observed() {
        use std::sync::Arc;
        use std::thread;
        let db = Arc::new(DoorbellRegister::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let db = Arc::clone(&db);
                thread::spawn(move || {
                    for i in 0..100u32 {
                        db.ring(t * 1000 + i, Cycles(i as u64));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(db.ring_count(), 400);
        assert_eq!(db.drain().len(), 400);
    }
}
