//! # nvme-sim — NVMe protocol and SSD device model
//!
//! This crate is the storage substrate of the AGILE reproduction. It models:
//!
//! * the NVMe I/O command set subset the paper exercises (4 KiB-page reads and
//!   writes) with protocol-faithful submission/completion queue rings,
//!   command identifiers, phase bits and doorbell registers ([`spec`],
//!   [`queue`], [`doorbell`]),
//! * an SSD device with a channel-parallel flash back-end whose saturation
//!   bandwidth matches the devices used in the paper (≈3.7 GB/s 4 KiB random
//!   read, ≈2.2 GB/s random write per SSD) and whose completions are delivered
//!   through a discrete-event wheel ([`device`]),
//! * the page *content* model: pages are represented by 64-bit
//!   [`PageToken`]s so terabyte-scale address spaces can be simulated without
//!   materialising 4 KiB buffers, while an optional byte-level backing
//!   ([`backing::MemBacking`]) provides full-fidelity payloads for small
//!   correctness tests ([`backing`]), and
//! * the multi-SSD storage topologies ([`topology`]): a [`StorageTopology`]
//!   trait with a single-lock [`FlatArray`] and a lock-partitioned
//!   [`ShardedArray`], both sharing one page-striping layer.
//!
//! The GPU-side libraries (`agile-core`, `bam-baseline`) share the queue rings
//! with the device through `Arc`s, exactly as the real system shares them
//! through GPU HBM exposed over PCIe BARs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backing;
pub mod device;
pub mod doorbell;
pub mod queue;
pub mod spec;
pub mod topology;

pub use backing::{MemBacking, PageBacking, SyntheticBacking, ZeroBacking};
pub use device::{DeviceStats, SsdConfig, SsdDevice};
pub use doorbell::DoorbellRegister;
pub use queue::{CompletionQueue, QueuePair, SubmissionQueue};
pub use spec::{
    CmdStatus, CommandId, DmaHandle, Lba, NvmeCommand, NvmeCompletion, Opcode, PageToken, QueueId,
};
pub use topology::{
    DeviceSet, FlatArray, PageLocation, Placement, ShardedArray, StorageTopology, TopologyLock,
};
