//! NVMe I/O queue pairs: submission and completion rings.
//!
//! The rings live — conceptually — in GPU HBM: both the GPU-side libraries
//! and the SSD device model hold `Arc`s to the same [`QueuePair`], mirroring
//! how the physical queues are allocated in pinned GPU memory and registered
//! with the SSD over the admin queue (paper §3.1).
//!
//! Slot contents are protected with per-slot `parking_lot::Mutex`es and the
//! ring pointers are atomics, so the structures are safe to drive from real
//! host threads in the stress tests as well as from the single-threaded
//! discrete-event engine.

use crate::doorbell::DoorbellRegister;
use crate::spec::{NvmeCommand, NvmeCompletion, QueueId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A submission queue ring.
///
/// Software writes commands into slots and advances the tail via the SQ
/// doorbell; the device fetches entries in ring order from its head up to the
/// last doorbelled tail.
pub struct SubmissionQueue {
    id: QueueId,
    depth: u32,
    slots: Vec<Mutex<Option<NvmeCommand>>>,
    /// Device-side head: how far the device has fetched (ring index).
    head: AtomicU32,
}

impl SubmissionQueue {
    /// Create a ring with `depth` entries (2 ≤ depth ≤ 65536).
    pub fn new(id: QueueId, depth: u32) -> Self {
        assert!((2..=65_536).contains(&depth), "invalid SQ depth {depth}");
        SubmissionQueue {
            id,
            depth,
            slots: (0..depth).map(|_| Mutex::new(None)).collect(),
            head: AtomicU32::new(0),
        }
    }

    /// Queue identifier.
    pub fn id(&self) -> QueueId {
        self.id
    }

    /// Ring depth in entries.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Write a command into slot `idx` (ring index). Returns false if the
    /// slot is already occupied — callers are expected to manage slot
    /// ownership (AGILE does so with its SQE lock words).
    pub fn write_slot(&self, idx: u32, cmd: NvmeCommand) -> bool {
        let mut slot = self.slots[(idx % self.depth) as usize].lock();
        if slot.is_some() {
            return false;
        }
        *slot = Some(cmd);
        true
    }

    /// Device side: take the command out of slot `idx`. Returns `None` when
    /// the slot is empty (which indicates a protocol bug — the doorbell said
    /// there was a command there).
    pub fn take_slot(&self, idx: u32) -> Option<NvmeCommand> {
        self.slots[(idx % self.depth) as usize].lock().take()
    }

    /// Peek whether slot `idx` currently holds a command.
    pub fn slot_occupied(&self, idx: u32) -> bool {
        self.slots[(idx % self.depth) as usize].lock().is_some()
    }

    /// Device-side head (ring index of the next entry to fetch).
    pub fn head(&self) -> u32 {
        self.head.load(Ordering::Acquire)
    }

    /// Advance the device-side head by one entry, wrapping at the depth.
    pub(crate) fn advance_head(&self) -> u32 {
        let mut cur = self.head.load(Ordering::Relaxed);
        loop {
            let next = (cur + 1) % self.depth;
            match self
                .head
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return next,
                Err(v) => cur = v,
            }
        }
    }
}

/// A completion queue ring.
///
/// The device posts entries with an alternating phase tag; software polls
/// slots, compares the phase against its expected value, and acknowledges
/// consumption by advancing the head (CQ doorbell), which frees the slots for
/// the device to reuse.
pub struct CompletionQueue {
    id: QueueId,
    depth: u32,
    slots: Vec<Mutex<Option<NvmeCompletion>>>,
    /// Software-side head (ring index of the next entry software will consume),
    /// as communicated to the device through the CQ doorbell.
    head: AtomicU32,
    /// Number of entries the device has posted in total (free-running), used
    /// to compute occupancy together with `consumed`.
    posted: AtomicU32,
    /// Number of entries software has consumed in total (free-running).
    consumed: AtomicU32,
}

impl CompletionQueue {
    /// Create a ring with `depth` entries.
    pub fn new(id: QueueId, depth: u32) -> Self {
        assert!((2..=65_536).contains(&depth), "invalid CQ depth {depth}");
        CompletionQueue {
            id,
            depth,
            slots: (0..depth).map(|_| Mutex::new(None)).collect(),
            head: AtomicU32::new(0),
            posted: AtomicU32::new(0),
            consumed: AtomicU32::new(0),
        }
    }

    /// Queue identifier.
    pub fn id(&self) -> QueueId {
        self.id
    }

    /// Ring depth in entries.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of posted-but-unconsumed entries.
    pub fn occupancy(&self) -> u32 {
        self.posted
            .load(Ordering::Acquire)
            .wrapping_sub(self.consumed.load(Ordering::Acquire))
    }

    /// True when the device has no free slot to post into.
    pub fn is_full(&self) -> bool {
        self.occupancy() >= self.depth
    }

    /// Device side: post a completion into slot `idx`. Panics if the slot is
    /// still occupied — the device must check [`CompletionQueue::is_full`]
    /// first (the real device stalls instead).
    pub(crate) fn post(&self, idx: u32, cqe: NvmeCompletion) {
        let mut slot = self.slots[(idx % self.depth) as usize].lock();
        assert!(
            slot.is_none(),
            "device overwrote an unconsumed CQE in CQ {} slot {}",
            self.id,
            idx
        );
        *slot = Some(cqe);
        self.posted.fetch_add(1, Ordering::AcqRel);
    }

    /// Poller side: read the completion in slot `idx` if its phase matches
    /// `expected_phase`. Does not consume the entry.
    pub fn poll_slot(&self, idx: u32, expected_phase: bool) -> Option<NvmeCompletion> {
        let slot = self.slots[(idx % self.depth) as usize].lock();
        match &*slot {
            Some(cqe) if cqe.phase == expected_phase => Some(*cqe),
            _ => None,
        }
    }

    /// Poller side: consume `count` entries starting at the current head and
    /// advance the head (this models writing the CQ head doorbell). The
    /// consumed slots are cleared so the device can reuse them.
    pub fn consume(&self, count: u32) {
        let mut head = self.head.load(Ordering::Acquire);
        for _ in 0..count {
            let mut slot = self.slots[(head % self.depth) as usize].lock();
            debug_assert!(slot.is_some(), "consuming an empty CQE slot");
            *slot = None;
            head = (head + 1) % self.depth;
        }
        self.head.store(head, Ordering::Release);
        self.consumed.fetch_add(count, Ordering::AcqRel);
    }

    /// The software-side head ring index (what the CQ doorbell last told the
    /// device).
    pub fn head(&self) -> u32 {
        self.head.load(Ordering::Acquire)
    }

    /// Total completions posted by the device (free-running counter).
    pub fn total_posted(&self) -> u32 {
        self.posted.load(Ordering::Acquire)
    }
}

/// A bound (submission queue, completion queue, SQ doorbell) triple.
///
/// The paper uses a 1:1 SQ:CQ mapping per I/O queue pair, which is what the
/// model provides.
pub struct QueuePair {
    /// Submission ring.
    pub sq: Arc<SubmissionQueue>,
    /// Completion ring.
    pub cq: Arc<CompletionQueue>,
    /// The SQ tail doorbell register (in the device's BAR).
    pub sq_doorbell: Arc<DoorbellRegister>,
}

impl QueuePair {
    /// Create a queue pair with both rings of the same `depth`.
    pub fn new(id: QueueId, depth: u32) -> Arc<Self> {
        Arc::new(QueuePair {
            sq: Arc::new(SubmissionQueue::new(id, depth)),
            cq: Arc::new(CompletionQueue::new(id, depth)),
            sq_doorbell: Arc::new(DoorbellRegister::new()),
        })
    }

    /// Identifier shared by both rings.
    pub fn id(&self) -> QueueId {
        self.sq.id()
    }

    /// Ring depth.
    pub fn depth(&self) -> u32 {
        self.sq.depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CmdStatus, DmaHandle, NvmeCommand};

    fn cmd(cid: u16) -> NvmeCommand {
        NvmeCommand::read(cid, cid as u64, DmaHandle::new())
    }

    fn cqe(cid: u16, phase: bool) -> NvmeCompletion {
        NvmeCompletion {
            cid,
            sq_id: 0,
            sq_head: 0,
            status: CmdStatus::Success,
            phase,
        }
    }

    #[test]
    fn sq_slot_write_take() {
        let sq = SubmissionQueue::new(0, 8);
        assert!(sq.write_slot(3, cmd(3)));
        assert!(!sq.write_slot(3, cmd(4)), "occupied slot must reject");
        assert!(sq.slot_occupied(3));
        let taken = sq.take_slot(3).unwrap();
        assert_eq!(taken.cid, 3);
        assert!(!sq.slot_occupied(3));
        assert!(sq.take_slot(3).is_none());
    }

    #[test]
    fn sq_head_wraps() {
        let sq = SubmissionQueue::new(0, 4);
        assert_eq!(sq.head(), 0);
        for expected in [1, 2, 3, 0, 1] {
            assert_eq!(sq.advance_head(), expected);
        }
    }

    #[test]
    #[should_panic(expected = "invalid SQ depth")]
    fn sq_rejects_tiny_depth() {
        SubmissionQueue::new(0, 1);
    }

    #[test]
    fn cq_post_poll_consume() {
        let cq = CompletionQueue::new(0, 4);
        assert!(!cq.is_full());
        cq.post(0, cqe(10, true));
        cq.post(1, cqe(11, true));
        assert_eq!(cq.occupancy(), 2);
        // Phase must match to observe entries.
        assert!(cq.poll_slot(0, false).is_none());
        assert_eq!(cq.poll_slot(0, true).unwrap().cid, 10);
        assert_eq!(cq.poll_slot(1, true).unwrap().cid, 11);
        assert!(cq.poll_slot(2, true).is_none());
        cq.consume(2);
        assert_eq!(cq.occupancy(), 0);
        assert_eq!(cq.head(), 2);
        assert_eq!(cq.total_posted(), 2);
    }

    #[test]
    fn cq_full_detection() {
        let cq = CompletionQueue::new(0, 2);
        cq.post(0, cqe(0, true));
        cq.post(1, cqe(1, true));
        assert!(cq.is_full());
        cq.consume(1);
        assert!(!cq.is_full());
    }

    #[test]
    #[should_panic(expected = "unconsumed CQE")]
    fn cq_overwrite_panics() {
        let cq = CompletionQueue::new(0, 2);
        cq.post(0, cqe(0, true));
        cq.post(0, cqe(1, true));
    }

    #[test]
    fn queue_pair_bundles() {
        let qp = QueuePair::new(5, 16);
        assert_eq!(qp.id(), 5);
        assert_eq!(qp.depth(), 16);
        assert_eq!(qp.sq.depth(), qp.cq.depth());
    }

    #[test]
    fn concurrent_slot_access_is_safe() {
        use std::thread;
        let sq = Arc::new(SubmissionQueue::new(0, 64));
        let mut handles = Vec::new();
        for t in 0..8u16 {
            let sq = Arc::clone(&sq);
            handles.push(thread::spawn(move || {
                let mut written = 0;
                for i in 0..64u32 {
                    if sq.write_slot(i, cmd(t * 100 + i as u16)) {
                        written += 1;
                    }
                }
                written
            }));
        }
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Exactly 64 slots exist; each accepts exactly one writer.
        assert_eq!(total, 64);
    }
}
