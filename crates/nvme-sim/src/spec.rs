//! NVMe command-set types.
//!
//! Only the pieces of the NVMe 1.4 I/O command set that the AGILE system
//! exercises are modelled: page-granular `Read` and `Write` commands, 16-bit
//! command identifiers (CIDs), completion entries carrying the submission
//! queue head pointer and a phase bit, and generic/status codes. Field names
//! follow the specification (`slba`, `nlb`, `cid`, …) so the code reads like
//! the driver it replaces.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Logical block address, in units of 4 KiB pages.
pub type Lba = u64;

/// A 16-bit NVMe command identifier. The paper (§3.2.1) notes the CID "should
/// be unique to identify commands within a batch using the same SQ"; the AGILE
/// service uses it to map completions back to SQ entries.
pub type CommandId = u16;

/// Index of an I/O queue pair on a device.
pub type QueueId = u16;

/// The modelled content of one 4 KiB flash page.
///
/// Pages are represented by a 64-bit token rather than a byte buffer so the
/// simulator can address terabyte-scale namespaces. A token is enough to
/// detect every data-hazard class the paper worries about (RAW/WAR/WAW):
/// stale data shows up as a stale token. Byte-accurate payloads are available
/// through [`crate::backing::MemBacking`] for small tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PageToken(pub u64);

impl PageToken {
    /// The token an untouched page of device `dev` at LBA `lba` carries.
    /// Deterministic so reads of never-written pages are still verifiable.
    pub fn pristine(dev: u32, lba: Lba) -> PageToken {
        // SplitMix-style mix of (dev, lba); any good 64-bit mixer works.
        let mut z = (dev as u64) << 48 ^ lba ^ 0x9E37_79B9_7F4A_7C15;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        PageToken(z ^ (z >> 31))
    }
}

impl fmt::Display for PageToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// I/O command opcodes (NVMe 1.4, figure 346).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Opcode {
    /// Flush (modelled as a no-op with controller latency).
    Flush = 0x00,
    /// Write one or more logical blocks.
    Write = 0x01,
    /// Read one or more logical blocks.
    Read = 0x02,
}

/// Completion status codes (generic command status subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmdStatus {
    /// Successful completion.
    Success,
    /// LBA out of the namespace's range.
    LbaOutOfRange,
    /// Opcode not supported by this model.
    InvalidOpcode,
    /// Internal device error (used by fault-injection tests).
    InternalError,
}

impl CmdStatus {
    /// True on success.
    pub fn is_ok(self) -> bool {
        matches!(self, CmdStatus::Success)
    }
}

/// A destination/source "PRP pointer": a shared 64-bit slot the device DMAs a
/// page token into (reads) or out of (writes).
///
/// In the real system the PRP entry in the SQE points at pinned GPU HBM
/// (a software-cache line or a user buffer registered through GDRCopy). Here
/// the handle wraps an `Arc<AtomicU64>` owned by whichever HBM structure the
/// transfer targets; the device stores/loads the page token through it at
/// completion time, giving the same "data is in place before the CQE is
/// visible" ordering the hardware provides.
#[derive(Debug, Clone, Default)]
pub struct DmaHandle {
    slot: Arc<AtomicU64>,
}

impl DmaHandle {
    /// A fresh, zeroed DMA target.
    pub fn new() -> Self {
        DmaHandle {
            slot: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A DMA region pre-filled with `token` (used as the source of writes).
    pub fn with_token(token: PageToken) -> Self {
        DmaHandle {
            slot: Arc::new(AtomicU64::new(token.0)),
        }
    }

    /// Read the token currently in the region.
    pub fn load(&self) -> PageToken {
        PageToken(self.slot.load(Ordering::Acquire))
    }

    /// Store a token into the region (device-side DMA write, or host-side
    /// buffer fill before a write command).
    pub fn store(&self, token: PageToken) {
        self.slot.store(token.0, Ordering::Release);
    }

    /// Two handles alias iff they wrap the same underlying slot.
    pub fn ptr_eq(&self, other: &DmaHandle) -> bool {
        Arc::ptr_eq(&self.slot, &other.slot)
    }
}

/// A submission queue entry (the subset of the 64-byte SQE the model needs).
#[derive(Debug, Clone)]
pub struct NvmeCommand {
    /// Command identifier; unique among in-flight commands of one SQ.
    pub cid: CommandId,
    /// Opcode.
    pub opcode: Opcode,
    /// Namespace id (1-based, as in NVMe). The model uses a single namespace.
    pub nsid: u32,
    /// Starting LBA (4 KiB pages).
    pub slba: Lba,
    /// Number of logical blocks, 0-based as in NVMe (0 means one block).
    pub nlb: u16,
    /// The simulated PRP entry: where read data lands / write data comes from.
    pub dma: DmaHandle,
}

impl NvmeCommand {
    /// Build a one-page read command.
    pub fn read(cid: CommandId, slba: Lba, dma: DmaHandle) -> Self {
        NvmeCommand {
            cid,
            opcode: Opcode::Read,
            nsid: 1,
            slba,
            nlb: 0,
            dma,
        }
    }

    /// Build a one-page write command.
    pub fn write(cid: CommandId, slba: Lba, dma: DmaHandle) -> Self {
        NvmeCommand {
            cid,
            opcode: Opcode::Write,
            nsid: 1,
            slba,
            nlb: 0,
            dma,
        }
    }

    /// Build a flush command.
    pub fn flush(cid: CommandId) -> Self {
        NvmeCommand {
            cid,
            opcode: Opcode::Flush,
            nsid: 1,
            slba: 0,
            nlb: 0,
            dma: DmaHandle::new(),
        }
    }

    /// Number of 4 KiB pages this command covers.
    pub fn page_count(&self) -> u64 {
        self.nlb as u64 + 1
    }
}

/// A completion queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvmeCompletion {
    /// Command identifier of the completed command.
    pub cid: CommandId,
    /// Which SQ the command came from.
    pub sq_id: QueueId,
    /// The device's current SQ head pointer (how far it has consumed the SQ).
    pub sq_head: u16,
    /// Completion status.
    pub status: CmdStatus,
    /// Phase tag; flips every time the device wraps the CQ. Pollers compare
    /// it against their expected phase to detect new entries.
    pub phase: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_tokens_are_deterministic_and_distinct() {
        let a = PageToken::pristine(0, 42);
        let b = PageToken::pristine(0, 42);
        let c = PageToken::pristine(0, 43);
        let d = PageToken::pristine(1, 42);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(c, d);
    }

    #[test]
    fn command_constructors() {
        let dma = DmaHandle::new();
        let r = NvmeCommand::read(7, 100, dma.clone());
        assert_eq!(r.opcode, Opcode::Read);
        assert_eq!(r.cid, 7);
        assert_eq!(r.slba, 100);
        assert_eq!(r.page_count(), 1);
        let w = NvmeCommand::write(8, 200, dma);
        assert_eq!(w.opcode, Opcode::Write);
        let f = NvmeCommand::flush(9);
        assert_eq!(f.opcode, Opcode::Flush);
    }

    #[test]
    fn dma_handle_store_load() {
        let h = DmaHandle::new();
        assert_eq!(h.load(), PageToken(0));
        h.store(PageToken(0xDEAD_BEEF));
        assert_eq!(h.load(), PageToken(0xDEAD_BEEF));
        let alias = h.clone();
        alias.store(PageToken(5));
        assert_eq!(h.load(), PageToken(5));
        assert!(h.ptr_eq(&alias));
        assert!(!h.ptr_eq(&DmaHandle::new()));
    }

    #[test]
    fn with_token_prefills() {
        let h = DmaHandle::with_token(PageToken(99));
        assert_eq!(h.load(), PageToken(99));
    }

    #[test]
    fn status_predicates() {
        assert!(CmdStatus::Success.is_ok());
        assert!(!CmdStatus::LbaOutOfRange.is_ok());
        assert!(!CmdStatus::InternalError.is_ok());
    }

    #[test]
    fn display_token() {
        let t = PageToken(0xABC);
        assert_eq!(format!("{t}"), "0x0000000000000abc");
    }
}
