//! Multi-SSD storage topologies.
//!
//! The paper's scaling experiments (Figures 5 and 6) attach up to three SSDs
//! to the host and stripe requests across them in an interleaved fashion
//! ("requests 0, 2, 4, … are issued to SSD1, while requests 1, 3, 5, … are
//! directed to SSD2"). This module generalises that design into a
//! [`StorageTopology`] trait with two implementations:
//!
//! * [`FlatArray`] — every device behind **one** lock, the original
//!   `SsdArray` behaviour. Cheap to build, but every submission serialises
//!   on the same lock, which is the scale-out blocker at production device
//!   counts.
//! * [`ShardedArray`] — the devices are partitioned into N shards, each with
//!   its **own** device set and lock. Submissions to different shards no
//!   longer serialise against each other; a sharded array with one shard is
//!   bit-identical to the flat array.
//!
//! Both expose the same **page-striping layer**: a global page index maps to
//! `(shard, device, device-local page)` via [`StorageTopology::map_page`],
//! so workloads address one linear page space regardless of topology. The
//! device/page mapping is identical for both topologies at equal device
//! count — only the lock partitioning differs — which is exactly what makes
//! flat-vs-sharded benchmark comparisons attribute their delta to the lock.
//!
//! The lock itself is *modeled*: real GPU-side array implementations guard
//! SQ-slot allocation and the doorbell update with a critical section, so
//! [`StorageTopology::lock_acquire`] charges each submission the FIFO wait
//! behind earlier holders plus its own hold time (see [`TopologyLock`]).
//! The simulation stays single-threaded and deterministic; the contention
//! shows up as cycles charged to the issuing warp.
//!
//! [`DeviceSet`] is the lock-free building block both topologies are made
//! of (every call-site of the old `SsdArray` name has migrated to the
//! [`StorageTopology`] implementations).

use crate::backing::{MemBacking, PageBacking};
use crate::device::{DeviceStats, SsdConfig, SsdDevice};
use crate::queue::QueuePair;
use crate::spec::{Lba, QueueId};
use agile_sim::trace::TraceSink;
use agile_sim::Cycles;
use parking_lot::Mutex;
use std::sync::Arc;

/// A set of SSDs addressed by device index, each behind its **own** mutex —
/// the building block both [`StorageTopology`] implementations are made of.
///
/// Per-device locking is what makes device-affine engine partitioning pay:
/// two workers advancing different devices of the *same* lock shard never
/// contend (the shard lock is a submission-cost *model*, see
/// [`TopologyLock`]; it is not a concurrency primitive here). All methods
/// take `&self` and lock only the devices they touch.
pub struct DeviceSet {
    devices: Vec<Mutex<SsdDevice>>,
}

impl DeviceSet {
    /// Build `count` devices with default configuration and token-only memory
    /// backings.
    pub fn new(count: usize) -> Self {
        let devices = (0..count)
            .map(|i| {
                Mutex::new(SsdDevice::new(
                    SsdConfig::new(i as u32),
                    Arc::new(MemBacking::new(i as u32)) as Arc<dyn PageBacking>,
                ))
            })
            .collect();
        DeviceSet { devices }
    }

    /// Build from explicit (config, backing) pairs.
    pub fn from_parts(parts: Vec<(SsdConfig, Arc<dyn PageBacking>)>) -> Self {
        let devices = parts
            .into_iter()
            .map(|(cfg, backing)| Mutex::new(SsdDevice::new(cfg, backing)))
            .collect();
        DeviceSet { devices }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the set holds no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Lock and access a device (registration, advancing, stats).
    pub fn device(&self, idx: usize) -> parking_lot::MutexGuard<'_, SsdDevice> {
        self.devices[idx].lock()
    }

    /// Register `queues_per_device` queue pairs of `depth` entries on every
    /// device and return them grouped by device.
    pub fn register_queues(
        &self,
        queues_per_device: usize,
        depth: u32,
    ) -> Vec<Vec<Arc<QueuePair>>> {
        self.devices
            .iter()
            .map(|dev| {
                let mut dev = dev.lock();
                (0..queues_per_device)
                    .map(|q| {
                        let qp = QueuePair::new(q as QueueId, depth);
                        dev.register_queue_pair(Arc::clone(&qp));
                        qp
                    })
                    .collect()
            })
            .collect()
    }

    /// Install a trace sink on every device's completion path (see
    /// [`SsdDevice::set_trace_sink`]). Returns `false` if any device already
    /// had a sink.
    pub fn set_trace_sink(&self, sink: &Arc<dyn TraceSink>) -> bool {
        let mut all_fresh = true;
        for dev in &self.devices {
            all_fresh &= dev.lock().set_trace_sink(Arc::clone(sink));
        }
        all_fresh
    }

    /// Install a trace sink on one device's completion path only (the
    /// threaded engine gives each device its own buffering sink). Returns
    /// `false` if the device already had one.
    pub fn set_device_trace_sink(&self, idx: usize, sink: &Arc<dyn TraceSink>) -> bool {
        self.devices[idx].lock().set_trace_sink(Arc::clone(sink))
    }

    /// Advance every device to `now`, in device order.
    pub fn advance_to(&self, now: Cycles) {
        for dev in &self.devices {
            dev.lock().advance_to(now);
        }
    }

    /// Advance only device `idx` to `now`. Devices are mutually independent
    /// between advancement boundaries, so callers may advance different
    /// devices concurrently.
    pub fn advance_device_to(&self, idx: usize, now: Cycles) {
        self.devices[idx].lock().advance_to(now);
    }

    /// Earliest pending event across all devices.
    pub fn next_event_time(&self) -> Option<Cycles> {
        self.devices
            .iter()
            .filter_map(|d| d.lock().next_event_time())
            .min()
    }

    /// Earliest pending event on device `idx`.
    pub fn device_next_event_time(&self, idx: usize) -> Option<Cycles> {
        self.devices[idx].lock().next_event_time()
    }

    /// True when every device is idle.
    pub fn quiescent(&self) -> bool {
        self.devices.iter().all(|d| d.lock().quiescent())
    }

    /// True when device `idx` is idle.
    pub fn device_quiescent(&self, idx: usize) -> bool {
        self.devices[idx].lock().quiescent()
    }

    /// Round-robin device partitioning for `workers` engine workers:
    /// position `i` of `order` lands in partition `i % workers` — the
    /// device-affine buckets the threaded engine pins to its worker threads
    /// (`order` is normally [`StorageTopology::device_advance_order`]).
    /// Partitions scale with fleet size, not lock-shard count: a one-shard
    /// topology still spreads its devices across every worker.
    pub fn partition_devices(&self, workers: usize, order: &[usize]) -> Vec<Vec<usize>> {
        let workers = workers.max(1);
        let mut parts: Vec<Vec<usize>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, &dev) in order.iter().enumerate() {
            debug_assert!(dev < self.devices.len());
            parts[i % workers].push(dev);
        }
        parts
    }

    /// Interleaved placement used by the scaling experiments: request `i`
    /// goes to device `i % n` at the same LBA it would use on a single
    /// device divided by the stripe width.
    pub fn interleave(&self, request_idx: u64, lba_space: u64) -> (usize, Lba) {
        let n = self.devices.len() as u64;
        let dev = (request_idx % n) as usize;
        let lba = (request_idx / n) % lba_space.max(1);
        (dev, lba)
    }

    /// Sum of bytes read across devices.
    pub fn total_bytes_read(&self) -> u64 {
        self.devices
            .iter()
            .map(|d| d.lock().stats().bytes_read)
            .sum()
    }

    /// Sum of bytes written across devices.
    pub fn total_bytes_written(&self) -> u64 {
        self.devices
            .iter()
            .map(|d| d.lock().stats().bytes_written)
            .sum()
    }

    /// Smallest namespace capacity across devices (0 for an empty set) —
    /// the per-device extent of the striped global page space.
    pub fn min_namespace_pages(&self) -> u64 {
        self.devices
            .iter()
            .map(|d| d.lock().config().namespace_pages)
            .min()
            .unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Striping
// ---------------------------------------------------------------------------

/// Where a global page lives: which lock shard, which device, which
/// device-local page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageLocation {
    /// Lock shard the owning device belongs to.
    pub shard: u32,
    /// Global device index.
    pub device: u32,
    /// Page index within the device's namespace.
    pub page: Lba,
}

/// How the striping layer places global pages onto devices. Both topologies
/// share one placement seed; every variant is **bijective** over
/// `devices × pages_per_device` (property-tested in
/// `tests/topology_striping.rs`), so changing the placement re-lays data out
/// without losing or aliasing any page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// The paper's interleave: global page `g` lives on device
    /// `g % devices` at local page `g / devices`. The golden-guarded
    /// default — every checked-in trace replays against it.
    #[default]
    Interleave,
    /// Hash-rotated interleave: the device order of each page *row*
    /// (`devices` consecutive globals sharing a local page) is rotated by a
    /// mixed hash of the row index, so sequential scans spread diagonally
    /// instead of lock-stepping device 0, 1, 2, … — the first alternative
    /// layout for data-placement experiments (range- and tenant-affine
    /// variants are follow-ups).
    Hash,
}

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mix.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Striping shared by both topologies under the given placement seed.
/// Bijective by construction: `Interleave` is the classic division pair;
/// `Hash` permutes the device index within each page row (a rotation by a
/// hash of the row), which preserves bijectivity row by row.
fn stripe(global: u64, devices: u64, placement: Placement) -> (u32, Lba) {
    debug_assert!(devices > 0);
    let page = global / devices;
    let slot = global % devices;
    let dev = match placement {
        Placement::Interleave => slot,
        Placement::Hash => (slot + mix64(page)) % devices,
    };
    (dev as u32, page)
}

// ---------------------------------------------------------------------------
// The modeled array lock
// ---------------------------------------------------------------------------

/// Default cycles a submission holds the array lock: the critical section
/// covers the SQ-slot claim and the serialized tail-doorbell update — an
/// uncached MMIO write over PCIe, a few hundred nanoseconds — so ~600 GPU
/// cycles at 2.5 GHz. This caps a single lock at ~4M submissions/s: above
/// NVMe saturation for the paper's 1–3 SSD experiments, binding for bursty
/// many-warp submission at production device counts.
pub const DEFAULT_LOCK_HOLD_CYCLES: u64 = 600;

#[derive(Debug, Default, Clone, Copy)]
struct ShardLockState {
    /// Simulated time until which the lock is held by queued acquirers.
    busy_until: u64,
    /// Last (warp, now) that acquired — consecutive acquires by the same
    /// warp within one step extend the hold instead of re-paying the queue
    /// wait (the warp is already past the queue; its later acquires happen
    /// back-to-back in real time even though the step reports one `now`).
    last: Option<(u64, u64)>,
    /// Accumulated FIFO queue-wait cycles charged on this shard (the
    /// contention signal surfaced as `agile_submit_lock_wait_cycles_total`
    /// and the replay summary's `lock_wait=` field).
    wait_cycles: u64,
    /// Total acquisitions charged on this shard.
    acquires: u64,
}

/// Deterministic FIFO model of the per-shard array lock.
///
/// Each acquisition at simulated time `now` waits for every earlier holder
/// (`busy_until - now`, if positive), then holds the lock for `hold` cycles;
/// the total is returned as cycles to charge the issuing warp. One state
/// cell per shard, so acquisitions in different shards never wait on each
/// other — this is the entire modeled difference between [`FlatArray`]
/// (one shard) and [`ShardedArray`] (N shards).
pub struct TopologyLock {
    shards: Vec<Mutex<ShardLockState>>,
    hold: u64,
}

impl TopologyLock {
    /// A lock partitioned into `shards` independent cells.
    pub fn new(shards: usize, hold: u64) -> Self {
        TopologyLock {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(ShardLockState::default()))
                .collect(),
            hold,
        }
    }

    /// Acquire the cell for `shard` on behalf of `warp` at time `now`;
    /// returns the cycles the acquisition costs (queue wait + hold).
    pub fn acquire(&self, shard: usize, warp: u64, now: Cycles) -> Cycles {
        let mut s = self.shards[shard % self.shards.len()].lock();
        let now = now.raw();
        s.acquires += 1;
        if s.last == Some((warp, now)) {
            // Same warp, same step: back-to-back re-acquire, no queue wait.
            s.busy_until += self.hold;
            return Cycles(self.hold);
        }
        let wait = s.busy_until.saturating_sub(now);
        s.busy_until = s.busy_until.max(now) + self.hold;
        s.last = Some((warp, now));
        s.wait_cycles += wait;
        Cycles(wait + self.hold)
    }

    /// Hold cycles per acquisition.
    pub fn hold_cycles(&self) -> u64 {
        self.hold
    }

    /// Accumulated queue-wait cycles per shard, in shard order.
    pub fn wait_by_shard(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.lock().wait_cycles).collect()
    }

    /// Total acquisitions per shard, in shard order.
    pub fn acquires_by_shard(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.lock().acquires).collect()
    }
}

// ---------------------------------------------------------------------------
// The topology trait
// ---------------------------------------------------------------------------

/// A multi-SSD storage topology: owns the devices, their lock partitioning
/// and the page-striping layer. All methods take `&self`; implementations
/// lock internally so hosts can share the topology as `Arc<dyn
/// StorageTopology>` between the co-simulation bridge, the controller and
/// workload setup code.
pub trait StorageTopology: Send + Sync {
    /// Total devices across all shards.
    fn device_count(&self) -> usize;

    /// Number of lock shards.
    fn shard_count(&self) -> usize;

    /// Lock shard that owns global device `dev`.
    fn shard_of(&self, dev: usize) -> usize;

    /// Register `per_device` queue pairs of `depth` entries on every device;
    /// returned grouped by global device index.
    fn register_queues(&self, per_device: usize, depth: u32) -> Vec<Vec<Arc<QueuePair>>>;

    /// The page backing of global device `dev` (for dataset setup).
    fn backing(&self, dev: usize) -> Arc<dyn PageBacking>;

    /// Install a trace sink on every device's completion path. Returns
    /// `false` if any device already had one.
    fn set_trace_sink(&self, sink: &Arc<dyn TraceSink>) -> bool;

    /// Advance every device to `now` (co-simulation).
    fn advance_to(&self, now: Cycles);

    /// Earliest pending event across all devices.
    fn next_event_time(&self) -> Option<Cycles>;

    /// True when every device is idle.
    fn quiescent(&self) -> bool;

    /// Advance only lock shard `shard`'s devices to `now`. Shards are
    /// mutually independent between advancement boundaries, so the engine
    /// may call this concurrently for different shards; calling it for
    /// shards `0..shard_count()` in order is exactly [`Self::advance_to`].
    fn advance_shard_to(&self, shard: usize, now: Cycles);

    /// Earliest pending event among shard `shard`'s devices.
    fn shard_next_event_time(&self, shard: usize) -> Option<Cycles>;

    /// True when every device of shard `shard` is idle.
    fn shard_quiescent(&self, shard: usize) -> bool;

    /// Install a trace sink on shard `shard`'s device completion paths only
    /// (per-shard buffering sinks predate the per-device seams below and are
    /// kept for compatibility). Returns `false` if any of the shard's
    /// devices already had one.
    fn set_shard_trace_sink(&self, shard: usize, sink: &Arc<dyn TraceSink>) -> bool;

    /// Advance only global device `dev` to `now`. Devices are mutually
    /// independent between advancement boundaries, so the engine may call
    /// this concurrently for different devices; calling it for
    /// [`Self::device_advance_order`] in order is exactly
    /// [`Self::advance_to`]. The default delegates to the owning shard —
    /// behaviourally correct (advancing a shard twice to one `now` is
    /// idempotent) but serialising; both in-repo topologies override with
    /// true per-device seams.
    fn advance_device_to(&self, dev: usize, now: Cycles) {
        self.advance_shard_to(self.shard_of(dev), now);
    }

    /// Earliest pending event on global device `dev` (default: the owning
    /// shard's — conservative but correct for horizon computation).
    fn device_next_event_time(&self, dev: usize) -> Option<Cycles> {
        self.shard_next_event_time(self.shard_of(dev))
    }

    /// True when global device `dev` is idle (default: the owning shard).
    fn device_quiescent(&self, dev: usize) -> bool {
        self.shard_quiescent(self.shard_of(dev))
    }

    /// Install a trace sink on one device's completion path only (the
    /// threaded engine gives each device its own buffering sink). Returns
    /// `false` if the device already had one. The default falls back to the
    /// owning shard and is only correct for one-device-per-shard topologies;
    /// both in-repo topologies override.
    fn set_device_trace_sink(&self, dev: usize, sink: &Arc<dyn TraceSink>) -> bool {
        self.set_shard_trace_sink(self.shard_of(dev), sink)
    }

    /// Global device indices in sequential advance order: shard 0's devices
    /// in increasing global order, then shard 1's, … — exactly the order
    /// [`Self::advance_to`] visits devices. Per-device engine bridges
    /// registered in this order reproduce the sequential event stream byte
    /// for byte, which is what keeps the golden traces green at any worker
    /// count.
    fn device_advance_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.device_count());
        for s in 0..self.shard_count() {
            for d in 0..self.device_count() {
                if self.shard_of(d) == s {
                    order.push(d);
                }
            }
        }
        order
    }

    /// Sum of bytes read across devices.
    fn total_bytes_read(&self) -> u64;

    /// Sum of bytes written across devices.
    fn total_bytes_written(&self) -> u64;

    /// Statistics snapshot of global device `dev`.
    fn device_stats(&self, dev: usize) -> DeviceStats;

    /// Extent of the striped global page space
    /// (`device_count × min(namespace_pages)`).
    fn global_pages(&self) -> u64;

    /// Map a global page index to `(shard, device, local page)`. The
    /// device/page mapping depends only on the device count, so topologies
    /// with equal device counts lay data out identically.
    fn map_page(&self, global: u64) -> PageLocation;

    /// Charge one submission's pass through the array lock guarding device
    /// `dev`: FIFO wait behind earlier holders plus the hold itself.
    fn lock_acquire(&self, dev: usize, warp: u64, now: Cycles) -> Cycles;

    /// Accumulated FIFO queue-wait cycles per lock shard, in shard order
    /// (`agile_submit_lock_wait_cycles_total{shard}`).
    fn lock_wait_by_shard(&self) -> Vec<u64> {
        vec![0; self.shard_count()]
    }

    /// Total queue-wait cycles across all lock shards.
    fn lock_wait_cycles(&self) -> u64 {
        self.lock_wait_by_shard().iter().sum()
    }

    /// Total lock acquisitions per shard, in shard order.
    fn lock_acquires_by_shard(&self) -> Vec<u64> {
        vec![0; self.shard_count()]
    }

    /// Commands currently in flight on global device `dev` (scheduled
    /// completions plus completions parked on a full CQ) — the per-device
    /// queue-depth gauge.
    fn device_inflight(&self, _dev: usize) -> u64 {
        0
    }
}

// ---------------------------------------------------------------------------
// FlatArray
// ---------------------------------------------------------------------------

/// Every device behind one *modeled* lock — the original `SsdArray`
/// behaviour. The devices themselves sit behind per-device mutexes (see
/// [`DeviceSet`]), so even a one-shard array fans out across the threaded
/// engine's workers.
pub struct FlatArray {
    set: DeviceSet,
    lock: TopologyLock,
    /// Cached: the device count is fixed at construction, and `map_page`
    /// sits on the per-op replay hot path.
    devices: usize,
    global_pages: u64,
    placement: Placement,
}

impl FlatArray {
    /// Build `count` devices with default configuration and backings.
    pub fn new(count: usize) -> Self {
        FlatArray::from_set(DeviceSet::new(count))
    }

    /// Build from explicit (config, backing) pairs.
    pub fn from_parts(parts: Vec<(SsdConfig, Arc<dyn PageBacking>)>) -> Self {
        FlatArray::from_set(DeviceSet::from_parts(parts))
    }

    /// Wrap an already-built device set.
    pub fn from_set(set: DeviceSet) -> Self {
        let global_pages = set.len() as u64 * set.min_namespace_pages();
        FlatArray {
            devices: set.len(),
            set,
            lock: TopologyLock::new(1, DEFAULT_LOCK_HOLD_CYCLES),
            global_pages,
            placement: Placement::default(),
        }
    }

    /// Run `f` with the underlying device set (tests, direct access).
    pub fn with_set<R>(&self, f: impl FnOnce(&DeviceSet) -> R) -> R {
        f(&self.set)
    }

    /// Override the modeled lock-hold cycles (cost-model studies).
    pub fn with_lock_hold(mut self, hold: u64) -> Self {
        self.lock = TopologyLock::new(1, hold);
        self
    }

    /// Select the striping layer's placement seed (default:
    /// [`Placement::Interleave`], the golden-guarded paper layout).
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }
}

impl StorageTopology for FlatArray {
    fn device_count(&self) -> usize {
        self.devices
    }
    fn shard_count(&self) -> usize {
        1
    }
    fn shard_of(&self, _dev: usize) -> usize {
        0
    }
    fn register_queues(&self, per_device: usize, depth: u32) -> Vec<Vec<Arc<QueuePair>>> {
        self.set.register_queues(per_device, depth)
    }
    fn backing(&self, dev: usize) -> Arc<dyn PageBacking> {
        Arc::clone(self.set.device(dev).backing())
    }
    fn set_trace_sink(&self, sink: &Arc<dyn TraceSink>) -> bool {
        self.set.set_trace_sink(sink)
    }
    fn advance_to(&self, now: Cycles) {
        self.set.advance_to(now);
    }
    fn next_event_time(&self) -> Option<Cycles> {
        self.set.next_event_time()
    }
    fn quiescent(&self) -> bool {
        self.set.quiescent()
    }
    fn advance_shard_to(&self, shard: usize, now: Cycles) {
        debug_assert_eq!(shard, 0, "FlatArray has exactly one shard");
        self.set.advance_to(now);
    }
    fn shard_next_event_time(&self, shard: usize) -> Option<Cycles> {
        debug_assert_eq!(shard, 0, "FlatArray has exactly one shard");
        self.set.next_event_time()
    }
    fn shard_quiescent(&self, shard: usize) -> bool {
        debug_assert_eq!(shard, 0, "FlatArray has exactly one shard");
        self.set.quiescent()
    }
    fn set_shard_trace_sink(&self, shard: usize, sink: &Arc<dyn TraceSink>) -> bool {
        debug_assert_eq!(shard, 0, "FlatArray has exactly one shard");
        self.set.set_trace_sink(sink)
    }
    fn advance_device_to(&self, dev: usize, now: Cycles) {
        self.set.advance_device_to(dev, now);
    }
    fn device_next_event_time(&self, dev: usize) -> Option<Cycles> {
        self.set.device_next_event_time(dev)
    }
    fn device_quiescent(&self, dev: usize) -> bool {
        self.set.device_quiescent(dev)
    }
    fn set_device_trace_sink(&self, dev: usize, sink: &Arc<dyn TraceSink>) -> bool {
        self.set.set_device_trace_sink(dev, sink)
    }
    fn total_bytes_read(&self) -> u64 {
        self.set.total_bytes_read()
    }
    fn total_bytes_written(&self) -> u64 {
        self.set.total_bytes_written()
    }
    fn device_stats(&self, dev: usize) -> DeviceStats {
        self.set.device(dev).stats().clone()
    }
    fn global_pages(&self) -> u64 {
        self.global_pages
    }
    fn map_page(&self, global: u64) -> PageLocation {
        let (device, page) = stripe(global, self.devices as u64, self.placement);
        PageLocation {
            shard: 0,
            device,
            page,
        }
    }
    fn lock_acquire(&self, _dev: usize, warp: u64, now: Cycles) -> Cycles {
        self.lock.acquire(0, warp, now)
    }
    fn lock_wait_by_shard(&self) -> Vec<u64> {
        self.lock.wait_by_shard()
    }
    fn lock_acquires_by_shard(&self) -> Vec<u64> {
        self.lock.acquires_by_shard()
    }
    fn device_inflight(&self, dev: usize) -> u64 {
        self.set.device(dev).inflight()
    }
}

// ---------------------------------------------------------------------------
// ShardedArray
// ---------------------------------------------------------------------------

/// Devices partitioned into N lock shards over one per-device-locked
/// [`DeviceSet`].
///
/// Device `d` belongs to shard `d % shards`; the striped data layout is
/// identical to [`FlatArray`] at equal device count, so any benchmark delta
/// between the two is attributable to the lock partitioning alone. With
/// `shards == 1` this *is* the flat array, bit for bit. Shard membership is
/// pure arithmetic — the devices live in one global-order [`DeviceSet`], and
/// shard-level advancement visits them in **shard-major** order (shard 0's
/// devices in increasing global order, then shard 1's, …), which is the
/// historical — and golden-gated — sequential event order.
pub struct ShardedArray {
    set: DeviceSet,
    shard_count: usize,
    lock: TopologyLock,
    global_pages: u64,
    placement: Placement,
}

impl ShardedArray {
    /// Build `count` default devices partitioned into `shards` shards.
    pub fn new(count: usize, shards: usize) -> Self {
        let parts = (0..count)
            .map(|i| {
                (
                    SsdConfig::new(i as u32),
                    Arc::new(MemBacking::new(i as u32)) as Arc<dyn PageBacking>,
                )
            })
            .collect();
        ShardedArray::from_parts(parts, shards)
    }

    /// Partition explicit (config, backing) pairs into `shards` shards,
    /// device `d` → shard `d % shards`.
    pub fn from_parts(parts: Vec<(SsdConfig, Arc<dyn PageBacking>)>, shards: usize) -> Self {
        assert!(shards >= 1, "a sharded array needs at least one shard");
        let set = DeviceSet::from_parts(parts);
        ShardedArray {
            global_pages: set.len() as u64 * set.min_namespace_pages(),
            set,
            shard_count: shards,
            lock: TopologyLock::new(shards, DEFAULT_LOCK_HOLD_CYCLES),
            placement: Placement::default(),
        }
    }

    /// Override the modeled lock-hold cycles (cost-model studies).
    pub fn with_lock_hold(mut self, hold: u64) -> Self {
        self.lock = TopologyLock::new(self.shard_count, hold);
        self
    }

    /// Select the striping layer's placement seed (default:
    /// [`Placement::Interleave`], the golden-guarded paper layout).
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Global device indices of `shard`, in increasing global order (the
    /// shard's historical slot order).
    fn shard_members(&self, shard: usize) -> impl Iterator<Item = usize> + '_ {
        (shard..self.set.len()).step_by(self.shard_count)
    }
}

impl StorageTopology for ShardedArray {
    fn device_count(&self) -> usize {
        self.set.len()
    }
    fn shard_count(&self) -> usize {
        self.shard_count
    }
    fn shard_of(&self, dev: usize) -> usize {
        dev % self.shard_count
    }
    fn register_queues(&self, per_device: usize, depth: u32) -> Vec<Vec<Arc<QueuePair>>> {
        self.set.register_queues(per_device, depth)
    }
    fn backing(&self, dev: usize) -> Arc<dyn PageBacking> {
        Arc::clone(self.set.device(dev).backing())
    }
    fn set_trace_sink(&self, sink: &Arc<dyn TraceSink>) -> bool {
        let mut all_fresh = true;
        for shard in 0..self.shard_count {
            all_fresh &= self.set_shard_trace_sink(shard, sink);
        }
        all_fresh
    }
    fn advance_to(&self, now: Cycles) {
        // Shard-major, matching the trait contract and the golden traces.
        for shard in 0..self.shard_count {
            self.advance_shard_to(shard, now);
        }
    }
    fn next_event_time(&self) -> Option<Cycles> {
        self.set.next_event_time()
    }
    fn quiescent(&self) -> bool {
        self.set.quiescent()
    }
    fn advance_shard_to(&self, shard: usize, now: Cycles) {
        for dev in self.shard_members(shard) {
            self.set.advance_device_to(dev, now);
        }
    }
    fn shard_next_event_time(&self, shard: usize) -> Option<Cycles> {
        self.shard_members(shard)
            .filter_map(|dev| self.set.device_next_event_time(dev))
            .min()
    }
    fn shard_quiescent(&self, shard: usize) -> bool {
        self.shard_members(shard)
            .all(|dev| self.set.device_quiescent(dev))
    }
    fn set_shard_trace_sink(&self, shard: usize, sink: &Arc<dyn TraceSink>) -> bool {
        let mut all_fresh = true;
        for dev in self.shard_members(shard) {
            all_fresh &= self.set.set_device_trace_sink(dev, sink);
        }
        all_fresh
    }
    fn advance_device_to(&self, dev: usize, now: Cycles) {
        self.set.advance_device_to(dev, now);
    }
    fn device_next_event_time(&self, dev: usize) -> Option<Cycles> {
        self.set.device_next_event_time(dev)
    }
    fn device_quiescent(&self, dev: usize) -> bool {
        self.set.device_quiescent(dev)
    }
    fn set_device_trace_sink(&self, dev: usize, sink: &Arc<dyn TraceSink>) -> bool {
        self.set.set_device_trace_sink(dev, sink)
    }
    fn total_bytes_read(&self) -> u64 {
        self.set.total_bytes_read()
    }
    fn total_bytes_written(&self) -> u64 {
        self.set.total_bytes_written()
    }
    fn device_stats(&self, dev: usize) -> DeviceStats {
        self.set.device(dev).stats().clone()
    }
    fn global_pages(&self) -> u64 {
        self.global_pages
    }
    fn map_page(&self, global: u64) -> PageLocation {
        let (device, page) = stripe(global, self.set.len() as u64, self.placement);
        PageLocation {
            shard: self.shard_of(device as usize) as u32,
            device,
            page,
        }
    }
    fn lock_acquire(&self, dev: usize, warp: u64, now: Cycles) -> Cycles {
        self.lock.acquire(self.shard_of(dev), warp, now)
    }
    fn lock_wait_by_shard(&self) -> Vec<u64> {
        self.lock.wait_by_shard()
    }
    fn lock_acquires_by_shard(&self) -> Vec<u64> {
        self.lock.acquires_by_shard()
    }
    fn device_inflight(&self, dev: usize) -> u64 {
        self.set.device(dev).inflight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DmaHandle, NvmeCommand};

    #[test]
    fn construction_and_registration() {
        let arr = DeviceSet::new(3);
        assert_eq!(arr.len(), 3);
        assert!(!arr.is_empty());
        let qps = arr.register_queues(4, 64);
        assert_eq!(qps.len(), 3);
        assert_eq!(qps[0].len(), 4);
        assert_eq!(arr.device(0).queue_pair_count(), 4);
        assert!(arr.quiescent());
        assert_eq!(arr.next_event_time(), None);
    }

    #[test]
    fn interleaving_round_robins_devices() {
        let arr = DeviceSet::new(3);
        let (d0, l0) = arr.interleave(0, 1000);
        let (d1, l1) = arr.interleave(1, 1000);
        let (d2, _) = arr.interleave(2, 1000);
        let (d3, l3) = arr.interleave(3, 1000);
        assert_eq!((d0, d1, d2, d3), (0, 1, 2, 0));
        assert_eq!(l0, 0);
        assert_eq!(l1, 0);
        assert_eq!(l3, 1);
    }

    #[test]
    fn interleaving_wraps_lba_space() {
        let arr = DeviceSet::new(2);
        let (_, lba) = arr.interleave(2 * 500 + 1, 500);
        assert!(lba < 500);
    }

    #[test]
    fn totals_start_at_zero() {
        let arr = DeviceSet::new(2);
        assert_eq!(arr.total_bytes_read(), 0);
        assert_eq!(arr.total_bytes_written(), 0);
    }

    #[test]
    fn flat_and_sharded_stripe_identically() {
        let flat = FlatArray::new(6);
        for shards in [1usize, 2, 3, 6] {
            let sharded = ShardedArray::new(6, shards);
            assert_eq!(sharded.shard_count(), shards);
            assert_eq!(sharded.device_count(), 6);
            for g in 0..600u64 {
                let f = flat.map_page(g);
                let s = sharded.map_page(g);
                assert_eq!((f.device, f.page), (s.device, s.page), "page {g}");
                assert_eq!(s.shard as usize, s.device as usize % shards);
            }
        }
    }

    #[test]
    fn striping_is_bijective() {
        let arr = ShardedArray::new(4, 2);
        let mut seen = std::collections::HashSet::new();
        for g in 0..4_000u64 {
            let loc = arr.map_page(g);
            assert!(seen.insert((loc.device, loc.page)), "collision at {g}");
        }
    }

    #[test]
    fn sharded_registration_matches_global_device_order() {
        let arr = ShardedArray::new(5, 2);
        let qps = arr.register_queues(2, 64);
        assert_eq!(qps.len(), 5);
        for (dev, dev_qps) in qps.iter().enumerate() {
            assert_eq!(dev_qps.len(), 2);
            assert_eq!(arr.device_stats(dev).reads_completed, 0);
        }
        // Devices 0,2,4 → shard 0; 1,3 → shard 1.
        assert_eq!(arr.shard_of(0), 0);
        assert_eq!(arr.shard_of(1), 1);
        assert_eq!(arr.shard_of(4), 0);
    }

    #[test]
    fn lock_charges_fifo_wait_per_shard() {
        let lock = TopologyLock::new(2, 10);
        // Two warps, same shard, same instant: second waits for the first.
        assert_eq!(lock.acquire(0, 1, Cycles(100)), Cycles(10));
        assert_eq!(lock.acquire(0, 2, Cycles(100)), Cycles(20));
        // A third warp on the *other* shard pays no wait.
        assert_eq!(lock.acquire(1, 3, Cycles(100)), Cycles(10));
        // Same warp re-acquiring within its step only extends the hold.
        assert_eq!(lock.acquire(0, 2, Cycles(100)), Cycles(10));
        // Far in the future the queue has drained.
        assert_eq!(lock.acquire(0, 4, Cycles(10_000)), Cycles(10));
    }

    #[test]
    fn flat_serializes_where_sharded_does_not() {
        let flat = FlatArray::new(4);
        let sharded = ShardedArray::new(4, 4);
        let mut flat_total = 0u64;
        let mut sharded_total = 0u64;
        for warp in 0..16u64 {
            let dev = (warp % 4) as usize;
            flat_total += flat.lock_acquire(dev, warp, Cycles(0)).raw();
            sharded_total += sharded.lock_acquire(dev, warp, Cycles(0)).raw();
        }
        assert!(
            flat_total > sharded_total,
            "flat {flat_total} must serialize more than sharded {sharded_total}"
        );
    }

    #[test]
    fn sharded_with_one_shard_matches_flat_lock_costs() {
        let flat = FlatArray::new(3);
        let sharded = ShardedArray::new(3, 1);
        for warp in 0..12u64 {
            let dev = (warp % 3) as usize;
            assert_eq!(
                flat.lock_acquire(dev, warp, Cycles(warp * 7)),
                sharded.lock_acquire(dev, warp, Cycles(warp * 7)),
            );
        }
    }

    #[test]
    fn device_advance_order_is_shard_major() {
        // Shard-major order: shard 0's devices in global order, then shard 1's.
        let sharded = ShardedArray::new(5, 2);
        assert_eq!(sharded.device_advance_order(), vec![0, 2, 4, 1, 3]);
        // One shard (or a flat array) degenerates to global order.
        assert_eq!(ShardedArray::new(4, 1).device_advance_order(), vec![0, 1, 2, 3]);
        assert_eq!(FlatArray::new(3).device_advance_order(), vec![0, 1, 2]);
    }

    #[test]
    fn partition_devices_round_robins_order_positions() {
        let set = DeviceSet::new(5);
        // Order positions (not device ids) are dealt round-robin, so each
        // worker gets a contiguous-in-time slice of the advance schedule.
        let order = vec![0, 2, 4, 1, 3];
        assert_eq!(
            set.partition_devices(2, &order),
            vec![vec![0, 4, 3], vec![2, 1]]
        );
        // More workers than devices leaves the tail buckets empty.
        let parts = set.partition_devices(8, &order);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts.iter().filter(|p| p.is_empty()).count(), 3);
        // A single worker owns everything, in advance order.
        assert_eq!(set.partition_devices(1, &order), vec![order.clone()]);
    }

    #[test]
    fn per_device_advancement_matches_whole_set_advancement() {
        // Advancing devices one by one through the per-device seam must leave
        // the topology in the same externally visible state as advance_to.
        let run = |per_device: bool| -> (u64, u64, Vec<u64>) {
            let topo = ShardedArray::new(3, 2);
            let queues = topo.register_queues(1, 16);
            for (dev, qs) in queues.iter().enumerate() {
                let lba = dev as u64 * 3;
                assert!(qs[0].sq.write_slot(0, NvmeCommand::read(1, lba, DmaHandle::new())));
                qs[0].sq_doorbell.ring(1, Cycles(0));
            }
            if per_device {
                for dev in topo.device_advance_order() {
                    topo.advance_device_to(dev, Cycles(4_000_000));
                }
            } else {
                topo.advance_to(Cycles(4_000_000));
            }
            let stats: Vec<u64> = (0..3).map(|d| topo.device_stats(d).reads_completed).collect();
            (topo.total_bytes_read(), topo.total_bytes_written(), stats)
        };
        assert_eq!(run(true), run(false));
        assert!(run(true).0 > 0, "reads must actually complete");
    }
}
