//! Multi-SSD topology.
//!
//! The paper's scaling experiments (Figures 5 and 6) attach up to three SSDs
//! to the host and stripe requests across them in an interleaved fashion
//! ("requests 0, 2, 4, … are issued to SSD1, while requests 1, 3, 5, … are
//! directed to SSD2"). [`SsdArray`] owns the devices and provides the
//! interleaving helpers plus a combined advance/quiescence interface for the
//! co-simulation engine.

use crate::backing::{MemBacking, PageBacking};
use crate::device::{SsdConfig, SsdDevice};
use crate::queue::QueuePair;
use crate::spec::{Lba, QueueId};
use agile_sim::Cycles;
use std::sync::Arc;

/// A set of SSDs addressed by device index.
pub struct SsdArray {
    devices: Vec<SsdDevice>,
}

impl SsdArray {
    /// Build `count` devices with default configuration and token-only memory
    /// backings.
    pub fn new(count: usize) -> Self {
        let devices = (0..count)
            .map(|i| {
                SsdDevice::new(
                    SsdConfig::new(i as u32),
                    Arc::new(MemBacking::new(i as u32)) as Arc<dyn PageBacking>,
                )
            })
            .collect();
        SsdArray { devices }
    }

    /// Build from explicit (config, backing) pairs.
    pub fn from_parts(parts: Vec<(SsdConfig, Arc<dyn PageBacking>)>) -> Self {
        let devices = parts
            .into_iter()
            .map(|(cfg, backing)| SsdDevice::new(cfg, backing))
            .collect();
        SsdArray { devices }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the array holds no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Access a device.
    pub fn device(&self, idx: usize) -> &SsdDevice {
        &self.devices[idx]
    }

    /// Mutable access to a device (registration, advancing).
    pub fn device_mut(&mut self, idx: usize) -> &mut SsdDevice {
        &mut self.devices[idx]
    }

    /// Iterate over devices.
    pub fn iter(&self) -> impl Iterator<Item = &SsdDevice> {
        self.devices.iter()
    }

    /// Register `queues_per_device` queue pairs of `depth` entries on every
    /// device and return them grouped by device.
    pub fn register_queues(
        &mut self,
        queues_per_device: usize,
        depth: u32,
    ) -> Vec<Vec<Arc<QueuePair>>> {
        self.devices
            .iter_mut()
            .map(|dev| {
                (0..queues_per_device)
                    .map(|q| {
                        let qp = QueuePair::new(q as QueueId, depth);
                        dev.register_queue_pair(Arc::clone(&qp));
                        qp
                    })
                    .collect()
            })
            .collect()
    }

    /// Install a trace sink on every device's completion path (see
    /// [`SsdDevice::set_trace_sink`]). Returns `false` if any device already
    /// had a sink.
    pub fn set_trace_sink(&self, sink: &Arc<dyn agile_sim::trace::TraceSink>) -> bool {
        let mut all_fresh = true;
        for dev in &self.devices {
            all_fresh &= dev.set_trace_sink(Arc::clone(sink));
        }
        all_fresh
    }

    /// Advance every device to `now`.
    pub fn advance_to(&mut self, now: Cycles) {
        for dev in &mut self.devices {
            dev.advance_to(now);
        }
    }

    /// Earliest pending event across all devices.
    pub fn next_event_time(&mut self) -> Option<Cycles> {
        self.devices
            .iter_mut()
            .filter_map(|d| d.next_event_time())
            .min()
    }

    /// True when every device is idle.
    pub fn quiescent(&self) -> bool {
        self.devices.iter().all(|d| d.quiescent())
    }

    /// Interleaved placement used by the scaling experiments: request `i`
    /// goes to device `i % n` at the same LBA it would use on a single
    /// device divided by the stripe width.
    pub fn interleave(&self, request_idx: u64, lba_space: u64) -> (usize, Lba) {
        let n = self.devices.len() as u64;
        let dev = (request_idx % n) as usize;
        let lba = (request_idx / n) % lba_space.max(1);
        (dev, lba)
    }

    /// Sum of bytes read across devices.
    pub fn total_bytes_read(&self) -> u64 {
        self.devices.iter().map(|d| d.stats().bytes_read).sum()
    }

    /// Sum of bytes written across devices.
    pub fn total_bytes_written(&self) -> u64 {
        self.devices.iter().map(|d| d.stats().bytes_written).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_registration() {
        let mut arr = SsdArray::new(3);
        assert_eq!(arr.len(), 3);
        assert!(!arr.is_empty());
        let qps = arr.register_queues(4, 64);
        assert_eq!(qps.len(), 3);
        assert_eq!(qps[0].len(), 4);
        assert_eq!(arr.device(0).queue_pair_count(), 4);
        assert!(arr.quiescent());
        assert_eq!(arr.next_event_time(), None);
    }

    #[test]
    fn interleaving_round_robins_devices() {
        let arr = SsdArray::new(3);
        let (d0, l0) = arr.interleave(0, 1000);
        let (d1, l1) = arr.interleave(1, 1000);
        let (d2, _) = arr.interleave(2, 1000);
        let (d3, l3) = arr.interleave(3, 1000);
        assert_eq!((d0, d1, d2, d3), (0, 1, 2, 0));
        assert_eq!(l0, 0);
        assert_eq!(l1, 0);
        assert_eq!(l3, 1);
    }

    #[test]
    fn interleaving_wraps_lba_space() {
        let arr = SsdArray::new(2);
        let (_, lba) = arr.interleave(2 * 500 + 1, 500);
        assert!(lba < 500);
    }

    #[test]
    fn totals_start_at_zero() {
        let arr = SsdArray::new(2);
        assert_eq!(arr.total_bytes_read(), 0);
        assert_eq!(arr.total_bytes_written(), 0);
    }
}
