//! Virtual time.
//!
//! All simulated components agree on a single time base: GPU core cycles.
//! The GPU simulator advances the clock; the SSD model schedules completions
//! at future cycle counts by converting its microsecond-scale latencies into
//! cycles with [`Nanos::to_cycles`].
//!
//! A cycle count is a plain `u64` wrapped in a newtype so that cycle and
//! nanosecond quantities cannot be mixed up silently.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Default simulated GPU core clock in GHz.
///
/// The paper evaluates on an RTX 5000 Ada (boost ≈ 2.55 GHz); we round to a
/// 2.5 GHz core clock. Only ratios matter for the reproduced figures, but an
/// absolute clock keeps the latency constants in [`crate::costs`] legible.
pub const DEFAULT_GPU_CLOCK_GHZ: f64 = 2.5;

/// A duration or point in simulated time, measured in GPU core cycles.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(pub u64);

/// A duration in nanoseconds of simulated wall time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nanos(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);
    /// Largest representable cycle count; used as an "infinitely far" sentinel.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Construct from a raw count.
    #[inline]
    pub const fn new(c: u64) -> Self {
        Cycles(c)
    }

    /// The raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Convert to nanoseconds under the given clock frequency (GHz).
    #[inline]
    pub fn to_nanos(self, clock_ghz: f64) -> Nanos {
        Nanos((self.0 as f64 / clock_ghz).round() as u64)
    }

    /// Convert to seconds under the given clock frequency (GHz).
    #[inline]
    pub fn to_secs(self, clock_ghz: f64) -> f64 {
        self.0 as f64 / (clock_ghz * 1e9)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Cycles) -> Option<Cycles> {
        self.0.checked_add(rhs.0).map(Cycles)
    }

    /// `self` scaled by a floating point factor, rounded to nearest.
    #[inline]
    pub fn scale(self, factor: f64) -> Cycles {
        Cycles((self.0 as f64 * factor).round() as u64)
    }

    /// Maximum of two cycle counts.
    #[inline]
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// Minimum of two cycle counts.
    #[inline]
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }
}

impl Nanos {
    /// Zero nanoseconds.
    pub const ZERO: Nanos = Nanos(0);

    /// Construct from a raw nanosecond count.
    #[inline]
    pub const fn new(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// The raw nanosecond count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Convert to GPU cycles under the given clock frequency (GHz).
    #[inline]
    pub fn to_cycles(self, clock_ghz: f64) -> Cycles {
        Cycles((self.0 as f64 * clock_ghz).round() as u64)
    }

    /// Convert to (floating point) seconds.
    #[inline]
    pub fn to_secs(self) -> f64 {
        self.0 as f64 * 1e-9
    }
}

macro_rules! impl_arith {
    ($t:ident) => {
        impl Add for $t {
            type Output = $t;
            #[inline]
            fn add(self, rhs: $t) -> $t {
                $t(self.0 + rhs.0)
            }
        }
        impl AddAssign for $t {
            #[inline]
            fn add_assign(&mut self, rhs: $t) {
                self.0 += rhs.0;
            }
        }
        impl Sub for $t {
            type Output = $t;
            #[inline]
            fn sub(self, rhs: $t) -> $t {
                $t(self.0 - rhs.0)
            }
        }
        impl SubAssign for $t {
            #[inline]
            fn sub_assign(&mut self, rhs: $t) {
                self.0 -= rhs.0;
            }
        }
        impl Mul<u64> for $t {
            type Output = $t;
            #[inline]
            fn mul(self, rhs: u64) -> $t {
                $t(self.0 * rhs)
            }
        }
        impl Div<u64> for $t {
            type Output = $t;
            #[inline]
            fn div(self, rhs: u64) -> $t {
                $t(self.0 / rhs)
            }
        }
        impl Sum for $t {
            fn sum<I: Iterator<Item = $t>>(iter: I) -> $t {
                $t(iter.map(|v| v.0).sum())
            }
        }
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

impl_arith!(Cycles);
impl_arith!(Nanos);

/// The simulation clock shared (by value or behind the engine) between the
/// GPU model and the SSD model.
///
/// The clock only ever moves forward. Components read `now()` and schedule
/// future events; the engine advances it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimClock {
    now: Cycles,
    clock_ghz: f64,
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new(DEFAULT_GPU_CLOCK_GHZ)
    }
}

impl SimClock {
    /// Create a clock at time zero with the given core frequency in GHz.
    pub fn new(clock_ghz: f64) -> Self {
        assert!(clock_ghz > 0.0, "clock frequency must be positive");
        SimClock {
            now: Cycles::ZERO,
            clock_ghz,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Core frequency in GHz.
    #[inline]
    pub fn clock_ghz(&self) -> f64 {
        self.clock_ghz
    }

    /// Advance the clock by `delta` cycles.
    #[inline]
    pub fn advance(&mut self, delta: Cycles) {
        self.now += delta;
    }

    /// Advance the clock to an absolute time. Panics if `to` is in the past.
    #[inline]
    pub fn advance_to(&mut self, to: Cycles) {
        assert!(to >= self.now, "clock cannot move backwards");
        self.now = to;
    }

    /// Convert a nanosecond duration to cycles at this clock's frequency.
    #[inline]
    pub fn ns(&self, nanos: Nanos) -> Cycles {
        nanos.to_cycles(self.clock_ghz)
    }

    /// Current simulated time expressed in seconds.
    #[inline]
    pub fn now_secs(&self) -> f64 {
        self.now.to_secs(self.clock_ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_nanos_roundtrip() {
        let c = Cycles(25_000);
        let ns = c.to_nanos(2.5);
        assert_eq!(ns, Nanos(10_000));
        assert_eq!(ns.to_cycles(2.5), c);
    }

    #[test]
    fn nanos_constructors() {
        assert_eq!(Nanos::from_micros(3), Nanos(3_000));
        assert_eq!(Nanos::from_millis(2), Nanos(2_000_000));
    }

    #[test]
    fn arithmetic() {
        let a = Cycles(10);
        let b = Cycles(4);
        assert_eq!(a + b, Cycles(14));
        assert_eq!(a - b, Cycles(6));
        assert_eq!(a * 3, Cycles(30));
        assert_eq!(a / 2, Cycles(5));
        assert_eq!(b.saturating_sub(a), Cycles(0));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let total: Cycles = [a, b, Cycles(1)].into_iter().sum();
        assert_eq!(total, Cycles(15));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut clk = SimClock::new(2.0);
        assert_eq!(clk.now(), Cycles::ZERO);
        clk.advance(Cycles(100));
        assert_eq!(clk.now(), Cycles(100));
        clk.advance_to(Cycles(150));
        assert_eq!(clk.now(), Cycles(150));
        assert_eq!(clk.ns(Nanos(10)), Cycles(20));
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn clock_rejects_backwards() {
        let mut clk = SimClock::default();
        clk.advance(Cycles(10));
        clk.advance_to(Cycles(5));
    }

    #[test]
    fn scale_rounds() {
        assert_eq!(Cycles(10).scale(1.25), Cycles(13));
        assert_eq!(Cycles(0).scale(100.0), Cycles(0));
    }

    #[test]
    fn seconds_conversion() {
        let c = Cycles(2_500_000_000);
        assert!((c.to_secs(2.5) - 1.0).abs() < 1e-12);
        let mut clk = SimClock::new(2.5);
        clk.advance(c);
        assert!((clk.now_secs() - 1.0).abs() < 1e-12);
    }
}
