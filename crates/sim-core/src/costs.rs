//! The cost-model constants used by every simulator in the workspace.
//!
//! All latency / throughput assumptions made by the GPU and SSD models are
//! collected here so that they can be audited and re-calibrated in one place
//! (DESIGN.md §5). Each constant documents its provenance: either a public
//! datasheet number, a number reported in the AGILE paper, or an explicitly
//! modelled value chosen to match the paper's qualitative behaviour.
//!
//! The constants are grouped into a [`CostModel`] struct so experiments can
//! run with perturbed models (e.g. the sensitivity/ablation benches), while
//! [`CostModel::default`] gives the calibrated values used to regenerate the
//! paper's figures.

use crate::clock::{Cycles, Nanos};
use serde::{Deserialize, Serialize};

/// GPU-side micro-operation costs, in core cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuCosts {
    /// Cost of an L2/HBM global-memory access issued by a warp
    /// (~400–600 cycles on Ada-class parts; we use the midpoint).
    pub global_mem_access: u64,
    /// Cost of a global-memory atomic (CAS / fetch-add) without contention.
    pub global_atomic: u64,
    /// Extra cycles burned per retry when an atomic/CAS loses a race.
    pub atomic_retry: u64,
    /// Cost of copying one 4 KiB page within HBM with a full warp
    /// (128 B/lane/iteration, bandwidth-limited).
    pub hbm_page_copy: u64,
    /// Cost of a warp-level shuffle/ballot primitive (`__match_any_sync`-style).
    pub warp_primitive: u64,
    /// Cost of an uncached MMIO (PCIe BAR doorbell) write as seen by the
    /// issuing warp. Posted writes retire quickly from the SM's viewpoint.
    pub doorbell_write: u64,
    /// Cycles a polling loop iteration costs (load + compare + branch).
    pub poll_iteration: u64,
    /// Fixed per-kernel-launch overhead in cycles (driver + scheduler).
    pub kernel_launch: u64,
    /// Cycles per scheduler decision slot on an SM (one warp-issue round).
    pub scheduler_slot: u64,
}

impl Default for GpuCosts {
    fn default() -> Self {
        GpuCosts {
            global_mem_access: 500,
            global_atomic: 350,
            atomic_retry: 120,
            hbm_page_copy: 900,
            warp_primitive: 20,
            doorbell_write: 700,
            poll_iteration: 80,
            kernel_launch: 5_000,
            scheduler_slot: 4,
        }
    }
}

/// SSD / NVMe device timing model.
///
/// The read/write bandwidth ceilings are taken from the saturated values the
/// paper measures in Figures 5 and 6 (≈3.7 GB/s 4 KiB random read and
/// ≈2.2 GB/s 4 KiB random write per device); latency and queueing behaviour
/// are modelled with a channel-parallel flash back-end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdCosts {
    /// Number of independent flash channels (units of internal parallelism).
    pub channels: u32,
    /// Time to service one 4 KiB read on a channel once it is issued.
    pub read_page_service: Nanos,
    /// Time to service one 4 KiB write (program) on a channel.
    pub write_page_service: Nanos,
    /// Fixed controller latency added to every command (command fetch over
    /// PCIe, FTL lookup, completion DMA).
    pub controller_overhead: Nanos,
    /// Additional fixed latency for the SSD to observe a doorbell write and
    /// DMA the SQE out of GPU HBM.
    pub command_fetch: Nanos,
    /// Time for the completion entry DMA into the CQ in GPU HBM.
    pub completion_post: Nanos,
    /// Maximum number of commands the device keeps in flight internally;
    /// beyond this, commands queue inside the controller.
    pub max_outstanding: u32,
}

impl Default for SsdCosts {
    fn default() -> Self {
        SsdCosts {
            channels: 16,
            // 16 channels * 4096 B / 17.7 µs ≈ 3.70 GB/s aggregate read.
            read_page_service: Nanos::new(17_700),
            // 16 channels * 4096 B / 29.8 µs ≈ 2.20 GB/s aggregate write.
            write_page_service: Nanos::new(29_800),
            controller_overhead: Nanos::new(6_000),
            command_fetch: Nanos::new(2_000),
            completion_post: Nanos::new(1_000),
            max_outstanding: 1024,
        }
    }
}

/// Cost model for the device-side *API implementations* being compared
/// (AGILE vs the BaM-style baseline). These are the per-call instruction
/// footprints of the two libraries, expressed in cycles, excluding the shared
/// hardware costs above. They encode the implementation differences the paper
/// attributes its API-overhead reductions to (§4.5): AGILE's state-word cache
/// protocol vs BaM's lock-held critical sections, and AGILE's offloaded CQ
/// polling vs BaM's per-thread polling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiCosts {
    /// AGILE: software-cache lookup on the hit path (hash + state check +
    /// reference pin via one CAS).
    pub agile_cache_hit: u64,
    /// AGILE: extra work on the miss path before the NVMe command is built
    /// (line reservation, state transition to BUSY).
    pub agile_cache_miss: u64,
    /// AGILE: building + enqueuing one NVMe command (Algorithm 2 fast path).
    pub agile_issue: u64,
    /// AGILE: checking a transaction barrier (`AgileBuf::wait` single probe).
    pub agile_barrier_probe: u64,
    /// BaM: software-cache lookup on the hit path (lock acquire + check +
    /// release).
    pub bam_cache_hit: u64,
    /// BaM: extra work on the miss path (lock held across eviction decision).
    pub bam_cache_miss: u64,
    /// BaM: building + enqueuing one NVMe command (ticket lock on the SQ).
    pub bam_issue: u64,
    /// BaM: one iteration of the per-thread CQ polling loop.
    pub bam_cq_poll: u64,
    /// AGILE service: cycles for one warp-centric CQ polling round
    /// (Algorithm 1) — paid by the service warps, not by user threads.
    pub agile_service_poll_round: u64,
    /// AGILE service: cycles a service warp backs off after a polling round
    /// that found no completion. Purely an idle-loop pacing knob (the
    /// simulation equivalent of a `__nanosleep` in the persistent kernel's
    /// empty-poll path): it bounds how often idle service warps wake without
    /// changing what they observe.
    pub agile_service_idle_backoff: u64,
}

impl Default for ApiCosts {
    fn default() -> Self {
        ApiCosts {
            agile_cache_hit: 140,
            agile_cache_miss: 320,
            agile_issue: 380,
            agile_barrier_probe: 60,
            bam_cache_hit: 300,
            bam_cache_miss: 700,
            bam_issue: 520,
            bam_cq_poll: 160,
            agile_service_poll_round: 220,
            agile_service_idle_backoff: 1_000,
        }
    }
}

/// Compute-throughput model used for the DLRM MLP (cuBLAS substitute) and the
/// graph kernels' arithmetic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeCosts {
    /// Peak FP32 multiply-add throughput per cycle across the whole GPU
    /// (#CUDA cores × 2 flops). RTX 5000 Ada: 12 800 cores.
    pub peak_flops_per_cycle: f64,
    /// Achieved fraction of peak for the DLRM GEMM sizes (cuBLAS on
    /// 512–2048-sized GEMMs typically reaches 25–50 % of peak).
    pub gemm_efficiency: f64,
    /// Cycles per simple ALU op for scalar per-thread computation phases.
    pub alu_op: u64,
}

impl Default for ComputeCosts {
    fn default() -> Self {
        ComputeCosts {
            peak_flops_per_cycle: 25_600.0,
            gemm_efficiency: 0.35,
            alu_op: 4,
        }
    }
}

/// The complete cost model: one value threaded through every simulator.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CostModel {
    /// GPU micro-operation costs.
    pub gpu: GpuCosts,
    /// SSD timing model.
    pub ssd: SsdCosts,
    /// Library API implementation costs.
    pub api: ApiCosts,
    /// Compute throughput model.
    pub compute: ComputeCosts,
}

impl CostModel {
    /// Cycles to execute a dense `m × k` by `k × n` GEMM on the simulated GPU.
    pub fn gemm_cycles(&self, m: u64, n: u64, k: u64) -> Cycles {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let per_cycle = self.compute.peak_flops_per_cycle * self.compute.gemm_efficiency;
        // Small GEMMs cannot use the whole machine: clamp to a floor of one
        // kernel launch worth of work.
        let cycles = (flops / per_cycle).ceil() as u64 + self.gpu.kernel_launch;
        Cycles(cycles)
    }

    /// Aggregate 4 KiB random-read bandwidth ceiling of one SSD, in GB/s.
    pub fn ssd_read_bw_gbps(&self) -> f64 {
        let per_channel = 4096.0 / self.ssd.read_page_service.raw() as f64; // bytes/ns
        per_channel * self.ssd.channels as f64
    }

    /// Aggregate 4 KiB random-write bandwidth ceiling of one SSD, in GB/s.
    pub fn ssd_write_bw_gbps(&self) -> f64 {
        let per_channel = 4096.0 / self.ssd.write_page_service.raw() as f64; // bytes/ns
        per_channel * self.ssd.channels as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ssd_bandwidth_matches_paper_saturation() {
        let m = CostModel::default();
        let read = m.ssd_read_bw_gbps();
        let write = m.ssd_write_bw_gbps();
        // Paper Figure 5/6: ~3.7 GB/s read and ~2.2 GB/s write per SSD.
        assert!((read - 3.7).abs() < 0.1, "read bw {read}");
        assert!((write - 2.2).abs() < 0.1, "write bw {write}");
    }

    #[test]
    fn gemm_cost_scales_with_size() {
        let m = CostModel::default();
        let small = m.gemm_cycles(64, 64, 64);
        let big = m.gemm_cycles(1024, 1024, 1024);
        assert!(big > small);
        // 1024^3*2 flops at 25_600*0.35 flops/cycle ≈ 240k cycles + launch.
        assert!(big.raw() > 200_000 && big.raw() < 400_000, "{big}");
    }

    #[test]
    fn api_costs_favour_agile() {
        let a = ApiCosts::default();
        assert!(a.agile_cache_hit < a.bam_cache_hit);
        assert!(a.agile_cache_miss < a.bam_cache_miss);
        assert!(a.agile_issue < a.bam_issue);
    }

    #[test]
    fn cost_model_clone_equality() {
        let m = CostModel::default();
        let cloned = m.clone();
        assert_eq!(m, cloned);
        let mut perturbed = m.clone();
        perturbed.gpu.global_atomic += 1;
        assert_ne!(m, perturbed);
    }
}
