//! A deterministic event wheel.
//!
//! The SSD model (and any other latency-bearing device) schedules future work
//! as events: "command 17 completes at cycle 1_234_567". The co-simulation
//! engine pops all events whose timestamp is ≤ the current GPU clock before
//! letting warps make progress, so device completions become visible to GPU
//! threads exactly when they would on real hardware.
//!
//! Ties are broken by insertion order (a monotonically increasing sequence
//! number), which keeps runs deterministic regardless of heap internals.

use crate::clock::Cycles;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier returned when scheduling an event; can be used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Scheduled<E> {
    at: Cycles,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timestamped events with deterministic tie-breaking and
/// O(log n) cancellation (lazy deletion).
pub struct EventWheel<E> {
    heap: BinaryHeap<Scheduled<E>>,
    cancelled: std::collections::HashSet<EventId>,
    next_seq: u64,
    live: usize,
}

impl<E> Default for EventWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventWheel<E> {
    /// Create an empty wheel.
    pub fn new() -> Self {
        EventWheel {
            heap: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Number of live (not yet popped or cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: Cycles, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.heap.push(Scheduled {
            at,
            seq,
            id,
            payload,
        });
        self.live += 1;
        id
    }

    /// Cancel a previously scheduled event. Returns true if it was still live.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.cancelled.insert(id) {
            // It may have already fired; only count it if it is still queued.
            // We cannot cheaply check membership in the heap, so we adjust
            // `live` lazily in `pop_ready`/`pop_next`. To keep `len` accurate
            // we instead verify by scanning — acceptable because cancellation
            // is rare (only used by tests and error paths).
            let queued = self.heap.iter().any(|s| s.id == id);
            if queued {
                self.live -= 1;
                return true;
            }
            self.cancelled.remove(&id);
        }
        false
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<Cycles> {
        self.skip_cancelled();
        self.heap.peek().map(|s| s.at)
    }

    /// Pop the next live event regardless of time. Returns `(time, payload)`.
    pub fn pop_next(&mut self) -> Option<(Cycles, E)> {
        self.skip_cancelled();
        let s = self.heap.pop()?;
        self.live -= 1;
        Some((s.at, s.payload))
    }

    /// Pop every live event with timestamp ≤ `now`, in timestamp order.
    pub fn pop_ready(&mut self, now: Cycles) -> Vec<(Cycles, E)> {
        let mut out = Vec::new();
        loop {
            self.skip_cancelled();
            match self.heap.peek() {
                Some(s) if s.at <= now => {
                    let s = self.heap.pop().expect("peeked");
                    self.live -= 1;
                    out.push((s.at, s.payload));
                }
                _ => break,
            }
        }
        out
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.id) {
                let s = self.heap.pop().expect("peeked");
                self.cancelled.remove(&s.id);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut w = EventWheel::new();
        w.schedule(Cycles(30), "c");
        w.schedule(Cycles(10), "a");
        w.schedule(Cycles(20), "b");
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop_next(), Some((Cycles(10), "a")));
        assert_eq!(w.pop_next(), Some((Cycles(20), "b")));
        assert_eq!(w.pop_next(), Some((Cycles(30), "c")));
        assert_eq!(w.pop_next(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut w = EventWheel::new();
        w.schedule(Cycles(5), 1u32);
        w.schedule(Cycles(5), 2u32);
        w.schedule(Cycles(5), 3u32);
        let popped: Vec<u32> = std::iter::from_fn(|| w.pop_next().map(|(_, p)| p)).collect();
        assert_eq!(popped, vec![1, 2, 3]);
    }

    #[test]
    fn pop_ready_only_returns_due_events() {
        let mut w = EventWheel::new();
        w.schedule(Cycles(10), "early");
        w.schedule(Cycles(100), "late");
        let ready = w.pop_ready(Cycles(50));
        assert_eq!(ready, vec![(Cycles(10), "early")]);
        assert_eq!(w.len(), 1);
        let ready = w.pop_ready(Cycles(100));
        assert_eq!(ready, vec![(Cycles(100), "late")]);
        assert!(w.is_empty());
    }

    #[test]
    fn cancellation() {
        let mut w = EventWheel::new();
        let a = w.schedule(Cycles(10), "a");
        let _b = w.schedule(Cycles(20), "b");
        assert!(w.cancel(a));
        assert!(!w.cancel(a));
        assert_eq!(w.len(), 1);
        assert_eq!(w.peek_time(), Some(Cycles(20)));
        assert_eq!(w.pop_next(), Some((Cycles(20), "b")));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut w = EventWheel::new();
        let a = w.schedule(Cycles(1), "a");
        w.schedule(Cycles(2), "b");
        w.cancel(a);
        assert_eq!(w.peek_time(), Some(Cycles(2)));
    }

    #[test]
    fn large_volume_is_ordered() {
        let mut w = EventWheel::new();
        // Schedule in a scrambled but deterministic order.
        for i in 0..10_000u64 {
            let t = (i * 7919) % 10_007;
            w.schedule(Cycles(t), t);
        }
        let mut last = 0;
        while let Some((t, p)) = w.pop_next() {
            assert_eq!(t.raw(), p);
            assert!(t.raw() >= last);
            last = t.raw();
        }
    }
}
