//! # agile-sim — discrete-event simulation substrate
//!
//! This crate provides the foundational pieces every other crate in the AGILE
//! reproduction builds on:
//!
//! * a virtual clock measured in GPU [`Cycles`] with conversions to wall time
//!   ([`clock`]),
//! * a deterministic event wheel for scheduling future device activity
//!   ([`events`]),
//! * deterministic, seedable random number generation plus a Zipf sampler used
//!   by the synthetic workload generators ([`rng`]),
//! * lightweight statistics containers used by the benchmark harnesses
//!   ([`stats`]),
//! * the single, documented table of cost-model constants used by the GPU and
//!   SSD simulators ([`costs`]), and
//! * size/time unit helpers ([`units`]).
//!
//! Everything here is pure, `no_std`-friendly in spirit (though we use `std`),
//! and deterministic: two runs with the same seed and parameters produce
//! bit-identical results. That determinism is what makes the paper's figures
//! reproducible as tests.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod costs;
pub mod events;
pub mod rng;
pub mod stats;
pub mod trace;
pub mod units;

pub use clock::{Cycles, Nanos, SimClock, DEFAULT_GPU_CLOCK_GHZ};
pub use events::{EventId, EventWheel};
pub use rng::{SimRng, ZipfSampler};
pub use stats::{Counter, Histogram, RunningStats};
pub use trace::{BufferedSink, NullSink, TraceEvent, TraceEventKind, TraceSink};
