//! Deterministic random number generation for workload synthesis.
//!
//! All simulated randomness (random LBAs for the 4 KB random read/write
//! experiments, Zipf-distributed embedding indices for DLRM, edge generation
//! for the uniform and Kronecker graph generators) flows through [`SimRng`],
//! a splitmix64-seeded xoshiro256** generator. The generator is written out
//! here rather than pulled from `rand` distributions so that the exact bit
//! streams are stable across `rand` releases; `rand`'s traits are implemented
//! so the generator still composes with the wider ecosystem (and proptest).

use rand::RngCore;

/// splitmix64 step, used to expand a single `u64` seed into the xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** PRNG.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent stream from this generator (e.g. one per SSD or
    /// per warp) without perturbing the parent's sequence.
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix the stream id with the current state through splitmix to avoid
        // correlated child streams.
        let mut sm = self.s[0] ^ self.s[3] ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. Uses Lemire's multiply-shift rejection.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // 128-bit multiply method; rejection keeps it unbiased.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        for i in (1..n).rev() {
            let j = self.gen_range((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        SimRng::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&SimRng::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = SimRng::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A Zipf(α) sampler over `[0, n)` using the rejection-inversion method of
/// Hörmann & Derflinger, which is O(1) per sample and exact.
///
/// DLRM embedding-table accesses follow a strongly skewed popularity
/// distribution; the paper uses the Criteo click-logs categorical features,
/// which we substitute with a Zipf-distributed synthetic trace (see
/// DESIGN.md §2).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    alpha: f64,
    // Precomputed constants for rejection-inversion.
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl ZipfSampler {
    /// Create a sampler over `{0, 1, …, n-1}` with exponent `alpha > 0`
    /// (alpha == 1.0 is handled via the limit form).
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(alpha > 0.0, "Zipf exponent must be positive");
        let h = |x: f64| -> f64 {
            if (alpha - 1.0).abs() < 1e-12 {
                (1.0 + x).ln()
            } else {
                ((1.0 + x).powf(1.0 - alpha) - 1.0) / (1.0 - alpha)
            }
        };
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n as f64 - 0.5);
        let s = 2.0 - {
            // h_inv(h(2.5) - 1/2^alpha) ... the standard constant
            let v = h(2.5) - (2.0f64).powf(-alpha);
            Self::h_inv_static(v, alpha)
        };
        ZipfSampler {
            n,
            alpha,
            h_x1,
            h_n,
            s,
        }
    }

    fn h_inv_static(x: f64, alpha: f64) -> f64 {
        if (alpha - 1.0).abs() < 1e-12 {
            x.exp() - 1.0
        } else {
            (1.0 + x * (1.0 - alpha)).powf(1.0 / (1.0 - alpha)) - 1.0
        }
    }

    fn h(&self, x: f64) -> f64 {
        if (self.alpha - 1.0).abs() < 1e-12 {
            (1.0 + x).ln()
        } else {
            ((1.0 + x).powf(1.0 - self.alpha) - 1.0) / (1.0 - self.alpha)
        }
    }

    fn h_inv(&self, x: f64) -> f64 {
        Self::h_inv_static(x, self.alpha)
    }

    /// Size of the support.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw a sample in `[0, n)`; rank 0 is the most popular item.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.n == 1 {
            return 0;
        }
        loop {
            let u = self.h_n + rng.gen_f64() * (self.h_x1 - self.h_n);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.s || u >= self.h(k + 0.5) - (k).powf(-self.alpha) {
                // Ranks are 1-based in the classical formulation.
                return (k as u64 - 1).min(self.n - 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(43);
        assert_ne!(SimRng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn forked_streams_differ() {
        let root = SimRng::new(7);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3, "forked streams should be effectively independent");
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = SimRng::new(1);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.gen_range(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniformity_chi_square_rough() {
        let mut rng = SimRng::new(3);
        let buckets = 16usize;
        let samples = 160_000usize;
        let mut counts = vec![0f64; buckets];
        for _ in 0..samples {
            counts[rng.gen_range(buckets as u64) as usize] += 1.0;
        }
        let expected = samples as f64 / buckets as f64;
        let chi2: f64 = counts
            .iter()
            .map(|c| (c - expected).powi(2) / expected)
            .sum();
        // 15 degrees of freedom; 99.9th percentile ≈ 37.7.
        assert!(chi2 < 45.0, "chi-square too large: {chi2}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut rng = SimRng::new(11);
        let zipf = ZipfSampler::new(1000, 0.99);
        let mut counts = vec![0u64; 1000];
        for _ in 0..50_000 {
            let v = zipf.sample(&mut rng);
            assert!(v < 1000);
            counts[v as usize] += 1;
        }
        // Rank 0 should be far more popular than rank 500.
        assert!(counts[0] > 20 * counts[500].max(1));
        // Head should dominate: top-10 ranks should capture a large share.
        let head: u64 = counts[..10].iter().sum();
        assert!(head as f64 > 0.25 * 50_000.0);
    }

    #[test]
    fn zipf_single_element() {
        let mut rng = SimRng::new(5);
        let zipf = ZipfSampler::new(1, 1.2);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SimRng::new(13);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
