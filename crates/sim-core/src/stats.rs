//! Lightweight statistics containers.
//!
//! The simulators and the figure harnesses accumulate three kinds of data:
//!
//! * monotonically increasing event counts ([`Counter`]),
//! * latency / size distributions ([`Histogram`], log2-bucketed), and
//! * running mean/min/max/variance summaries ([`RunningStats`]).
//!
//! All three are plain values (no interior mutability) so ownership makes the
//! accounting thread-safe by construction; concurrent producers each keep
//! their own instance and merge at the end.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A named monotonically increasing counter.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: &Counter) {
        self.value += other.value;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// A log2-bucketed histogram of `u64` samples (bucket `i` holds values in
/// `[2^i, 2^(i+1))`, bucket 0 holds 0 and 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New, empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let idx = if value <= 1 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[idx.min(64)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Minimum recorded sample (None if empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum recorded sample (None if empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate quantile (by bucket upper bound), `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                // Upper bound of bucket i.
                return Some(if i == 0 {
                    1
                } else {
                    (1u64 << i).saturating_mul(2).saturating_sub(1)
                });
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Running mean / variance / extrema over `f64` samples (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// New, empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 if fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample (None if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum sample (None if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut d = Counter::new();
        d.add(10);
        c.merge(&d);
        assert_eq!(c.get(), 15);
        assert_eq!(format!("{c}"), "15");
    }

    #[test]
    fn histogram_mean_min_max() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean() - 203.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantile_monotone() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let q50 = h.quantile(0.5).unwrap();
        let q99 = h.quantile(0.99).unwrap();
        assert!(q50 <= q99);
        assert!(q99 >= 512);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..100 {
            a.record(v);
        }
        for v in 100..200 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.min(), Some(0));
        assert_eq!(a.max(), Some(199));
    }

    #[test]
    fn running_stats_matches_closed_form() {
        let mut s = RunningStats::new();
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for &x in &xs {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..400] {
            left.record(x);
        }
        for &x in &xs[400..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn running_stats_empty_merge() {
        let mut a = RunningStats::new();
        let b = RunningStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 0);
        let mut c = RunningStats::new();
        c.record(3.0);
        a.merge(&c);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 3.0);
    }
}
