//! The trace hook: a lightweight event type and sink trait the simulators
//! record into.
//!
//! Every layer of the stack (the AGILE controller and service, the NVMe
//! device completion path, the software cache) carries an optional
//! `Arc<dyn TraceSink>` installed via a `set_trace_sink` method. The hook is
//! designed so recording is effectively free when disabled:
//!
//! * the sink lives in a [`std::sync::OnceLock`], so the disabled fast path
//!   is a single relaxed-ish atomic load and branch;
//! * [`TraceEvent`] is a small `Copy` struct, built only after the sink
//!   presence check passes;
//! * sinks are `&self` recorders, so producers never serialize on a lock the
//!   hook owns (richer sinks such as `agile-trace`'s `MemorySink` manage
//!   their own interior mutability).
//!
//! The rich machinery — serializable formats, synthetic generators, replay —
//! lives in the `agile-trace` crate; this module only defines the vocabulary
//! the producers need, keeping the dependency arrow pointing upward.

use std::fmt;

/// What happened, at one point of the I/O stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceEventKind {
    /// An NVMe command was written into an SQ slot (GPU side).
    Submit = 0,
    /// An SQ tail doorbell was rung (GPU side).
    Doorbell = 1,
    /// The device posted a CQE for a command (SSD side).
    DeviceCompletion = 2,
    /// The AGILE service (or a BaM user thread) processed a completion.
    ServiceCompletion = 3,
    /// Software-cache lookup hit valid data.
    CacheHit = 4,
    /// Software-cache lookup missed and reserved a line.
    CacheMiss = 5,
    /// Software-cache lookup coalesced onto an in-flight fill (BUSY).
    CacheBusy = 6,
    /// Software-cache lookup found no usable way (all pinned/busy).
    CacheNoLine = 7,
    /// A dirty victim line was written back.
    Writeback = 8,
    /// The QoS scheduler deferred a tenant's submission (the admission gate
    /// said no before the SQ-slot claim; a later `Submit` for the same target
    /// means the retry was admitted).
    QosDefer = 9,
    /// The control plane changed a knob: `dev` carries the knob kind,
    /// `lba` the new value, `tenant` the affected tenant (or `u32::MAX`
    /// for global knobs such as the prefetch depth).
    CtrlDecision = 10,
}

impl TraceEventKind {
    /// All kinds, in wire order.
    pub const ALL: [TraceEventKind; 11] = [
        TraceEventKind::Submit,
        TraceEventKind::Doorbell,
        TraceEventKind::DeviceCompletion,
        TraceEventKind::ServiceCompletion,
        TraceEventKind::CacheHit,
        TraceEventKind::CacheMiss,
        TraceEventKind::CacheBusy,
        TraceEventKind::CacheNoLine,
        TraceEventKind::Writeback,
        TraceEventKind::QosDefer,
        TraceEventKind::CtrlDecision,
    ];

    /// Wire encoding of the kind.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decode a wire value.
    pub fn from_u8(v: u8) -> Option<TraceEventKind> {
        TraceEventKind::ALL.get(v as usize).copied()
    }

    /// Short lowercase label (used by the JSON debug dump).
    pub fn label(self) -> &'static str {
        match self {
            TraceEventKind::Submit => "submit",
            TraceEventKind::Doorbell => "doorbell",
            TraceEventKind::DeviceCompletion => "device_completion",
            TraceEventKind::ServiceCompletion => "service_completion",
            TraceEventKind::CacheHit => "cache_hit",
            TraceEventKind::CacheMiss => "cache_miss",
            TraceEventKind::CacheBusy => "cache_busy",
            TraceEventKind::CacheNoLine => "cache_no_line",
            TraceEventKind::Writeback => "writeback",
            TraceEventKind::QosDefer => "qos_defer",
            TraceEventKind::CtrlDecision => "ctrl_decision",
        }
    }
}

impl fmt::Display for TraceEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One fixed-width trace record.
///
/// Fields that do not apply to a kind are zero (e.g. `cid` for cache events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Sim-clock timestamp in GPU cycles.
    pub at: u64,
    /// Logical block address (4 KiB page index) the event concerns.
    pub lba: u64,
    /// Device index.
    pub dev: u32,
    /// Issuing tenant / flat warp index, where known.
    pub tenant: u32,
    /// Queue-pair index within the device.
    pub queue: u16,
    /// NVMe command identifier, where one exists.
    pub cid: u16,
    /// Event kind.
    pub kind: TraceEventKind,
    /// True for writes, false for reads (meaningful for I/O kinds).
    pub write: bool,
}

impl TraceEvent {
    /// A zeroed event of the given kind at time `at` (builder-style helpers
    /// fill the rest).
    pub fn new(kind: TraceEventKind, at: u64) -> Self {
        TraceEvent {
            at,
            lba: 0,
            dev: 0,
            tenant: 0,
            queue: 0,
            cid: 0,
            kind,
            write: false,
        }
    }

    /// Set the `(device, lba)` target.
    pub fn target(mut self, dev: u32, lba: u64) -> Self {
        self.dev = dev;
        self.lba = lba;
        self
    }

    /// Set the queue-pair index and command id.
    pub fn queue(mut self, queue: u16, cid: u16) -> Self {
        self.queue = queue;
        self.cid = cid;
        self
    }

    /// Set the issuing tenant / warp.
    pub fn tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Mark the event as a write.
    pub fn write(mut self, write: bool) -> Self {
        self.write = write;
        self
    }
}

/// A consumer of trace events. Implementations must be cheap and `&self`
/// (producers record from hot paths, potentially from several threads).
pub trait TraceSink: Send + Sync {
    /// Record one event.
    fn record(&self, ev: TraceEvent);
}

/// A sink that discards everything (useful as an explicit default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _ev: TraceEvent) {}
}

/// An order-preserving staging buffer in front of another sink.
///
/// Producers running off the coordinating thread (one storage shard's device
/// advancing on an engine worker) record into the buffer; `flush()` forwards
/// everything to the inner sink in record order. The engine drains one
/// `BufferedSink` per shard, in shard order, at every epoch boundary, which
/// reproduces — byte for byte — the event order a sequential run records
/// directly. Unflushed events are forwarded on drop so no tail is lost when
/// a host is torn down without a final drain.
pub struct BufferedSink {
    inner: std::sync::Arc<dyn TraceSink>,
    buf: std::sync::Mutex<Vec<TraceEvent>>,
}

impl BufferedSink {
    /// Buffer in front of `inner`.
    pub fn new(inner: std::sync::Arc<dyn TraceSink>) -> Self {
        BufferedSink {
            inner,
            buf: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Forward every buffered event to the inner sink, preserving order.
    pub fn flush(&self) {
        let drained: Vec<TraceEvent> = {
            let mut buf = self.buf.lock().unwrap();
            if buf.is_empty() {
                return;
            }
            std::mem::take(&mut *buf)
        };
        for ev in drained {
            self.inner.record(ev);
        }
    }

    /// Number of events currently staged.
    pub fn pending(&self) -> usize {
        self.buf.lock().unwrap().len()
    }
}

impl TraceSink for BufferedSink {
    fn record(&self, ev: TraceEvent) {
        self.buf.lock().unwrap().push(ev);
    }
}

impl Drop for BufferedSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_wire_roundtrip() {
        for kind in TraceEventKind::ALL {
            assert_eq!(TraceEventKind::from_u8(kind.as_u8()), Some(kind));
            assert!(!kind.label().is_empty());
        }
        assert_eq!(TraceEventKind::from_u8(200), None);
    }

    #[test]
    fn builder_fills_fields() {
        let ev = TraceEvent::new(TraceEventKind::Submit, 42)
            .target(3, 77)
            .queue(1, 9)
            .tenant(5)
            .write(true);
        assert_eq!(ev.at, 42);
        assert_eq!((ev.dev, ev.lba), (3, 77));
        assert_eq!((ev.queue, ev.cid), (1, 9));
        assert_eq!(ev.tenant, 5);
        assert!(ev.write);
        assert_eq!(ev.kind, TraceEventKind::Submit);
    }

    #[test]
    fn null_sink_accepts_events() {
        let sink = NullSink;
        sink.record(TraceEvent::new(TraceEventKind::CacheHit, 0));
    }

    /// Sink recording events into a shared vector, for buffering tests.
    struct VecSink(std::sync::Mutex<Vec<TraceEvent>>);
    impl TraceSink for VecSink {
        fn record(&self, ev: TraceEvent) {
            self.0.lock().unwrap().push(ev);
        }
    }

    #[test]
    fn buffered_sink_preserves_order_across_flushes() {
        let inner = std::sync::Arc::new(VecSink(std::sync::Mutex::new(Vec::new())));
        let buffered = BufferedSink::new(inner.clone() as std::sync::Arc<dyn TraceSink>);
        for at in 0..5 {
            buffered.record(TraceEvent::new(TraceEventKind::Submit, at));
        }
        assert_eq!(buffered.pending(), 5);
        assert!(inner.0.lock().unwrap().is_empty(), "nothing before flush");
        buffered.flush();
        assert_eq!(buffered.pending(), 0);
        for at in 5..8 {
            buffered.record(TraceEvent::new(TraceEventKind::Doorbell, at));
        }
        buffered.flush();
        let seen: Vec<u64> = inner.0.lock().unwrap().iter().map(|e| e.at).collect();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn buffered_sink_flushes_tail_on_drop() {
        let inner = std::sync::Arc::new(VecSink(std::sync::Mutex::new(Vec::new())));
        {
            let buffered = BufferedSink::new(inner.clone() as std::sync::Arc<dyn TraceSink>);
            buffered.record(TraceEvent::new(TraceEventKind::CacheHit, 7));
        }
        assert_eq!(inner.0.lock().unwrap().len(), 1);
    }
}
