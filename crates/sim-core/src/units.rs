//! Size and unit helpers shared across the simulators.

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// NVMe / flash page size used throughout the system (§2.3.3 of the paper:
/// "data is managed at a coarse-grained page level, typically 4KB per page").
pub const SSD_PAGE_SIZE: u64 = 4 * KIB;

/// Number of bytes `n` expressed in GiB as a float (for reporting).
#[inline]
pub fn bytes_to_gib(n: u64) -> f64 {
    n as f64 / GIB as f64
}

/// Bandwidth in GB/s (decimal gigabytes, as the paper reports) given bytes
/// moved and elapsed seconds.
#[inline]
pub fn gb_per_sec(bytes: u64, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    bytes as f64 / 1e9 / secs
}

/// Integer ceiling division.
#[inline]
pub const fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Round `a` up to the next multiple of `b`.
#[inline]
pub const fn round_up(a: u64, b: u64) -> u64 {
    div_ceil(a, b) * b
}

/// True when `x` is a power of two (and non-zero).
#[inline]
pub const fn is_power_of_two(x: u64) -> bool {
    x != 0 && (x & (x - 1)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants() {
        assert_eq!(KIB, 1024);
        assert_eq!(MIB, 1024 * 1024);
        assert_eq!(GIB, 1024 * 1024 * 1024);
        assert_eq!(SSD_PAGE_SIZE, 4096);
    }

    #[test]
    fn conversions() {
        assert!((bytes_to_gib(GIB) - 1.0).abs() < 1e-12);
        assert!((gb_per_sec(1_000_000_000, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(gb_per_sec(123, 0.0), 0.0);
    }

    #[test]
    fn integer_helpers() {
        assert_eq!(div_ceil(10, 4), 3);
        assert_eq!(div_ceil(8, 4), 2);
        assert_eq!(round_up(10, 4), 12);
        assert_eq!(round_up(8, 4), 8);
        assert!(is_power_of_two(4096));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(12));
    }
}
