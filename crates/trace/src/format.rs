//! Versioned, serializable trace formats.
//!
//! Two record families share the same design: a fixed header (magic, format
//! version, record count) followed by fixed-width little-endian records, so
//! readers can validate, size and iterate without an allocation per record.
//!
//! * **Event logs** — raw [`TraceEvent`] telemetry captured from the
//!   simulators ([`encode_events`] / [`EventReader`] / [`decode_events`]).
//!   Magic `AGEV`, 32-byte records.
//! * **Replayable traces** — a [`Trace`]: metadata plus an ordered list of
//!   [`TraceOp`] requests ([`Trace::to_bytes`] / [`Trace::from_bytes`] /
//!   [`TraceOpReader`]). Magic `AGTR`, 24-byte records.
//!
//! Both come with a human-readable JSON debug dump
//! ([`events_to_json_lines`], [`Trace::to_json`]); JSON is write-only, the
//! binary form is the interchange format.

use agile_sim::trace::{TraceEvent, TraceEventKind};
use std::fmt;

/// Magic for serialized event logs.
pub const EVENT_LOG_MAGIC: [u8; 4] = *b"AGEV";
/// Magic for serialized replayable traces.
pub const TRACE_MAGIC: [u8; 4] = *b"AGTR";
/// Current version of both wire formats, written by the encoders. Version
/// history: 1 = initial; 2 = the `QosDefer` event kind joined the event-kind
/// space (record layouts unchanged); 3 = cache-path events (`CacheHit`/
/// `CacheMiss`/`CacheBusy`/`CacheNoLine`/`Writeback`) carry the requesting
/// tenant in the already-present `tenant` field instead of zero (record
/// layouts again unchanged — the bump marks the semantic change so readers
/// comparing cache events across captures know which convention a log used);
/// 4 = the `CtrlDecision` event kind joined the event-kind space (the control
/// plane's knob changes: `dev` = knob kind, `lba` = new value, `tenant` = the
/// affected tenant or `u32::MAX` for global knobs; record layouts unchanged);
/// 5 = **untenanted** cache-path events carry the `u32::MAX` sentinel in the
/// `tenant` field instead of 0, so they can no longer be conflated with the
/// real tenant 0 in multi-tenant captures (record layouts unchanged — the
/// field was always a full u32).
/// Readers accept any version up to the current one — an old reader handed a
/// newer log fails with the explicit
/// [`TraceFormatError::UnsupportedVersion`] rather than a confusing
/// misreading of the record stream.
pub const FORMAT_VERSION: u16 = 5;

const EVENT_RECORD_BYTES: usize = 32;
const OP_RECORD_BYTES: usize = 24;
const HEADER_BYTES: usize = 16; // magic(4) + version(2) + reserved(2) + count(8)

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceFormatError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The format version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// The buffer ended before the declared record count was read.
    Truncated,
    /// An event record carried an unknown kind byte.
    BadKind(u8),
    /// A metadata string was not valid UTF-8.
    BadString,
}

impl fmt::Display for TraceFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFormatError::BadMagic => write!(f, "bad magic bytes"),
            TraceFormatError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            TraceFormatError::Truncated => write!(f, "buffer truncated"),
            TraceFormatError::BadKind(k) => write!(f, "unknown event kind {k}"),
            TraceFormatError::BadString => write!(f, "invalid UTF-8 in metadata string"),
        }
    }
}

impl std::error::Error for TraceFormatError {}

fn write_header(out: &mut Vec<u8>, magic: [u8; 4], count: u64) {
    out.extend_from_slice(&magic);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&[0u8; 2]);
    out.extend_from_slice(&count.to_le_bytes());
}

fn read_header(buf: &[u8], magic: [u8; 4]) -> Result<(u64, &[u8]), TraceFormatError> {
    if buf.len() < HEADER_BYTES {
        return Err(if buf.get(..4).map(|m| m == magic) == Some(true) {
            TraceFormatError::Truncated
        } else {
            TraceFormatError::BadMagic
        });
    }
    if buf[..4] != magic {
        return Err(TraceFormatError::BadMagic);
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version == 0 || version > FORMAT_VERSION {
        return Err(TraceFormatError::UnsupportedVersion(version));
    }
    let count = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    Ok((count, &buf[HEADER_BYTES..]))
}

// ---------------------------------------------------------------------------
// Event logs
// ---------------------------------------------------------------------------

/// Serialize an event log to the compact binary form.
pub fn encode_events(events: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + events.len() * EVENT_RECORD_BYTES);
    write_header(&mut out, EVENT_LOG_MAGIC, events.len() as u64);
    for ev in events {
        out.extend_from_slice(&ev.at.to_le_bytes());
        out.extend_from_slice(&ev.lba.to_le_bytes());
        out.extend_from_slice(&ev.dev.to_le_bytes());
        out.extend_from_slice(&ev.tenant.to_le_bytes());
        out.extend_from_slice(&ev.queue.to_le_bytes());
        out.extend_from_slice(&ev.cid.to_le_bytes());
        out.push(ev.kind.as_u8());
        out.push(ev.write as u8);
        out.extend_from_slice(&[0u8; 2]);
    }
    out
}

/// Iterator-based reader over a serialized event log.
pub struct EventReader<'a> {
    body: &'a [u8],
    remaining: u64,
}

impl<'a> EventReader<'a> {
    /// Validate the header and position the reader at the first record.
    pub fn new(buf: &'a [u8]) -> Result<Self, TraceFormatError> {
        let (count, body) = read_header(buf, EVENT_LOG_MAGIC)?;
        Ok(EventReader {
            body,
            remaining: count,
        })
    }

    /// Records left to read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl Iterator for EventReader<'_> {
    type Item = Result<TraceEvent, TraceFormatError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        if self.body.len() < EVENT_RECORD_BYTES {
            self.remaining = 0;
            return Some(Err(TraceFormatError::Truncated));
        }
        let r = &self.body[..EVENT_RECORD_BYTES];
        self.body = &self.body[EVENT_RECORD_BYTES..];
        self.remaining -= 1;
        let kind = match TraceEventKind::from_u8(r[28]) {
            Some(k) => k,
            None => {
                self.remaining = 0;
                return Some(Err(TraceFormatError::BadKind(r[28])));
            }
        };
        Some(Ok(TraceEvent {
            at: u64::from_le_bytes(r[0..8].try_into().expect("8 bytes")),
            lba: u64::from_le_bytes(r[8..16].try_into().expect("8 bytes")),
            dev: u32::from_le_bytes(r[16..20].try_into().expect("4 bytes")),
            tenant: u32::from_le_bytes(r[20..24].try_into().expect("4 bytes")),
            queue: u16::from_le_bytes([r[24], r[25]]),
            cid: u16::from_le_bytes([r[26], r[27]]),
            kind,
            write: r[29] != 0,
        }))
    }
}

/// Decode a whole event log at once.
pub fn decode_events(buf: &[u8]) -> Result<Vec<TraceEvent>, TraceFormatError> {
    EventReader::new(buf)?.collect()
}

/// Render an event log as JSON lines (one object per event) for debugging.
pub fn events_to_json_lines(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&format!(
            "{{\"at\":{},\"kind\":\"{}\",\"dev\":{},\"lba\":{},\"queue\":{},\"cid\":{},\"tenant\":{},\"write\":{}}}\n",
            ev.at, ev.kind.label(), ev.dev, ev.lba, ev.queue, ev.cid, ev.tenant, ev.write
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Replayable traces
// ---------------------------------------------------------------------------

/// One replayable I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceOp {
    /// 4 KiB page index within the device.
    pub lba: u64,
    /// Think-time in GPU cycles between the previous op (trace order) and
    /// this one becoming eligible to issue.
    pub gap: u32,
    /// Issuing tenant id (used for per-tenant attribution and fairness work).
    pub tenant: u32,
    /// Target device index.
    pub dev: u32,
    /// True for a write, false for a read.
    pub write: bool,
}

/// Metadata describing a replayable trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Human-readable trace name (workload + parameters).
    pub name: String,
    /// Seed the trace was generated with (zero for captured traces).
    pub seed: u64,
    /// LBA space the ops were drawn from (pages per device).
    pub lba_space: u64,
    /// Number of devices the ops target.
    pub devices: u32,
    /// Number of distinct tenants.
    pub tenants: u32,
}

/// A replayable trace: metadata plus ordered requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Descriptive metadata.
    pub meta: TraceMeta,
    /// The requests, in issue order.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// Total read ops.
    pub fn reads(&self) -> u64 {
        self.ops.iter().filter(|o| !o.write).count() as u64
    }

    /// Total write ops.
    pub fn writes(&self) -> u64 {
        self.ops.iter().filter(|o| o.write).count() as u64
    }

    /// Sum of inter-op gaps (a lower bound on the trace's virtual duration).
    pub fn total_gap_cycles(&self) -> u64 {
        self.ops.iter().map(|o| o.gap as u64).sum()
    }

    /// Serialize to the compact binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let name = self.meta.name.as_bytes();
        assert!(name.len() <= u16::MAX as usize, "trace name too long");
        let mut out = Vec::with_capacity(
            HEADER_BYTES + 2 + name.len() + 24 + self.ops.len() * OP_RECORD_BYTES,
        );
        write_header(&mut out, TRACE_MAGIC, self.ops.len() as u64);
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&self.meta.seed.to_le_bytes());
        out.extend_from_slice(&self.meta.lba_space.to_le_bytes());
        out.extend_from_slice(&self.meta.devices.to_le_bytes());
        out.extend_from_slice(&self.meta.tenants.to_le_bytes());
        for op in &self.ops {
            out.extend_from_slice(&op.lba.to_le_bytes());
            out.extend_from_slice(&op.gap.to_le_bytes());
            out.extend_from_slice(&op.tenant.to_le_bytes());
            out.extend_from_slice(&op.dev.to_le_bytes());
            out.push(op.write as u8);
            out.extend_from_slice(&[0u8; 3]);
        }
        out
    }

    /// Deserialize from the compact binary form.
    pub fn from_bytes(buf: &[u8]) -> Result<Trace, TraceFormatError> {
        let (count, body) = read_header(buf, TRACE_MAGIC)?;
        if body.len() < 2 {
            return Err(TraceFormatError::Truncated);
        }
        let name_len = u16::from_le_bytes([body[0], body[1]]) as usize;
        let body = &body[2..];
        if body.len() < name_len + 24 {
            return Err(TraceFormatError::Truncated);
        }
        let name = std::str::from_utf8(&body[..name_len])
            .map_err(|_| TraceFormatError::BadString)?
            .to_string();
        let m = &body[name_len..name_len + 24];
        let meta = TraceMeta {
            name,
            seed: u64::from_le_bytes(m[0..8].try_into().expect("8 bytes")),
            lba_space: u64::from_le_bytes(m[8..16].try_into().expect("8 bytes")),
            devices: u32::from_le_bytes(m[16..20].try_into().expect("4 bytes")),
            tenants: u32::from_le_bytes(m[20..24].try_into().expect("4 bytes")),
        };
        let reader = TraceOpReader {
            body: &body[name_len + 24..],
            remaining: count,
        };
        let ops = reader.collect::<Result<Vec<_>, _>>()?;
        Ok(Trace { meta, ops })
    }

    /// JSON debug dump: one metadata object, then one line per op.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"name\":\"{}\",\"seed\":{},\"lba_space\":{},\"devices\":{},\"tenants\":{},\"ops\":{}}}\n",
            self.meta.name.replace('"', "'"),
            self.meta.seed,
            self.meta.lba_space,
            self.meta.devices,
            self.meta.tenants,
            self.ops.len()
        );
        for op in &self.ops {
            out.push_str(&format!(
                "{{\"gap\":{},\"tenant\":{},\"dev\":{},\"lba\":{},\"write\":{}}}\n",
                op.gap, op.tenant, op.dev, op.lba, op.write
            ));
        }
        out
    }

    /// Derive a replayable trace from a captured event log: every
    /// [`TraceEventKind::Submit`] becomes one op, with gaps reconstructed
    /// **per tenant** — each op's think time is the distance to *that
    /// tenant's* previous submit, not to whichever tenant happened to submit
    /// last globally. Replay charges gaps to the issuing warp, so per-tenant
    /// reconstruction preserves each tenant's original pacing even when the
    /// capture interleaved many tenants.
    ///
    /// Submits are ordered by the key `(time, tenant, capture sequence)`
    /// before reconstruction. Multi-producer captures only guarantee
    /// per-producer ordering, so two tenants sharing a timestamp can arrive
    /// interleaved either way; without the canonical sort the resulting op
    /// order (and thus the replay) silently depended on that race, while
    /// same-tenant ties keep their capture sequence.
    pub fn from_events(name: &str, events: &[TraceEvent]) -> Trace {
        let mut ops = Vec::new();
        let mut last_at_by_tenant: std::collections::HashMap<u32, u64> =
            std::collections::HashMap::new();
        let mut max_dev = 0u32;
        let mut max_lba = 0u64;
        let mut max_tenant = 0u32;
        let mut submits: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Submit)
            .collect();
        // Stable sort ⇒ effective key (at, tenant, capture sequence).
        submits.sort_by_key(|e| (e.at, e.tenant));
        for ev in submits {
            let last_at = last_at_by_tenant.entry(ev.tenant).or_insert(0);
            let gap = ev.at.saturating_sub(*last_at).min(u32::MAX as u64) as u32;
            *last_at = ev.at;
            max_dev = max_dev.max(ev.dev);
            max_lba = max_lba.max(ev.lba);
            max_tenant = max_tenant.max(ev.tenant);
            ops.push(TraceOp {
                lba: ev.lba,
                gap,
                tenant: ev.tenant,
                dev: ev.dev,
                write: ev.write,
            });
        }
        Trace {
            meta: TraceMeta {
                name: name.to_string(),
                seed: 0,
                lba_space: max_lba + 1,
                devices: max_dev + 1,
                tenants: max_tenant + 1,
            },
            ops,
        }
    }
}

/// Iterator-based reader over serialized trace ops.
pub struct TraceOpReader<'a> {
    body: &'a [u8],
    remaining: u64,
}

impl<'a> TraceOpReader<'a> {
    /// Read ops from a raw record region (already past the header/meta).
    /// Use [`Trace::from_bytes`] for whole-buffer decoding.
    pub fn from_records(body: &'a [u8], count: u64) -> Self {
        TraceOpReader {
            body,
            remaining: count,
        }
    }

    /// Records left to read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl Iterator for TraceOpReader<'_> {
    type Item = Result<TraceOp, TraceFormatError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        if self.body.len() < OP_RECORD_BYTES {
            self.remaining = 0;
            return Some(Err(TraceFormatError::Truncated));
        }
        let r = &self.body[..OP_RECORD_BYTES];
        self.body = &self.body[OP_RECORD_BYTES..];
        self.remaining -= 1;
        Some(Ok(TraceOp {
            lba: u64::from_le_bytes(r[0..8].try_into().expect("8 bytes")),
            gap: u32::from_le_bytes(r[8..12].try_into().expect("4 bytes")),
            tenant: u32::from_le_bytes(r[12..16].try_into().expect("4 bytes")),
            dev: u32::from_le_bytes(r[16..20].try_into().expect("4 bytes")),
            write: r[20] != 0,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::new(TraceEventKind::Submit, 100)
                .target(0, 7)
                .queue(1, 3)
                .tenant(2),
            TraceEvent::new(TraceEventKind::Doorbell, 110).queue(1, 3),
            TraceEvent::new(TraceEventKind::DeviceCompletion, 90_000)
                .target(0, 7)
                .queue(1, 3)
                .write(true),
            TraceEvent::new(TraceEventKind::CacheMiss, 95).target(1, u64::MAX),
        ]
    }

    #[test]
    fn event_log_roundtrip() {
        let events = sample_events();
        let bytes = encode_events(&events);
        assert_eq!(decode_events(&bytes).unwrap(), events);
        let reader = EventReader::new(&bytes).unwrap();
        assert_eq!(reader.remaining(), 4);
    }

    #[test]
    fn event_log_rejects_corruption() {
        let events = sample_events();
        let mut bytes = encode_events(&events);
        assert_eq!(
            decode_events(&bytes[..bytes.len() - 1]),
            Err(TraceFormatError::Truncated)
        );
        bytes[0] = b'X';
        assert_eq!(decode_events(&bytes), Err(TraceFormatError::BadMagic));
        let mut vers = encode_events(&events);
        vers[4] = 99;
        assert_eq!(
            decode_events(&vers),
            Err(TraceFormatError::UnsupportedVersion(99))
        );
        let mut kinds = encode_events(&events);
        kinds[HEADER_BYTES + 28] = 250;
        assert_eq!(decode_events(&kinds), Err(TraceFormatError::BadKind(250)));
    }

    #[test]
    fn older_format_versions_still_parse() {
        // The checked-in golden traces were written at versions 1 through 4;
        // the v5 reader must keep accepting them (record layouts are
        // unchanged), while versions from the future stay rejected.
        let events = sample_events();
        for old in [1u16, 2, 3, 4] {
            let mut bytes = encode_events(&events);
            bytes[4..6].copy_from_slice(&old.to_le_bytes());
            assert_eq!(decode_events(&bytes).unwrap(), events, "version {old}");
        }
        let mut v6 = encode_events(&events);
        v6[4..6].copy_from_slice(&6u16.to_le_bytes());
        assert_eq!(
            decode_events(&v6),
            Err(TraceFormatError::UnsupportedVersion(6))
        );
        let mut v0 = encode_events(&events);
        v0[4..6].copy_from_slice(&0u16.to_le_bytes());
        assert_eq!(
            decode_events(&v0),
            Err(TraceFormatError::UnsupportedVersion(0))
        );
    }

    #[test]
    fn trace_roundtrip() {
        let trace = Trace {
            meta: TraceMeta {
                name: "unit-test".to_string(),
                seed: 9,
                lba_space: 1 << 20,
                devices: 2,
                tenants: 3,
            },
            ops: vec![
                TraceOp {
                    lba: 5,
                    gap: 0,
                    tenant: 0,
                    dev: 0,
                    write: false,
                },
                TraceOp {
                    lba: u64::MAX,
                    gap: u32::MAX,
                    tenant: 2,
                    dev: 1,
                    write: true,
                },
            ],
        };
        let bytes = trace.to_bytes();
        assert_eq!(Trace::from_bytes(&bytes).unwrap(), trace);
        assert_eq!(trace.reads(), 1);
        assert_eq!(trace.writes(), 1);
        assert_eq!(trace.total_gap_cycles(), u32::MAX as u64);
    }

    #[test]
    fn trace_from_events_reconstructs_gaps_per_tenant() {
        let events = vec![
            TraceEvent::new(TraceEventKind::Submit, 100)
                .target(0, 1)
                .tenant(0),
            TraceEvent::new(TraceEventKind::CacheHit, 150).target(0, 1),
            // A different tenant submits in between: tenant 0's next gap must
            // still be measured against its *own* previous submit.
            TraceEvent::new(TraceEventKind::Submit, 400)
                .target(1, 9)
                .tenant(3)
                .write(true),
            TraceEvent::new(TraceEventKind::Submit, 450)
                .target(0, 2)
                .tenant(0),
            TraceEvent::new(TraceEventKind::Submit, 460)
                .target(1, 3)
                .tenant(3),
        ];
        let trace = Trace::from_events("captured", &events);
        assert_eq!(trace.ops.len(), 4);
        // First submit of each tenant: distance from capture start.
        assert_eq!(trace.ops[0].gap, 100);
        assert_eq!(trace.ops[1].gap, 400);
        assert!(trace.ops[1].write);
        // Subsequent submits: distance from the same tenant's previous one
        // (not from the globally-previous submit).
        assert_eq!(trace.ops[2].gap, 350, "tenant 0: 450 - 100");
        assert_eq!(trace.ops[3].gap, 60, "tenant 3: 460 - 400");
        assert_eq!(trace.meta.devices, 2);
        assert_eq!(trace.meta.tenants, 4);
    }

    #[test]
    fn json_dumps_are_line_per_record() {
        let events = sample_events();
        let dump = events_to_json_lines(&events);
        assert_eq!(dump.lines().count(), events.len());
        assert!(dump.contains("\"kind\":\"device_completion\""));
        let trace = Trace::from_events("t", &events);
        let tj = trace.to_json();
        assert_eq!(tj.lines().count(), 1 + trace.ops.len());
    }
}
