//! # agile-trace — I/O trace capture, synthetic generation, and replay data
//!
//! The AGILE paper evaluates its asynchronous GPU-SSD integration on a fixed
//! set of figure workloads. This crate turns *any* access pattern into data
//! the benchmarks and tests can consume, in four pieces:
//!
//! 1. **Capture** ([`sink`]) — rich implementations of the lightweight
//!    [`agile_sim::trace::TraceSink`] hook the simulators record into:
//!    [`MemorySink`] buffers every event for later inspection/serialization,
//!    [`CountingSink`] keeps only per-kind totals. Recording is effectively
//!    free when no sink is installed (a single atomic load on the hot path).
//! 2. **Format** ([`mod@format`]) — a versioned, compact binary encoding for
//!    event logs and replayable traces ([`Trace`]), with iterator-based
//!    readers ([`EventReader`], [`TraceOpReader`]) and a JSON-lines debug
//!    dump. Round-trips are exact: `decode(encode(x)) == x`.
//! 3. **Synthesis** ([`synth`]) — deterministic generators driven by
//!    `agile-sim`'s seeded RNG: uniform, Zipf(θ), bursty on/off, and
//!    multi-tenant mixtures ([`TraceSpec`]). The same spec + seed always
//!    yields the byte-identical trace.
//! 4. **Telemetry** ([`stats`]) — [`LatencyHistogram`], a log-linear
//!    histogram (≤ ~3 % relative error) for p50/p95/p99 latency percentiles,
//!    the repo's first latency-distribution (rather than throughput-only)
//!    metric.
//!
//! The replay engine itself lives in `agile_workloads::trace_replay`, which
//! feeds a [`Trace`] through the AGILE stack or the BaM baseline; this crate
//! deliberately depends only on `agile-sim` so every simulator layer can sit
//! above it.
//!
//! ## Example: generate, serialize, round-trip
//!
//! ```
//! use agile_trace::{TraceSpec, Trace};
//!
//! let spec = TraceSpec::zipfian("hot-set", 42, 2, 1 << 16, 1_000, 0.99);
//! let trace = spec.generate();
//! assert_eq!(trace.ops.len(), 1_000);
//! let bytes = trace.to_bytes();
//! let back = Trace::from_bytes(&bytes).unwrap();
//! assert_eq!(back, trace);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod format;
pub mod sink;
pub mod stats;
pub mod synth;

pub use agile_sim::trace::{NullSink, TraceEvent, TraceEventKind, TraceSink};
pub use format::{
    decode_events, encode_events, events_to_json_lines, EventReader, Trace, TraceFormatError,
    TraceMeta, TraceOp, TraceOpReader,
};
pub use sink::{CountingSink, MemorySink};
pub use stats::LatencyHistogram;
pub use synth::{AddressPattern, BurstProfile, PhaseShift, TenantSpec, TraceSpec};
