//! Concrete [`TraceSink`] implementations used for capture.

use agile_sim::trace::{TraceEvent, TraceEventKind, TraceSink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A sink that buffers every recorded event in memory, in record order.
///
/// Producers append under a short mutex; the simulator's hot paths only reach
/// the sink when tracing is explicitly enabled, so the lock is not on any
/// default path. Events can be drained ([`MemorySink::take_events`]) or
/// copied out ([`MemorySink::events`]) once the run finishes.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// New, empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Copy the buffered events out, leaving the buffer intact.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().clone()
    }

    /// Drain the buffered events.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.lock())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<TraceEvent>> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl TraceSink for MemorySink {
    fn record(&self, ev: TraceEvent) {
        self.lock().push(ev);
    }
}

/// A sink that keeps only per-kind event counts (constant memory, lock-free).
#[derive(Debug, Default)]
pub struct CountingSink {
    counts: [AtomicU64; TraceEventKind::ALL.len()],
}

impl CountingSink {
    /// New sink with all counters at zero.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Events recorded of `kind`.
    pub fn count(&self, kind: TraceEventKind) -> u64 {
        self.counts[kind.as_u8() as usize].load(Ordering::Relaxed)
    }

    /// Total events recorded across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

impl TraceSink for CountingSink {
    fn record(&self, ev: TraceEvent) {
        self.counts[ev.kind.as_u8() as usize].fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_buffers_in_order() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        for at in 0..10u64 {
            sink.record(TraceEvent::new(TraceEventKind::Submit, at));
        }
        assert_eq!(sink.len(), 10);
        let evs = sink.events();
        assert_eq!(evs.len(), 10);
        assert!(evs.windows(2).all(|w| w[0].at < w[1].at));
        let drained = sink.take_events();
        assert_eq!(drained, evs);
        assert!(sink.is_empty());
    }

    #[test]
    fn counting_sink_counts_by_kind() {
        let sink = CountingSink::new();
        sink.record(TraceEvent::new(TraceEventKind::CacheHit, 1));
        sink.record(TraceEvent::new(TraceEventKind::CacheHit, 2));
        sink.record(TraceEvent::new(TraceEventKind::Doorbell, 3));
        assert_eq!(sink.count(TraceEventKind::CacheHit), 2);
        assert_eq!(sink.count(TraceEventKind::Doorbell), 1);
        assert_eq!(sink.count(TraceEventKind::Submit), 0);
        assert_eq!(sink.total(), 3);
    }
}
